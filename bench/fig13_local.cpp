/**
 * @file
 * Figure 13 (Sec. V-E): execution time of the coordinated-local
 * configurations normalized to their coordinated-global counterparts.
 * Paper: bt, cg, sp sit at ~1.0 (practically all cores communicate
 * every interval); ft, dc, is, mg, lu drop below 1.0; ACR remains at
 * least as effective under local coordination.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;
    using ckpt::Coordination;

    harness::Runner runner(kDefaultThreads);

    std::cout << "Figure 13: normalized execution time of local "
                 "coordinated checkpointing (vs global counterpart)\n\n";

    Table table({"bench", "Ckpt_NE,Loc", "Ckpt_E,Loc", "ReCkpt_NE,Loc",
                 "ReCkpt_E,Loc", "EDP red. NE,Loc %"});

    for (const auto &name : workloads::allWorkloadNames()) {
        auto g_ckpt_ne = runner.run(name, makeConfig(BerMode::kCkpt));
        auto g_ckpt_e = runner.run(name, makeConfig(BerMode::kCkpt, 1));
        auto g_re_ne = runner.run(name, makeConfig(BerMode::kReCkpt));
        auto g_re_e = runner.run(name, makeConfig(BerMode::kReCkpt, 1));

        auto l_ckpt_ne = runner.run(
            name, makeConfig(BerMode::kCkpt, 0, Coordination::kLocal));
        auto l_ckpt_e = runner.run(
            name, makeConfig(BerMode::kCkpt, 1, Coordination::kLocal));
        auto l_re_ne = runner.run(
            name, makeConfig(BerMode::kReCkpt, 0, Coordination::kLocal));
        auto l_re_e = runner.run(
            name, makeConfig(BerMode::kReCkpt, 1, Coordination::kLocal));

        auto norm = [](const harness::ExperimentResult &local,
                       const harness::ExperimentResult &global) {
            return static_cast<double>(local.cycles) /
                   static_cast<double>(global.cycles);
        };

        table.row()
            .cell(name)
            .cell(norm(l_ckpt_ne, g_ckpt_ne), 3)
            .cell(norm(l_ckpt_e, g_ckpt_e), 3)
            .cell(norm(l_re_ne, g_re_ne), 3)
            .cell(norm(l_re_e, g_re_e), 3)
            .cell(l_re_ne.edpReductionPct(g_re_ne.edp));
    }
    table.print(std::cout);

    std::cout << "\n(paper: bt/cg/sp ~1.0 — all cores communicate; "
                 "ft/dc/is/mg/lu < 1.0, e.g. Ckpt_NE,Loc ~0.58 for ft; "
                 "ACR stays at least as effective under local "
                 "coordination)\n";
    return 0;
}
