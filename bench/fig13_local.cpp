/**
 * @file
 * Figure 13 (Sec. V-E): execution time of the coordinated-local
 * configurations normalized to their coordinated-global counterparts.
 * Paper: bt, cg, sp sit at ~1.0 (practically all cores communicate
 * every interval); ft, dc, is, mg, lu drop below 1.0; ACR remains at
 * least as effective under local coordination.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;
    using ckpt::Coordination;

    // Global four, then their local counterparts in the same order.
    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kCkpt),
        makeConfig(BerMode::kCkpt, 1),
        makeConfig(BerMode::kReCkpt),
        makeConfig(BerMode::kReCkpt, 1),
        makeConfig(BerMode::kCkpt, 0, Coordination::kLocal),
        makeConfig(BerMode::kCkpt, 1, Coordination::kLocal),
        makeConfig(BerMode::kReCkpt, 0, Coordination::kLocal),
        makeConfig(BerMode::kReCkpt, 1, Coordination::kLocal),
    };

    harness::BenchSpec spec;
    spec.name = "fig13_local";
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note("Figure 13: normalized execution time of local "
                 "coordinated checkpointing (vs global "
                 "counterpart)\n\n");

        Table table({"bench", "Ckpt_NE,Loc", "Ckpt_E,Loc",
                     "ReCkpt_NE,Loc", "ReCkpt_E,Loc",
                     "EDP red. NE,Loc %"});

        auto norm = [](const harness::ExperimentResult &local,
                       const harness::ExperimentResult &global) {
            return static_cast<double>(local.cycles) /
                   static_cast<double>(global.cycles);
        };

        const auto &names = ctx.workloads();
        for (std::size_t w = 0; w < names.size(); ++w) {
            const auto *row = &results[w * configs.size()];
            table.row()
                .cell(names[w])
                .cell(norm(row[4], row[0]), 3)
                .cell(norm(row[5], row[1]), 3)
                .cell(norm(row[6], row[2]), 3)
                .cell(norm(row[7], row[3]), 3)
                .cell(row[6].edpReductionPct(row[2].edp));
        }
        ctx.emit(table);

        ctx.note("\n(paper: bt/cg/sp ~1.0 — all cores communicate; "
                 "ft/dc/is/mg/lu < 1.0, e.g. Ckpt_NE,Loc ~0.58 for "
                 "ft; ACR stays at least as effective under local "
                 "coordination)\n");
    };
    return harness::benchMain(argc, argv, spec);
}
