/**
 * @file
 * Figure 13 (Sec. V-E): execution time of the coordinated-local
 * configurations normalized to their coordinated-global counterparts.
 * Paper: bt, cg, sp sit at ~1.0 (practically all cores communicate
 * every interval); ft, dc, is, mg, lu drop below 1.0; ACR remains at
 * least as effective under local coordination.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;
    using ckpt::Coordination;

    const unsigned jobs = parseJobs(argc, argv, "fig13_local");
    harness::Runner runner(kDefaultThreads);

    std::cout << "Figure 13: normalized execution time of local "
                 "coordinated checkpointing (vs global counterpart)\n\n";

    // Global four, then their local counterparts in the same order.
    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kCkpt),
        makeConfig(BerMode::kCkpt, 1),
        makeConfig(BerMode::kReCkpt),
        makeConfig(BerMode::kReCkpt, 1),
        makeConfig(BerMode::kCkpt, 0, Coordination::kLocal),
        makeConfig(BerMode::kCkpt, 1, Coordination::kLocal),
        makeConfig(BerMode::kReCkpt, 0, Coordination::kLocal),
        makeConfig(BerMode::kReCkpt, 1, Coordination::kLocal),
    };
    auto results = runSweep(runner, jobs, crossWorkloads(configs));

    Table table({"bench", "Ckpt_NE,Loc", "Ckpt_E,Loc", "ReCkpt_NE,Loc",
                 "ReCkpt_E,Loc", "EDP red. NE,Loc %"});

    auto norm = [](const harness::ExperimentResult &local,
                   const harness::ExperimentResult &global) {
        return static_cast<double>(local.cycles) /
               static_cast<double>(global.cycles);
    };

    const auto &names = workloads::allWorkloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        const auto *row = &results[w * configs.size()];
        table.row()
            .cell(names[w])
            .cell(norm(row[4], row[0]), 3)
            .cell(norm(row[5], row[1]), 3)
            .cell(norm(row[6], row[2]), 3)
            .cell(norm(row[7], row[3]), 3)
            .cell(row[6].edpReductionPct(row[2].edp));
    }
    table.print(std::cout);

    std::cout << "\n(paper: bt/cg/sp ~1.0 — all cores communicate; "
                 "ft/dc/is/mg/lu < 1.0, e.g. Ckpt_NE,Loc ~0.58 for ft; "
                 "ACR stays at least as effective under local "
                 "coordination)\n";
    return 0;
}
