/**
 * @file
 * Figure 1: relative component error rate under 8% degradation per bit
 * per technology generation (Borkar's model the paper cites) — plus an
 * injection audit: the rising error rates the figure motivates are
 * simulated as 1..5-error ReCkpt campaigns, with the injector and
 * recovery counters printed so a campaign's integrity (every planned
 * error injected, detected or explicitly dropped, recomputation
 * actually exercised) is auditable from stdout.
 */

#include "bench_util.hh"
#include "fault/injector.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    constexpr unsigned kMaxErrors = 5;

    std::vector<harness::ExperimentConfig> configs;
    for (unsigned errors = 1; errors <= kMaxErrors; ++errors)
        configs.push_back(makeConfig(BerMode::kReCkpt, errors));

    harness::BenchSpec spec;
    spec.name = "fig01_error_rate";
    spec.defaultWorkloads = {"is"};
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note("Figure 1: relative component error rate "
                 "(8% degradation/bit/generation)\n\n");

        Table curve({"generation", "relative error rate"});
        for (unsigned g = 0; g <= 9; ++g) {
            curve.row()
                .cell(static_cast<long long>(g))
                .cell(fault::relativeErrorRate(g), 3);
        }
        ctx.emit(curve);
        ctx.note(csprintf(
            "\nNine generations of scaling roughly double the "
            "component error rate (%.2fx), motivating more frequent "
            "checkpointing (Sec. I).\n\n",
            fault::relativeErrorRate(9)));

        ctx.note("Injection audit: ReCkpt_E campaigns at rising error "
                 "counts\n\n");
        Table audit({"bench", "errors", "inj", "det", "drop",
                     "requeue", "recov", "recompW"});
        const auto &names = ctx.workloads();
        for (std::size_t w = 0; w < names.size(); ++w) {
            for (unsigned errors = 1; errors <= kMaxErrors; ++errors) {
                const auto &result =
                    results[w * configs.size() + (errors - 1)];
                auto stat = [&](const char *key) {
                    return static_cast<long long>(
                        result.stats.get(key));
                };
                audit.row()
                    .cell(names[w])
                    .cell(static_cast<long long>(errors))
                    .cell(stat("fault.injected"))
                    .cell(stat("fault.detected"))
                    .cell(stat("fault.dropped"))
                    .cell(stat("fault.requeued"))
                    .cell(static_cast<long long>(result.recoveries))
                    .cell(stat("rec.recomputedWords"));
            }
        }
        ctx.emit(audit);
        ctx.note("\n(injected counts re-applications of corruptions "
                 "a rollback erased; detected + dropped converges to "
                 "the planned error count)\n");
    };
    return harness::benchMain(argc, argv, spec);
}
