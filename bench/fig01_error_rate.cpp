/**
 * @file
 * Figure 1: relative component error rate under 8% degradation per bit
 * per technology generation (Borkar's model the paper cites).
 */

#include <iostream>

#include "bench_util.hh"
#include "fault/injector.hh"

int
main()
{
    using namespace acr;

    std::cout << "Figure 1: relative component error rate "
                 "(8% degradation/bit/generation)\n\n";

    Table table({"generation", "relative error rate"});
    for (unsigned g = 0; g <= 9; ++g) {
        table.row()
            .cell(static_cast<long long>(g))
            .cell(fault::relativeErrorRate(g), 3);
    }
    table.print(std::cout);

    std::cout << "\nNine generations of scaling roughly double the "
                 "component error rate ("
              << fault::relativeErrorRate(9)
              << "x), motivating more frequent checkpointing (Sec. I).\n";
    return 0;
}
