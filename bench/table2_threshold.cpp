/**
 * @file
 * Table II: total checkpoint size reduction (%) as a function of the
 * Slice-length threshold, for thresholds {5, 10, 20, 30, 40, 50}
 * (threshold 5 included because the paper runs is at 5, footnote 4).
 * The paper's property: reductions are monotone in the threshold, cg
 * jumps sharply between 10 and 30, is is near-saturated already at 10.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const std::vector<unsigned> thresholds = {5, 10, 20, 30, 40, 50};

    // Per workload: the Ckpt baseline, then ReCkpt per threshold.
    std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kCkpt)};
    for (unsigned threshold : thresholds) {
        auto cfg = makeConfig(BerMode::kReCkpt);
        cfg.sliceThreshold = threshold;
        configs.push_back(cfg);
    }

    harness::BenchSpec spec;
    spec.name = "table2_threshold";
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note("Table II: total checkpoint size reduction (%) vs "
                 "Slice length threshold\n\n");

        std::vector<std::string> headers = {"bench"};
        for (unsigned t : thresholds)
            headers.push_back(csprintf("thr %u", t));
        Table table(headers);

        const auto &names = ctx.workloads();
        for (std::size_t w = 0; w < names.size(); ++w) {
            const auto *row = &results[w * configs.size()];
            table.row().cell(names[w]);
            for (std::size_t t = 0; t < thresholds.size(); ++t)
                table.cell(
                    overallSizeReductionPct(row[0], row[1 + t]));
        }
        ctx.emit(table);

        ctx.note("\n(paper at threshold 10/30/50: bt 36.5/85.4/89.9, "
                 "cg 7.0/89.7/89.8, ft 23.3/88.5/99.7, is 97.4/99.5/"
                 "99.5, lu 42.7/64.4/81.1, mg 11.6/88.0/90.2, sp "
                 "37.4/71.8/96.1; reductions must be monotone in the "
                 "threshold)\n");
    };
    return harness::benchMain(argc, argv, spec);
}
