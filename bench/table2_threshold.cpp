/**
 * @file
 * Table II: total checkpoint size reduction (%) as a function of the
 * Slice-length threshold, for thresholds {5, 10, 20, 30, 40, 50}
 * (threshold 5 included because the paper runs is at 5, footnote 4).
 * The paper's property: reductions are monotone in the threshold, cg
 * jumps sharply between 10 and 30, is is near-saturated already at 10.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    harness::Runner runner(kDefaultThreads);
    const std::vector<unsigned> thresholds = {5, 10, 20, 30, 40, 50};

    std::cout << "Table II: total checkpoint size reduction (%) vs "
                 "Slice length threshold\n\n";

    std::vector<std::string> headers = {"bench"};
    for (unsigned t : thresholds)
        headers.push_back(csprintf("thr %u", t));
    Table table(headers);

    for (const auto &name : workloads::allWorkloadNames()) {
        auto base_cfg = makeConfig(BerMode::kCkpt);
        auto baseline = runner.run(name, base_cfg);

        table.row().cell(name);
        for (unsigned threshold : thresholds) {
            auto cfg = makeConfig(BerMode::kReCkpt);
            cfg.sliceThreshold = threshold;
            auto result = runner.run(name, cfg);
            table.cell(overallSizeReductionPct(baseline, result));
        }
    }
    table.print(std::cout);

    std::cout << "\n(paper at threshold 10/30/50: bt 36.5/85.4/89.9, "
                 "cg 7.0/89.7/89.8, ft 23.3/88.5/99.7, is 97.4/99.5/"
                 "99.5, lu 42.7/64.4/81.1, mg 11.6/88.0/90.2, sp "
                 "37.4/71.8/96.1; reductions must be monotone in the "
                 "threshold)\n";
    return 0;
}
