/**
 * @file
 * Component microbenchmarks (google-benchmark): host-side throughput of
 * the hot simulator paths — cache lookups, DRAM queue accounting,
 * functional memory, the dynamic slicer, slice replay as a function of
 * slice length, undo-log appends — plus the simulated-energy
 * recompute-vs-restore crossover that underpins Equation 4.
 */

#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "cpu/core.hh"
#include "ckpt/log.hh"
#include "energy/energy_model.hh"
#include "harness/sweep.hh"
#include "isa/builder.hh"
#include "mem/main_memory.hh"
#include "slice/engine.hh"
#include "slice/instance.hh"

namespace
{

using namespace acr;

void
BM_CacheAccess(benchmark::State &state)
{
    cache::CacheConfig config;
    config.sizeBytes = 32 * 1024;
    config.ways = 8;
    cache::Cache cache(config);
    Rng rng(1);
    std::vector<LineId> lines(4096);
    for (auto &line : lines)
        line = rng.below(2048);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(lines[i++ & 4095], (i & 3) == 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_DramQueueAccounting(benchmark::State &state)
{
    mem::DramModel dram(mem::DramConfig{});
    Cycle now = 0;
    LineId line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dram.lineWrite(line++, now));
        now += 10;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramQueueAccounting);

void
BM_MainMemoryWrite(benchmark::State &state)
{
    mem::MainMemory memory;
    Rng rng(2);
    std::vector<Addr> addrs(4096);
    for (auto &addr : addrs)
        addr = rng.below(1 << 20);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(memory.write(addrs[i++ & 4095], i));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MainMemoryWrite);

void
BM_CoreExecution(benchmark::State &state)
{
    isa::ProgramBuilder b("spin");
    b.movi(1, 0);
    b.movi(2, 1 << 30);
    b.label("loop");
    b.addi(1, 1, 1);
    b.muli(3, 1, 17);
    b.xori(3, 3, 99);
    b.bltu(1, 2, "loop");
    b.halt();
    auto program = b.build();
    mem::MainMemory memory;
    cache::CacheSystem caches(1, cache::HierarchyConfig{},
                              mem::DramConfig{});
    cpu::Core core(0, program, memory, caches, cpu::CoreTimingConfig{});
    for (auto _ : state)
        core.run(1000, nullptr);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoreExecution);

void
BM_SlicerTracking(benchmark::State &state)
{
    // Throughput of producer-chain tracking (the per-instruction cost
    // the ReCkpt configurations pay).
    isa::Instruction inst{isa::Opcode::kAddi, 1, 1, 0, 1, false};
    slice::SliceEngine engine(1);
    cpu::InstrEvent event;
    event.core = 0;
    event.inst = &inst;
    for (auto _ : state) {
        event.result += 1;
        engine.observe(event);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlicerTracking);

void
BM_SliceReplay(benchmark::State &state)
{
    const auto length = static_cast<std::uint32_t>(state.range(0));
    slice::StaticSlice shape;
    shape.numInputs = 1;
    shape.code.push_back({isa::Opcode::kAddi, 1, slice::inputSrc(0),
                          slice::kNoSrc});
    for (std::uint32_t i = 1; i < length; ++i) {
        shape.code.push_back({isa::Opcode::kMuli, 3,
                              static_cast<std::int32_t>(i - 1),
                              slice::kNoSrc});
    }
    slice::SliceRepository repo;
    slice::SliceId id = repo.intern(std::move(shape));
    slice::OperandBufferAccounting buf(16);
    auto instance = slice::SliceInstance::create(id, {42}, buf);

    for (auto _ : state)
        benchmark::DoNotOptimize(instance->replay(repo, nullptr));
    state.SetItemsProcessed(state.iterations() * length);
}
BENCHMARK(BM_SliceReplay)->Arg(5)->Arg(10)->Arg(20)->Arg(50);

void
BM_UndoLogAppend(benchmark::State &state)
{
    Addr addr = 0;
    ckpt::IntervalLog log(1);
    for (auto _ : state) {
        log.append({addr++, 7, 0, nullptr});
        if ((addr & 0xffff) == 0) {
            state.PauseTiming();
            log = ckpt::IntervalLog(1);
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UndoLogAppend);

/**
 * Equation 4's energy side: simulated energy of recomputing one value
 * (slice replay + operand reads + write-back) vs restoring it from a
 * checkpoint log in memory (word read + word write), as a function of
 * slice length. The counter reports the recompute/restore ratio —
 * below 1.0 recomputation wins; the crossover sits far above the
 * paper's threshold of 10.
 */
void
BM_RecomputeVsRestoreCrossover(benchmark::State &state)
{
    const double length = static_cast<double>(state.range(0));
    energy::EnergyConfig config;
    const double recompute = length * config.aluOpPj +
                             2 * config.operandBufferPj +
                             kWordBytes * config.dramBytePj;
    const double restore = 2 * kWordBytes * config.dramBytePj;
    for (auto _ : state)
        benchmark::DoNotOptimize(recompute / restore);
    state.counters["recompute_over_restore"] = recompute / restore;
}
BENCHMARK(BM_RecomputeVsRestoreCrossover)
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Arg(93)
    ->Arg(120);

/**
 * End-to-end throughput of the Sweep fan-out as a function of the job
 * count (the argument): a fixed 8-point grid over a pre-warmed shared
 * Runner, so the measurement isolates experiment execution plus pool
 * overhead from one-time program/slice-pass construction. On a
 * multi-core host, items/s should scale with the argument until it
 * reaches the core count.
 */
void
BM_SweepFanout(benchmark::State &state)
{
    static harness::Runner runner(4);
    std::vector<harness::SweepPoint> points;
    for (const char *name : {"is", "cg"}) {
        for (auto mode : {harness::BerMode::kNoCkpt,
                          harness::BerMode::kCkpt,
                          harness::BerMode::kReCkpt,
                          harness::BerMode::kReCkpt}) {
            harness::ExperimentConfig config;
            config.mode = mode;
            config.numCheckpoints = 10;
            config.sliceThreshold = 0;
            points.push_back({name, config});
        }
    }
    harness::Sweep sweep(runner,
                         static_cast<unsigned>(state.range(0)));
    sweep.run(points);  // warm every cache outside the timing loop
    for (auto _ : state)
        benchmark::DoNotOptimize(sweep.run(points));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_SweepFanout)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
