/**
 * @file
 * Torture: multi-error fault-injection campaigns with the recovery
 * oracle attached. Sweeps (workload × mode × coordination × detection
 * latency × seed) under the standard sweep machinery; every recovery
 * is differentially validated against a fault-free golden replay, and
 * a campaign that surfaces a divergence is shrunk — by bisection over
 * the FaultPlan's event set — to a minimal failing plan, printed as a
 * one-line repro command.
 *
 * Joint compute × storage campaigns (DESIGN.md §16): --storage-errors
 * additionally injects seeded faults into the checkpoint medium, so
 * every rollback runs against possibly-rotten stored bytes and the
 * escalation ladder (replica switch → older-checkpoint retarget →
 * structured unrecoverable) is exercised under the oracle. A failing
 * campaign shrinks the compute event mask first, then the storage
 * mask with the compute events fixed.
 *
 * Exit codes: 0 clean, 3 quarantined points (sweep layer), 4 oracle
 * divergence, 5 unrecoverable point (the torture verdicts; max wins).
 *
 * Every campaign knob is a flag with a matching environment variable
 * (flag wins), both validated by the same strict parser:
 *
 *   --errors=N          ACR_TORTURE_ERRORS        planned errors (1..64)
 *   --checkpoints=N     ACR_TORTURE_CHECKPOINTS   checkpoints per run
 *   --seeds=N           ACR_TORTURE_SEEDS         seeds per grid point
 *   --campaign-seed=S   ACR_CAMPAIGN_SEED         base seed (point i
 *                                                 runs S + i)
 *   --oracle=on|off     ACR_ORACLE                recovery validation
 *   --event-mask=M      ACR_EVENT_MASK            FaultPlan bit mask
 *                                                 (keep event i iff bit
 *                                                 i % 64; shrinker sets
 *                                                 this in repro lines)
 *   --storage-errors=N  ACR_STORAGE_FAULT         storage faults against
 *                                                 the checkpoint medium
 *                                                 (0..64; 0 = reliable)
 *   --storage-mask=M    ACR_STORAGE_MASK          StorageFaultPlan bit
 *                                                 mask, same convention
 *                                                 as --event-mask
 *   --modes=a,b                                   ckpt,reckpt subset
 *   --coords=a,b                                  global,local subset
 *   --backends=a,b                                log,replicated,nvm
 *                                                 subset
 *   --lats=x,y                                    detection-latency
 *                                                 fractions
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "bench_util.hh"
#include "harness/exit_code.hh"

namespace
{

using namespace acr;
using namespace acr::bench;
using harness::BerMode;
using harness::ExperimentConfig;
using harness::ExperimentResult;

/** The campaign the flags/environment selected (readOptions fills it;
 *  grid and render both consult it, so reruns agree byte-for-byte). */
struct Campaign
{
    unsigned errors = 8;
    unsigned checkpoints = 5;
    unsigned seeds = 3;
    std::uint64_t campaignSeed = 0xacce55ULL;
    bool oracle = true;
    std::uint64_t eventMask = ~std::uint64_t{0};
    unsigned storageErrors = 0;
    std::uint64_t storageMask = ~std::uint64_t{0};
    std::vector<BerMode> modes = {BerMode::kCkpt, BerMode::kReCkpt};
    std::vector<ckpt::Coordination> coords = {
        ckpt::Coordination::kGlobal, ckpt::Coordination::kLocal};
    std::vector<ckpt::Backend> backends = {ckpt::Backend::kLog};
    std::vector<double> lats = {0.4, 0.5};
};

Campaign campaign;

const char *
modeName(BerMode mode)
{
    return mode == BerMode::kCkpt ? "ckpt" : "reckpt";
}

const char *
coordName(ckpt::Coordination coordination)
{
    return coordination == ckpt::Coordination::kGlobal ? "global"
                                                       : "local";
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> parts;
    std::string part;
    for (char c : text) {
        if (c == ',') {
            if (!part.empty())
                parts.push_back(part);
            part.clear();
        } else {
            part += c;
        }
    }
    if (!part.empty())
        parts.push_back(part);
    return parts;
}

void
declareOptions(OptionParser &parser)
{
    parser.addUint("errors", 8, "planned errors per run (1..64)");
    parser.addUint("checkpoints", 5, "checkpoints per run");
    parser.addUint("seeds", 3, "seeds per (workload, config) point");
    parser.addUint("campaign-seed", 0xacce55ULL,
                   "base FaultPlan seed; seed index i runs base + i");
    parser.addString("oracle", "on",
                     "differential recovery validation: on or off");
    parser.addUint("event-mask", ~std::uint64_t{0},
                   "FaultPlan event mask: keep planned error i iff bit "
                   "(i % 64) is set (repro lines from the shrinker "
                   "set this)");
    parser.addUint("storage-errors", 0,
                   "storage faults injected into the checkpoint "
                   "medium per run (0..64; 0: reliable medium)");
    parser.addUint("storage-mask", ~std::uint64_t{0},
                   "StorageFaultPlan event mask, same keep-bit "
                   "convention as --event-mask");
    parser.addString("modes", "ckpt,reckpt",
                     "comma-separated subset of ckpt,reckpt");
    parser.addString("coords", "global,local",
                     "comma-separated subset of global,local");
    parser.addString("backends", "log",
                     "comma-separated subset of log,replicated,nvm");
    parser.addString("lats", "0.4,0.5",
                     "comma-separated detection-latency fractions "
                     "(each in [0, 1])");

    // One validation path for both spellings: the environment value is
    // assigned through the identical strict parse as --flag=value, and
    // an explicit flag overrides it.
    parser.envDefault("errors", "ACR_TORTURE_ERRORS");
    parser.envDefault("checkpoints", "ACR_TORTURE_CHECKPOINTS");
    parser.envDefault("seeds", "ACR_TORTURE_SEEDS");
    parser.envDefault("campaign-seed", "ACR_CAMPAIGN_SEED");
    parser.envDefault("oracle", "ACR_ORACLE");
    parser.envDefault("event-mask", "ACR_EVENT_MASK");
    parser.envDefault("storage-errors", "ACR_STORAGE_FAULT");
    parser.envDefault("storage-mask", "ACR_STORAGE_MASK");
}

void
readOptions(const OptionParser &parser)
{
    const unsigned long long errors = parser.getUint("errors");
    if (errors < 1 || errors > 64)
        fatal("--errors must be in 1..64 (the event mask is 64 bits), "
              "got %llu",
              errors);
    campaign.errors = static_cast<unsigned>(errors);

    const unsigned long long checkpoints = parser.getUint("checkpoints");
    if (checkpoints < 1)
        fatal("--checkpoints must be >= 1");
    campaign.checkpoints = static_cast<unsigned>(checkpoints);

    const unsigned long long seeds = parser.getUint("seeds");
    if (seeds < 1)
        fatal("--seeds must be >= 1");
    campaign.seeds = static_cast<unsigned>(seeds);

    campaign.campaignSeed = parser.getUint("campaign-seed");
    campaign.eventMask = parser.getUint("event-mask");
    if (campaign.eventMask == 0)
        fatal("--event-mask=0 would drop every planned error; use "
              "--errors with a smaller count instead");

    const unsigned long long storage_errors =
        parser.getUint("storage-errors");
    if (storage_errors > 64)
        fatal("--storage-errors must be in 0..64 (the storage mask is "
              "64 bits), got %llu",
              storage_errors);
    campaign.storageErrors = static_cast<unsigned>(storage_errors);
    campaign.storageMask = parser.getUint("storage-mask");
    if (campaign.storageMask == 0 && campaign.storageErrors > 0)
        fatal("--storage-mask=0 would drop every planned storage "
              "fault; use --storage-errors=0 instead");

    const std::string oracle = parser.getString("oracle");
    if (oracle == "on")
        campaign.oracle = true;
    else if (oracle == "off")
        campaign.oracle = false;
    else
        fatal("--oracle expects on or off, got '%s'", oracle.c_str());

    campaign.modes.clear();
    for (const auto &name : splitList(parser.getString("modes"))) {
        if (name == "ckpt")
            campaign.modes.push_back(BerMode::kCkpt);
        else if (name == "reckpt")
            campaign.modes.push_back(BerMode::kReCkpt);
        else
            fatal("--modes expects ckpt/reckpt entries, got '%s'",
                  name.c_str());
    }
    if (campaign.modes.empty())
        fatal("--modes selected nothing");

    campaign.coords.clear();
    for (const auto &name : splitList(parser.getString("coords"))) {
        if (name == "global")
            campaign.coords.push_back(ckpt::Coordination::kGlobal);
        else if (name == "local")
            campaign.coords.push_back(ckpt::Coordination::kLocal);
        else
            fatal("--coords expects global/local entries, got '%s'",
                  name.c_str());
    }
    if (campaign.coords.empty())
        fatal("--coords selected nothing");

    campaign.backends.clear();
    for (const auto &name : splitList(parser.getString("backends"))) {
        ckpt::Backend backend;
        if (!ckpt::parseBackend(name, backend))
            fatal("--backends expects log/replicated/nvm entries, got "
                  "'%s'",
                  name.c_str());
        campaign.backends.push_back(backend);
    }
    if (campaign.backends.empty())
        fatal("--backends selected nothing");

    campaign.lats.clear();
    for (const auto &text : splitList(parser.getString("lats"))) {
        double lat = 0.0;
        if (!parseStrictDouble(text, lat) || lat < 0.0 || lat > 1.0)
            fatal("--lats entries must be numbers in [0, 1], got '%s'",
                  text.c_str());
        campaign.lats.push_back(lat);
    }
    if (campaign.lats.empty())
        fatal("--lats selected nothing");
}

/** Enumerate the campaign grid: workload-major, then mode × coord ×
 *  backend × latency × seed — the order render() re-derives to label
 *  rows. */
std::vector<harness::GridPoint>
buildGrid(const std::vector<std::string> &names)
{
    std::vector<harness::GridPoint> points;
    for (const auto &name : names) {
        for (BerMode mode : campaign.modes) {
            for (ckpt::Coordination coordination : campaign.coords) {
                for (ckpt::Backend backend : campaign.backends) {
                    for (double lat : campaign.lats) {
                        for (unsigned s = 0; s < campaign.seeds; ++s) {
                            ExperimentConfig config = makeConfig(
                                mode, campaign.errors, coordination,
                                campaign.checkpoints);
                            config.backend = backend;
                            config.detectionLatencyFraction = lat;
                            config.seed = campaign.campaignSeed + s;
                            config.oracle = campaign.oracle;
                            config.faultEventMask = campaign.eventMask;
                            config.storageErrors =
                                campaign.storageErrors;
                            config.storageFaultMask =
                                campaign.storageMask;
                            points.push_back(
                                {name, config, kDefaultThreads});
                        }
                    }
                }
            }
        }
    }
    return points;
}

/** The planned-error indices an event mask keeps. */
std::vector<unsigned>
maskEvents(std::uint64_t mask, unsigned errors)
{
    std::vector<unsigned> events;
    for (unsigned i = 0; i < errors; ++i)
        if ((mask >> (i % 64)) & 1)
            events.push_back(i);
    return events;
}

std::uint64_t
eventsToMask(const std::vector<unsigned> &events)
{
    std::uint64_t mask = 0;
    for (unsigned i : events)
        mask |= std::uint64_t{1} << (i % 64);
    return mask;
}

/**
 * Shrink one event set to a minimal subset that keeps @p fails true:
 * first bisect (keep whichever half still reproduces), then greedily
 * drop single events until every remaining one is load-bearing.
 */
std::vector<unsigned>
shrinkEvents(std::vector<unsigned> events,
             const std::function<bool(std::uint64_t)> &fails)
{
    // Bisection: halve while a half alone still reproduces.
    while (events.size() > 1) {
        const std::size_t half = events.size() / 2;
        std::vector<unsigned> lo(events.begin(), events.begin() + half);
        std::vector<unsigned> hi(events.begin() + half, events.end());
        if (fails(eventsToMask(lo)))
            events = std::move(lo);
        else if (fails(eventsToMask(hi)))
            events = std::move(hi);
        else
            break;  // the halves only fail together
    }

    // Greedy refinement: drop any single event that is not needed.
    bool changed = true;
    while (changed && events.size() > 1) {
        changed = false;
        for (std::size_t i = 0; i < events.size(); ++i) {
            std::vector<unsigned> candidate = events;
            candidate.erase(candidate.begin() + i);
            if (fails(eventsToMask(candidate))) {
                events = std::move(candidate);
                changed = true;
                break;
            }
        }
    }
    return events;
}

/** A shrunk repro: minimal compute event mask, and — for joint
 *  campaigns — minimal storage mask with the compute events fixed. */
struct ShrunkMasks
{
    std::uint64_t eventMask = ~std::uint64_t{0};
    std::uint64_t storageMask = ~std::uint64_t{0};
};

/**
 * Shrink a failing campaign to a minimal failing plan. `failure_class`
 * decides what counts as reproducing: an unrecoverable point must
 * shrink to a still-unrecoverable plan, a diverging one to a
 * still-diverging plan (the classes escalate differently, so mixing
 * them would "shrink" one bug into a different one). The compute
 * event mask shrinks first; the storage mask then shrinks with the
 * surviving compute events held fixed. Runs serially on the context's
 * runner — the repro should come from the same deterministic engine
 * the sweep used.
 */
ShrunkMasks
shrinkFailure(harness::Runner &runner, const std::string &workload,
              const ExperimentConfig &config, bool want_unrecoverable,
              std::ostream &err)
{
    auto fails_with = [&](const ExperimentConfig &candidate) {
        const ExperimentResult result = runner.run(workload, candidate);
        return want_unrecoverable ? result.unrecoverable
                                  : result.oracleDivergences > 0;
    };

    ShrunkMasks masks;
    std::vector<unsigned> events = shrinkEvents(
        maskEvents(config.faultEventMask, config.numErrors),
        [&](std::uint64_t mask) {
            ExperimentConfig candidate = config;
            candidate.faultEventMask = mask;
            return fails_with(candidate);
        });
    masks.eventMask = eventsToMask(events);

    err << "[torture] shrunk to " << events.size() << " of "
        << config.numErrors << " planned event(s):";
    for (unsigned i : events)
        err << " #" << i;
    err << "\n";

    if (config.storageErrors > 0) {
        std::vector<unsigned> storage = shrinkEvents(
            maskEvents(config.storageFaultMask, config.storageErrors),
            [&](std::uint64_t mask) {
                ExperimentConfig candidate = config;
                candidate.faultEventMask = masks.eventMask;
                candidate.storageFaultMask = mask;
                return fails_with(candidate);
            });
        masks.storageMask = eventsToMask(storage);
        err << "[torture] shrunk to " << storage.size() << " of "
            << config.storageErrors << " storage fault(s):";
        for (unsigned i : storage)
            err << " #" << i;
        err << "\n";
    }
    return masks;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSpec spec;
    spec.name = "torture";
    spec.defaultWorkloads = {"is"};
    spec.options = declareOptions;
    spec.readOptions = readOptions;
    spec.grid = [](harness::BenchContext &ctx) {
        return buildGrid(ctx.workloads());
    };
    spec.render = [](harness::BenchContext &ctx,
                     const std::vector<ExperimentResult> &results) {
        ctx.note(csprintf("Torture: %u error(s), %u checkpoint(s), "
                          "%u seed(s) from base %llu, oracle %s\n\n",
                          campaign.errors, campaign.checkpoints,
                          campaign.seeds,
                          static_cast<unsigned long long>(
                              campaign.campaignSeed),
                          campaign.oracle ? "on" : "off"));
        if (campaign.storageErrors > 0)
            ctx.note(csprintf("Storage faults: %u per run against the "
                              "checkpoint medium\n\n",
                              campaign.storageErrors));

        const auto grid = buildGrid(ctx.workloads());
        Table table({"bench", "config", "lat", "seed", "cycles",
                     "ckpts", "recov", "inj", "det", "drop", "requeue",
                     "recompW", "diverge"});
        std::uint64_t total_divergences = 0;
        std::uint64_t corrupt_reads = 0, replica_switches = 0;
        std::uint64_t retargets = 0, unrecoverable_points = 0;
        std::vector<std::size_t> failing;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &point = grid[i];
            const auto &result = results[i];
            auto stat = [&](const char *name) {
                return static_cast<long long>(result.stats.get(name));
            };
            // The config cell stays byte-identical for default
            // (log-backend) campaigns; joint backend sweeps tag it.
            std::string config_cell =
                csprintf("%s,%s", modeName(point.config.mode),
                         coordName(point.config.coordination));
            if (point.config.backend != ckpt::Backend::kLog)
                config_cell += std::string("@") +
                               ckpt::backendName(point.config.backend);
            Table &row =
                table.row()
                    .cell(point.workload)
                    .cell(config_cell)
                    .cell(point.config.detectionLatencyFraction)
                    .cell(static_cast<long long>(point.config.seed))
                    .cell(static_cast<long long>(result.cycles))
                    .cell(static_cast<long long>(
                        result.checkpointsEstablished))
                    .cell(static_cast<long long>(result.recoveries))
                    .cell(stat("fault.injected"))
                    .cell(stat("fault.detected"))
                    .cell(stat("fault.dropped"))
                    .cell(stat("fault.requeued"))
                    .cell(stat("rec.recomputedWords"));
            if (result.unrecoverable)
                row.cell("UNREC");
            else
                row.cell(
                    static_cast<long long>(result.oracleDivergences));
            if (result.failed)
                continue;
            corrupt_reads += stat("ckpt.corruptReads");
            replica_switches += stat("rec.replicaSwitches");
            retargets += stat("rec.retargets");
            if (result.unrecoverable)
                ++unrecoverable_points;
            if (result.oracleDivergences > 0 || result.unrecoverable) {
                total_divergences += result.oracleDivergences;
                failing.push_back(i);
            }
        }
        ctx.emit(table);

        if (campaign.storageErrors > 0)
            std::cerr << csprintf(
                "[torture] storage: %llu corrupt read(s), %llu "
                "replica switch(es), %llu older-checkpoint "
                "retarget(s), %llu unrecoverable campaign(s)\n",
                static_cast<unsigned long long>(corrupt_reads),
                static_cast<unsigned long long>(replica_switches),
                static_cast<unsigned long long>(retargets),
                static_cast<unsigned long long>(unrecoverable_points));

        if (failing.empty()) {
            ctx.note(csprintf("\nall %zu campaign(s) recovered "
                              "bit-exactly (0 divergences)\n",
                              results.size()));
            return;
        }

        // Failure post-mortem goes to stderr: the structured reports,
        // then a minimal shrunk repro per failing point.
        std::cerr << "[torture] " << total_divergences
                  << " divergence(s) across " << failing.size()
                  << " campaign(s)\n";
        for (std::size_t i : failing) {
            const auto &point = grid[i];
            const bool unrec = results[i].unrecoverable;
            if (unrec)
                std::cerr << "[torture] UNRECOVERABLE: "
                          << results[i].unrecoverableDetail << "\n";
            if (!results[i].oracleReport.empty())
                std::cerr << results[i].oracleReport << "\n";
            const ShrunkMasks masks = shrinkFailure(
                ctx.runner(point.threads), point.workload,
                point.config, unrec, std::cerr);
            std::string repro = csprintf(
                "[torture] repro: torture --workloads=%s --modes=%s "
                "--coords=%s --backends=%s --lats=%g --errors=%u "
                "--checkpoints=%u --campaign-seed=%llu --seeds=1 "
                "--oracle=%s --event-mask=%llu",
                point.workload.c_str(), modeName(point.config.mode),
                coordName(point.config.coordination),
                ckpt::backendName(point.config.backend),
                point.config.detectionLatencyFraction,
                point.config.numErrors, point.config.numCheckpoints,
                static_cast<unsigned long long>(point.config.seed),
                campaign.oracle ? "on" : "off",
                static_cast<unsigned long long>(masks.eventMask));
            if (point.config.storageErrors > 0)
                repro += csprintf(
                    " --storage-errors=%u --storage-mask=%llu",
                    point.config.storageErrors,
                    static_cast<unsigned long long>(
                        masks.storageMask));
            std::cerr << repro << " --jobs=1\n";
        }
    };
    spec.exitCode = [](harness::BenchContext &,
                       const std::vector<ExperimentResult> &results) {
        int code = harness::kExitClean;
        for (const auto &result : results) {
            if (result.failed)
                continue;
            if (result.oracleDivergences > 0)
                code = harness::combineExitCodes(
                    code, harness::kExitDivergence);
            if (result.unrecoverable)
                code = harness::combineExitCodes(
                    code, harness::kExitUnrecoverable);
        }
        return code;
    };
    return harness::benchMain(argc, argv, spec);
}
