/**
 * @file
 * Torture: multi-error fault-injection campaigns with the recovery
 * oracle attached. Sweeps (workload × mode × coordination × detection
 * latency × seed) under the standard sweep machinery; every recovery
 * is differentially validated against a fault-free golden replay, and
 * a campaign that surfaces a divergence is shrunk — by bisection over
 * the FaultPlan's event set — to a minimal failing plan, printed as a
 * one-line repro command.
 *
 * Exit codes: 0 clean, 3 quarantined points (sweep layer), 4 oracle
 * divergence (the torture verdict; max of the two wins).
 *
 * Every campaign knob is a flag with a matching environment variable
 * (flag wins), both validated by the same strict parser:
 *
 *   --errors=N          ACR_TORTURE_ERRORS        planned errors (1..64)
 *   --checkpoints=N     ACR_TORTURE_CHECKPOINTS   checkpoints per run
 *   --seeds=N           ACR_TORTURE_SEEDS         seeds per grid point
 *   --campaign-seed=S   ACR_CAMPAIGN_SEED         base seed (point i
 *                                                 runs S + i)
 *   --oracle=on|off     ACR_ORACLE                recovery validation
 *   --event-mask=M      ACR_EVENT_MASK            FaultPlan bit mask
 *                                                 (keep event i iff bit
 *                                                 i % 64; shrinker sets
 *                                                 this in repro lines)
 *   --modes=a,b                                   ckpt,reckpt subset
 *   --coords=a,b                                  global,local subset
 *   --lats=x,y                                    detection-latency
 *                                                 fractions
 */

#include <cstdint>
#include <vector>

#include "bench_util.hh"
#include "harness/exit_code.hh"

namespace
{

using namespace acr;
using namespace acr::bench;
using harness::BerMode;
using harness::ExperimentConfig;
using harness::ExperimentResult;

/** The campaign the flags/environment selected (readOptions fills it;
 *  grid and render both consult it, so reruns agree byte-for-byte). */
struct Campaign
{
    unsigned errors = 8;
    unsigned checkpoints = 5;
    unsigned seeds = 3;
    std::uint64_t campaignSeed = 0xacce55ULL;
    bool oracle = true;
    std::uint64_t eventMask = ~std::uint64_t{0};
    std::vector<BerMode> modes = {BerMode::kCkpt, BerMode::kReCkpt};
    std::vector<ckpt::Coordination> coords = {
        ckpt::Coordination::kGlobal, ckpt::Coordination::kLocal};
    std::vector<double> lats = {0.4, 0.5};
};

Campaign campaign;

const char *
modeName(BerMode mode)
{
    return mode == BerMode::kCkpt ? "ckpt" : "reckpt";
}

const char *
coordName(ckpt::Coordination coordination)
{
    return coordination == ckpt::Coordination::kGlobal ? "global"
                                                       : "local";
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> parts;
    std::string part;
    for (char c : text) {
        if (c == ',') {
            if (!part.empty())
                parts.push_back(part);
            part.clear();
        } else {
            part += c;
        }
    }
    if (!part.empty())
        parts.push_back(part);
    return parts;
}

void
declareOptions(OptionParser &parser)
{
    parser.addUint("errors", 8, "planned errors per run (1..64)");
    parser.addUint("checkpoints", 5, "checkpoints per run");
    parser.addUint("seeds", 3, "seeds per (workload, config) point");
    parser.addUint("campaign-seed", 0xacce55ULL,
                   "base FaultPlan seed; seed index i runs base + i");
    parser.addString("oracle", "on",
                     "differential recovery validation: on or off");
    parser.addUint("event-mask", ~std::uint64_t{0},
                   "FaultPlan event mask: keep planned error i iff bit "
                   "(i % 64) is set (repro lines from the shrinker "
                   "set this)");
    parser.addString("modes", "ckpt,reckpt",
                     "comma-separated subset of ckpt,reckpt");
    parser.addString("coords", "global,local",
                     "comma-separated subset of global,local");
    parser.addString("lats", "0.4,0.5",
                     "comma-separated detection-latency fractions "
                     "(each in [0, 1])");

    // One validation path for both spellings: the environment value is
    // assigned through the identical strict parse as --flag=value, and
    // an explicit flag overrides it.
    parser.envDefault("errors", "ACR_TORTURE_ERRORS");
    parser.envDefault("checkpoints", "ACR_TORTURE_CHECKPOINTS");
    parser.envDefault("seeds", "ACR_TORTURE_SEEDS");
    parser.envDefault("campaign-seed", "ACR_CAMPAIGN_SEED");
    parser.envDefault("oracle", "ACR_ORACLE");
    parser.envDefault("event-mask", "ACR_EVENT_MASK");
}

void
readOptions(const OptionParser &parser)
{
    const unsigned long long errors = parser.getUint("errors");
    if (errors < 1 || errors > 64)
        fatal("--errors must be in 1..64 (the event mask is 64 bits), "
              "got %llu",
              errors);
    campaign.errors = static_cast<unsigned>(errors);

    const unsigned long long checkpoints = parser.getUint("checkpoints");
    if (checkpoints < 1)
        fatal("--checkpoints must be >= 1");
    campaign.checkpoints = static_cast<unsigned>(checkpoints);

    const unsigned long long seeds = parser.getUint("seeds");
    if (seeds < 1)
        fatal("--seeds must be >= 1");
    campaign.seeds = static_cast<unsigned>(seeds);

    campaign.campaignSeed = parser.getUint("campaign-seed");
    campaign.eventMask = parser.getUint("event-mask");
    if (campaign.eventMask == 0)
        fatal("--event-mask=0 would drop every planned error; use "
              "--errors with a smaller count instead");

    const std::string oracle = parser.getString("oracle");
    if (oracle == "on")
        campaign.oracle = true;
    else if (oracle == "off")
        campaign.oracle = false;
    else
        fatal("--oracle expects on or off, got '%s'", oracle.c_str());

    campaign.modes.clear();
    for (const auto &name : splitList(parser.getString("modes"))) {
        if (name == "ckpt")
            campaign.modes.push_back(BerMode::kCkpt);
        else if (name == "reckpt")
            campaign.modes.push_back(BerMode::kReCkpt);
        else
            fatal("--modes expects ckpt/reckpt entries, got '%s'",
                  name.c_str());
    }
    if (campaign.modes.empty())
        fatal("--modes selected nothing");

    campaign.coords.clear();
    for (const auto &name : splitList(parser.getString("coords"))) {
        if (name == "global")
            campaign.coords.push_back(ckpt::Coordination::kGlobal);
        else if (name == "local")
            campaign.coords.push_back(ckpt::Coordination::kLocal);
        else
            fatal("--coords expects global/local entries, got '%s'",
                  name.c_str());
    }
    if (campaign.coords.empty())
        fatal("--coords selected nothing");

    campaign.lats.clear();
    for (const auto &text : splitList(parser.getString("lats"))) {
        double lat = 0.0;
        if (!parseStrictDouble(text, lat) || lat < 0.0 || lat > 1.0)
            fatal("--lats entries must be numbers in [0, 1], got '%s'",
                  text.c_str());
        campaign.lats.push_back(lat);
    }
    if (campaign.lats.empty())
        fatal("--lats selected nothing");
}

/** Enumerate the campaign grid: workload-major, then mode × coord ×
 *  latency × seed — the order render() re-derives to label rows. */
std::vector<harness::GridPoint>
buildGrid(const std::vector<std::string> &names)
{
    std::vector<harness::GridPoint> points;
    for (const auto &name : names) {
        for (BerMode mode : campaign.modes) {
            for (ckpt::Coordination coordination : campaign.coords) {
                for (double lat : campaign.lats) {
                    for (unsigned s = 0; s < campaign.seeds; ++s) {
                        ExperimentConfig config = makeConfig(
                            mode, campaign.errors, coordination,
                            campaign.checkpoints);
                        config.detectionLatencyFraction = lat;
                        config.seed = campaign.campaignSeed + s;
                        config.oracle = campaign.oracle;
                        config.faultEventMask = campaign.eventMask;
                        points.push_back(
                            {name, config, kDefaultThreads});
                    }
                }
            }
        }
    }
    return points;
}

/** The planned-error indices an event mask keeps. */
std::vector<unsigned>
maskEvents(std::uint64_t mask, unsigned errors)
{
    std::vector<unsigned> events;
    for (unsigned i = 0; i < errors; ++i)
        if ((mask >> (i % 64)) & 1)
            events.push_back(i);
    return events;
}

std::uint64_t
eventsToMask(const std::vector<unsigned> &events)
{
    std::uint64_t mask = 0;
    for (unsigned i : events)
        mask |= std::uint64_t{1} << (i % 64);
    return mask;
}

/**
 * Shrink a diverging campaign to a minimal failing event set: first
 * bisect (keep whichever half still diverges), then greedily drop
 * single events until every remaining event is load-bearing. Runs
 * serially on the context's runner — the repro should come from the
 * same deterministic cache the sweep used.
 */
std::uint64_t
shrinkFailure(harness::Runner &runner, const std::string &workload,
              const ExperimentConfig &config, std::ostream &err)
{
    auto diverges = [&](std::uint64_t mask) {
        ExperimentConfig candidate = config;
        candidate.faultEventMask = mask;
        return runner.run(workload, candidate).oracleDivergences > 0;
    };

    std::vector<unsigned> events =
        maskEvents(config.faultEventMask, config.numErrors);

    // Bisection: halve while a half alone still reproduces.
    while (events.size() > 1) {
        const std::size_t half = events.size() / 2;
        std::vector<unsigned> lo(events.begin(), events.begin() + half);
        std::vector<unsigned> hi(events.begin() + half, events.end());
        if (diverges(eventsToMask(lo)))
            events = std::move(lo);
        else if (diverges(eventsToMask(hi)))
            events = std::move(hi);
        else
            break;  // the halves only fail together
    }

    // Greedy refinement: drop any single event that is not needed.
    bool changed = true;
    while (changed && events.size() > 1) {
        changed = false;
        for (std::size_t i = 0; i < events.size(); ++i) {
            std::vector<unsigned> candidate = events;
            candidate.erase(candidate.begin() + i);
            if (diverges(eventsToMask(candidate))) {
                events = std::move(candidate);
                changed = true;
                break;
            }
        }
    }

    err << "[torture] shrunk to " << events.size() << " of "
        << config.numErrors << " planned event(s):";
    for (unsigned i : events)
        err << " #" << i;
    err << "\n";
    return eventsToMask(events);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSpec spec;
    spec.name = "torture";
    spec.defaultWorkloads = {"is"};
    spec.options = declareOptions;
    spec.readOptions = readOptions;
    spec.grid = [](harness::BenchContext &ctx) {
        return buildGrid(ctx.workloads());
    };
    spec.render = [](harness::BenchContext &ctx,
                     const std::vector<ExperimentResult> &results) {
        ctx.note(csprintf("Torture: %u error(s), %u checkpoint(s), "
                          "%u seed(s) from base %llu, oracle %s\n\n",
                          campaign.errors, campaign.checkpoints,
                          campaign.seeds,
                          static_cast<unsigned long long>(
                              campaign.campaignSeed),
                          campaign.oracle ? "on" : "off"));

        const auto grid = buildGrid(ctx.workloads());
        Table table({"bench", "config", "lat", "seed", "cycles",
                     "ckpts", "recov", "inj", "det", "drop", "requeue",
                     "recompW", "diverge"});
        std::uint64_t total_divergences = 0;
        std::vector<std::size_t> failing;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &point = grid[i];
            const auto &result = results[i];
            auto stat = [&](const char *name) {
                return static_cast<long long>(result.stats.get(name));
            };
            table.row()
                .cell(point.workload)
                .cell(csprintf("%s,%s", modeName(point.config.mode),
                               coordName(point.config.coordination)))
                .cell(point.config.detectionLatencyFraction)
                .cell(static_cast<long long>(point.config.seed))
                .cell(static_cast<long long>(result.cycles))
                .cell(static_cast<long long>(
                    result.checkpointsEstablished))
                .cell(static_cast<long long>(result.recoveries))
                .cell(stat("fault.injected"))
                .cell(stat("fault.detected"))
                .cell(stat("fault.dropped"))
                .cell(stat("fault.requeued"))
                .cell(stat("rec.recomputedWords"))
                .cell(static_cast<long long>(result.oracleDivergences));
            if (!result.failed && result.oracleDivergences > 0) {
                total_divergences += result.oracleDivergences;
                failing.push_back(i);
            }
        }
        ctx.emit(table);

        if (total_divergences == 0) {
            ctx.note(csprintf("\nall %zu campaign(s) recovered "
                              "bit-exactly (0 divergences)\n",
                              results.size()));
            return;
        }

        // Divergence post-mortem goes to stderr: the structured
        // reports, then a minimal shrunk repro per failing point.
        std::cerr << "[torture] " << total_divergences
                  << " divergence(s) across " << failing.size()
                  << " campaign(s)\n";
        for (std::size_t i : failing) {
            const auto &point = grid[i];
            std::cerr << results[i].oracleReport << "\n";
            const std::uint64_t mask = shrinkFailure(
                ctx.runner(point.threads), point.workload,
                point.config, std::cerr);
            std::cerr << csprintf(
                "[torture] repro: torture --workloads=%s --modes=%s "
                "--coords=%s --lats=%g --errors=%u --checkpoints=%u "
                "--campaign-seed=%llu --seeds=1 --oracle=on "
                "--event-mask=%llu --jobs=1\n",
                point.workload.c_str(), modeName(point.config.mode),
                coordName(point.config.coordination),
                point.config.detectionLatencyFraction,
                point.config.numErrors, point.config.numCheckpoints,
                static_cast<unsigned long long>(point.config.seed),
                static_cast<unsigned long long>(mask));
        }
    };
    spec.exitCode = [](harness::BenchContext &,
                       const std::vector<ExperimentResult> &results) {
        int code = harness::kExitClean;
        for (const auto &result : results)
            if (!result.failed && result.oracleDivergences > 0)
                code = harness::combineExitCodes(
                    code, harness::kExitDivergence);
        return code;
    };
    return harness::benchMain(argc, argv, spec);
}
