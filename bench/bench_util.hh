/**
 * @file
 * Shared plumbing for the per-figure/per-table bench binaries: standard
 * configurations, reduction/overhead arithmetic, and checkpoint-size
 * metrics (Fig. 9's Overall and Max).
 */

#ifndef ACR_BENCH_BENCH_UTIL_HH
#define ACR_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "harness/bench_main.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "workloads/workload.hh"

namespace acr::bench
{

/** The paper's default evaluation point (Sec. IV). */
inline constexpr unsigned kDefaultCheckpoints = 25;
inline constexpr unsigned kDefaultThreads = 8;

/**
 * One sweep point per (workload × config), workload-major: the result
 * for workload w, config c lands at index w * configs.size() + c —
 * the same order the serial benches used to visit the grid.
 */
inline std::vector<harness::SweepPoint>
crossWorkloads(const std::vector<harness::ExperimentConfig> &configs)
{
    std::vector<harness::SweepPoint> points;
    points.reserve(workloads::allWorkloadNames().size() * configs.size());
    for (const auto &name : workloads::allWorkloadNames())
        for (const auto &config : configs)
            points.push_back({name, config});
    return points;
}

/**
 * The BenchMain grid equivalent of crossWorkloads: (workload × config),
 * workload-major over the context's selected workloads, every point on
 * a @p threads-core simulated machine.
 */
inline std::vector<harness::GridPoint>
crossGrid(const std::vector<std::string> &names,
          const std::vector<harness::ExperimentConfig> &configs,
          unsigned threads = kDefaultThreads)
{
    std::vector<harness::GridPoint> points;
    points.reserve(names.size() * configs.size());
    for (const auto &name : names)
        for (const auto &config : configs)
            points.push_back({name, config, threads});
    return points;
}

inline harness::ExperimentConfig
makeConfig(harness::BerMode mode, unsigned errors = 0,
           ckpt::Coordination coordination = ckpt::Coordination::kGlobal,
           unsigned checkpoints = kDefaultCheckpoints)
{
    harness::ExperimentConfig config;
    config.mode = mode;
    config.numErrors = errors;
    config.coordination = coordination;
    config.numCheckpoints = checkpoints;
    config.sliceThreshold = 0;  // per-workload default (is: 5, else 10)
    return config;
}

/** 100 * (baseline - improved) / baseline. */
inline double
reductionPct(double baseline, double improved)
{
    return baseline == 0.0 ? 0.0
                           : 100.0 * (baseline - improved) / baseline;
}

/** Total checkpointed bytes a run stored, and what ACR omitted. */
inline double
overallSizeReductionPct(const harness::ExperimentResult &baseline,
                        const harness::ExperimentResult &acr)
{
    return reductionPct(static_cast<double>(baseline.ckptBytesStored),
                        static_cast<double>(acr.ckptBytesStored));
}

/** Largest single checkpoint in a run, in bytes (Fig. 9's Max basis:
 *  two-checkpoint retention makes the largest checkpoint the memory
 *  footprint proxy). */
inline std::uint64_t
maxCheckpointBytes(const harness::ExperimentResult &result)
{
    std::uint64_t max = 0;
    for (const auto &interval : result.history)
        max = std::max(max, interval.storedBytes());
    return max;
}

inline double
maxSizeReductionPct(const harness::ExperimentResult &baseline,
                    const harness::ExperimentResult &acr)
{
    return reductionPct(static_cast<double>(maxCheckpointBytes(baseline)),
                        static_cast<double>(maxCheckpointBytes(acr)));
}

/** Track the per-workload best/average of a reduction series. */
struct Summary
{
    double sum = 0;
    double best = -1e300;
    std::string bestName;
    unsigned count = 0;

    void
    add(const std::string &name, double value)
    {
        sum += value;
        ++count;
        if (value > best) {
            best = value;
            bestName = name;
        }
    }

    double avg() const { return count ? sum / count : 0.0; }

    /** The one-line summary, for BenchContext::note(). */
    std::string
    text(const std::string &what) const
    {
        std::ostringstream oss;
        oss << what << ": up to " << best << "% (for " << bestName
            << "), " << avg() << "% on average\n";
        return oss.str();
    }

    void
    print(std::ostream &os, const std::string &what) const
    {
        os << text(what);
    }
};

} // namespace acr::bench

#endif // ACR_BENCH_BENCH_UTIL_HH
