/**
 * @file
 * Backend comparison (DESIGN.md §14, the ROADMAP's multi-backend
 * results axis): sweep checkpoint-store backend × workload × error
 * rate, with the recovery oracle attached to every checkpointing
 * point by default. Each backend runs under its natural scheme:
 *
 *   log         ReCkpt — ACR's amnesic undo log in DRAM (the paper)
 *   replicated  Ckpt   — ReStore-style k-replica in-memory images;
 *                        recovery reads a replica, nothing is
 *                        recomputed, so amnesic omission is off
 *   nvm         ReCkpt — JASS-style hybrid: the amnesic log on an
 *                        NVM tier with asymmetric read/write/persist
 *                        costs
 *
 * Expected shape: ACR-on-log beats replicated on stored footprint and
 * on time/energy overhead (replicated writes every datum k times and
 * omits nothing, so its log is bigger and its rollbacks touch more
 * words); nvm trades establishment/energy cost for persistence, and
 * amnesic omission pays the most there because NVM writes are the
 * expensive operation.
 *
 * Flags (validated by the shared strict parser; env spelling in
 * parentheses):
 *
 *   --backends=a,b,c (ACR_BACKENDS)  subset of log,replicated,nvm
 *   --errors=a,b,... (ACR_ERRORS)    error counts per run (0 = clean)
 *   --oracle=on|off  (ACR_ORACLE)    differential recovery validation
 *
 * Exit codes: 0 clean, 3 quarantined points, 4 oracle divergence
 * (max-combined, harness/exit_code.hh).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/exit_code.hh"

namespace
{

using namespace acr;
using namespace acr::bench;
using harness::BerMode;
using harness::ExperimentConfig;
using harness::ExperimentResult;

/** The sweep the flags/environment selected (readOptions fills it;
 *  grid and render both consult it, so reruns agree byte-for-byte). */
struct Selection
{
    std::vector<ckpt::Backend> backends = {ckpt::Backend::kLog,
                                           ckpt::Backend::kReplicated,
                                           ckpt::Backend::kNvm};
    std::vector<unsigned> errors = {0, 1, 2, 4};
    bool oracle = true;
};

Selection selection;

/** The scheme a backend naturally runs under (see the file header). */
BerMode
modeFor(ckpt::Backend backend)
{
    return backend == ckpt::Backend::kReplicated ? BerMode::kCkpt
                                                 : BerMode::kReCkpt;
}

const char *
modeName(BerMode mode)
{
    return mode == BerMode::kCkpt ? "Ckpt" : "ReCkpt";
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> parts;
    std::string part;
    for (char c : text) {
        if (c == ',') {
            if (!part.empty())
                parts.push_back(part);
            part.clear();
        } else {
            part += c;
        }
    }
    if (!part.empty())
        parts.push_back(part);
    return parts;
}

void
declareOptions(OptionParser &parser)
{
    parser.addString("backends", "log,replicated,nvm",
                     "comma-separated subset of log,replicated,nvm");
    parser.addString("errors", "0,1,2,4",
                     "comma-separated error counts per run (0 = "
                     "error-free)");
    parser.addString("oracle", "on",
                     "differential recovery validation on every "
                     "checkpointing point: on or off");

    // One validation path for both spellings: the environment value is
    // assigned through the identical strict parse as --flag=value, and
    // an explicit flag overrides it.
    parser.envDefault("backends", "ACR_BACKENDS");
    parser.envDefault("errors", "ACR_ERRORS");
    parser.envDefault("oracle", "ACR_ORACLE");
}

void
readOptions(const OptionParser &parser)
{
    selection.backends.clear();
    for (const std::string &name :
         splitList(parser.getString("backends"))) {
        ckpt::Backend backend;
        if (!ckpt::parseBackend(name, backend))
            fatal("--backends: '%s' is not a backend (have: log, "
                  "replicated, nvm)",
                  name.c_str());
        selection.backends.push_back(backend);
    }
    if (selection.backends.empty())
        fatal("--backends must select at least one backend");

    selection.errors.clear();
    for (const std::string &text :
         splitList(parser.getString("errors"))) {
        unsigned long long value = 0;
        if (!parseStrictUint(text, value) || value > 64)
            fatal("--errors: '%s' is not an error count in 0..64",
                  text.c_str());
        selection.errors.push_back(static_cast<unsigned>(value));
    }
    if (selection.errors.empty())
        fatal("--errors must select at least one error count");

    const std::string oracle = parser.getString("oracle");
    if (oracle == "on")
        selection.oracle = true;
    else if (oracle == "off")
        selection.oracle = false;
    else
        fatal("--oracle must be on or off, got '%s'", oracle.c_str());
}

/** Per workload: NoCkpt baseline, then (error count × backend). */
std::vector<ExperimentConfig>
configAxis()
{
    std::vector<ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt)};
    for (unsigned errors : selection.errors) {
        for (ckpt::Backend backend : selection.backends) {
            ExperimentConfig config =
                makeConfig(modeFor(backend), errors);
            config.backend = backend;
            config.oracle = selection.oracle;
            configs.push_back(config);
        }
    }
    return configs;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::BenchSpec spec;
    spec.name = "fig_backend";
    spec.options = declareOptions;
    spec.readOptions = readOptions;
    spec.grid = [](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configAxis());
    };
    spec.render = [](harness::BenchContext &ctx,
                     const std::vector<ExperimentResult> &results) {
        ctx.note("Checkpoint-store backend comparison (overheads % vs "
                 "NoCkpt; oracle validates every recovery)\n\n");

        const auto configs = configAxis();
        const auto &names = ctx.workloads();
        const std::size_t backends = selection.backends.size();

        for (std::size_t e = 0; e < selection.errors.size(); ++e) {
            const unsigned errors = selection.errors[e];
            Table table({"bench", "backend", "scheme", "time %",
                         "energy %", "storedB", "maxCkptB",
                         "rollbackCyc", "div"});
            Summary stored_red;
            std::size_t log_slot = backends;
            for (std::size_t b = 0; b < backends; ++b)
                if (selection.backends[b] == ckpt::Backend::kLog)
                    log_slot = b;
            for (std::size_t w = 0; w < names.size(); ++w) {
                const auto *row = &results[w * configs.size()];
                const auto &base = row[0];
                for (std::size_t b = 0; b < backends; ++b) {
                    const auto &result = row[1 + e * backends + b];
                    const ckpt::Backend backend =
                        selection.backends[b];
                    if (backend == ckpt::Backend::kReplicated &&
                        log_slot < backends)
                        stored_red.add(
                            names[w],
                            reductionPct(
                                static_cast<double>(
                                    result.ckptBytesStored),
                                static_cast<double>(
                                    row[1 + e * backends + log_slot]
                                        .ckptBytesStored)));
                    const double rollback =
                        result.recoveries == 0
                            ? 0.0
                            : result.stats.get("rec.rollbackCycles") /
                                  static_cast<double>(
                                      result.recoveries);
                    table.row()
                        .cell(names[w])
                        .cell(ckpt::backendName(backend))
                        .cell(modeName(modeFor(backend)))
                        .cell(result.timeOverheadPct(base.cycles))
                        .cell(result.energyOverheadPct(base.energyPj))
                        .cell(static_cast<long long>(
                            result.ckptBytesStored))
                        .cell(static_cast<long long>(
                            maxCheckpointBytes(result)))
                        .cell(rollback)
                        .cell(static_cast<long long>(
                            result.oracleDivergences));
                }
            }
            ctx.note(csprintf("--- %u error(s) ---\n", errors));
            ctx.emit(table);
            if (stored_red.count > 0)
                ctx.note(stored_red.text(
                    "ACR-on-log stored-byte reduction vs replicated"));
            ctx.note("\n");
        }

        ctx.note("(expected: log wins footprint and overhead; "
                 "replicated pays k-copy traffic and full-log "
                 "rollbacks; nvm pays establishment for persistence "
                 "and gains the most from amnesic omission)\n");
    };
    spec.exitCode = [](harness::BenchContext &,
                       const std::vector<ExperimentResult> &results) {
        int code = harness::kExitClean;
        for (const auto &result : results)
            if (!result.failed && result.oracleDivergences > 0)
                code = harness::combineExitCodes(
                    code, harness::kExitDivergence);
        return code;
    };
    return harness::benchMain(argc, argv, spec);
}
