/**
 * @file
 * Figure 9: % reduction of checkpoint size under ReCkpt_NE w.r.t.
 * Ckpt_NE — the Overall column (total data checkpointed across the run)
 * and the Max column (size of the largest single checkpoint, the memory-
 * footprint proxy under two-checkpoint retention). Paper: is tops
 * Overall at 75.74% while its Max barely moves (2.04%); dc tops Max at
 * 58.3%; ft's Max is ~0; the Overall average is 38.31%.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const unsigned jobs = parseJobs(argc, argv, "fig09_ckpt_size");
    harness::Runner runner(kDefaultThreads);

    std::cout << "Figure 9: checkpoint size reduction under ReCkpt_NE "
                 "(%)\n\n";

    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kCkpt),
        makeConfig(BerMode::kReCkpt),
    };
    auto results = runSweep(runner, jobs, crossWorkloads(configs));

    Table table({"bench", "Overall %", "Max %", "stored KB", "omitted KB",
                 "binary growth %"});
    Summary overall, max_red;

    const auto &names = workloads::allWorkloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const auto &ckpt = results[w * configs.size()];
        const auto &reckpt = results[w * configs.size() + 1];
        const auto &pass = runner.profile(name);

        double o = overallSizeReductionPct(ckpt, reckpt);
        double m = maxSizeReductionPct(ckpt, reckpt);
        overall.add(name, o);
        max_red.add(name, m);

        table.row()
            .cell(name)
            .cell(o)
            .cell(m)
            .cell(static_cast<double>(reckpt.ckptBytesStored) / 1024.0)
            .cell(static_cast<double>(reckpt.ckptBytesOmitted) / 1024.0)
            .cell(pass.binaryGrowthPct);
    }
    table.print(std::cout);

    std::cout << "\n";
    overall.print(std::cout, "Overall checkpoint size reduction");
    max_red.print(std::cout, "Max (largest checkpoint) reduction");
    std::cout << "(paper: Overall up to 75.74% for is, 38.31% avg; Max "
                 "up to 58.3% for dc, ~2% for is, ~0% for ft)\n";
    return 0;
}
