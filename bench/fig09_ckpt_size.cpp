/**
 * @file
 * Figure 9: % reduction of checkpoint size under ReCkpt_NE w.r.t.
 * Ckpt_NE — the Overall column (total data checkpointed across the run)
 * and the Max column (size of the largest single checkpoint, the memory-
 * footprint proxy under two-checkpoint retention). Paper: is tops
 * Overall at 75.74% while its Max barely moves (2.04%); dc tops Max at
 * 58.3%; ft's Max is ~0; the Overall average is 38.31%.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kCkpt),
        makeConfig(BerMode::kReCkpt),
    };

    harness::BenchSpec spec;
    spec.name = "fig09_ckpt_size";
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note("Figure 9: checkpoint size reduction under ReCkpt_NE "
                 "(%)\n\n");

        Table table({"bench", "Overall %", "Max %", "stored KB",
                     "omitted KB", "binary growth %"});
        Summary overall, max_red;

        const auto &names = ctx.workloads();
        for (std::size_t w = 0; w < names.size(); ++w) {
            const std::string &name = names[w];
            const auto &ckpt = results[w * configs.size()];
            const auto &reckpt = results[w * configs.size() + 1];
            const auto &pass = ctx.runner().profile(name);

            double o = overallSizeReductionPct(ckpt, reckpt);
            double m = maxSizeReductionPct(ckpt, reckpt);
            overall.add(name, o);
            max_red.add(name, m);

            table.row()
                .cell(name)
                .cell(o)
                .cell(m)
                .cell(static_cast<double>(reckpt.ckptBytesStored) /
                      1024.0)
                .cell(static_cast<double>(reckpt.ckptBytesOmitted) /
                      1024.0)
                .cell(pass.binaryGrowthPct);
        }
        ctx.emit(table);

        ctx.note("\n");
        ctx.note(overall.text("Overall checkpoint size reduction"));
        ctx.note(max_red.text("Max (largest checkpoint) reduction"));
        ctx.note("(paper: Overall up to 75.74% for is, 38.31% avg; Max "
                 "up to 58.3% for dc, ~2% for is, ~0% for ft)\n");
    };
    return harness::benchMain(argc, argv, spec);
}
