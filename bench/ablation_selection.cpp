/**
 * @file
 * Ablation: slice selection policy. The paper evaluates the greedy
 * minimal-complexity policy (embed every Slice under a fixed length
 * threshold) and sketches a probabilistic cost-based alternative
 * (Sec. III-A); this bench compares the two: the cost model admits any
 * Slice whose estimated recomputation energy undercuts a log-record
 * restore, trading longer recovery recomputation for smaller
 * checkpoints.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    auto greedy_cfg = makeConfig(BerMode::kReCkpt, 1);
    auto cost_cfg = greedy_cfg;
    cost_cfg.policy = slice::SelectionPolicy::kCostModel;
    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt), greedy_cfg, cost_cfg};

    harness::BenchSpec spec;
    spec.name = "ablation_selection";
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note("Ablation: greedy threshold-10 vs cost-model slice "
                 "selection (ReCkpt_E, 1 error)\n\n");

        Table table({"bench", "greedy omit %", "cost omit %",
                     "greedy ovh %", "cost ovh %", "greedy replay ops",
                     "cost replay ops"});

        auto omit_pct = [](const harness::ExperimentResult &r) {
            double total = static_cast<double>(r.ckptBytesStored +
                                               r.ckptBytesOmitted);
            return total == 0.0
                       ? 0.0
                       : 100.0 *
                             static_cast<double>(r.ckptBytesOmitted) /
                             total;
        };

        const auto &names = ctx.workloads();
        for (std::size_t w = 0; w < names.size(); ++w) {
            const auto *row = &results[w * configs.size()];
            const auto &base = row[0];
            const auto &greedy = row[1];
            const auto &cost = row[2];

            table.row()
                .cell(names[w])
                .cell(omit_pct(greedy))
                .cell(omit_pct(cost))
                .cell(greedy.timeOverheadPct(base.cycles))
                .cell(cost.timeOverheadPct(base.cycles))
                .cell(static_cast<long long>(
                    greedy.stats.get("acr.replayAluOps")))
                .cell(static_cast<long long>(
                    cost.stats.get("acr.replayAluOps")));
        }
        ctx.emit(table);

        ctx.note("\nThe cost model omits at least as much as the "
                 "greedy threshold everywhere (it accepts every slice "
                 "the threshold accepts, plus longer ones that still "
                 "beat a DRAM restore), at the price of more replay "
                 "work during recovery.\n");
    };
    return harness::benchMain(argc, argv, spec);
}
