/**
 * @file
 * Figure 6: % execution-time overhead of checkpointing and recovery.
 *
 * For every benchmark, the four bars of the paper's figure: Ckpt_NE,
 * Ckpt_E, ReCkpt_NE, ReCkpt_E — all normalized to NoCkpt — followed by
 * the overhead-reduction summaries the paper quotes in Sec. V-A/V-B
 * (ReCkpt_NE vs Ckpt_NE: up to 28.81% for is, 11.92% on average;
 * ReCkpt_E vs Ckpt_E: up to 26.68% for is, 12.39% on average).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt),
        makeConfig(BerMode::kCkpt),
        makeConfig(BerMode::kCkpt, 1),
        makeConfig(BerMode::kReCkpt),
        makeConfig(BerMode::kReCkpt, 1),
    };

    harness::BenchSpec spec;
    spec.name = "fig06_time_overhead";
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note(csprintf(
            "Figure 6: execution time overhead of checkpointing "
            "and recovery (%% vs NoCkpt)\n%u threads, %u "
            "checkpoints, 1 error in the _E configurations\n\n",
            kDefaultThreads, kDefaultCheckpoints));

        Table table({"bench", "Ckpt_NE", "Ckpt_E", "ReCkpt_NE",
                     "ReCkpt_E", "NE red.%", "E red.%"});
        Summary ne_reduction, e_reduction;

        const auto &names = ctx.workloads();
        for (std::size_t w = 0; w < names.size(); ++w) {
            const std::string &name = names[w];
            const auto *row = &results[w * configs.size()];
            const auto &base = row[0];
            const auto &ckpt_ne = row[1];
            const auto &ckpt_e = row[2];
            const auto &reckpt_ne = row[3];
            const auto &reckpt_e = row[4];

            double o_ckpt_ne = ckpt_ne.timeOverheadPct(base.cycles);
            double o_ckpt_e = ckpt_e.timeOverheadPct(base.cycles);
            double o_reckpt_ne =
                reckpt_ne.timeOverheadPct(base.cycles);
            double o_reckpt_e = reckpt_e.timeOverheadPct(base.cycles);

            double ne_red = reductionPct(o_ckpt_ne, o_reckpt_ne);
            double e_red = reductionPct(o_ckpt_e, o_reckpt_e);
            ne_reduction.add(name, ne_red);
            e_reduction.add(name, e_red);

            table.row()
                .cell(name)
                .cell(o_ckpt_ne)
                .cell(o_ckpt_e)
                .cell(o_reckpt_ne)
                .cell(o_reckpt_e)
                .cell(ne_red)
                .cell(e_red);
        }
        ctx.emit(table);

        ctx.note("\n");
        ctx.note(ne_reduction.text(
            "ReCkpt_NE reduces Ckpt_NE's time overhead"));
        ctx.note(e_reduction.text(
            "ReCkpt_E reduces Ckpt_E's time overhead"));
        ctx.note("(paper: up to 28.81% / 11.92% avg error-free; up to "
                 "26.68% / 12.39% avg with an error)\n");
    };
    return harness::benchMain(argc, argv, spec);
}
