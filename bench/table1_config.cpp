/**
 * @file
 * Table I: the simulated architecture. Prints the machine configuration
 * used by every experiment, in the paper's terms, plus the derived
 * simulation parameters.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/logging.hh"
#include "sim/machine_config.hh"

int
main()
{
    using namespace acr;
    using bench::kDefaultThreads;

    auto config = sim::MachineConfig::tableI(kDefaultThreads);

    std::cout << "Table I: simulated architecture\n\n";
    Table table({"parameter", "value"});
    table.row().cell("Technology node").cell("22nm (energy model)");
    table.row().cell("Frequency").cell(
        csprintf("%.2f GHz", config.frequencyHz / 1e9));
    table.row().cell("Core").cell(
        csprintf("%u-issue, in-order, mlp divisor %.1f",
                 config.coreTiming.issueWidth,
                 config.coreTiming.mlpFactor));
    table.row().cell("L1-I (LRU)").cell(
        csprintf("%zuKB, %u-way, %llu cycles",
                 config.hierarchy.l1i.sizeBytes / 1024,
                 config.hierarchy.l1i.ways,
                 static_cast<unsigned long long>(
                     config.hierarchy.l1i.latency)));
    table.row().cell("L1-D (LRU, WB)").cell(
        csprintf("%zuKB, %u-way, %llu cycles",
                 config.hierarchy.l1d.sizeBytes / 1024,
                 config.hierarchy.l1d.ways,
                 static_cast<unsigned long long>(
                     config.hierarchy.l1d.latency)));
    table.row().cell("L2 (LRU, WB)").cell(
        csprintf("%zuKB, %u-way, %llu cycles",
                 config.hierarchy.l2.sizeBytes / 1024,
                 config.hierarchy.l2.ways,
                 static_cast<unsigned long long>(
                     config.hierarchy.l2.latency)));
    table.row().cell("Coherence").cell(
        csprintf("directory-based, %llu-cycle remote actions",
                 static_cast<unsigned long long>(
                     config.hierarchy.coherenceLatency)));
    table.row().cell("Main memory").cell(
        csprintf("%llu cycles (~120ns), %.2f B/cycle/controller "
                 "(~7.6 GB/s), %u controllers (1 per 4 cores)",
                 static_cast<unsigned long long>(config.dram.latency),
                 config.dram.bytesPerCycle, config.dram.controllers));
    table.row().cell("Cores").cell(
        csprintf("%u (8/16/32 in the scalability study)",
                 config.numCores));
    table.print(std::cout);
    return 0;
}
