/**
 * @file
 * Figure 7: % energy overhead of checkpointing and recovery, normalized
 * to NoCkpt, with the Sec. V-A/V-B reduction summaries (paper: ReCkpt_NE
 * up to 26.93% for is, 12.53% avg; ReCkpt_E up to 30% for dc, 13.47%
 * avg).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt),
        makeConfig(BerMode::kCkpt),
        makeConfig(BerMode::kCkpt, 1),
        makeConfig(BerMode::kReCkpt),
        makeConfig(BerMode::kReCkpt, 1),
    };

    harness::BenchSpec spec;
    spec.name = "fig07_energy_overhead";
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note("Figure 7: energy overhead of checkpointing and "
                 "recovery (% vs NoCkpt)\n\n");

        Table table({"bench", "Ckpt_NE", "Ckpt_E", "ReCkpt_NE",
                     "ReCkpt_E", "NE red.%", "E red.%"});
        Summary ne_reduction, e_reduction;

        const auto &names = ctx.workloads();
        for (std::size_t w = 0; w < names.size(); ++w) {
            const std::string &name = names[w];
            const auto *row = &results[w * configs.size()];
            const auto &base = row[0];

            double o_ckpt_ne = row[1].energyOverheadPct(base.energyPj);
            double o_ckpt_e = row[2].energyOverheadPct(base.energyPj);
            double o_reckpt_ne =
                row[3].energyOverheadPct(base.energyPj);
            double o_reckpt_e = row[4].energyOverheadPct(base.energyPj);

            double ne_red = reductionPct(o_ckpt_ne, o_reckpt_ne);
            double e_red = reductionPct(o_ckpt_e, o_reckpt_e);
            ne_reduction.add(name, ne_red);
            e_reduction.add(name, e_red);

            table.row()
                .cell(name)
                .cell(o_ckpt_ne)
                .cell(o_ckpt_e)
                .cell(o_reckpt_ne)
                .cell(o_reckpt_e)
                .cell(ne_red)
                .cell(e_red);
        }
        ctx.emit(table);

        ctx.note("\n");
        ctx.note(ne_reduction.text(
            "ReCkpt_NE reduces Ckpt_NE's energy overhead"));
        ctx.note(e_reduction.text(
            "ReCkpt_E reduces Ckpt_E's energy overhead"));
        ctx.note("(paper: up to 26.93% / 12.53% avg error-free; up to "
                 "30% / 13.47% avg with an error)\n");
    };
    return harness::benchMain(argc, argv, spec);
}
