/**
 * @file
 * Figure 11 (and the Sec. V-D2 EDP numbers): % execution-time overhead
 * of Ckpt_E and ReCkpt_E w.r.t. NoCkpt for 1..5 uniformly distributed
 * errors. Paper: overheads grow with the error count; ReCkpt_E tracks
 * below Ckpt_E throughout, with time-overhead reductions of ~9-12% on
 * average and EDP reductions of ~18-24%.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    constexpr unsigned kMaxErrors = 5;

    // Per workload: NoCkpt, then (Ckpt_E, ReCkpt_E) per error count.
    std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt)};
    for (unsigned errors = 1; errors <= kMaxErrors; ++errors) {
        configs.push_back(makeConfig(BerMode::kCkpt, errors));
        configs.push_back(makeConfig(BerMode::kReCkpt, errors));
    }

    harness::BenchSpec spec;
    spec.name = "fig11_error_sweep";
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note("Figure 11: time overhead (% vs NoCkpt) under "
                 "increasing error counts\n\n");

        const auto &names = ctx.workloads();
        for (unsigned errors = 1; errors <= kMaxErrors; ++errors) {
            // Injection/recovery audit columns are for the ReCkpt_E
            // run: a campaign is trustworthy only if every planned
            // error was injected and detected (or explicitly dropped)
            // and recomputation actually happened.
            Table table({"bench", "Ckpt_E %", "ReCkpt_E %",
                         "time red. %", "EDP red. %", "inj", "det",
                         "drop", "recov", "recompW"});
            Summary time_red, edp_red;
            for (std::size_t w = 0; w < names.size(); ++w) {
                const std::string &name = names[w];
                const auto *row = &results[w * configs.size()];
                const auto &base = row[0];
                const auto &ckpt = row[1 + 2 * (errors - 1)];
                const auto &reckpt = row[2 + 2 * (errors - 1)];

                double o_ckpt = ckpt.timeOverheadPct(base.cycles);
                double o_reckpt = reckpt.timeOverheadPct(base.cycles);
                double t_red = reductionPct(o_ckpt, o_reckpt);
                double e_red = reckpt.edpReductionPct(ckpt.edp);
                time_red.add(name, t_red);
                edp_red.add(name, e_red);

                auto stat = [&](const char *key) {
                    return static_cast<long long>(
                        reckpt.stats.get(key));
                };
                table.row()
                    .cell(name)
                    .cell(o_ckpt)
                    .cell(o_reckpt)
                    .cell(t_red)
                    .cell(e_red)
                    .cell(stat("fault.injected"))
                    .cell(stat("fault.detected"))
                    .cell(stat("fault.dropped"))
                    .cell(static_cast<long long>(reckpt.recoveries))
                    .cell(stat("rec.recomputedWords"));
            }
            ctx.note(csprintf("--- %u error(s) ---\n", errors));
            ctx.emit(table);
            ctx.note(time_red.text("time overhead reduction"));
            ctx.note(edp_red.text("EDP reduction"));
            ctx.note("\n");
        }

        ctx.note("(paper: time reduction up to 26.68% at 1 error down "
                 "to 19.92% at 5; avg 9-12%; EDP reduction avg "
                 "18-24%)\n");
    };
    return harness::benchMain(argc, argv, spec);
}
