/**
 * @file
 * Figure 10: per-interval checkpoint-size reduction over time for bt at
 * thresholds {10, 20, 30, 40, 50}. The paper's point: recomputable
 * values are not uniformly distributed across intervals, so some
 * checkpoints shrink far more than others — the opportunity the
 * recompute-aware placement ablation exploits.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const std::vector<unsigned> thresholds = {10, 20, 30, 40, 50};

    // Config 0 is the Ckpt baseline; config i+1 is ReCkpt at
    // thresholds[i].
    std::vector<harness::ExperimentConfig> configs;
    configs.push_back(makeConfig(BerMode::kCkpt));
    for (unsigned threshold : thresholds) {
        auto cfg = makeConfig(BerMode::kReCkpt);
        cfg.sliceThreshold = threshold;
        configs.push_back(cfg);
    }

    harness::BenchSpec spec;
    spec.name = "fig10_temporal";
    spec.defaultWorkloads = {"bt"};
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        const auto &names = ctx.workloads();
        for (std::size_t w = 0; w < names.size(); ++w) {
            ctx.note(csprintf(
                "Figure 10: impact of Slice length on checkpoint size "
                "over time for %s (%% reduction per interval)\n\n",
                names[w].c_str()));

            const auto *row = &results[w * configs.size()];
            const auto &baseline = row[0];

            std::vector<std::string> headers = {"interval", "base KB"};
            for (unsigned t : thresholds)
                headers.push_back(csprintf("thr %u", t));
            Table table(headers);

            std::size_t intervals = baseline.history.size();
            for (std::size_t r = 1; r < configs.size(); ++r)
                intervals =
                    std::min(intervals, row[r].history.size());

            for (std::size_t i = 0; i < intervals; ++i) {
                table.row()
                    .cell(static_cast<long long>(i + 1))
                    .cell(static_cast<double>(
                              baseline.history[i].storedBytes()) /
                          1024.0);
                for (std::size_t r = 1; r < configs.size(); ++r) {
                    table.cell(reductionPct(
                        static_cast<double>(
                            baseline.history[i].storedBytes()),
                        static_cast<double>(
                            row[r].history[i].storedBytes())));
                }
            }
            ctx.emit(table);
        }

        ctx.note("\nNote the burst interval in the middle of the run: "
                 "its reduction depends strongly on the threshold, "
                 "reproducing the temporal variation of Fig. 10.\n");
    };
    return harness::benchMain(argc, argv, spec);
}
