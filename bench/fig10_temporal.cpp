/**
 * @file
 * Figure 10: per-interval checkpoint-size reduction over time for bt at
 * thresholds {10, 20, 30, 40, 50}. The paper's point: recomputable
 * values are not uniformly distributed across intervals, so some
 * checkpoints shrink far more than others — the opportunity the
 * recompute-aware placement ablation exploits.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const unsigned jobs = parseJobs(argc, argv, "fig10_temporal");
    harness::Runner runner(kDefaultThreads);
    const std::vector<unsigned> thresholds = {10, 20, 30, 40, 50};
    const std::string name = "bt";

    std::cout << "Figure 10: impact of Slice length on checkpoint size "
                 "over time for bt (% reduction per interval)\n\n";

    // Point 0 is the Ckpt baseline; point i+1 is ReCkpt at thresholds[i].
    std::vector<harness::SweepPoint> points;
    points.push_back({name, makeConfig(BerMode::kCkpt)});
    for (unsigned threshold : thresholds) {
        auto cfg = makeConfig(BerMode::kReCkpt);
        cfg.sliceThreshold = threshold;
        points.push_back({name, cfg});
    }
    auto results = runSweep(runner, jobs, points);
    const auto &baseline = results[0];

    std::vector<std::string> headers = {"interval", "base KB"};
    for (unsigned t : thresholds)
        headers.push_back(csprintf("thr %u", t));
    Table table(headers);

    std::size_t intervals = baseline.history.size();
    for (std::size_t r = 1; r < results.size(); ++r)
        intervals = std::min(intervals, results[r].history.size());

    for (std::size_t i = 0; i < intervals; ++i) {
        table.row()
            .cell(static_cast<long long>(i + 1))
            .cell(static_cast<double>(
                      baseline.history[i].storedBytes()) /
                  1024.0);
        for (std::size_t r = 1; r < results.size(); ++r) {
            table.cell(reductionPct(
                static_cast<double>(baseline.history[i].storedBytes()),
                static_cast<double>(
                    results[r].history[i].storedBytes())));
        }
    }
    table.print(std::cout);

    std::cout << "\nNote the burst interval in the middle of the run: "
                 "its reduction depends strongly on the threshold, "
                 "reproducing the temporal variation of Fig. 10.\n";
    return 0;
}
