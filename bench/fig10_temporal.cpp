/**
 * @file
 * Figure 10: per-interval checkpoint-size reduction over time for bt at
 * thresholds {10, 20, 30, 40, 50}. The paper's point: recomputable
 * values are not uniformly distributed across intervals, so some
 * checkpoints shrink far more than others — the opportunity the
 * recompute-aware placement ablation exploits.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    harness::Runner runner(kDefaultThreads);
    const std::vector<unsigned> thresholds = {10, 20, 30, 40, 50};
    const std::string name = "bt";

    std::cout << "Figure 10: impact of Slice length on checkpoint size "
                 "over time for bt (% reduction per interval)\n\n";

    auto baseline = runner.run(name, makeConfig(BerMode::kCkpt));

    std::vector<harness::ExperimentResult> results;
    for (unsigned threshold : thresholds) {
        auto cfg = makeConfig(BerMode::kReCkpt);
        cfg.sliceThreshold = threshold;
        results.push_back(runner.run(name, cfg));
    }

    std::vector<std::string> headers = {"interval", "base KB"};
    for (unsigned t : thresholds)
        headers.push_back(csprintf("thr %u", t));
    Table table(headers);

    std::size_t intervals = baseline.history.size();
    for (const auto &r : results)
        intervals = std::min(intervals, r.history.size());

    for (std::size_t i = 0; i < intervals; ++i) {
        table.row()
            .cell(static_cast<long long>(i + 1))
            .cell(static_cast<double>(
                      baseline.history[i].storedBytes()) /
                  1024.0);
        for (const auto &r : results) {
            table.cell(reductionPct(
                static_cast<double>(baseline.history[i].storedBytes()),
                static_cast<double>(r.history[i].storedBytes())));
        }
    }
    table.print(std::cout);

    std::cout << "\nNote the burst interval in the middle of the run: "
                 "its reduction depends strongly on the threshold, "
                 "reproducing the temporal variation of Fig. 10.\n";
    return 0;
}
