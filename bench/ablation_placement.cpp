/**
 * @file
 * Ablation: recomputation-aware checkpoint placement. Sec. V-D1/V-D3
 * observe that recomputable values are unevenly distributed over
 * checkpoint intervals and suggest shifting checkpoint times toward
 * recomputation-rich points instead of blind uniform placement — left
 * as future work in the paper, implemented here as
 * PlacementPolicy::kRecomputeAware (defer establishment while the open
 * interval's recomputable fraction is below the profiled coverage, up
 * to a slack bound).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    auto uniform_cfg = makeConfig(BerMode::kReCkpt);
    auto aware_cfg = uniform_cfg;
    aware_cfg.placement = harness::PlacementPolicy::kRecomputeAware;
    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt), uniform_cfg, aware_cfg};

    harness::BenchSpec spec;
    spec.name = "ablation_placement";
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note("Ablation: uniform vs recomputation-aware checkpoint "
                 "placement (ReCkpt_NE)\n\n");

        Table table({"bench", "uniform stored KB", "aware stored KB",
                     "stored red. %", "uniform ovh %", "aware ovh %",
                     "deferrals"});

        const auto &names = ctx.workloads();
        for (std::size_t w = 0; w < names.size(); ++w) {
            const auto *row = &results[w * configs.size()];
            const auto &base = row[0];
            const auto &uniform = row[1];
            const auto &aware = row[2];

            table.row()
                .cell(names[w])
                .cell(static_cast<double>(uniform.ckptBytesStored) /
                      1024.0)
                .cell(static_cast<double>(aware.ckptBytesStored) /
                      1024.0)
                .cell(overallSizeReductionPct(uniform, aware))
                .cell(uniform.timeOverheadPct(base.cycles))
                .cell(aware.timeOverheadPct(base.cycles))
                .cell(static_cast<long long>(
                    aware.stats.get("ckpt.placementDeferrals")));
        }
        ctx.emit(table);

        ctx.note("\nDeferring checkpoints into recomputation-rich "
                 "regions shrinks stored checkpoints further on the "
                 "kernels with bursty non-recomputable phases (is, "
                 "dc), at unchanged recovery guarantees.\n");
    };
    return harness::benchMain(argc, argv, spec);
}
