/**
 * @file
 * Ablation: recomputation-aware checkpoint placement. Sec. V-D1/V-D3
 * observe that recomputable values are unevenly distributed over
 * checkpoint intervals and suggest shifting checkpoint times toward
 * recomputation-rich points instead of blind uniform placement — left
 * as future work in the paper, implemented here as
 * PlacementPolicy::kRecomputeAware (defer establishment while the open
 * interval's recomputable fraction is below the profiled coverage, up
 * to a slack bound).
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    harness::Runner runner(kDefaultThreads);

    std::cout << "Ablation: uniform vs recomputation-aware checkpoint "
                 "placement (ReCkpt_NE)\n\n";

    Table table({"bench", "uniform stored KB", "aware stored KB",
                 "stored red. %", "uniform ovh %", "aware ovh %",
                 "deferrals"});

    for (const auto &name : workloads::allWorkloadNames()) {
        const auto &base = runner.noCkpt(name);

        auto uniform_cfg = makeConfig(BerMode::kReCkpt);
        auto uniform = runner.run(name, uniform_cfg);

        auto aware_cfg = uniform_cfg;
        aware_cfg.placement = harness::PlacementPolicy::kRecomputeAware;
        auto aware = runner.run(name, aware_cfg);

        table.row()
            .cell(name)
            .cell(static_cast<double>(uniform.ckptBytesStored) / 1024.0)
            .cell(static_cast<double>(aware.ckptBytesStored) / 1024.0)
            .cell(overallSizeReductionPct(uniform, aware))
            .cell(uniform.timeOverheadPct(base.cycles))
            .cell(aware.timeOverheadPct(base.cycles))
            .cell(static_cast<long long>(
                aware.stats.get("ckpt.placementDeferrals")));
    }
    table.print(std::cout);

    std::cout << "\nDeferring checkpoints into recomputation-rich "
                 "regions shrinks stored checkpoints further on the "
                 "kernels with bursty non-recomputable phases (is, dc), "
                 "at unchanged recovery guarantees.\n";
    return 0;
}
