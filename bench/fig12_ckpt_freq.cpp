/**
 * @file
 * Figure 12 (Sec. V-D3): % execution-time overhead of Ckpt_NE and
 * ReCkpt_NE w.r.t. NoCkpt at 25/50/75/100 checkpoints. Paper: overhead
 * grows with checkpoint count (ft worst), ReCkpt_NE tracks below
 * Ckpt_NE with reductions of ~10-14% on average (up to 50.86% for is
 * at 75 checkpoints), and EDP reductions of ~20-26%.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const std::vector<unsigned> counts = {25, 50, 75, 100};

    // Per workload: NoCkpt, then (Ckpt_NE, ReCkpt_NE) per count.
    std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt)};
    for (unsigned checkpoints : counts) {
        configs.push_back(makeConfig(BerMode::kCkpt, 0,
                                     ckpt::Coordination::kGlobal,
                                     checkpoints));
        configs.push_back(makeConfig(BerMode::kReCkpt, 0,
                                     ckpt::Coordination::kGlobal,
                                     checkpoints));
    }

    harness::BenchSpec spec;
    spec.name = "fig12_ckpt_freq";
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note("Figure 12: time overhead (% vs NoCkpt) under "
                 "increasing checkpoint counts\n\n");

        const auto &names = ctx.workloads();
        for (std::size_t c = 0; c < counts.size(); ++c) {
            Table table({"bench", "Ckpt_NE %", "ReCkpt_NE %",
                         "time red. %", "EDP red. %"});
            Summary time_red, edp_red;
            for (std::size_t w = 0; w < names.size(); ++w) {
                const std::string &name = names[w];
                const auto *row = &results[w * configs.size()];
                const auto &base = row[0];
                const auto &ckpt = row[1 + 2 * c];
                const auto &reckpt = row[2 + 2 * c];

                double o_ckpt = ckpt.timeOverheadPct(base.cycles);
                double o_reckpt = reckpt.timeOverheadPct(base.cycles);
                double t_red = reductionPct(o_ckpt, o_reckpt);
                double e_red = reckpt.edpReductionPct(ckpt.edp);
                time_red.add(name, t_red);
                edp_red.add(name, e_red);

                table.row()
                    .cell(name)
                    .cell(o_ckpt)
                    .cell(o_reckpt)
                    .cell(t_red)
                    .cell(e_red);
            }
            ctx.note(csprintf("--- %u checkpoints ---\n", counts[c]));
            ctx.emit(table);
            ctx.note(time_red.text("time overhead reduction"));
            ctx.note(edp_red.text("EDP reduction"));
            ctx.note("\n");
        }

        ctx.note("(paper: reductions up to 28.81%/25.3%/50.86%/43.52% "
                 "at 25/50/75/100 checkpoints, avg 10-14%)\n");
    };
    return harness::benchMain(argc, argv, spec);
}
