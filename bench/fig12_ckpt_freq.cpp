/**
 * @file
 * Figure 12 (Sec. V-D3): % execution-time overhead of Ckpt_NE and
 * ReCkpt_NE w.r.t. NoCkpt at 25/50/75/100 checkpoints. Paper: overhead
 * grows with checkpoint count (ft worst), ReCkpt_NE tracks below
 * Ckpt_NE with reductions of ~10-14% on average (up to 50.86% for is
 * at 75 checkpoints), and EDP reductions of ~20-26%.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const unsigned jobs = parseJobs(argc, argv, "fig12_ckpt_freq");
    harness::Runner runner(kDefaultThreads);
    const std::vector<unsigned> counts = {25, 50, 75, 100};

    std::cout << "Figure 12: time overhead (% vs NoCkpt) under "
                 "increasing checkpoint counts\n\n";

    // Per workload: NoCkpt, then (Ckpt_NE, ReCkpt_NE) per count.
    std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt)};
    for (unsigned checkpoints : counts) {
        configs.push_back(makeConfig(BerMode::kCkpt, 0,
                                     ckpt::Coordination::kGlobal,
                                     checkpoints));
        configs.push_back(makeConfig(BerMode::kReCkpt, 0,
                                     ckpt::Coordination::kGlobal,
                                     checkpoints));
    }
    auto results = runSweep(runner, jobs, crossWorkloads(configs));

    const auto &names = workloads::allWorkloadNames();
    for (std::size_t c = 0; c < counts.size(); ++c) {
        Table table({"bench", "Ckpt_NE %", "ReCkpt_NE %", "time red. %",
                     "EDP red. %"});
        Summary time_red, edp_red;
        for (std::size_t w = 0; w < names.size(); ++w) {
            const std::string &name = names[w];
            const auto *row = &results[w * configs.size()];
            const auto &base = row[0];
            const auto &ckpt = row[1 + 2 * c];
            const auto &reckpt = row[2 + 2 * c];

            double o_ckpt = ckpt.timeOverheadPct(base.cycles);
            double o_reckpt = reckpt.timeOverheadPct(base.cycles);
            double t_red = reductionPct(o_ckpt, o_reckpt);
            double e_red = reckpt.edpReductionPct(ckpt.edp);
            time_red.add(name, t_red);
            edp_red.add(name, e_red);

            table.row()
                .cell(name)
                .cell(o_ckpt)
                .cell(o_reckpt)
                .cell(t_red)
                .cell(e_red);
        }
        std::cout << "--- " << counts[c] << " checkpoints ---\n";
        table.print(std::cout);
        time_red.print(std::cout, "time overhead reduction");
        edp_red.print(std::cout, "EDP reduction");
        std::cout << "\n";
    }

    std::cout << "(paper: reductions up to 28.81%/25.3%/50.86%/43.52% "
                 "at 25/50/75/100 checkpoints, avg 10-14%)\n";
    return 0;
}
