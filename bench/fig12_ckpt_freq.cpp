/**
 * @file
 * Figure 12 (Sec. V-D3): % execution-time overhead of Ckpt_NE and
 * ReCkpt_NE w.r.t. NoCkpt at 25/50/75/100 checkpoints. Paper: overhead
 * grows with checkpoint count (ft worst), ReCkpt_NE tracks below
 * Ckpt_NE with reductions of ~10-14% on average (up to 50.86% for is
 * at 75 checkpoints), and EDP reductions of ~20-26%.
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    harness::Runner runner(kDefaultThreads);

    std::cout << "Figure 12: time overhead (% vs NoCkpt) under "
                 "increasing checkpoint counts\n\n";

    for (unsigned checkpoints : {25u, 50u, 75u, 100u}) {
        Table table({"bench", "Ckpt_NE %", "ReCkpt_NE %", "time red. %",
                     "EDP red. %"});
        Summary time_red, edp_red;
        for (const auto &name : workloads::allWorkloadNames()) {
            const auto &base = runner.noCkpt(name);
            auto ckpt = runner.run(
                name, makeConfig(BerMode::kCkpt, 0,
                                 ckpt::Coordination::kGlobal,
                                 checkpoints));
            auto reckpt = runner.run(
                name, makeConfig(BerMode::kReCkpt, 0,
                                 ckpt::Coordination::kGlobal,
                                 checkpoints));

            double o_ckpt = ckpt.timeOverheadPct(base.cycles);
            double o_reckpt = reckpt.timeOverheadPct(base.cycles);
            double t_red = reductionPct(o_ckpt, o_reckpt);
            double e_red = reckpt.edpReductionPct(ckpt.edp);
            time_red.add(name, t_red);
            edp_red.add(name, e_red);

            table.row()
                .cell(name)
                .cell(o_ckpt)
                .cell(o_reckpt)
                .cell(t_red)
                .cell(e_red);
        }
        std::cout << "--- " << checkpoints << " checkpoints ---\n";
        table.print(std::cout);
        time_red.print(std::cout, "time overhead reduction");
        edp_red.print(std::cout, "EDP reduction");
        std::cout << "\n";
    }

    std::cout << "(paper: reductions up to 28.81%/25.3%/50.86%/43.52% "
                 "at 25/50/75/100 checkpoints, avg 10-14%)\n";
    return 0;
}
