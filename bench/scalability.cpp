/**
 * @file
 * Sec. V-D4 scalability study: checkpointing overhead and ACR's
 * reductions at 8/16/32 threads (one thread per core). Paper: the
 * checkpointing overhead always exceeds 9% and averages ~45%/55%/60%
 * at 8/16/32 threads; ReCkpt_NE reduces it by up to 28.81% (is, 8t),
 * 17.78% (is, 16t) and 19.12% (mg, 32t), with EDP reductions up to
 * 47.98%/31.81%/33.8%.
 *
 * Doubles as the host-parallelism smoke test: the closing [sweep]
 * timing lines make the --jobs speedup observable (run with --jobs=1
 * and --jobs=N to compare wall clock).
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const unsigned jobs = parseJobs(argc, argv, "scalability");

    std::cout << "Scalability (Sec. V-D4): checkpoint overhead and ACR "
                 "reductions at 8/16/32 threads\n\n";

    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt),
        makeConfig(BerMode::kCkpt),
        makeConfig(BerMode::kReCkpt),
    };
    const auto &names = workloads::allWorkloadNames();

    for (unsigned threads : {8u, 16u, 32u}) {
        harness::Runner runner(threads);
        auto results = runSweep(runner, jobs, crossWorkloads(configs));

        Table table({"bench", "Ckpt_NE ovh %", "ReCkpt_NE ovh %",
                     "time red. %", "EDP red. %"});
        Summary time_red, edp_red;
        double overhead_sum = 0;
        double overhead_min = 1e300;

        for (std::size_t w = 0; w < names.size(); ++w) {
            const std::string &name = names[w];
            const auto *row = &results[w * configs.size()];
            const auto &base = row[0];
            const auto &ckpt = row[1];
            const auto &reckpt = row[2];

            double o_ckpt = ckpt.timeOverheadPct(base.cycles);
            double o_reckpt = reckpt.timeOverheadPct(base.cycles);
            overhead_sum += o_ckpt;
            overhead_min = std::min(overhead_min, o_ckpt);
            double t_red = reductionPct(o_ckpt, o_reckpt);
            double e_red = reckpt.edpReductionPct(ckpt.edp);
            time_red.add(name, t_red);
            edp_red.add(name, e_red);

            table.row()
                .cell(name)
                .cell(o_ckpt)
                .cell(o_reckpt)
                .cell(t_red)
                .cell(e_red);
        }

        std::cout << "--- " << threads << " threads ---\n";
        table.print(std::cout);
        std::cout << "checkpointing overhead: min " << overhead_min
                  << "%, avg " << overhead_sum / names.size() << "%\n";
        time_red.print(std::cout, "ReCkpt_NE overhead reduction");
        edp_red.print(std::cout, "EDP reduction");
        std::cout << "\n";
    }

    std::cout << "(paper: overhead >9% always, avg ~45/55/60% at "
                 "8/16/32 threads; reductions up to 28.81/17.78/19.12%)"
                 "\n";
    return 0;
}
