/**
 * @file
 * Sec. V-D4 scalability study: checkpointing overhead and ACR's
 * reductions at 8/16/32 threads (one thread per core). Paper: the
 * checkpointing overhead always exceeds 9% and averages ~45%/55%/60%
 * at 8/16/32 threads; ReCkpt_NE reduces it by up to 28.81% (is, 8t),
 * 17.78% (is, 16t) and 19.12% (mg, 32t), with EDP reductions up to
 * 47.98%/31.81%/33.8%.
 *
 * Doubles as the host-parallelism smoke test: the closing [sweep]
 * timing lines (now on stderr) make the --jobs/--forks speedup
 * observable (run with --jobs=1 and --jobs=N to compare wall clock).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const std::vector<unsigned> machines = {8, 16, 32};
    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt),
        makeConfig(BerMode::kCkpt),
        makeConfig(BerMode::kReCkpt),
    };

    harness::BenchSpec spec;
    spec.name = "scalability";
    spec.grid = [&](harness::BenchContext &ctx) {
        // One (workload x config) block per simulated machine size.
        std::vector<harness::GridPoint> points;
        for (unsigned threads : machines) {
            auto block = crossGrid(ctx.workloads(), configs, threads);
            points.insert(points.end(), block.begin(), block.end());
        }
        return points;
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note("Scalability (Sec. V-D4): checkpoint overhead and "
                 "ACR reductions at 8/16/32 threads\n\n");

        const auto &names = ctx.workloads();
        const std::size_t block = names.size() * configs.size();
        for (std::size_t m = 0; m < machines.size(); ++m) {
            Table table({"bench", "Ckpt_NE ovh %", "ReCkpt_NE ovh %",
                         "time red. %", "EDP red. %"});
            Summary time_red, edp_red;
            double overhead_sum = 0;
            double overhead_min = 1e300;

            for (std::size_t w = 0; w < names.size(); ++w) {
                const std::string &name = names[w];
                const auto *row =
                    &results[m * block + w * configs.size()];
                const auto &base = row[0];
                const auto &ckpt = row[1];
                const auto &reckpt = row[2];

                double o_ckpt = ckpt.timeOverheadPct(base.cycles);
                double o_reckpt = reckpt.timeOverheadPct(base.cycles);
                overhead_sum += o_ckpt;
                overhead_min = std::min(overhead_min, o_ckpt);
                double t_red = reductionPct(o_ckpt, o_reckpt);
                double e_red = reckpt.edpReductionPct(ckpt.edp);
                time_red.add(name, t_red);
                edp_red.add(name, e_red);

                table.row()
                    .cell(name)
                    .cell(o_ckpt)
                    .cell(o_reckpt)
                    .cell(t_red)
                    .cell(e_red);
            }

            ctx.note(csprintf("--- %u threads ---\n", machines[m]));
            ctx.emit(table);
            std::ostringstream overhead;
            overhead << "checkpointing overhead: min " << overhead_min
                     << "%, avg " << overhead_sum / names.size()
                     << "%\n";
            ctx.note(overhead.str());
            ctx.note(
                time_red.text("ReCkpt_NE overhead reduction"));
            ctx.note(edp_red.text("EDP reduction"));
            ctx.note("\n");
        }

        ctx.note("(paper: overhead >9% always, avg ~45/55/60% at "
                 "8/16/32 threads; reductions up to "
                 "28.81/17.78/19.12%)\n");
    };
    return harness::benchMain(argc, argv, spec);
}
