/**
 * @file
 * Figure 8: % reduction of energy-delay product under ReCkpt_NE and
 * ReCkpt_E w.r.t. Ckpt_NE and Ckpt_E respectively (paper: up to 47.98%
 * for is / 22.47% avg error-free, up to 48.07% for dc / 23.41% avg with
 * an error).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kCkpt),
        makeConfig(BerMode::kCkpt, 1),
        makeConfig(BerMode::kReCkpt),
        makeConfig(BerMode::kReCkpt, 1),
    };

    harness::BenchSpec spec;
    spec.name = "fig08_edp_reduction";
    spec.grid = [&](harness::BenchContext &ctx) {
        return crossGrid(ctx.workloads(), configs);
    };
    spec.render = [&](harness::BenchContext &ctx,
                      const std::vector<harness::ExperimentResult>
                          &results) {
        ctx.note("Figure 8: EDP reduction of ReCkpt_{NE,E} w.r.t. "
                 "Ckpt_{NE,E} (%)\n\n");

        Table table({"bench", "EDP red. NE %", "EDP red. E %"});
        Summary ne_reduction, e_reduction;

        const auto &names = ctx.workloads();
        for (std::size_t w = 0; w < names.size(); ++w) {
            const std::string &name = names[w];
            const auto *row = &results[w * configs.size()];

            double ne_red = row[2].edpReductionPct(row[0].edp);
            double e_red = row[3].edpReductionPct(row[1].edp);
            ne_reduction.add(name, ne_red);
            e_reduction.add(name, e_red);
            table.row().cell(name).cell(ne_red).cell(e_red);
        }
        ctx.emit(table);

        ctx.note("\n");
        ctx.note(ne_reduction.text("ReCkpt_NE EDP reduction"));
        ctx.note(e_reduction.text("ReCkpt_E EDP reduction"));
        ctx.note("(paper: up to 47.98% / 22.47% avg error-free; up to "
                 "48.07% / 23.41% avg with an error)\n");
    };
    return harness::benchMain(argc, argv, spec);
}
