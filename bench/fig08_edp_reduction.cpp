/**
 * @file
 * Figure 8: % reduction of energy-delay product under ReCkpt_NE and
 * ReCkpt_E w.r.t. Ckpt_NE and Ckpt_E respectively (paper: up to 47.98%
 * for is / 22.47% avg error-free, up to 48.07% for dc / 23.41% avg with
 * an error).
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    const unsigned jobs = parseJobs(argc, argv, "fig08_edp_reduction");
    harness::Runner runner(kDefaultThreads);

    std::cout << "Figure 8: EDP reduction of ReCkpt_{NE,E} w.r.t. "
                 "Ckpt_{NE,E} (%)\n\n";

    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kCkpt),
        makeConfig(BerMode::kCkpt, 1),
        makeConfig(BerMode::kReCkpt),
        makeConfig(BerMode::kReCkpt, 1),
    };
    auto results = runSweep(runner, jobs, crossWorkloads(configs));

    Table table({"bench", "EDP red. NE %", "EDP red. E %"});
    Summary ne_reduction, e_reduction;

    const auto &names = workloads::allWorkloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const auto *row = &results[w * configs.size()];

        double ne_red = row[2].edpReductionPct(row[0].edp);
        double e_red = row[3].edpReductionPct(row[1].edp);
        ne_reduction.add(name, ne_red);
        e_reduction.add(name, e_red);
        table.row().cell(name).cell(ne_red).cell(e_red);
    }
    table.print(std::cout);

    std::cout << "\n";
    ne_reduction.print(std::cout, "ReCkpt_NE EDP reduction");
    e_reduction.print(std::cout, "ReCkpt_E EDP reduction");
    std::cout << "(paper: up to 47.98% / 22.47% avg error-free; up to "
                 "48.07% / 23.41% avg with an error)\n";
    return 0;
}
