/**
 * @file
 * Figure 8: % reduction of energy-delay product under ReCkpt_NE and
 * ReCkpt_E w.r.t. Ckpt_NE and Ckpt_E respectively (paper: up to 47.98%
 * for is / 22.47% avg error-free, up to 48.07% for dc / 23.41% avg with
 * an error).
 */

#include <iostream>

#include "bench_util.hh"

int
main()
{
    using namespace acr;
    using namespace acr::bench;
    using harness::BerMode;

    harness::Runner runner(kDefaultThreads);

    std::cout << "Figure 8: EDP reduction of ReCkpt_{NE,E} w.r.t. "
                 "Ckpt_{NE,E} (%)\n\n";

    Table table({"bench", "EDP red. NE %", "EDP red. E %"});
    Summary ne_reduction, e_reduction;

    for (const auto &name : workloads::allWorkloadNames()) {
        auto ckpt_ne = runner.run(name, makeConfig(BerMode::kCkpt));
        auto ckpt_e = runner.run(name, makeConfig(BerMode::kCkpt, 1));
        auto reckpt_ne = runner.run(name, makeConfig(BerMode::kReCkpt));
        auto reckpt_e = runner.run(name, makeConfig(BerMode::kReCkpt, 1));

        double ne_red = reckpt_ne.edpReductionPct(ckpt_ne.edp);
        double e_red = reckpt_e.edpReductionPct(ckpt_e.edp);
        ne_reduction.add(name, ne_red);
        e_reduction.add(name, e_red);
        table.row().cell(name).cell(ne_red).cell(e_red);
    }
    table.print(std::cout);

    std::cout << "\n";
    ne_reduction.print(std::cout, "ReCkpt_NE EDP reduction");
    e_reduction.print(std::cout, "ReCkpt_E EDP reduction");
    std::cout << "(paper: up to 47.98% / 22.47% avg error-free; up to "
                 "48.07% / 23.41% avg with an error)\n";
    return 0;
}
