/**
 * @file
 * bench/perf: the engine-throughput benchmark behind BENCH_perf.json
 * and the CI perf gate (DESIGN.md §13.5).
 *
 * Runs the fig06 experiment grid — the same 8 workloads × 5 configs
 * every overhead figure multiplies — single-threaded, timing each
 * engine phase separately:
 *
 *   build_programs  workload kernel construction
 *   slice_pass      profiling pass (hint selection, NoCkpt reference)
 *   no_ckpt         baseline runs (no checkpoint substrate)
 *   ckpt            incremental checkpointing runs (Ckpt_NE + Ckpt_E)
 *   re_ckpt         ACR runs (ReCkpt_NE + ReCkpt_E)
 *
 * Unlike every other bench, the interesting output here is host wall
 * time, which is inherently nondeterministic — so this binary does NOT
 * go through benchMain's byte-identical rendering contract. The
 * simulated results it produces are still checked against the golden
 * grid by tests/perf_equiv_test.cpp; this front-end only measures how
 * fast they are produced.
 *
 * A short fixed arithmetic loop is timed first and reported as
 * `calibration.seconds`: scripts/perf_check multiplies points/sec by
 * it to get a host-speed-normalized score, so a baseline recorded on a
 * fast machine does not flag a regression on a slow one.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/options.hh"
#include "common/serde.hh"

namespace
{

using namespace acr;
using namespace acr::bench;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One timed engine phase of a measurement repeat. */
struct Phase
{
    std::string name;
    double seconds = 0.0;
    std::uint64_t points = 0;
    std::uint64_t instructions = 0;
};

/** One full measurement of the grid (a fresh Runner, cold caches). */
struct Measurement
{
    std::vector<Phase> phases;
    double seconds = 0.0;
    std::uint64_t points = 0;
    std::uint64_t instructions = 0;
    /**
     * Deterministic CSV of every grid point's *simulated* results —
     * the surface --results-out dumps so CI can assert that prefix
     * sharing moves no result byte (host wall times are excluded; they
     * are the one legitimately nondeterministic output of this bench).
     */
    std::string resultsCsv;
};

/**
 * Fixed integer workload (~100M LCG steps) timed to estimate host
 * speed. The result only ever appears as a *ratio* between two
 * BENCH_perf.json files, so the absolute work amount is arbitrary —
 * it just has to be the same in both.
 */
constexpr std::uint64_t kCalibrationIters = 100'000'000;

double
calibrate()
{
    auto start = Clock::now();
    std::uint64_t x = 0x2545F4914F6CDD1Dull;
    for (std::uint64_t i = 0; i < kCalibrationIters; ++i)
        x = x * 6364136223846793005ull + 1442695040888963407ull;
    double seconds = secondsSince(start);
    // Defeat dead-code elimination of the loop.
    if (x == 0)
        std::cerr << "";
    return seconds;
}

std::uint64_t
instrsOf(const harness::ExperimentResult &result)
{
    return static_cast<std::uint64_t>(result.stats.get("cores.instrs"));
}

/** Run the fig06 grid once on a fresh Runner, phase by phase. */
Measurement
measureOnce(const std::vector<std::string> &names, bool prefix_share)
{
    Measurement m;
    harness::Runner runner(kDefaultThreads);
    runner.setPrefixShare(prefix_share);

    auto phase = [&](const std::string &name, auto &&body) {
        Phase p;
        p.name = name;
        auto start = Clock::now();
        body(p);
        p.seconds = secondsSince(start);
        m.seconds += p.seconds;
        m.points += p.points;
        m.instructions += p.instructions;
        m.phases.push_back(std::move(p));
    };

    phase("build_programs", [&](Phase &) {
        for (const auto &name : names)
            runner.baseProgram(name);
    });

    phase("slice_pass", [&](Phase &p) {
        for (const auto &name : names) {
            const auto &pass = runner.profile(name);
            p.instructions += pass.totalProgress;
        }
    });

    auto run_configs =
        [&](Phase &p, const std::vector<harness::ExperimentConfig> &cfgs) {
            for (const auto &name : names) {
                for (const auto &config : cfgs) {
                    auto result = runner.run(name, config);
                    ++p.points;
                    p.instructions += instrsOf(result);
                    m.resultsCsv += csprintf(
                        "%s,%s,%llu,%.17g,%llu,%llu,%llu,%llu\n",
                        name.c_str(), config.label().c_str(),
                        static_cast<unsigned long long>(result.cycles),
                        result.energyPj,
                        static_cast<unsigned long long>(
                            result.checkpointsEstablished),
                        static_cast<unsigned long long>(
                            result.recoveries),
                        static_cast<unsigned long long>(
                            result.ckptBytesStored),
                        static_cast<unsigned long long>(
                            result.ckptBytesOmitted));
                }
            }
        };

    phase("no_ckpt", [&](Phase &p) {
        run_configs(p, {makeConfig(harness::BerMode::kNoCkpt)});
    });

    // Within each scheme the with-errors run goes first: it is the one
    // that captures the error-free-prefix snapshot (at its first fault
    // trigger), which the error-free sibling then resumes from instead
    // of re-simulating the whole program (DESIGN.md §13).
    phase("ckpt", [&](Phase &p) {
        run_configs(p, {makeConfig(harness::BerMode::kCkpt, 1),
                        makeConfig(harness::BerMode::kCkpt)});
    });

    phase("re_ckpt", [&](Phase &p) {
        run_configs(p, {makeConfig(harness::BerMode::kReCkpt, 1),
                        makeConfig(harness::BerMode::kReCkpt)});
    });

    return m;
}

std::uint64_t
peakRssBytes()
{
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    // Linux reports ru_maxrss in KiB.
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

serde::Json
toJson(const Measurement &m, double calibration_seconds,
       const std::vector<std::string> &names, unsigned repeats)
{
    double pts_per_sec = static_cast<double>(m.points) / m.seconds;
    double instrs_per_sec =
        static_cast<double>(m.instructions) / m.seconds;
    double ns_per_instr =
        m.seconds * 1e9 / static_cast<double>(m.instructions);

    serde::Json doc = serde::Json::object();
    doc.set("schema", "acr.bench_perf.v1");
    doc.set("bench", "perf");
    doc.set("grid", "fig06");
    doc.set("threads", kDefaultThreads);
    doc.set("checkpoints", kDefaultCheckpoints);
    doc.set("repeats", repeats);

    serde::Json workloads = serde::Json::array();
    for (const auto &name : names)
        workloads.push(name);
    doc.set("workloads", std::move(workloads));

    serde::Json calibration = serde::Json::object();
    calibration.set("iters", kCalibrationIters);
    calibration.set("seconds", calibration_seconds);
    doc.set("calibration", std::move(calibration));

    serde::Json totals = serde::Json::object();
    totals.set("seconds", m.seconds);
    totals.set("points", m.points);
    totals.set("points_per_sec", pts_per_sec);
    totals.set("instructions", m.instructions);
    totals.set("instructions_per_sec", instrs_per_sec);
    totals.set("ns_per_instruction", ns_per_instr);
    totals.set("peak_rss_bytes", peakRssBytes());
    doc.set("totals", std::move(totals));

    serde::Json phases = serde::Json::array();
    for (const auto &p : m.phases) {
        serde::Json entry = serde::Json::object();
        entry.set("name", p.name);
        entry.set("seconds", p.seconds);
        entry.set("points", p.points);
        entry.set("instructions", p.instructions);
        phases.push(std::move(entry));
    }
    doc.set("phases", std::move(phases));
    return doc;
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser options("perf");
    options.addString("out", "BENCH_perf.json",
                      "output JSON path (empty: don't write a file)");
    options.addString("format", "table",
                      "stdout rendering: table | json");
    options.addUint("repeats", 3,
                    "measurement repeats (fresh caches each); the "
                    "fastest repeat is reported");
    options.addString("prefix-share", "on",
                      "error-free prefix sharing between the runs of a "
                      "grid cell: on | off (off = full re-simulation; "
                      "results are identical either way)");
    options.addString("results-out", "",
                      "write a deterministic CSV of every grid point's "
                      "simulated results (no wall times) — byte-compare "
                      "runs with --prefix-share=on vs off");
    options.parse(argc, argv);

    const std::string out = options.getString("out");
    const std::string format = options.getString("format");
    const unsigned repeats =
        static_cast<unsigned>(options.getUint("repeats"));
    const std::string prefix_share_str =
        options.getString("prefix-share");
    if (format != "table" && format != "json")
        fatal("--format must be 'table' or 'json'");
    if (repeats < 1)
        fatal("--repeats must be >= 1");
    if (prefix_share_str != "on" && prefix_share_str != "off")
        fatal("--prefix-share must be 'on' or 'off'");
    const bool prefix_share = prefix_share_str == "on";

    const std::vector<std::string> names =
        workloads::allWorkloadNames();

    double calibration_seconds = calibrate();

    // Best-of-N: host noise only ever slows a repeat down, so the
    // fastest one is the truest measure of the engine.
    Measurement best;
    for (unsigned r = 0; r < repeats; ++r) {
        Measurement m = measureOnce(names, prefix_share);
        std::cerr << "perf: repeat " << (r + 1) << "/" << repeats
                  << ": " << m.seconds << " s, "
                  << static_cast<double>(m.points) / m.seconds
                  << " points/sec\n";
        if (r == 0 || m.seconds < best.seconds)
            best = std::move(m);
    }

    serde::Json doc =
        toJson(best, calibration_seconds, names, repeats);

    const std::string results_out = options.getString("results-out");
    if (!results_out.empty()) {
        std::ofstream file(results_out, std::ios::trunc);
        if (!file)
            fatal("cannot write '%s'", results_out.c_str());
        file << "workload,config,cycles,energy_pj,checkpoints,"
                "recoveries,ckpt_bytes_stored,ckpt_bytes_omitted\n"
             << best.resultsCsv;
    }

    if (!out.empty()) {
        std::ofstream file(out, std::ios::trunc);
        if (!file)
            fatal("cannot write '%s'", out.c_str());
        doc.write(file);
        file << "\n";
    }

    if (format == "json") {
        doc.write(std::cout);
        std::cout << "\n";
    } else {
        Table table({"phase", "seconds", "points", "instructions"});
        for (const auto &p : best.phases) {
            table.row()
                .cell(p.name)
                .cell(p.seconds, 3)
                .cell(static_cast<long long>(p.points))
                .cell(static_cast<long long>(p.instructions));
        }
        table.emit(std::cout, TableFormat::kTable);
        std::cout << "total: " << best.seconds << " s, "
                  << static_cast<double>(best.points) / best.seconds
                  << " points/sec, "
                  << best.seconds * 1e9 /
                         static_cast<double>(best.instructions)
                  << " ns/instruction\n";
    }
    return 0;
}
