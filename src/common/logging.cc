#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace acr
{

std::string
vcsprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string("<format error>");
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vcsprintf(fmt, args);
    va_end(args);
    return s;
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stdout, "info: %s\n", s.c_str());
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vcsprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

} // namespace acr
