#include "common/serde.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace acr::serde
{

namespace
{

[[noreturn]] void
fail(const std::string &message)
{
    throw SerdeError("serde: " + message);
}

const char *
kindName(Json::Kind kind)
{
    switch (kind) {
      case Json::Kind::kNull: return "null";
      case Json::Kind::kBool: return "bool";
      case Json::Kind::kUint: return "uint";
      case Json::Kind::kInt: return "int";
      case Json::Kind::kDouble: return "double";
      case Json::Kind::kString: return "string";
      case Json::Kind::kArray: return "array";
      case Json::Kind::kObject: return "object";
    }
    return "?";
}

void
writeEscaped(std::ostream &os, const std::string &text)
{
    os << '"';
    for (unsigned char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

/** Recursive-descent parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json
    document()
    {
        Json value = this->value();
        skipSpace();
        if (pos_ != text_.size())
            fail(csprintf("trailing characters at offset %zu", pos_));
        return value;
    }

  private:
    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    take()
    {
        char c = peek();
        ++pos_;
        return c;
    }

    void
    expect(char c)
    {
        if (take() != c)
            fail(csprintf("expected '%c' at offset %zu", c, pos_ - 1));
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    void
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            fail(csprintf("bad literal at offset %zu", pos_));
        pos_ += word.size();
    }

    Json
    value()
    {
        skipSpace();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return Json(string());
          case 't': literal("true"); return Json(true);
          case 'f': literal("false"); return Json(false);
          case 'n': literal("null"); return Json(nullptr);
          default: return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json result = Json::object();
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return result;
        }
        while (true) {
            skipSpace();
            std::string key = string();
            if (result.find(key))
                fail("duplicate object key '" + key + "'");
            skipSpace();
            expect(':');
            result.set(key, value());
            skipSpace();
            char c = take();
            if (c == '}')
                return result;
            if (c != ',')
                fail(csprintf("expected ',' or '}' at offset %zu",
                              pos_ - 1));
        }
    }

    Json
    array()
    {
        expect('[');
        Json result = Json::array();
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return result;
        }
        while (true) {
            result.push(value());
            skipSpace();
            char c = take();
            if (c == ']')
                return result;
            if (c != ',')
                fail(csprintf("expected ',' or ']' at offset %zu",
                              pos_ - 1));
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = take();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            char esc = take();
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += unicodeEscape(); break;
              default:
                fail(csprintf("bad escape '\\%c'", esc));
            }
        }
    }

    std::string
    unicodeEscape()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            char c = take();
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad \\u escape");
        }
        // Encode the (BMP-only) code point as UTF-8; surrogate halves
        // never appear in the wire schema's ASCII identifiers.
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
        return out;
    }

    Json
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        std::string_view token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-")
            fail(csprintf("bad number at offset %zu", start));

        const bool integral =
            token.find_first_of(".eE") == std::string_view::npos;
        const char *first = token.data();
        const char *last = token.data() + token.size();
        if (integral && token[0] != '-') {
            std::uint64_t value = 0;
            auto [ptr, ec] = std::from_chars(first, last, value);
            if (ec == std::errc() && ptr == last)
                return Json(value);
        } else if (integral) {
            std::int64_t value = 0;
            auto [ptr, ec] = std::from_chars(first, last, value);
            if (ec == std::errc() && ptr == last)
                return Json(value);
        } else {
            double value = 0.0;
            auto [ptr, ec] = std::from_chars(first, last, value);
            if (ec == std::errc() && ptr == last)
                return Json(value);
        }
        fail(csprintf("bad number '%s'",
                      std::string(token).c_str()));
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
formatDouble(double value)
{
    if (!std::isfinite(value))
        fail("cannot encode a non-finite number");
    if (value == 0.0)
        return "0";  // normalize -0.0: sign bits don't survive the wire
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    if (ec != std::errc())
        fail("double format overflow");
    return std::string(buf, ptr);
}

Json::Json(std::int64_t value)
{
    if (value >= 0) {
        kind_ = Kind::kUint;
        uint_ = static_cast<std::uint64_t>(value);
    } else {
        kind_ = Kind::kInt;
        int_ = value;
    }
}

Json
Json::object()
{
    Json json;
    json.kind_ = Kind::kObject;
    return json;
}

Json
Json::array()
{
    Json json;
    json.kind_ = Kind::kArray;
    return json;
}

Json &
Json::set(const std::string &key, Json value)
{
    ACR_ASSERT(kind_ == Kind::kObject, "set() on a non-object");
    ACR_ASSERT(find(key) == nullptr, "duplicate key '%s'", key.c_str());
    members_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    ACR_ASSERT(kind_ == Kind::kArray, "push() on a non-array");
    items_.push_back(std::move(value));
    return *this;
}

bool
Json::asBool() const
{
    if (kind_ != Kind::kBool)
        fail(csprintf("expected bool, got %s", kindName(kind_)));
    return bool_;
}

std::uint64_t
Json::asUint() const
{
    if (kind_ != Kind::kUint)
        fail(csprintf("expected unsigned integer, got %s",
                      kindName(kind_)));
    return uint_;
}

std::int64_t
Json::asInt() const
{
    if (kind_ == Kind::kInt)
        return int_;
    if (kind_ == Kind::kUint) {
        if (uint_ > static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max()))
            fail("integer does not fit in int64");
        return static_cast<std::int64_t>(uint_);
    }
    fail(csprintf("expected integer, got %s", kindName(kind_)));
}

double
Json::asDouble() const
{
    switch (kind_) {
      case Kind::kDouble: return double_;
      case Kind::kUint: return static_cast<double>(uint_);
      case Kind::kInt: return static_cast<double>(int_);
      default:
        fail(csprintf("expected number, got %s", kindName(kind_)));
    }
}

const std::string &
Json::asString() const
{
    if (kind_ != Kind::kString)
        fail(csprintf("expected string, got %s", kindName(kind_)));
    return string_;
}

const std::vector<Json> &
Json::items() const
{
    if (kind_ != Kind::kArray)
        fail(csprintf("expected array, got %s", kindName(kind_)));
    return items_;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (kind_ != Kind::kObject)
        fail(csprintf("expected object, got %s", kindName(kind_)));
    return members_;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::kObject)
        fail(csprintf("expected object, got %s", kindName(kind_)));
    for (const auto &[name, value] : members_)
        if (name == key)
            return &value;
    return nullptr;
}

void
Json::write(std::ostream &os) const
{
    switch (kind_) {
      case Kind::kNull:
        os << "null";
        break;
      case Kind::kBool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::kUint:
        os << uint_;
        break;
      case Kind::kInt:
        os << int_;
        break;
      case Kind::kDouble:
        os << formatDouble(double_);
        break;
      case Kind::kString:
        writeEscaped(os, string_);
        break;
      case Kind::kArray: {
        os << '[';
        bool first = true;
        for (const auto &item : items_) {
            if (!first)
                os << ',';
            first = false;
            item.write(os);
        }
        os << ']';
        break;
      }
      case Kind::kObject: {
        os << '{';
        bool first = true;
        for (const auto &[key, value] : members_) {
            if (!first)
                os << ',';
            first = false;
            writeEscaped(os, key);
            os << ':';
            value.write(os);
        }
        os << '}';
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::ostringstream oss;
    write(oss);
    return oss.str();
}

Json
Json::parse(std::string_view text)
{
    return Parser(text).document();
}

ObjectReader::ObjectReader(const Json &object, std::string what)
    : object_(object), what_(std::move(what))
{
    for (const auto &[key, value] : object_.members())
        consumed_[key] = false;
}

const Json &
ObjectReader::require(const std::string &key)
{
    const Json *value = object_.find(key);
    if (!value)
        fail(what_ + ": missing key '" + key + "'");
    consumed_[key] = true;
    return *value;
}

const Json *
ObjectReader::optional(const std::string &key)
{
    const Json *value = object_.find(key);
    if (value)
        consumed_[key] = true;
    return value;
}

bool
ObjectReader::requireBool(const std::string &key)
{
    return require(key).asBool();
}

std::uint64_t
ObjectReader::requireUint(const std::string &key)
{
    return require(key).asUint();
}

double
ObjectReader::requireDouble(const std::string &key)
{
    return require(key).asDouble();
}

std::string
ObjectReader::requireString(const std::string &key)
{
    return require(key).asString();
}

void
ObjectReader::finish()
{
    for (const auto &[key, used] : consumed_)
        if (!used)
            fail(what_ + ": unknown key '" + key +
                 "' (wire version mismatch?)");
}

} // namespace acr::serde
