/**
 * @file
 * EventTrace: a lightweight timeline of simulation-level events
 * (checkpoint establishments, error injections, recoveries), exportable
 * as a human-readable timeline or as Chrome trace-event JSON
 * (chrome://tracing / Perfetto) for visual inspection of a run.
 */

#ifndef ACR_COMMON_TRACE_HH
#define ACR_COMMON_TRACE_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace acr
{

/** A recorded event spanning [start, end] simulated cycles. */
struct TraceEvent
{
    std::string category;
    std::string name;
    Cycle start = 0;
    Cycle end = 0;

    bool isInstant() const { return end == start; }
};

/** Append-only event timeline. */
class EventTrace
{
  public:
    /** Record a spanning event. end must be >= start. */
    void span(const std::string &category, const std::string &name,
              Cycle start, Cycle end);

    /** Record an instantaneous event. */
    void instant(const std::string &category, const std::string &name,
                 Cycle at);

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /** One line per event, sorted by start cycle. */
    void writeTimeline(std::ostream &os) const;

    /**
     * Chrome trace-event format (JSON array of "X"/"i" phase events;
     * cycles are reported as microseconds for viewer convenience).
     */
    void writeChromeJson(std::ostream &os) const;

  private:
    std::vector<TraceEvent> events_;
};

} // namespace acr

#endif // ACR_COMMON_TRACE_HH
