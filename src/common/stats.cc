#include "common/stats.hh"

#include <iomanip>

namespace acr
{

void
StatSet::add(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

void
StatSet::clear()
{
    for (auto &kv : values_)
        kv.second = 0.0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &kv : other.values_)
        values_[kv.first] += kv.second;
}

StatSet
StatSet::diff(const StatSet &other) const
{
    StatSet out;
    out.values_ = values_;
    for (const auto &kv : other.values_)
        out.values_[kv.first] -= kv.second;
    return out;
}

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &kv : values_) {
        if (!prefix.empty() && kv.first.rfind(prefix, 0) != 0)
            continue;
        os << std::left << std::setw(40) << kv.first << " "
           << std::setprecision(12) << kv.second << "\n";
    }
}

} // namespace acr
