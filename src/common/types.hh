/**
 * @file
 * Fundamental machine types and address-geometry helpers shared by every
 * module of the ACR reproduction.
 *
 * The simulated machine is word-addressed: an Addr names one 64-bit word.
 * Cache lines span kWordsPerLine consecutive words (64 bytes, matching
 * Table I of the paper), and all cache/DRAM traffic is accounted at line
 * granularity while checkpoint undo-log records are word granular (see
 * DESIGN.md, "Granularity substitution").
 */

#ifndef ACR_COMMON_TYPES_HH
#define ACR_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace acr
{

/** A 64-bit machine word: the unit of registers, memory, and logging. */
using Word = std::uint64_t;

/** Signed view of a machine word, for arithmetic that needs a sign. */
using SWord = std::int64_t;

/** A word-granular memory address. */
using Addr = std::uint64_t;

/** A simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Energy in picojoules. */
using Energy = double;

/** Identifier of a core (equivalently, of the thread pinned to it). */
using CoreId = std::uint32_t;

/** Bytes per machine word. */
inline constexpr std::size_t kWordBytes = 8;

/** Words per cache line (64-byte lines per Table I). */
inline constexpr std::size_t kWordsPerLine = 8;

/** Bytes per cache line. */
inline constexpr std::size_t kLineBytes = kWordBytes * kWordsPerLine;

/** Identifier of a cache line (its index in line-granular space). */
using LineId = std::uint64_t;

/** Line containing the given word address. */
constexpr LineId
lineOf(Addr addr)
{
    return addr / kWordsPerLine;
}

/** First word address of the given line. */
constexpr Addr
lineBase(LineId line)
{
    return line * kWordsPerLine;
}

/** Offset of a word address within its line. */
constexpr std::size_t
lineOffset(Addr addr)
{
    return static_cast<std::size_t>(addr % kWordsPerLine);
}

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = ~Addr{0};

/** Sentinel for "no core". */
inline constexpr CoreId kInvalidCore = ~CoreId{0};

} // namespace acr

#endif // ACR_COMMON_TYPES_HH
