/**
 * @file
 * Console table and CSV emission used by every bench binary to print the
 * rows/series the paper's tables and figures report.
 */

#ifndef ACR_COMMON_TABLE_HH
#define ACR_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace acr
{

/**
 * A simple column-aligned table. Cells are strings; numeric helpers format
 * with a fixed precision.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a numeric cell with @p precision decimal places. */
    Table &cell(double value, int precision = 2);

    /** Append an integral cell. */
    Table &cell(long long value);

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Print with aligned columns and a header separator. */
    void print(std::ostream &os) const;

    /** Print as CSV (comma-separated, header first). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace acr

#endif // ACR_COMMON_TABLE_HH
