/**
 * @file
 * Console table emission used by every bench binary to print the
 * rows/series the paper's tables and figures report. A table renders
 * through a pluggable emitter (TableFormat): aligned console text,
 * CSV, or line-delimited JSON objects written with the acr::serde
 * writer so sweep output can be piped into the BENCH_*.json
 * trajectory tooling.
 */

#ifndef ACR_COMMON_TABLE_HH
#define ACR_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace acr
{

/** Output shape of Table::emit (the benches' --format flag). */
enum class TableFormat
{
    kTable,  ///< aligned console columns with a header rule
    kCsv,    ///< comma-separated, header row first
    kJson,   ///< one JSON object per row, keyed by header
};

/** Parse "table" | "csv" | "json"; fatal() on anything else. */
TableFormat parseTableFormat(const std::string &name);

/**
 * A simple table. Cells are formatted strings; the numeric overloads
 * remember that the cell is a number so the JSON emitter can write it
 * unquoted.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a numeric cell with @p precision decimal places. A
     *  non-finite value renders as a "FAILED" string cell in every
     *  emitter (the quarantined-sweep-point marker). */
    Table &cell(double value, int precision = 2);

    /** Append an integral cell. */
    Table &cell(long long value);

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Print with aligned columns and a header separator. */
    void print(std::ostream &os) const;

    /** Print as CSV (comma-separated, header first). */
    void printCsv(std::ostream &os) const;

    /** One serde-encoded JSON object per row ({"header": cell, ...}),
     *  numeric cells unquoted, in line-delimited form. */
    void printJson(std::ostream &os) const;

    /** Render via the emitter selected by @p format. */
    void emit(std::ostream &os, TableFormat format) const;

  private:
    struct Cell
    {
        std::string text;
        bool numeric = false;
    };

    Table &pushCell(std::string text, bool numeric);

    std::vector<std::string> headers_;
    std::vector<std::vector<Cell>> rows_;
};

} // namespace acr

#endif // ACR_COMMON_TABLE_HH
