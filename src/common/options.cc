#include "common/options.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace acr
{

namespace
{

/** strto* skip leading whitespace; a strict parse does not. */
bool
startsWithSpace(const std::string &text)
{
    return !text.empty() &&
           std::isspace(static_cast<unsigned char>(text[0])) != 0;
}

} // namespace

bool
parseStrictInt(const std::string &text, long long &out)
{
    if (text.empty() || startsWithSpace(text))
        return false;
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = value;
    return true;
}

bool
parseStrictUint(const std::string &text, unsigned long long &out)
{
    if (text.empty() || startsWithSpace(text))
        return false;
    // strtoull silently negates "-1"; reject any sign character so a
    // negative (or explicitly signed) count can't alias a huge value.
    if (text[0] == '-' || text[0] == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = value;
    return true;
}

bool
parseStrictDouble(const std::string &text, double &out)
{
    if (text.empty() || startsWithSpace(text))
        return false;
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return false;
    // ERANGE covers both overflow (±HUGE_VAL) and underflow (a
    // denormal or zero). Underflowed values are still usable
    // approximations; only overflow is a lie worth rejecting.
    if (errno == ERANGE && std::abs(value) == HUGE_VAL)
        return false;
    out = value;
    return true;
}

bool
parseHostPort(const std::string &spec, std::string &host,
              std::uint16_t &port, bool allow_zero_port)
{
    // Split at the last colon so a future bracketed-IPv6 host with
    // embedded colons fails loudly rather than parsing a piece of the
    // address as the port.
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == spec.size())
        return false;
    unsigned long long parsed = 0;
    if (!parseStrictUint(spec.substr(colon + 1), parsed))
        return false;
    if (parsed > 65535 || (parsed == 0 && !allow_zero_port))
        return false;
    host = spec.substr(0, colon);
    port = static_cast<std::uint16_t>(parsed);
    return true;
}

OptionParser::OptionParser(std::string program_name)
    : programName_(std::move(program_name))
{
}

void
OptionParser::addString(const std::string &name, const std::string &def,
                        const std::string &help)
{
    options_[name] = Option{Kind::kString, def, def, help};
    order_.push_back(name);
}

void
OptionParser::addInt(const std::string &name, long long def,
                     const std::string &help)
{
    std::string d = std::to_string(def);
    options_[name] = Option{Kind::kInt, d, d, help};
    order_.push_back(name);
}

void
OptionParser::addUint(const std::string &name, unsigned long long def,
                      const std::string &help)
{
    std::string d = std::to_string(def);
    options_[name] = Option{Kind::kUint, d, d, help};
    order_.push_back(name);
}

void
OptionParser::addDouble(const std::string &name, double def,
                        const std::string &help)
{
    std::ostringstream oss;
    oss << def;
    options_[name] = Option{Kind::kDouble, oss.str(), oss.str(), help};
    order_.push_back(name);
}

void
OptionParser::addFlag(const std::string &name, const std::string &help)
{
    options_[name] = Option{Kind::kFlag, "0", "0", help};
    order_.push_back(name);
}

void
OptionParser::assign(Option &opt, const std::string &source,
                     const std::string &value)
{
    if (opt.kind == Kind::kInt) {
        long long parsed = 0;
        if (!parseStrictInt(value, parsed))
            fatal("%s expects an in-range integer, got '%s'",
                  source.c_str(), value.c_str());
    } else if (opt.kind == Kind::kUint) {
        unsigned long long parsed = 0;
        if (!parseStrictUint(value, parsed))
            fatal("%s expects an in-range unsigned integer, got '%s'",
                  source.c_str(), value.c_str());
    } else if (opt.kind == Kind::kDouble) {
        double parsed = 0.0;
        if (!parseStrictDouble(value, parsed))
            fatal("%s expects an in-range number, got '%s'",
                  source.c_str(), value.c_str());
    }
    opt.value = value;
}

void
OptionParser::envDefault(const std::string &name, const char *env_var)
{
    auto it = options_.find(name);
    if (it == options_.end())
        panic("envDefault: option '%s' was never declared", name.c_str());
    const char *text = std::getenv(env_var);
    if (text == nullptr || *text == '\0')
        return;
    Option &opt = it->second;
    if (opt.kind == Kind::kFlag) {
        // A flag's environment form is explicit: "0"/"1" only, so a
        // stray ACR_FOO=yes fails loudly instead of silently enabling.
        if (std::string(text) == "1")
            opt.value.assign(1, '1');
        else if (std::string(text) == "0")
            opt.value.assign(1, '0');
        else
            fatal("%s expects 0 or 1, got '%s'", env_var, text);
        return;
    }
    assign(opt, env_var, text);
}

void
OptionParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '%s'", arg.c_str());
        arg = arg.substr(2);
        std::string name = arg;
        std::string value;
        bool has_value = false;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end())
            fatal("unknown option '--%s'\n%s", name.c_str(),
                  usage().c_str());
        Option &opt = it->second;
        if (opt.kind == Kind::kFlag) {
            if (has_value)
                fatal("flag '--%s' does not take a value", name.c_str());
            opt.value.assign(1, '1');
            continue;
        }
        if (!has_value)
            fatal("option '--%s' requires =value", name.c_str());
        assign(opt, "option '--" + name + "'", value);
    }
}

const OptionParser::Option &
OptionParser::find(const std::string &name, Kind kind) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        panic("option '%s' was never declared", name.c_str());
    if (it->second.kind != kind)
        panic("option '%s' accessed with the wrong type", name.c_str());
    return it->second;
}

std::string
OptionParser::getString(const std::string &name) const
{
    return find(name, Kind::kString).value;
}

long long
OptionParser::getInt(const std::string &name) const
{
    long long value = 0;
    if (!parseStrictInt(find(name, Kind::kInt).value, value))
        fatal("option '--%s' holds an unparseable integer '%s'",
              name.c_str(), find(name, Kind::kInt).value.c_str());
    return value;
}

unsigned long long
OptionParser::getUint(const std::string &name) const
{
    unsigned long long value = 0;
    if (!parseStrictUint(find(name, Kind::kUint).value, value))
        fatal("option '--%s' holds an unparseable unsigned integer '%s'",
              name.c_str(), find(name, Kind::kUint).value.c_str());
    return value;
}

double
OptionParser::getDouble(const std::string &name) const
{
    double value = 0.0;
    if (!parseStrictDouble(find(name, Kind::kDouble).value, value))
        fatal("option '--%s' holds an unparseable number '%s'",
              name.c_str(), find(name, Kind::kDouble).value.c_str());
    return value;
}

bool
OptionParser::getFlag(const std::string &name) const
{
    return find(name, Kind::kFlag).value == "1";
}

std::string
OptionParser::usage() const
{
    std::ostringstream oss;
    oss << "usage: " << programName_ << " [options]\n";
    for (const auto &name : order_) {
        const Option &opt = options_.at(name);
        oss << "  --" << name;
        if (opt.kind != Kind::kFlag)
            oss << "=<v>";
        oss << "  " << opt.help << " (default: " << opt.def << ")\n";
    }
    return oss.str();
}

} // namespace acr
