/**
 * @file
 * Minimal command-line option parsing for the bench and example binaries:
 * "--name=value" and "--flag" forms, with typed accessors and generated
 * usage text.
 */

#ifndef ACR_COMMON_OPTIONS_HH
#define ACR_COMMON_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace acr
{

/**
 * Strict numeric parsing shared by every flag and environment-variable
 * code path: the whole string must be one base-10 value, in range for
 * the target type. Empty input, leading/trailing garbage (including
 * whitespace), and overflow/underflow (ERANGE) all return false — so
 * "--retries=99999999999999999999" or ACR_JOBS="4x" fail loudly
 * instead of silently clamping or truncating.
 */
bool parseStrictInt(const std::string &text, long long &out);
bool parseStrictUint(const std::string &text, unsigned long long &out);
bool parseStrictDouble(const std::string &text, double &out);

/**
 * Strict "HOST:PORT" parse shared by the distributed-sweep endpoints
 * (--listen, --connect, ACR_CONNECT): the split is at the *last*
 * colon, the host must be nonempty, and the port goes through
 * parseStrictUint — so "host:80x", "host: 80", "host:+80", and a bare
 * "host" all return false instead of silently truncating. The port
 * must fit [0, 65535]; 0 is accepted only with @p allow_zero_port
 * (the listen side's "pick a free port" wildcard — a connect target
 * of port 0 is always a mistake). Callers name the flag in their own
 * error message.
 */
bool parseHostPort(const std::string &spec, std::string &host,
                   std::uint16_t &port, bool allow_zero_port);

/** Declarative command-line option parser. */
class OptionParser
{
  public:
    /** @param program_name used in usage output. */
    explicit OptionParser(std::string program_name);

    /** Declare a string option with a default. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Declare an integer option with a default. */
    void addInt(const std::string &name, long long def,
                const std::string &help);

    /** Declare an unsigned option with a default (rejects any sign). */
    void addUint(const std::string &name, unsigned long long def,
                 const std::string &help);

    /** Declare a floating-point option with a default. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);

    /** Declare a boolean flag (default false; "--name" sets true). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Route an environment variable through the declared option: if
     * `env_var` is set and nonempty, its text is assigned to `--name`
     * through the same validation as a command-line "--name=value"
     * (fatal() on a type error names the variable). Call between the
     * declarations and parse() — argv is applied later, so an explicit
     * flag always wins over the environment.
     */
    void envDefault(const std::string &name, const char *env_var);

    /**
     * Parse argv. Calls fatal() on unknown options or type errors.
     * Handles "--help" by printing usage and exiting 0.
     */
    void parse(int argc, const char *const *argv);

    std::string getString(const std::string &name) const;
    long long getInt(const std::string &name) const;
    unsigned long long getUint(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** Usage text for all declared options. */
    std::string usage() const;

  private:
    enum class Kind { kString, kInt, kUint, kDouble, kFlag };

    struct Option
    {
        Kind kind;
        std::string value;
        std::string def;
        std::string help;
    };

    const Option &find(const std::string &name, Kind kind) const;

    /** Shared assignment/validation for argv and environment values.
     *  `source` names the origin ("option '--jobs'" or "ACR_JOBS") in
     *  error messages. */
    void assign(Option &opt, const std::string &source,
                const std::string &value);

    std::string programName_;
    std::map<std::string, Option> options_;
    std::vector<std::string> order_;
};

} // namespace acr

#endif // ACR_COMMON_OPTIONS_HH
