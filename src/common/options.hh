/**
 * @file
 * Minimal command-line option parsing for the bench and example binaries:
 * "--name=value" and "--flag" forms, with typed accessors and generated
 * usage text.
 */

#ifndef ACR_COMMON_OPTIONS_HH
#define ACR_COMMON_OPTIONS_HH

#include <map>
#include <string>
#include <vector>

namespace acr
{

/** Declarative command-line option parser. */
class OptionParser
{
  public:
    /** @param program_name used in usage output. */
    explicit OptionParser(std::string program_name);

    /** Declare a string option with a default. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Declare an integer option with a default. */
    void addInt(const std::string &name, long long def,
                const std::string &help);

    /** Declare a floating-point option with a default. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);

    /** Declare a boolean flag (default false; "--name" sets true). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Calls fatal() on unknown options or type errors.
     * Handles "--help" by printing usage and exiting 0.
     */
    void parse(int argc, const char *const *argv);

    std::string getString(const std::string &name) const;
    long long getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** Usage text for all declared options. */
    std::string usage() const;

  private:
    enum class Kind { kString, kInt, kDouble, kFlag };

    struct Option
    {
        Kind kind;
        std::string value;
        std::string def;
        std::string help;
    };

    const Option &find(const std::string &name, Kind kind) const;

    std::string programName_;
    std::map<std::string, Option> options_;
    std::vector<std::string> order_;
};

} // namespace acr

#endif // ACR_COMMON_OPTIONS_HH
