/**
 * @file
 * OnceCache: a key → value cache safe for concurrent use. Each value is
 * computed exactly once — concurrent requesters for the same key block
 * on a per-key mutex until the first computation finishes — and is
 * immutable afterwards, so readers share it without further locking.
 * The map itself is guarded by a shared_mutex (hits take only a shared
 * lock). References returned stay valid for the cache's lifetime: slots
 * are heap-allocated and the map is node-based, so neither rehashing
 * nor later insertions move a published value.
 */

#ifndef ACR_COMMON_ONCE_CACHE_HH
#define ACR_COMMON_ONCE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>

namespace acr
{

template <typename Key, typename Value>
class OnceCache
{
  public:
    /**
     * The value for @p key, running @p compute (nullary, returning
     * Value) to fill it on first request. The computation runs outside
     * the map lock, so distinct keys compute concurrently and @p compute
     * may itself use this or other OnceCaches (as long as the key
     * dependency graph is acyclic).
     */
    template <typename Compute>
    const Value &
    getOrCompute(const Key &key, Compute &&compute)
    {
        Slot *slot = nullptr;
        {
            std::shared_lock lock(mapMutex_);
            auto it = slots_.find(key);
            if (it != slots_.end())
                slot = it->second.get();
        }
        if (!slot) {
            std::unique_lock lock(mapMutex_);
            slot = slots_.try_emplace(key, std::make_unique<Slot>())
                       .first->second.get();
        }
        if (!slot->ready.load(std::memory_order_acquire)) {
            std::scoped_lock lock(slot->mutex);
            if (!slot->ready.load(std::memory_order_relaxed)) {
                slot->value.emplace(compute());
                computes_.fetch_add(1, std::memory_order_relaxed);
                slot->ready.store(true, std::memory_order_release);
            }
        }
        return *slot->value;
    }

    /** The value for @p key if already computed, else nullptr. */
    const Value *
    find(const Key &key) const
    {
        std::shared_lock lock(mapMutex_);
        auto it = slots_.find(key);
        if (it == slots_.end() ||
            !it->second->ready.load(std::memory_order_acquire))
            return nullptr;
        return &*it->second->value;
    }

    /** Number of distinct keys ever requested. */
    std::size_t
    size() const
    {
        std::shared_lock lock(mapMutex_);
        return slots_.size();
    }

    /** Number of computations actually run (the exactly-once audit). */
    std::uint64_t
    computes() const
    {
        return computes_.load(std::memory_order_relaxed);
    }

  private:
    struct Slot
    {
        std::mutex mutex;
        std::atomic<bool> ready{false};
        std::optional<Value> value;
    };

    mutable std::shared_mutex mapMutex_;
    std::map<Key, std::unique_ptr<Slot>> slots_;
    std::atomic<std::uint64_t> computes_{0};
};

} // namespace acr

#endif // ACR_COMMON_ONCE_CACHE_HH
