#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"
#include "common/serde.hh"

namespace acr
{

TableFormat
parseTableFormat(const std::string &name)
{
    if (name == "table")
        return TableFormat::kTable;
    if (name == "csv")
        return TableFormat::kCsv;
    if (name == "json")
        return TableFormat::kJson;
    fatal("unknown --format '%s' (want table, csv, or json)",
          name.c_str());
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    ACR_ASSERT(!headers_.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::pushCell(std::string text, bool numeric)
{
    ACR_ASSERT(!rows_.empty(), "cell() before row()");
    ACR_ASSERT(rows_.back().size() < headers_.size(),
               "row has more cells than headers");
    rows_.back().push_back(Cell{std::move(text), numeric});
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    return pushCell(value, false);
}

Table &
Table::cell(double value, int precision)
{
    // A non-finite value marks a metric poisoned by a quarantined
    // sweep point (ExperimentResult::quarantined): every emitter
    // renders it as a visible FAILED cell (a string, so the JSON
    // emitter stays valid JSON — bare nan/inf would not parse).
    if (!std::isfinite(value))
        return pushCell("FAILED", false);
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return pushCell(oss.str(), true);
}

Table &
Table::cell(long long value)
{
    return pushCell(std::to_string(value), true);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].text.size());

    auto print_row = [&](auto get_cell) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << get_cell(c);
        }
        os << "\n";
    };

    print_row([&](std::size_t c) { return headers_[c]; });
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &r : rows_)
        print_row([&](std::size_t c) {
            return c < r.size() ? r[c].text : std::string();
        });
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](std::size_t columns, auto get_cell) {
        for (std::size_t c = 0; c < columns; ++c) {
            if (c)
                os << ",";
            os << get_cell(c);
        }
        os << "\n";
    };
    print_row(headers_.size(),
              [&](std::size_t c) { return headers_[c]; });
    for (const auto &r : rows_)
        print_row(r.size(),
                  [&](std::size_t c) { return r[c].text; });
}

void
Table::printJson(std::ostream &os) const
{
    // The row objects are assembled by hand because numeric cells are
    // already formatted at the table's precision; only strings need
    // the serde escaper.
    for (const auto &r : rows_) {
        os << '{';
        for (std::size_t c = 0; c < r.size(); ++c) {
            if (c)
                os << ',';
            os << serde::Json(headers_[c]).dump() << ':';
            if (r[c].numeric)
                os << r[c].text;
            else
                os << serde::Json(r[c].text).dump();
        }
        os << "}\n";
    }
}

void
Table::emit(std::ostream &os, TableFormat format) const
{
    switch (format) {
      case TableFormat::kTable:
        print(os);
        break;
      case TableFormat::kCsv:
        printCsv(os);
        break;
      case TableFormat::kJson:
        printJson(os);
        break;
    }
}

} // namespace acr
