#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace acr
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    ACR_ASSERT(!headers_.empty(), "table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    ACR_ASSERT(!rows_.empty(), "cell() before row()");
    ACR_ASSERT(rows_.back().size() < headers_.size(),
               "row has more cells than headers");
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return cell(oss.str());
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c]
                                                    : std::string();
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << v;
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &r : rows_)
        print_row(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    print_row(headers_);
    for (const auto &r : rows_)
        print_row(r);
}

} // namespace acr
