/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256** seeded via
 * splitmix64). Every stochastic choice in the simulator — workload data,
 * error placement — goes through this generator so that runs are exactly
 * reproducible from a seed, which the rollback/re-execution correctness
 * tests depend on.
 */

#ifndef ACR_COMMON_RNG_HH
#define ACR_COMMON_RNG_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"

namespace acr
{

/** xoshiro256** 1.0 by Blackman & Vigna (public domain reference). */
class Rng
{
  public:
    /** Seed the full 256-bit state from one 64-bit seed via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        ACR_ASSERT(bound != 0, "Rng::below(0)");
        // Rejection sampling to remove modulo bias.
        const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0}
                                                         % bound) - 1;
        std::uint64_t v;
        do {
            v = next();
        } while (v > limit);
        return v % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        ACR_ASSERT(lo <= hi, "Rng::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with the given success probability. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace acr

#endif // ACR_COMMON_RNG_HH
