#include "common/trace.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace acr
{

void
EventTrace::span(const std::string &category, const std::string &name,
                 Cycle start, Cycle end)
{
    ACR_ASSERT(end >= start, "trace span ends before it starts");
    events_.push_back({category, name, start, end});
}

void
EventTrace::instant(const std::string &category, const std::string &name,
                    Cycle at)
{
    events_.push_back({category, name, at, at});
}

void
EventTrace::writeTimeline(std::ostream &os) const
{
    std::vector<const TraceEvent *> sorted;
    sorted.reserve(events_.size());
    for (const auto &event : events_)
        sorted.push_back(&event);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent *a, const TraceEvent *b) {
                         return a->start < b->start;
                     });

    for (const TraceEvent *event : sorted) {
        os << std::setw(12) << event->start;
        if (event->isInstant())
            os << "               ";
        else
            os << " .. " << std::setw(10) << event->end;
        os << "  [" << event->category << "] " << event->name << "\n";
    }
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
EventTrace::writeChromeJson(std::ostream &os) const
{
    os << "[";
    bool first = true;
    for (const auto &event : events_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"cat\": \"" << jsonEscape(event.category)
           << "\", \"name\": \"" << jsonEscape(event.name)
           << "\", \"pid\": 1, \"tid\": 1, \"ts\": " << event.start;
        if (event.isInstant()) {
            os << ", \"ph\": \"i\", \"s\": \"g\"}";
        } else {
            os << ", \"ph\": \"X\", \"dur\": "
               << (event.end - event.start) << "}";
        }
    }
    os << "\n]\n";
}

} // namespace acr
