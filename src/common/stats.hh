/**
 * @file
 * Lightweight named-statistic registry in the spirit of gem5's stats
 * package. Modules register scalar statistics under hierarchical dotted
 * names ("ckpt.logRecords", "dram.lineWrites"); the harness merges,
 * differences, and prints them.
 */

#ifndef ACR_COMMON_STATS_HH
#define ACR_COMMON_STATS_HH

#include <map>
#include <ostream>
#include <string>

namespace acr
{

/**
 * A set of named scalar statistics. Values are doubles so the same
 * container holds counts, cycles, and energies.
 */
class StatSet
{
  public:
    /** Add @p delta (default 1) to the statistic named @p name. */
    void add(const std::string &name, double delta = 1.0);

    /** Overwrite the statistic named @p name. */
    void set(const std::string &name, double value);

    /** Value of @p name, or 0 if never touched. */
    double get(const std::string &name) const;

    /** True if @p name has ever been touched. */
    bool has(const std::string &name) const;

    /** Reset every statistic to zero (names are retained). */
    void clear();

    /** Accumulate all statistics from @p other into this set. */
    void merge(const StatSet &other);

    /** This set minus @p other, per matching name (missing names = 0). */
    StatSet diff(const StatSet &other) const;

    /** All statistics, sorted by name. */
    const std::map<std::string, double> &all() const { return values_; }

    /** Number of distinct statistic names. */
    std::size_t size() const { return values_.size(); }

    /**
     * Print "name value" lines, optionally restricted to names starting
     * with @p prefix.
     */
    void dump(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::map<std::string, double> values_;
};

} // namespace acr

#endif // ACR_COMMON_STATS_HH
