/**
 * @file
 * Status-message and error helpers in the gem5 idiom.
 *
 * panic()  — an internal invariant of the simulator itself was violated;
 *            aborts so a core dump / debugger is available.
 * fatal()  — the *user* asked for something impossible (bad configuration,
 *            malformed program); exits with an error code.
 * warn()   — something is off but the simulation can continue.
 * inform() — plain status output.
 */

#ifndef ACR_COMMON_LOGGING_HH
#define ACR_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace acr
{

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list variant of csprintf. */
std::string vcsprintf(const char *fmt, va_list args);

/** Print an informational message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** User-level error: print and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Simulator bug: print and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert a simulator invariant; calls panic() with location info when the
 * condition does not hold. Active in all build types (the simulator's
 * correctness arguments in tests rely on these firing in Release builds).
 */
#define ACR_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::acr::panic("assertion '%s' failed at %s:%d: %s", #cond,       \
                         __FILE__, __LINE__,                                \
                         ::acr::csprintf(__VA_ARGS__).c_str());             \
        }                                                                   \
    } while (0)

} // namespace acr

#endif // ACR_COMMON_LOGGING_HH
