/**
 * @file
 * acr::serde — the self-describing value layer under the experiment
 * wire format (DESIGN.md §8). A `Json` is an immutable-after-build
 * JSON document with a *canonical* byte encoding: objects keep
 * insertion order, numbers are written in their shortest round-trip
 * form, and no whitespace is emitted — so encode(decode(encode(x)))
 * == encode(x) byte-for-byte, the property the sharded sweep's
 * merge-determinism guarantee rests on.
 *
 * Decoding is strict: malformed input, trailing garbage, and (via
 * ObjectReader) unknown object keys all raise SerdeError rather than
 * being ignored — a record from a newer schema must fail loudly, not
 * half-parse (the forward-compatibility rule: unknown keys rejected,
 * version bump on any field change).
 */

#ifndef ACR_COMMON_SERDE_HH
#define ACR_COMMON_SERDE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace acr::serde
{

/** Strict decode/encode failure (bad syntax, type mismatch, unknown
 *  key, unsupported value). */
class SerdeError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Shortest round-trip decimal form of a finite double ("-0" is
 *  normalized to "0"); throws SerdeError on NaN/infinity, which JSON
 *  cannot represent. */
std::string formatDouble(double value);

/**
 * One JSON value. Integers keep full 64-bit precision (distinct from
 * doubles), so cycle counts and seeds survive a process boundary
 * exactly.
 */
class Json
{
  public:
    enum class Kind
    {
        kNull,
        kBool,
        kUint,    ///< non-negative integer literal
        kInt,     ///< negative integer literal
        kDouble,  ///< literal with a fraction or exponent
        kString,
        kArray,
        kObject,
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool value) : kind_(Kind::kBool), bool_(value) {}
    Json(std::uint64_t value) : kind_(Kind::kUint), uint_(value) {}
    Json(std::int64_t value);
    Json(int value) : Json(static_cast<std::int64_t>(value)) {}
    Json(unsigned value) : Json(static_cast<std::uint64_t>(value)) {}
    Json(double value) : kind_(Kind::kDouble), double_(value) {}
    Json(std::string value)
        : kind_(Kind::kString), string_(std::move(value))
    {
    }
    Json(const char *value) : Json(std::string(value)) {}

    static Json object();
    static Json array();

    Kind kind() const { return kind_; }
    bool isNumber() const
    {
        return kind_ == Kind::kUint || kind_ == Kind::kInt ||
               kind_ == Kind::kDouble;
    }

    // --- Building (object members keep insertion order) ---

    /** Append a member to an object; duplicate keys are a bug. */
    Json &set(const std::string &key, Json value);

    /** Append an element to an array. */
    Json &push(Json value);

    // --- Strict accessors (throw SerdeError on kind mismatch) ---

    bool asBool() const;
    /** Any number representable as uint64 (rejects negatives and
     *  fractions). */
    std::uint64_t asUint() const;
    std::int64_t asInt() const;
    /** Any number, widened to double. */
    double asDouble() const;
    const std::string &asString() const;
    const std::vector<Json> &items() const;
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Member lookup on an object; nullptr when absent. */
    const Json *find(const std::string &key) const;

    // --- Canonical encoding / strict decoding ---

    /** Canonical single-line encoding (no whitespace). */
    void write(std::ostream &os) const;
    std::string dump() const;

    /** Parse exactly one document; trailing non-whitespace throws. */
    static Json parse(std::string_view text);

  private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

/**
 * Schema-checking view of one Json object: every member must be
 * consumed by require()/optional() before finish(), so a record
 * carrying keys this build does not know about is rejected instead of
 * silently dropped.
 */
class ObjectReader
{
  public:
    /** @param what  context for error messages ("ExperimentConfig"). */
    ObjectReader(const Json &object, std::string what);

    /** Consume a mandatory member. */
    const Json &require(const std::string &key);
    /** Consume an optional member; nullptr when absent. */
    const Json *optional(const std::string &key);

    bool requireBool(const std::string &key);
    std::uint64_t requireUint(const std::string &key);
    double requireDouble(const std::string &key);
    std::string requireString(const std::string &key);

    /** Throws SerdeError if any member was never consumed. */
    void finish();

  private:
    const Json &object_;
    std::string what_;
    std::map<std::string, bool> consumed_;
};

} // namespace acr::serde

#endif // ACR_COMMON_SERDE_HH
