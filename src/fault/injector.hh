/**
 * @file
 * Fail-stop error injection (Sec. II-A): errors corrupt computation — the
 * destination value of a dynamic instruction — and the wrong value
 * propagates through registers and stores until *detection*, which lags
 * occurrence by a configurable latency no longer than the checkpoint
 * period. Memory and checkpoint logs themselves never fail (ECC).
 *
 * Errors are placed uniformly over execution (Sec. V-D2) using program
 * progress (retired instructions) as the time axis, so the same plan
 * injects at the same functional points in every configuration compared.
 *
 * The injector drives every planned error as its own state machine
 * (pending -> armed -> latent -> done), so any number of errors can be
 * outstanding at once: overlapping latent windows, bursts within one
 * checkpoint interval, and errors whose corruption a rollback erases
 * before detection (those are re-posted — see onRecovery). At most one
 * corruption is armed per core at a time (a core tracks a single
 * scheduled corruption), and every scheduling decision is a
 * deterministic function of the plan and the simulated machine state,
 * so identical seeds replay identical campaigns.
 */

#ifndef ACR_FAULT_INJECTOR_HH
#define ACR_FAULT_INJECTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/system.hh"

namespace acr::fault
{

/** Fig. 1's technology model: relative component error rate after
 *  @p generations of scaling at @p degradation per bit per generation
 *  (the paper cites 8%/bit/generation). */
double relativeErrorRate(unsigned generations,
                         double degradation = 0.08);

/** A schedule of errors for one run. */
struct FaultPlan
{
    struct Event
    {
        /** Inject when program progress reaches this instruction count. */
        std::uint64_t progressTrigger = 0;
        /** Bits to flip in the victim instruction's result. */
        Word xorMask = 1;
        /**
         * Position in the plan this event was generated at. Victim
         * selection seeds its round-robin from this (not from the
         * vector position), so a masked() sub-plan replays each
         * surviving event on exactly the cores the full plan used —
         * the property FaultPlan shrinking relies on.
         */
        unsigned ordinal = 0;
    };

    std::vector<Event> events;

    /** Detection lag in cycles (must not exceed the checkpoint period). */
    Cycle detectionLatency = 0;

    /**
     * @p count errors uniformly distributed over @p total_progress
     * retired instructions, with masks drawn from @p seed.
     *
     * Deterministic: the same (count, total_progress, seed) yields an
     * identical plan. count == 0 yields an empty plan (any
     * total_progress, including 0). count > total_progress is allowed:
     * triggers then collide (integer spacing rounds to the same
     * progress value, possibly 0) and the injector simply arms the
     * colliding events on distinct cores in ordinal order. xorMask is
     * never 0 (a zero mask would be a no-op "error").
     */
    static FaultPlan uniform(unsigned count, std::uint64_t total_progress,
                             Cycle detection_latency, std::uint64_t seed);

    /**
     * The sub-plan keeping each event iff bit (ordinal % 64) of
     * @p keep — the FaultPlan shrinker's projection. Triggers, masks,
     * and ordinals of surviving events are untouched, so each replays
     * identically, and successive maskings compose like intersection.
     */
    FaultPlan masked(std::uint64_t keep) const;
};

/** What the BER driver must react to. */
struct DetectionEvent
{
    CoreId core = 0;
    Cycle errorTime = 0;
    Cycle detectTime = 0;
};

/**
 * Drives a FaultPlan against a running system. The driver calls poll()
 * between scheduling quanta; when poll() returns a DetectionEvent the
 * driver must run recovery before continuing, then report the rollback
 * back via onRecovery so corruptions the rollback erased are re-posted.
 */
class ErrorInjector
{
  public:
    ErrorInjector(const FaultPlan &plan, StatSet &stats);

    /**
     * Advance every event's state machine: observe applications of
     * armed corruptions, report the earliest due detection (at most one
     * per poll — the driver recovers between detections), and arm
     * pending events whose progress trigger has been reached.
     */
    std::optional<DetectionEvent> poll(sim::MulticoreSystem &system);

    /**
     * Watchdog path: the system wedged (corrupted control flow broke a
     * barrier rendezvous). If injected errors are latent, detect the
     * earliest now regardless of the latency timer; if none, drop every
     * merely-armed (never applied) one. Returns the detection, if any.
     */
    std::optional<DetectionEvent>
    forceDetection(sim::MulticoreSystem &system);

    /**
     * A rollback of the cores in @p affected_mask just restored the
     * checkpoint established at @p target_established_at. Corruptions
     * that landed on an affected core after that point no longer exist
     * in the machine (the restore erased applied ones; restoreArch
     * cancels scheduled ones), so those events are re-posted: they
     * re-arm when progress next reaches their trigger — the "error
     * lands during recovery / re-execution" regime. Detected and
     * dropped stay terminal exactly once per event, so
     * detected() + dropped() still converges to the plan size.
     */
    void onRecovery(std::uint64_t affected_mask,
                    Cycle target_established_at);

    /** Corruption applications so far (a re-posted event that applies
     *  again counts again). */
    std::uint64_t injected() const { return injected_; }

    /** Errors detected (and thus recovered) so far. */
    std::uint64_t detected() const { return detected_; }

    /** Errors dropped because they could no longer occur. */
    std::uint64_t dropped() const { return dropped_; }

    /** Events re-posted because a rollback erased their corruption. */
    std::uint64_t requeued() const { return requeued_; }

    /** Applied-but-undetected errors outstanding right now (the
     *  oracle's establishment taint marker). */
    unsigned latentCount() const;

    /** True when every planned error has been detected (or dropped
     *  because no core could apply it). */
    bool done() const;

  private:
    enum class State
    {
        kPending,  ///< waiting for the progress trigger
        kArmed,    ///< corruption scheduled on a core, not yet applied
        kLatent,   ///< corruption applied, waiting out detection latency
        kDone,     ///< detected or dropped (terminal)
    };

    struct Tracked
    {
        FaultPlan::Event event;
        State state = State::kPending;
        CoreId victim = kInvalidCore;
        Cycle errorTime = 0;
    };

    /** Deterministic victim choice: round-robin from the event's
     *  ordinal, skipping halted cores and cores another armed event
     *  already occupies. kInvalidCore when none qualifies. */
    CoreId pickVictim(const sim::MulticoreSystem &system,
                      unsigned ordinal) const;

    /** Cores occupied by an armed (scheduled, unapplied) corruption. */
    std::uint64_t armedMask() const;

    void drop(Tracked &tracked);
    DetectionEvent detect(Tracked &tracked,
                          const sim::MulticoreSystem &system);

    FaultPlan plan_;
    StatSet &stats_;
    std::vector<Tracked> events_;
    std::uint64_t injected_ = 0;
    std::uint64_t detected_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t requeued_ = 0;
};

} // namespace acr::fault

#endif // ACR_FAULT_INJECTOR_HH
