/**
 * @file
 * Fail-stop error injection (Sec. II-A): errors corrupt computation — the
 * destination value of a dynamic instruction — and the wrong value
 * propagates through registers and stores until *detection*, which lags
 * occurrence by a configurable latency no longer than the checkpoint
 * period. Memory and checkpoint logs themselves never fail (ECC).
 *
 * Errors are placed uniformly over execution (Sec. V-D2) using program
 * progress (retired instructions) as the time axis, so the same plan
 * injects at the same functional points in every configuration compared.
 */

#ifndef ACR_FAULT_INJECTOR_HH
#define ACR_FAULT_INJECTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/system.hh"

namespace acr::fault
{

/** Fig. 1's technology model: relative component error rate after
 *  @p generations of scaling at @p degradation per bit per generation
 *  (the paper cites 8%/bit/generation). */
double relativeErrorRate(unsigned generations,
                         double degradation = 0.08);

/** A schedule of errors for one run. */
struct FaultPlan
{
    struct Event
    {
        /** Inject when program progress reaches this instruction count. */
        std::uint64_t progressTrigger = 0;
        /** Bits to flip in the victim instruction's result. */
        Word xorMask = 1;
    };

    std::vector<Event> events;

    /** Detection lag in cycles (must not exceed the checkpoint period). */
    Cycle detectionLatency = 0;

    /**
     * @p count errors uniformly distributed over @p total_progress
     * retired instructions, with masks drawn from @p seed.
     */
    static FaultPlan uniform(unsigned count, std::uint64_t total_progress,
                             Cycle detection_latency, std::uint64_t seed);
};

/** What the BER driver must react to. */
struct DetectionEvent
{
    CoreId core = 0;
    Cycle errorTime = 0;
    Cycle detectTime = 0;
};

/**
 * Drives a FaultPlan against a running system. The driver calls poll()
 * between scheduling quanta; when poll() returns a DetectionEvent the
 * driver must run recovery before continuing.
 */
class ErrorInjector
{
  public:
    ErrorInjector(const FaultPlan &plan, StatSet &stats);

    /**
     * Advance the injector state machine: arm scheduled corruptions,
     * observe their application, and report detection once the failing
     * core's clock passes occurrence + detection latency.
     */
    std::optional<DetectionEvent> poll(sim::MulticoreSystem &system);

    /**
     * Watchdog path: the system wedged (corrupted control flow broke a
     * barrier rendezvous). If an injected error is latent, detect it
     * now regardless of the latency timer; if one is merely armed
     * (never applied), drop it. Returns the detection, if any.
     */
    std::optional<DetectionEvent>
    forceDetection(sim::MulticoreSystem &system);

    /** Errors injected so far. */
    std::uint64_t injected() const { return injected_; }

    /** Errors detected (and thus recovered) so far. */
    std::uint64_t detected() const { return detected_; }

    /** Errors dropped because they could no longer occur. */
    std::uint64_t dropped() const { return dropped_; }

    /** True when every planned error has been detected (or dropped
     *  because no core could apply it). */
    bool done() const;

  private:
    enum class Phase
    {
        kIdle,    ///< waiting for the next progress trigger
        kArmed,   ///< corruption scheduled on a core, not yet applied
        kLatent,  ///< corruption applied, waiting out detection latency
    };

    FaultPlan plan_;
    StatSet &stats_;
    std::size_t nextEvent_ = 0;
    Phase phase_ = Phase::kIdle;
    CoreId victim_ = 0;
    Cycle errorTime_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t detected_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace acr::fault

#endif // ACR_FAULT_INJECTOR_HH
