#include "fault/storage_fault.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace acr::fault
{

const char *
storageFaultKindName(StorageFaultKind kind)
{
    switch (kind) {
      case StorageFaultKind::kRecordFlip: return "record-flip";
      case StorageFaultKind::kArchFlip: return "arch-flip";
      case StorageFaultKind::kTornGroup: return "torn-group";
      case StorageFaultKind::kReplicaLoss: return "replica-loss";
      case StorageFaultKind::kUncorrectableRead: return "uncorrectable";
    }
    return "?";
}

StorageFaultPlan
StorageFaultPlan::uniform(unsigned count, unsigned num_checkpoints,
                          const std::vector<StorageFaultKind> &kinds,
                          std::uint64_t seed)
{
    ACR_ASSERT(count == 0 || num_checkpoints > 0,
               "storage fault plan over a checkpoint-free run");
    ACR_ASSERT(count == 0 || !kinds.empty(),
               "storage fault plan without medium fault kinds");
    StorageFaultPlan plan;
    plan.events.reserve(count);
    Rng rng(seed);
    for (unsigned i = 1; i <= count; ++i) {
        Event event;
        // Interior positions over the planned establishments, the same
        // spacing rule FaultPlan::uniform applies over progress —
        // clamped into [1, num_checkpoints] so every event lands on a
        // real establishment ordinal.
        event.ckptIndex = std::min<std::uint64_t>(
            num_checkpoints,
            static_cast<std::uint64_t>(num_checkpoints) * i /
                    (static_cast<std::uint64_t>(count) + 1) +
                1);
        event.kind = kinds[rng.below(kinds.size())];
        event.xorMask = rng.next() | 1;  // never a no-op flip
        event.pick = rng.next();
        event.ordinal = i - 1;
        plan.events.push_back(event);
    }
    return plan;
}

StorageFaultPlan
StorageFaultPlan::masked(std::uint64_t keep) const
{
    StorageFaultPlan plan;
    for (const Event &event : events) {
        if ((keep >> (event.ordinal % 64)) & 1)
            plan.events.push_back(event);
    }
    return plan;
}

std::vector<StorageFaultPlan::Event>
StorageFaultInjector::takeDue(std::uint64_t ckpt_index)
{
    std::vector<StorageFaultPlan::Event> due;
    auto keep = pending_.begin();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->ckptIndex == ckpt_index) {
            due.push_back(*it);
        } else {
            if (keep != it)
                *keep = *it;
            ++keep;
        }
    }
    pending_.erase(keep, pending_.end());
    return due;
}

} // namespace acr::fault
