/**
 * @file
 * Storage-fault injection against the checkpoint *medium* (DESIGN.md
 * §16). Where fault::ErrorInjector corrupts computation, this injector
 * corrupts the stored checkpoint bytes themselves: bit-flips in stored
 * log records and architectural state, torn (partial) group
 * establishments, whole-replica loss on a replicated store, and
 * uncorrectable media reads on NVM.
 *
 * Faults are keyed to establishment ordinals — event i of a plan lands
 * on the data written by the i-th due checkpoint — so the same seeded
 * plan hits the same stored bytes in every configuration compared, and
 * masked() sub-plans preserve each event's ordinal, trigger, and masks
 * exactly like FaultPlan: the ddmin shrinker in bench/torture composes
 * maskings as intersections over storage plans too.
 *
 * The injector only *deals* events; the CheckpointStore applies them to
 * its integrity state (checksums, armed corruptions) and detects them
 * on read. No fault ever touches functional machine state directly —
 * corruption lives purely in the medium model, and the manager decides
 * how (and whether) recovery survives it.
 */

#ifndef ACR_FAULT_STORAGE_FAULT_HH
#define ACR_FAULT_STORAGE_FAULT_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace acr::fault
{

/** What a storage-fault event does to the checkpoint medium. */
enum class StorageFaultKind
{
    /** Flip bits in one stored log record's old-value word. */
    kRecordFlip,
    /** Flip bits in one core's stored architectural state. */
    kArchFlip,
    /** The group establishment tore: the whole checkpoint is a
     *  partial write and must be refused as a rollback target. */
    kTornGroup,
    /** One replica image of the checkpoint is lost (kReplicated). */
    kReplicaLoss,
    /** The medium reports an uncorrectable error on one stored
     *  record — every read of it fails (kNvm). */
    kUncorrectableRead,
};

/** Canonical lowercase name of @p kind (diagnostics). */
const char *storageFaultKindName(StorageFaultKind kind);

/** A seeded schedule of storage faults for one run. */
struct StorageFaultPlan
{
    struct Event
    {
        /** Establishment ordinal (1-based checkpoint index) whose
         *  freshly stored data this fault lands on. */
        std::uint64_t ckptIndex = 0;
        StorageFaultKind kind = StorageFaultKind::kRecordFlip;
        /** Bits to flip in the victim datum (flip kinds). */
        Word xorMask = 1;
        /** Deterministic victim selector: the store reduces this
         *  modulo the candidate count (stored records, cores,
         *  replicas) so the same event picks the same datum. */
        std::uint64_t pick = 0;
        /** Position in the full plan (masked() preserves it — the
         *  property ddmin shrinking relies on). */
        unsigned ordinal = 0;
    };

    std::vector<Event> events;

    /**
     * @p count faults spread uniformly over the @p num_checkpoints
     * planned establishment ordinals, kinds drawn from @p kinds (the
     * medium's failure modes, ckpt::storageFaultKinds), seeded by
     * @p seed.
     */
    static StorageFaultPlan
    uniform(unsigned count, unsigned num_checkpoints,
            const std::vector<StorageFaultKind> &kinds,
            std::uint64_t seed);

    /** Sub-plan keeping event i iff bit (i % 64) of @p keep is set;
     *  triggers, masks, picks, and ordinals are preserved, so
     *  maskings compose like intersection. */
    StorageFaultPlan masked(std::uint64_t keep) const;
};

/**
 * Deals a plan's events to the checkpoint store as establishments
 * retire their ordinals. The store calls takeDue() once per
 * establishment and applies (or drops, when the checkpoint holds no
 * vulnerable datum) each event against its integrity state.
 */
class StorageFaultInjector
{
  public:
    StorageFaultInjector(const StorageFaultPlan &plan, StatSet &stats)
        : pending_(plan.events), planned_(plan.events.size()),
          stats_(stats)
    {
    }

    /** Events due at the establishment of checkpoint @p ckpt_index
     *  (consumed; plan order preserved). */
    std::vector<StorageFaultPlan::Event>
    takeDue(std::uint64_t ckpt_index);

    /** Events planned (before masking consumed any). */
    std::uint64_t planned() const { return planned_; }

    /** Events not yet dealt to the store. */
    std::uint64_t pending() const { return pending_.size(); }

    /** The store armed this event against stored data. */
    void noteInjected() { stats_.add("storage.injected"); }

    /** The event was due but the checkpoint held no datum it could
     *  corrupt (e.g. a record flip on an all-amnesic interval). */
    void noteDropped() { stats_.add("storage.dropped"); }

  private:
    std::vector<StorageFaultPlan::Event> pending_;
    std::uint64_t planned_;
    StatSet &stats_;
};

} // namespace acr::fault

#endif // ACR_FAULT_STORAGE_FAULT_HH
