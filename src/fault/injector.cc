#include "fault/injector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace acr::fault
{

namespace
{

bool
inMask(std::uint64_t mask, CoreId core)
{
    return (mask >> core) & 1;
}

} // namespace

double
relativeErrorRate(unsigned generations, double degradation)
{
    // Fig. 1: component error rate grows multiplicatively per
    // generation as feature size scales down.
    return std::pow(1.0 + degradation, static_cast<double>(generations));
}

FaultPlan
FaultPlan::uniform(unsigned count, std::uint64_t total_progress,
                   Cycle detection_latency, std::uint64_t seed)
{
    // An empty plan needs no time axis; only placing events does.
    ACR_ASSERT(count == 0 || total_progress > 0,
               "fault plan over empty execution");
    FaultPlan plan;
    plan.detectionLatency = detection_latency;
    Rng rng(seed);
    for (unsigned i = 1; i <= count; ++i) {
        Event event;
        event.progressTrigger =
            total_progress * i / (static_cast<std::uint64_t>(count) + 1);
        event.xorMask = rng.next() | 1;  // guarantee at least one flip
        event.ordinal = i - 1;
        plan.events.push_back(event);
    }
    return plan;
}

FaultPlan
FaultPlan::masked(std::uint64_t keep) const
{
    FaultPlan plan;
    plan.detectionLatency = detectionLatency;
    // Keyed on the event's ordinal (not its vector position), so
    // successive maskings compose like set intersection and a shrunk
    // plan's mask still names the original campaign's events.
    for (const Event &event : events)
        if ((keep >> (event.ordinal % 64)) & 1)
            plan.events.push_back(event);
    return plan;
}

ErrorInjector::ErrorInjector(const FaultPlan &plan, StatSet &stats)
    : plan_(plan), stats_(stats)
{
    events_.reserve(plan_.events.size());
    for (const FaultPlan::Event &event : plan_.events)
        events_.push_back(Tracked{event, State::kPending, kInvalidCore, 0});
}

bool
ErrorInjector::done() const
{
    return std::all_of(events_.begin(), events_.end(),
                       [](const Tracked &t) {
                           return t.state == State::kDone;
                       });
}

unsigned
ErrorInjector::latentCount() const
{
    return static_cast<unsigned>(
        std::count_if(events_.begin(), events_.end(),
                      [](const Tracked &t) {
                          return t.state == State::kLatent;
                      }));
}

std::uint64_t
ErrorInjector::armedMask() const
{
    std::uint64_t mask = 0;
    for (const Tracked &t : events_)
        if (t.state == State::kArmed)
            mask |= std::uint64_t{1} << t.victim;
    return mask;
}

CoreId
ErrorInjector::pickVictim(const sim::MulticoreSystem &system,
                          unsigned ordinal) const
{
    const std::uint64_t busy = armedMask();
    for (unsigned k = 0; k < system.numCores(); ++k) {
        CoreId c =
            static_cast<CoreId>((ordinal + k) % system.numCores());
        if (!system.core(c).halted() && !inMask(busy, c))
            return c;
    }
    return kInvalidCore;
}

void
ErrorInjector::drop(Tracked &tracked)
{
    tracked.state = State::kDone;
    ++dropped_;
    stats_.add("fault.dropped");
}

DetectionEvent
ErrorInjector::detect(Tracked &tracked,
                      const sim::MulticoreSystem &system)
{
    DetectionEvent detection;
    detection.core = tracked.victim;
    detection.errorTime = tracked.errorTime;
    detection.detectTime =
        std::max(system.core(tracked.victim).cycle(),
                 tracked.errorTime + plan_.detectionLatency);
    tracked.state = State::kDone;
    ++detected_;
    stats_.add("fault.detected");
    return detection;
}

std::optional<DetectionEvent>
ErrorInjector::forceDetection(sim::MulticoreSystem &system)
{
    // Earliest-occurred latent error first: it has waited the longest
    // and its recovery target is the most constrained.
    Tracked *earliest = nullptr;
    for (Tracked &t : events_) {
        if (t.state != State::kLatent)
            continue;
        if (earliest == nullptr || t.errorTime < earliest->errorTime)
            earliest = &t;
    }
    if (earliest != nullptr)
        return detect(*earliest, system);

    for (Tracked &t : events_) {
        if (t.state != State::kArmed)
            continue;
        system.core(t.victim).cancelCorruption();
        drop(t);
    }
    return std::nullopt;
}

void
ErrorInjector::onRecovery(std::uint64_t affected_mask,
                          Cycle target_established_at)
{
    for (Tracked &t : events_) {
        if (t.victim == kInvalidCore || !inMask(affected_mask, t.victim))
            continue;
        const bool erased_latent =
            t.state == State::kLatent &&
            t.errorTime > target_established_at;
        // An armed corruption dies with the rollback unconditionally:
        // Core::restoreArch cancels any scheduled-but-unapplied mask.
        const bool erased_armed = t.state == State::kArmed;
        if (!erased_latent && !erased_armed)
            continue;
        t.state = State::kPending;
        t.victim = kInvalidCore;
        t.errorTime = 0;
        ++requeued_;
        stats_.add("fault.requeued");
    }
}

std::optional<DetectionEvent>
ErrorInjector::poll(sim::MulticoreSystem &system)
{
    // 1. Observe armed corruptions: application makes an event latent;
    //    a victim that halted without writing a register moves the
    //    corruption to another live core (or the event drops).
    for (Tracked &t : events_) {
        if (t.state != State::kArmed)
            continue;
        if (auto applied = system.core(t.victim).takeCorruptionEvent()) {
            t.errorTime = *applied;
            t.state = State::kLatent;
            ++injected_;
            stats_.add("fault.injected");
            continue;
        }
        if (!system.core(t.victim).halted())
            continue;
        system.core(t.victim).cancelCorruption();
        CoreId replacement = pickVictim(system, t.event.ordinal);
        if (replacement != kInvalidCore) {
            t.victim = replacement;
            system.core(replacement).scheduleCorruption(t.event.xorMask);
        } else if (system.allHalted()) {
            // Program finished under us; the error can no longer occur.
            drop(t);
        } else {
            // Every live core hosts another armed corruption; retry
            // once one frees up.
            t.state = State::kPending;
            t.victim = kInvalidCore;
        }
    }

    // 2. Detection: among due latent errors, surface the one whose
    //    detection deadline is earliest (ties: plan order). One per
    //    poll — the driver must recover before the next can fire.
    Tracked *due = nullptr;
    for (Tracked &t : events_) {
        if (t.state != State::kLatent)
            continue;
        const Cycle detect_at = t.errorTime + plan_.detectionLatency;
        const cpu::Core &victim = system.core(t.victim);
        if (victim.cycle() < detect_at && !victim.halted())
            continue;
        if (due == nullptr ||
            detect_at < due->errorTime + plan_.detectionLatency)
            due = &t;
    }
    if (due != nullptr)
        return detect(*due, system);

    // 3. Arm pending events whose trigger has been reached. A
    //    fully-halted system makes no further progress, so an
    //    unreached trigger can never fire (possible when an earlier,
    //    unrecovered corruption truncated the execution).
    const std::uint64_t progress = system.progress();
    for (Tracked &t : events_) {
        if (t.state != State::kPending)
            continue;
        if (progress < t.event.progressTrigger) {
            if (system.allHalted())
                drop(t);
            continue;
        }
        CoreId victim = pickVictim(system, t.event.ordinal);
        if (victim == kInvalidCore) {
            if (system.allHalted())
                drop(t);
            // else: all live cores are busy — retry next poll.
            continue;
        }
        t.victim = victim;
        t.state = State::kArmed;
        system.core(victim).scheduleCorruption(t.event.xorMask);
    }
    return std::nullopt;
}

} // namespace acr::fault
