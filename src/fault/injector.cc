#include "fault/injector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace acr::fault
{

double
relativeErrorRate(unsigned generations, double degradation)
{
    // Fig. 1: component error rate grows multiplicatively per
    // generation as feature size scales down.
    return std::pow(1.0 + degradation, static_cast<double>(generations));
}

FaultPlan
FaultPlan::uniform(unsigned count, std::uint64_t total_progress,
                   Cycle detection_latency, std::uint64_t seed)
{
    ACR_ASSERT(total_progress > 0, "fault plan over empty execution");
    FaultPlan plan;
    plan.detectionLatency = detection_latency;
    Rng rng(seed);
    for (unsigned i = 1; i <= count; ++i) {
        Event event;
        event.progressTrigger =
            total_progress * i / (static_cast<std::uint64_t>(count) + 1);
        event.xorMask = rng.next() | 1;  // guarantee at least one flip
        plan.events.push_back(event);
    }
    return plan;
}

ErrorInjector::ErrorInjector(const FaultPlan &plan, StatSet &stats)
    : plan_(plan), stats_(stats)
{
}

bool
ErrorInjector::done() const
{
    return nextEvent_ >= plan_.events.size() && phase_ == Phase::kIdle;
}

std::optional<DetectionEvent>
ErrorInjector::forceDetection(sim::MulticoreSystem &system)
{
    if (phase_ == Phase::kLatent) {
        DetectionEvent detection;
        detection.core = victim_;
        detection.errorTime = errorTime_;
        detection.detectTime =
            std::max(system.core(victim_).cycle(),
                     errorTime_ + plan_.detectionLatency);
        phase_ = Phase::kIdle;
        ++nextEvent_;
        ++detected_;
        stats_.add("fault.detected");
        return detection;
    }
    if (phase_ == Phase::kArmed) {
        system.core(victim_).cancelCorruption();
        phase_ = Phase::kIdle;
        ++nextEvent_;
        ++dropped_;
        stats_.add("fault.dropped");
    }
    return std::nullopt;
}

std::optional<DetectionEvent>
ErrorInjector::poll(sim::MulticoreSystem &system)
{
    if (phase_ == Phase::kIdle) {
        if (nextEvent_ >= plan_.events.size())
            return std::nullopt;
        const FaultPlan::Event &event = plan_.events[nextEvent_];
        if (system.progress() < event.progressTrigger) {
            // A fully-halted system makes no further progress: the
            // error can never occur (possible when an earlier,
            // unrecovered corruption truncated the execution).
            if (system.allHalted()) {
                ++dropped_;
                ++nextEvent_;
                stats_.add("fault.dropped");
            }
            return std::nullopt;
        }

        // Choose a live victim deterministically (round-robin by event
        // index, skipping halted cores).
        CoreId victim = kInvalidCore;
        for (unsigned k = 0; k < system.numCores(); ++k) {
            CoreId c = static_cast<CoreId>(
                (nextEvent_ + k) % system.numCores());
            if (!system.core(c).halted()) {
                victim = c;
                break;
            }
        }
        if (victim == kInvalidCore) {
            // Program finished under us; the error can no longer occur.
            ++dropped_;
            ++nextEvent_;
            stats_.add("fault.dropped");
            return std::nullopt;
        }
        victim_ = victim;
        system.core(victim_).scheduleCorruption(event.xorMask);
        phase_ = Phase::kArmed;
        return std::nullopt;
    }

    if (phase_ == Phase::kArmed) {
        auto applied = system.core(victim_).takeCorruptionEvent();
        if (applied) {
            errorTime_ = *applied;
            phase_ = Phase::kLatent;
            ++injected_;
            stats_.add("fault.injected");
            // Fall through to the latent check below.
        } else if (system.core(victim_).halted()) {
            // Victim finished before executing another register write;
            // move the corruption to a live core.
            system.core(victim_).cancelCorruption();
            CoreId replacement = kInvalidCore;
            for (CoreId c = 0; c < system.numCores(); ++c) {
                if (!system.core(c).halted()) {
                    replacement = c;
                    break;
                }
            }
            if (replacement == kInvalidCore) {
                ++dropped_;
                ++nextEvent_;
                phase_ = Phase::kIdle;
                stats_.add("fault.dropped");
                return std::nullopt;
            }
            victim_ = replacement;
            system.core(victim_).scheduleCorruption(
                plan_.events[nextEvent_].xorMask);
            return std::nullopt;
        } else {
            return std::nullopt;
        }
    }

    // Latent: detection fires once the victim's clock passes
    // occurrence + latency (or immediately if the victim halted with a
    // corrupted state — the checker catches it at program end).
    const cpu::Core &victim = system.core(victim_);
    const Cycle detect_at = errorTime_ + plan_.detectionLatency;
    if (victim.cycle() >= detect_at || victim.halted()) {
        DetectionEvent detection;
        detection.core = victim_;
        detection.errorTime = errorTime_;
        detection.detectTime = std::max(victim.cycle(), detect_at);
        phase_ = Phase::kIdle;
        ++nextEvent_;
        ++detected_;
        stats_.add("fault.detected");
        return detection;
    }
    return std::nullopt;
}

} // namespace acr::fault
