/**
 * @file
 * MulticoreSystem: N in-order cores executing one SPMD program over a
 * shared MainMemory, with a shared CacheSystem for timing. Scheduling is
 * deterministic round-robin by instruction quanta; barriers rendezvous
 * all non-halted cores. The BER runtime (harness) drives the system in
 * steps and injects checkpoints/recoveries between them.
 */

#ifndef ACR_SIM_SYSTEM_HH
#define ACR_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "cpu/core.hh"
#include "isa/program.hh"
#include "mem/main_memory.hh"
#include "sim/machine_config.hh"

namespace acr::sim
{

/** Whole-machine execution state. */
enum class SystemState
{
    kRunning,
    kAllHalted,
    /**
     * Wedged: some cores halted below the barrier epoch others wait at.
     * For a correct program this only happens when an injected error
     * corrupted control flow — the BER runtime treats it as an error
     * manifestation (watchdog detection); runToCompletion treats it as
     * a program bug and fatal()s.
     */
    kBlocked,
};

/** The simulated machine. */
class MulticoreSystem
{
  public:
    /**
     * Build the machine and load @p program's data segment into memory.
     * The program is copied (the system outlives caller temporaries)
     * and must validate.
     */
    MulticoreSystem(const MachineConfig &config, isa::Program program);

    /** Attach the per-instruction observer (may be null). */
    void setObserver(cpu::ExecObserver *observer)
    {
        observer_ = observer;
    }

    /**
     * One scheduling round: every runnable core executes one quantum;
     * barrier release happens when all non-halted cores have arrived.
     * fatal()s on barrier deadlock (some cores halted, others waiting).
     */
    SystemState step() { return stepWith(observer_); }

    /**
     * step() with a statically-typed observer: the quantum loop and
     * the per-instruction observer call compile together (see
     * Core::run's template overload), removing the virtual hop per
     * retired instruction. The barrier/release epilogue is shared
     * non-template code, so both paths have identical semantics.
     */
    template <class Obs>
    SystemState
    stepWith(Obs *observer)
    {
        bool any_ran = false;
        for (auto &core : cores_) {
            if (core->state() == cpu::CoreState::kRunning) {
                core->run(config_.quantumInstrs, observer);
                any_ran = true;
            }
        }
        return finishStep(any_ran);
    }

    /** Run to completion (NoCkpt executions and tests). */
    void runToCompletion();

    /** runToCompletion() over the devirtualized stepWith() path. */
    template <class Obs>
    void
    runToCompletionWith(Obs *observer)
    {
        while (true) {
            SystemState state = stepWith(observer);
            if (state == SystemState::kAllHalted)
                return;
            if (state == SystemState::kBlocked)
                blockedFatal();
        }
    }

    bool allHalted() const;

    /** Sum of per-core retired instruction counts — the monotone
     *  "program progress" metric that drives checkpoint/error schedules
     *  and rewinds on rollback. */
    std::uint64_t progress() const;

    /** Largest local clock over all cores. */
    Cycle maxCycle() const;

    /** Largest local clock over the cores in @p mask. */
    Cycle maxCycleOf(cache::SharerMask mask) const;

    /**
     * Coordination: advance every core in @p mask to
     * max(their cycles) + syncLatency(#mask) + @p extra.
     * @return the aligned cycle.
     */
    Cycle syncCores(cache::SharerMask mask, Cycle extra = 0);

    /** Mask containing every core. */
    cache::SharerMask allCoresMask() const;

    unsigned numCores() const { return config_.numCores; }
    const MachineConfig &config() const { return config_; }
    cpu::Core &core(CoreId id) { return *cores_[id]; }
    const cpu::Core &core(CoreId id) const { return *cores_[id]; }
    mem::MainMemory &memory() { return memory_; }
    const mem::MainMemory &memory() const { return memory_; }
    cache::CacheSystem &caches() { return caches_; }
    const cache::CacheSystem &caches() const { return caches_; }
    const isa::Program &program() const { return program_; }

    /** Aggregate core/cache/DRAM counters into @p stats. */
    void exportStats(StatSet &stats) const;

    /** Architectural + timing state of the whole machine, for the
     *  prefix-sharing snapshot (DESIGN.md §13). */
    struct Snapshot
    {
        std::vector<cpu::Core::Snap> cores;
        mem::MainMemory::Snap memory;
        cache::CacheSystem::Snap caches;
    };

    Snapshot save() const;

    /** Overwrite machine state with @p snap (same config/program). */
    void restore(const Snapshot &snap);

  private:
    /** Barrier-release epilogue shared by step()/stepWith(). */
    SystemState finishStep(bool any_ran);

    /** fatal() for a barrier deadlock in runToCompletion*(). */
    [[noreturn]] void blockedFatal() const;

    MachineConfig config_;
    /** Owned copy: the system (and its cores) must outlive any caller
     *  temporaries. */
    isa::Program program_;
    mem::MainMemory memory_;
    cache::CacheSystem caches_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    cpu::ExecObserver *observer_ = nullptr;
};

} // namespace acr::sim

#endif // ACR_SIM_SYSTEM_HH
