#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acr::sim
{

MulticoreSystem::MulticoreSystem(const MachineConfig &config,
                                 isa::Program program)
    : config_(config),
      program_(std::move(program)),
      caches_(config.numCores, config.hierarchy, config.dram)
{
    std::string err = program_.validate();
    if (!err.empty())
        fatal("program '%s' invalid: %s", program_.name().c_str(),
              err.c_str());

    for (const auto &[addr, value] : program_.data().words)
        memory_.write(addr, value);

    for (CoreId c = 0; c < config_.numCores; ++c) {
        cores_.push_back(std::make_unique<cpu::Core>(
            c, program_, memory_, caches_, config_.coreTiming));
    }
}

SystemState
MulticoreSystem::finishStep(bool any_ran)
{
    // Barrier release with epoch semantics: a waiter at epoch e may pass
    // once no live core is below epoch e and every live core still AT
    // epoch e has arrived at the barrier. This covers both the normal
    // rendezvous (all cores arrive at the same epoch) and re-execution
    // after a group-local rollback (partners are already past the
    // epoch, so the rolled-back group passes alone).
    unsigned waiting = 0;
    unsigned running = 0;
    std::uint64_t min_epoch = ~std::uint64_t{0};
    for (auto &core : cores_) {
        if (core->halted())
            continue;
        min_epoch = std::min(min_epoch, core->barrierEpoch());
        if (core->atBarrier())
            ++waiting;
        else
            ++running;
    }

    if (waiting > 0 && running == 0) {
        // Everyone alive is waiting. A core that halted below the epoch
        // the waiters are at can never join the rendezvous: the system
        // is wedged (possible only under corrupted control flow, or a
        // genuinely buggy program).
        for (auto &core : cores_) {
            if (core->halted() && core->barrierEpoch() <= min_epoch)
                return SystemState::kBlocked;
        }
        // Release the min-epoch cohort.
        cache::SharerMask cohort = 0;
        for (auto &core : cores_) {
            if (core->halted())
                continue;
            if (core->barrierEpoch() > min_epoch)
                continue;
            cohort |= cache::SharerMask{1} << core->id();
        }
        Cycle resume = syncCores(cohort);
        for (auto &core : cores_) {
            if (cohort & (cache::SharerMask{1} << core->id()))
                core->releaseBarrier(resume);
        }
        any_ran = true;
    }

    if (!any_ran && allHalted())
        return SystemState::kAllHalted;
    if (!any_ran && waiting == 0)
        panic("system wedged: nothing ran, nothing waiting");
    return allHalted() ? SystemState::kAllHalted : SystemState::kRunning;
}

void
MulticoreSystem::runToCompletion()
{
    runToCompletionWith(observer_);
}

void
MulticoreSystem::blockedFatal() const
{
    fatal("barrier deadlock in '%s': a core halted below the "
          "epoch its peers wait at",
          program_.name().c_str());
}

bool
MulticoreSystem::allHalted() const
{
    for (const auto &core : cores_) {
        if (!core->halted())
            return false;
    }
    return true;
}

std::uint64_t
MulticoreSystem::progress() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->instrsRetired();
    return total;
}

Cycle
MulticoreSystem::maxCycle() const
{
    Cycle max = 0;
    for (const auto &core : cores_)
        max = std::max(max, core->cycle());
    return max;
}

Cycle
MulticoreSystem::maxCycleOf(cache::SharerMask mask) const
{
    Cycle max = 0;
    for (CoreId c = 0; c < numCores(); ++c) {
        if (mask & (cache::SharerMask{1} << c))
            max = std::max(max, cores_[c]->cycle());
    }
    return max;
}

Cycle
MulticoreSystem::syncCores(cache::SharerMask mask, Cycle extra)
{
    unsigned participants = 0;
    for (CoreId c = 0; c < numCores(); ++c) {
        if (mask & (cache::SharerMask{1} << c))
            ++participants;
    }
    Cycle aligned = maxCycleOf(mask) + config_.syncLatency(participants)
                    + extra;
    for (CoreId c = 0; c < numCores(); ++c) {
        if (mask & (cache::SharerMask{1} << c))
            cores_[c]->setCycle(aligned);
    }
    return aligned;
}

cache::SharerMask
MulticoreSystem::allCoresMask() const
{
    if (numCores() >= 64)
        return ~cache::SharerMask{0};
    return (cache::SharerMask{1} << numCores()) - 1;
}

void
MulticoreSystem::exportStats(StatSet &stats) const
{
    cpu::CoreCounters total;
    for (const auto &core : cores_) {
        const cpu::CoreCounters &c = core->counters();
        total.instrs += c.instrs;
        total.aluOps += c.aluOps;
        total.loads += c.loads;
        total.stores += c.stores;
        total.branches += c.branches;
        total.barriers += c.barriers;
        total.memStallCycles += c.memStallCycles;
    }
    stats.add("cores.instrs", static_cast<double>(total.instrs));
    stats.add("cores.aluOps", static_cast<double>(total.aluOps));
    stats.add("cores.loads", static_cast<double>(total.loads));
    stats.add("cores.stores", static_cast<double>(total.stores));
    stats.add("cores.branches", static_cast<double>(total.branches));
    stats.add("cores.barriers", static_cast<double>(total.barriers));
    stats.add("cores.memStallCycles",
              static_cast<double>(total.memStallCycles));
    stats.set("sim.maxCycle", static_cast<double>(maxCycle()));
    caches_.exportStats(stats);
}

MulticoreSystem::Snapshot
MulticoreSystem::save() const
{
    Snapshot snap;
    snap.cores.reserve(cores_.size());
    for (const auto &core : cores_)
        snap.cores.push_back(core->save());
    snap.memory = memory_.save();
    snap.caches = caches_.save();
    return snap;
}

void
MulticoreSystem::restore(const Snapshot &snap)
{
    ACR_ASSERT(snap.cores.size() == cores_.size(),
               "snapshot core count mismatch");
    for (std::size_t i = 0; i < cores_.size(); ++i)
        cores_[i]->restore(snap.cores[i]);
    memory_.restore(snap.memory);
    caches_.restore(snap.caches);
}

} // namespace acr::sim
