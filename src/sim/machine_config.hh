/**
 * @file
 * Aggregate configuration of the simulated machine, defaulting to Table I
 * of the paper: 1.09 GHz, 4-issue in-order cores, 32 KB 4-way L1-I,
 * 32 KB 8-way L1-D, 512 KB 8-way L2, 120 ns DRAM at 7.6 GB/s per
 * controller with one controller per four cores.
 */

#ifndef ACR_SIM_MACHINE_CONFIG_HH
#define ACR_SIM_MACHINE_CONFIG_HH

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "mem/dram.hh"

namespace acr::sim
{

/** Full machine description. */
struct MachineConfig
{
    unsigned numCores = 8;

    /** Core clock in Hz; used only to convert cycles to seconds. */
    double frequencyHz = 1.09e9;

    cpu::CoreTimingConfig coreTiming{};
    cache::HierarchyConfig hierarchy{};
    mem::DramConfig dram{};

    /** Instructions per scheduling quantum (round-robin slice). */
    std::uint64_t quantumInstrs = 1000;

    /** Base cost of a synchronization round among N cores is
     *  syncBaseCycles * ceil(log2(N)) (tree barrier). */
    Cycle syncBaseCycles = 60;

    /** Config for @p cores cores with Table I parameters. */
    static MachineConfig
    tableI(unsigned cores)
    {
        MachineConfig config;
        config.numCores = cores;
        config.dram.controllers = mem::DramConfig::controllersFor(cores);
        return config;
    }

    /** Cost of synchronizing the @p participants cores. */
    Cycle
    syncLatency(unsigned participants) const
    {
        if (participants <= 1)
            return 0;
        unsigned levels = 0;
        unsigned n = 1;
        while (n < participants) {
            n *= 2;
            ++levels;
        }
        return syncBaseCycles * levels;
    }
};

} // namespace acr::sim

#endif // ACR_SIM_MACHINE_CONFIG_HH
