/**
 * @file
 * The distributed sweep's transport layer (DESIGN.md §15): nonblocking
 * length-framed TCP carrying the harness::wire ndjson records between
 * one `--listen` coordinator and its elastic fleet of `--connect`
 * workers.
 *
 * A frame is a 4-byte little-endian payload length, a 1-byte type, and
 * the payload bytes. `kWire` frames carry exactly one wire record line
 * (hello, point, result); `kPing`/`kPong`/`kShutdown` are empty
 * control frames for the heartbeat and for clean worker shutdown. The
 * payload length is bounded (kMaxFramePayload) so a garbled header
 * surfaces as a protocol error instead of an unbounded allocation.
 *
 * Robustness is the point, so the layer ships with its own adversary:
 * `FaultPlan` parses ACR_NET_FAULT and lets a test process drop its
 * connection after N frames, tear frame N in half mid-write, stall
 * before frame N, or garble frame N's payload — one shot per process,
 * surviving reconnects, so the smoke suite can kill, partition, and
 * corrupt workers mid-sweep and still require byte-identical rendered
 * output.
 *
 * I/O conventions match the Supervisor's pipes: every read/write
 * retries EINTR, EAGAIN yields back to poll(), writes pass MSG_NOSIGNAL
 * (and callers ignore SIGPIPE) so a peer dying between frames surfaces
 * as a closed channel, never a killed process.
 */

#ifndef ACR_HARNESS_NET_HH
#define ACR_HARNESS_NET_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace acr::harness::net
{

/** Bump on any framing or handshake change (header layout, frame
 *  types, hello fields); carried in the hello record so a skewed peer
 *  is rejected at handshake, not mid-sweep. */
inline constexpr std::uint64_t kProtocolVersion = 1;

/** Payload bound: anything larger is a garbled length header, not a
 *  record (the largest real record is a result line, well under 1 MB). */
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/** u32 LE payload length + u8 type. */
inline constexpr std::size_t kFrameHeaderBytes = 5;

enum class FrameType : std::uint8_t
{
    kWire = 1,      ///< payload: one harness::wire record line
    kPing = 2,      ///< coordinator keepalive (empty payload)
    kPong = 3,      ///< worker keepalive reply (empty payload)
    kShutdown = 4,  ///< sweep done: the worker may exit cleanly
};

struct Frame
{
    FrameType type = FrameType::kWire;
    std::string payload;
};

/** Header + payload bytes of one frame, ready to write. */
std::string encodeFrame(FrameType type, const std::string &payload);

/** A parsed HOST:PORT pair. */
struct Endpoint
{
    std::string host;
    std::uint16_t port = 0;

    std::string describe() const;
};

/**
 * Strict HOST:PORT parse (common/options.hh parseHostPort) for the
 * --listen/--connect/ACR_CONNECT endpoints; fatal() names @p flag on
 * any malformation. Port 0 ("pick a free port") is only meaningful on
 * the listen side.
 */
Endpoint parseEndpoint(const std::string &spec, const char *flag,
                       bool allow_port_zero);

/**
 * Bind + listen on @p endpoint, nonblocking; fatal() on any socket
 * error. @p bound receives the actual bound address, resolving a
 * port-0 request to the kernel-picked port.
 */
int listenOn(const Endpoint &endpoint, Endpoint &bound);

/**
 * One connect attempt to @p endpoint. On success returns a connected,
 * nonblocking, TCP_NODELAY fd; on failure returns -1 with the reason
 * in @p error (the caller owns the retry loop — a worker keeps trying
 * across coordinator restarts until its reconnect window closes).
 */
int connectOnce(const Endpoint &endpoint, std::string &error);

/**
 * Transport fault injection, parsed from ACR_NET_FAULT. Exactly one
 * fault per process, keyed to a 1-based *outbound* frame ordinal that
 * keeps counting across reconnects:
 *
 *   drop-after=N   close the connection abruptly once frame N has
 *                  been fully written
 *   torn=N         write only the first half of frame N, then close
 *                  (the peer sees a frame that never completes)
 *   stall=N:SECS   sleep SECS seconds before sending frame N (the
 *                  process genuinely stops — reads stall too)
 *   garble=N       XOR frame N's payload bytes (the length header
 *                  stays consistent, so the peer reads a full frame
 *                  of garbage and must reject it at decode)
 */
struct FaultPlan
{
    enum class Kind
    {
        kNone,
        kDropAfter,
        kTorn,
        kStall,
        kGarble,
    };

    Kind kind = Kind::kNone;
    std::uint64_t frame = 0;  ///< 1-based outbound frame ordinal
    double stallSec = 0.0;    ///< kStall only

    /** Outbound frames sent so far (across every channel that shares
     *  this plan — reconnects keep counting). */
    std::uint64_t sent = 0;
    /** One-shot: set once the fault has been injected. */
    bool fired = false;

    bool active() const { return kind != Kind::kNone && !fired; }

    /** Parse a spec; fatal() names ACR_NET_FAULT on garbage (strict:
     *  trailing text, signs, and out-of-range ordinals all fail). */
    static FaultPlan parse(const std::string &spec);

    /** Plan from $ACR_NET_FAULT (kNone when unset/empty). */
    static FaultPlan fromEnv();
};

/**
 * Nonblocking framed I/O over one connected socket. The owner polls
 * fd() for POLLIN (always) and POLLOUT (when wantsWrite()), then calls
 * readFrames()/flushWrites(); either returns kClosed once the peer is
 * gone (EOF, ECONNRESET, EPIPE) or the stream is unparseable (garbled
 * length header), with the reason in the caller's error string.
 */
class FrameChannel
{
  public:
    enum class Io
    {
        kOk,
        kClosed,
    };

    /** Takes ownership of @p fd. @p fault (not owned, may be null)
     *  applies the process's ACR_NET_FAULT plan to outbound frames. */
    explicit FrameChannel(int fd, FaultPlan *fault = nullptr);
    ~FrameChannel();

    FrameChannel(const FrameChannel &) = delete;
    FrameChannel &operator=(const FrameChannel &) = delete;

    int fd() const { return fd_; }
    bool isOpen() const { return fd_ >= 0; }

    /** Queue one frame (fault plan applied); call flushWrites() to
     *  move bytes. Frames queued after an injected close are dropped. */
    void send(FrameType type, const std::string &payload);

    /** True while queued bytes remain — poll POLLOUT. */
    bool wantsWrite() const { return fd_ >= 0 && !wbuf_.empty(); }

    /** Write queued bytes until done or EAGAIN. */
    Io flushWrites(std::string &error);

    /** Read available bytes, appending every complete frame to
     *  @p frames (partial tails stay buffered for the next call). */
    Io readFrames(std::vector<Frame> &frames, std::string &error);

    void close();

  private:
    int fd_ = -1;
    FaultPlan *fault_;
    std::string rbuf_;
    std::string wbuf_;
    bool closeAfterFlush_ = false;
};

} // namespace acr::harness::net

#endif // ACR_HARNESS_NET_HH
