/**
 * @file
 * Runner: benchmark-level orchestration used by every bench and example.
 * Caches base programs, slice-pass results (per workload × threshold ×
 * policy), and NoCkpt baselines so sweeps don't repeat work.
 *
 * Thread-safety contract (the substrate of harness::Sweep): one Runner
 * may be shared by any number of threads. The three caches are
 * OnceCaches — each entry is computed exactly once (concurrent
 * requesters for the same key block until the first finishes) and is
 * immutable afterwards, so the references returned by baseProgram(),
 * profileAt(), and noCkpt() stay valid and safe to read concurrently
 * for the Runner's lifetime. run() itself touches no Runner state
 * beyond those caches and the immutable machine/params members; every
 * mutable experiment object (system, StatSet, Rng, checkpoint
 * substrate) lives inside BerRuntime::run's frame, owned by the calling
 * thread. Given that, results are bit-identical no matter how calls are
 * interleaved.
 */

#ifndef ACR_HARNESS_RUNNER_HH
#define ACR_HARNESS_RUNNER_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "acr/slice_pass.hh"
#include "common/once_cache.hh"
#include "harness/ber_runtime.hh"
#include "harness/experiment.hh"
#include "harness/prefix_share.hh"
#include "sim/machine_config.hh"
#include "workloads/workload.hh"

namespace acr::harness
{

/** Cached experiment driver for one machine size. */
class Runner
{
  public:
    /** Table I machine with @p threads cores; @p scale sizes kernels. */
    explicit Runner(unsigned threads = 8, unsigned scale = 1);

    /** The paper's per-benchmark slice threshold (footnote 4: 5 for is,
     *  10 otherwise). */
    static unsigned
    defaultThreshold(const std::string &workload)
    {
        return workload == "is" ? 5 : 10;
    }

    const sim::MachineConfig &machine() const { return machine_; }
    unsigned threads() const { return machine_.numCores; }

    /** The kernel program without slice hints. */
    const isa::Program &baseProgram(const std::string &workload);

    /**
     * Slice-pass result (hinted program + NoCkpt profile) for the given
     * threshold/policy; cached.
     */
    const amnesic::SlicePassResult &
    profileAt(const std::string &workload, unsigned threshold,
              slice::SelectionPolicy policy =
                  slice::SelectionPolicy::kGreedyThreshold);

    /** Pass at the workload's default threshold. */
    const amnesic::SlicePassResult &profile(const std::string &workload);

    /** Cached NoCkpt baseline measurement. */
    const ExperimentResult &noCkpt(const std::string &workload);

    /** Execute one experiment (threshold defaulted per workload when
     *  config.sliceThreshold == 0). */
    ExperimentResult run(const std::string &workload,
                         ExperimentConfig config);

    // Exactly-once audit counters (concurrency tests): how many times
    // each cache actually computed an entry.
    std::uint64_t programBuilds() const { return programs_.computes(); }
    std::uint64_t slicePassRuns() const { return passes_.computes(); }
    std::uint64_t noCkptRuns() const { return noCkpt_.computes(); }

    /**
     * Toggle error-free prefix sharing (DESIGN.md §13). Defaults from
     * the ACR_PREFIX_SHARE environment variable: on unless set to "0"
     * or "off". Sharing never changes any measured result — a resumed
     * run is instruction-identical to a from-scratch one — so the
     * toggle exists for A/B verification and bisection only.
     */
    void setPrefixShare(bool enabled) { prefixShare_ = enabled; }
    bool prefixShare() const { return prefixShare_; }

    /** Prefix snapshots taken so far (test observability). */
    std::uint64_t prefixCaptures() const { return prefixCaptures_; }
    /** Runs that resumed from a prefix snapshot (test observability). */
    std::uint64_t prefixResumes() const { return prefixResumes_; }

  private:
    sim::MachineConfig machine_;
    workloads::WorkloadParams params_;

    OnceCache<std::string, isa::Program> programs_;
    OnceCache<std::tuple<std::string, unsigned, int>,
              amnesic::SlicePassResult>
        passes_;
    OnceCache<std::string, ExperimentResult> noCkpt_;

    // --- Error-free prefix sharing ---
    // Snapshots are keyed by everything that shapes execution *before*
    // the first fault trigger (workload, scheme, coordination, placement,
    // ...); fault-plan parameters are deliberately absent — the injector
    // is a no-op until its first trigger, so runs differing only in
    // them share the same prefix. A consumer picks the deepest snapshot
    // not past its own first trigger.
    bool prefixShare_;
    std::mutex prefixMutex_;
    std::map<std::string,
             std::vector<std::shared_ptr<const PrefixSnapshot>>>
        prefixCache_;
    std::uint64_t prefixCaptures_ = 0;
    std::uint64_t prefixResumes_ = 0;
};

} // namespace acr::harness

#endif // ACR_HARNESS_RUNNER_HH
