/**
 * @file
 * Process exit-code vocabulary of the sweep front-ends, and the one
 * place their precedence lives. A bench process can end up with
 * several independent verdicts — the supervisor quarantined points,
 * a bench-specific check (the torture oracle) found divergences — and
 * the shell sees a single byte, so the verdicts must be combined by
 * severity, not by whoever returns last:
 *
 *     kExitClean (0)  <  kExitQuarantine (3)  <  kExitDivergence (4)
 *                     <  kExitUnrecoverable (5)
 *
 * Quarantine means "some points have no measurement" (partial output);
 * divergence means "a measurement itself is wrong" (the recovery
 * oracle caught the engine misbehaving); unrecoverable means "the
 * modeled machine itself was lost" (storage faults defeated every
 * escalation rung, DESIGN.md §16) — the strongest statement a
 * campaign can make, so it dominates everything.
 * Codes 1/2 are not combinable verdicts: 1 is fatal()'s path (bad
 * flags, broken wire records) and exits immediately, 2 is reserved
 * for the platform. combineExitCodes() rejects them loudly rather
 * than guessing an ordering.
 */

#ifndef ACR_HARNESS_EXIT_CODE_HH
#define ACR_HARNESS_EXIT_CODE_HH

#include "common/logging.hh"

namespace acr::harness
{

enum ExitCode : int
{
    /** Every point measured, every check clean. */
    kExitClean = 0,
    /** >= 1 grid point failed every retry; rendered output is partial. */
    kExitQuarantine = 3,
    /** >= 1 recovery-oracle divergence: the engine produced a wrong
     *  measurement (torture / fault campaigns). */
    kExitDivergence = 4,
    /** >= 1 point ended unrecoverable: storage faults defeated every
     *  escalation rung and the run surfaced a structured loss-of-
     *  machine outcome (storage-fault campaigns). */
    kExitUnrecoverable = 5,
};

/** Severity rank within the precedence chain; -1 for codes that are
 *  not combinable verdicts. */
constexpr int
exitCodeSeverity(int code)
{
    switch (code) {
    case kExitClean: return 0;
    case kExitQuarantine: return 1;
    case kExitDivergence: return 2;
    case kExitUnrecoverable: return 3;
    default: return -1;
    }
}

/** The more severe of two verdicts (0 < 3 < 4 < 5). */
inline int
combineExitCodes(int a, int b)
{
    ACR_ASSERT(exitCodeSeverity(a) >= 0,
               "exit code %d is not a combinable verdict", a);
    ACR_ASSERT(exitCodeSeverity(b) >= 0,
               "exit code %d is not a combinable verdict", b);
    return exitCodeSeverity(a) >= exitCodeSeverity(b) ? a : b;
}

} // namespace acr::harness

#endif // ACR_HARNESS_EXIT_CODE_HH
