#include "harness/prefix_share.hh"

#include <unordered_map>
#include <utility>

#include "common/logging.hh"

namespace acr::harness
{

namespace
{

/** Interning index over live slice instances: each distinct instance
 *  (by identity, not value) gets one slot in the snapshot's table. */
class InstanceInterner
{
  public:
    explicit InstanceInterner(
        std::vector<amnesic::AcrEngine::Snap::InstanceEntry> &table)
        : table_(table)
    {
    }

    std::uint32_t
    idOf(const std::shared_ptr<slice::SliceInstance> &instance)
    {
        ACR_ASSERT(instance != nullptr, "interning a null instance");
        auto [it, fresh] =
            index_.emplace(instance.get(),
                           static_cast<std::uint32_t>(table_.size()));
        if (fresh) {
            table_.push_back(amnesic::AcrEngine::Snap::InstanceEntry{
                instance->slice(), instance->inputs()});
        }
        return it->second;
    }

  private:
    std::vector<amnesic::AcrEngine::Snap::InstanceEntry> &table_;
    std::unordered_map<const slice::SliceInstance *, std::uint32_t>
        index_;
};

PrefixSnapshot::LogSnap
saveLog(const ckpt::IntervalLog &log, InstanceInterner &interner)
{
    PrefixSnapshot::LogSnap snap;
    snap.interval = log.interval();
    snap.records.reserve(log.records().size());
    for (const ckpt::LogRecord &record : log.records()) {
        PrefixSnapshot::RecordSnap rec;
        rec.addr = record.addr;
        rec.oldValue = record.oldValue;
        rec.writer = record.writer;
        rec.amnesic = record.amnesic
                          ? interner.idOf(record.amnesic)
                          : PrefixSnapshot::kNoInstance;
        snap.records.push_back(rec);
    }
    return snap;
}

ckpt::IntervalLog
restoreLog(
    const PrefixSnapshot::LogSnap &snap,
    const std::vector<std::shared_ptr<slice::SliceInstance>> &instances)
{
    ckpt::IntervalLog log(snap.interval);
    for (const PrefixSnapshot::RecordSnap &rec : snap.records) {
        ckpt::LogRecord record;
        record.addr = rec.addr;
        record.oldValue = rec.oldValue;
        record.writer = rec.writer;
        if (rec.amnesic != PrefixSnapshot::kNoInstance) {
            ACR_ASSERT(rec.amnesic < instances.size(),
                       "snapshot record references instance %u of %zu",
                       rec.amnesic, instances.size());
            record.amnesic = instances[rec.amnesic];
        }
        log.append(std::move(record));
    }
    return log;
}

} // namespace

PrefixSnapshot
capturePrefix(std::uint64_t stop_progress,
              const sim::MulticoreSystem &system,
              sim::SystemState step_state, std::uint64_t next_ckpt,
              const StatSet &stats, const slice::SliceEngine *slicer,
              const amnesic::AcrEngine *acr,
              const ckpt::CheckpointManager &manager)
{
    PrefixSnapshot snap;
    snap.stopProgress = stop_progress;
    snap.system = system.save();
    snap.stepState = step_state;
    snap.nextCkpt = next_ckpt;
    snap.stats = stats;

    InstanceInterner interner(snap.instances);
    if (slicer)
        snap.slicer = *slicer;
    if (acr) {
        snap.acr = acr->save(
            [&interner](
                const std::shared_ptr<slice::SliceInstance> &instance) {
                return interner.idOf(instance);
            });
    }

    snap.openLog = saveLog(manager.openLog(), interner);
    snap.retained.reserve(manager.retained().size());
    for (const ckpt::Checkpoint &ckpt : manager.retained()) {
        PrefixSnapshot::CkptSnap c;
        c.index = ckpt.index;
        c.establishedAt = ckpt.establishedAt;
        c.progressAt = ckpt.progressAt;
        c.arch = ckpt.arch;
        c.interactions = ckpt.interactions;
        c.validFor = ckpt.validFor;
        c.log = saveLog(ckpt.log, interner);
        snap.retained.push_back(std::move(c));
    }
    snap.established = manager.checkpointsEstablished();
    snap.history = manager.history();
    return snap;
}

void
resumePrefix(const PrefixSnapshot &snap, sim::MulticoreSystem &system,
             std::uint64_t &next_ckpt, StatSet &stats,
             slice::SliceEngine *slicer, amnesic::AcrEngine *acr,
             ckpt::CheckpointManager &manager)
{
    ACR_ASSERT((slicer != nullptr) == snap.slicer.has_value() &&
                   (acr != nullptr) == snap.acr.has_value(),
               "resume component mismatch");

    // Wholesale StatSet replacement also erases any counters the fresh
    // components' constructors may have touched — the snapshot's set is
    // authoritative for everything up to the capture point.
    stats = snap.stats;
    system.restore(snap.system);
    next_ckpt = snap.nextCkpt;

    if (slicer)
        *slicer = *snap.slicer;

    // Materialize every live instance once, against the *new* run's
    // operand buffer, then re-link AddrMap and undo logs to them.
    std::vector<std::shared_ptr<slice::SliceInstance>> instances;
    if (acr)
        instances = acr->restore(*snap.acr, snap.instances);
    else
        ACR_ASSERT(snap.instances.empty(),
                   "instances without an ACR engine");

    std::deque<ckpt::Checkpoint> retained;
    for (const PrefixSnapshot::CkptSnap &c : snap.retained) {
        ckpt::Checkpoint ckpt;
        ckpt.index = c.index;
        ckpt.establishedAt = c.establishedAt;
        ckpt.progressAt = c.progressAt;
        ckpt.arch = c.arch;
        ckpt.interactions = c.interactions;
        ckpt.validFor = c.validFor;
        ckpt.log = restoreLog(c.log, instances);
        retained.push_back(std::move(ckpt));
    }
    manager.restoreRetention(restoreLog(snap.openLog, instances),
                             std::move(retained), snap.established,
                             snap.history);
}

} // namespace acr::harness
