/**
 * @file
 * BenchMain: the one experiment-facing front-end shared by every
 * sweeping bench binary. A bench declares a BenchSpec — how to
 * enumerate its grid and how to render results — and main() is one
 * call to benchMain(), which owns the common command line:
 *
 *   --jobs=N        in-process sweep worker threads
 *   --forks=N       local multi-process mode: fork/exec N `--worker`
 *                   children of this same binary
 *   --shard=i/N     static machine-level sharding: run only this
 *                   shard's grid points and emit wire records
 *                   (manifest + results) instead of rendering
 *   --merge=a,b,... read shard record files, verify they cover this
 *                   exact grid, and render the normal output
 *   --worker        wire-protocol worker (stdin points, stdout
 *                   results); used by --forks
 *   --listen=H:P    distributed coordinator: accept TCP `--connect`
 *                   workers on HOST:PORT (port 0: kernel-picked,
 *                   announced on stderr) and deal grid points to the
 *                   elastic fleet (DESIGN.md §15)
 *   --connect=H:P   distributed worker: dial a --listen coordinator,
 *                   handshake (bench + grid + protocol version), run
 *                   dealt points, reconnect on connection loss
 *                   (default $ACR_CONNECT)
 *   --heartbeat=S   distributed keepalive cadence in seconds (idle
 *                   peers time out at 4x, the empty-fleet join grace
 *                   is 8x, the worker reconnect window 10x)
 *   --format=F      table | csv | json rendering
 *   --workloads=a,b restrict the workload axis
 *   --backend=B     override the checkpoint store backend (log |
 *                   replicated | nvm; default $ACR_BACKEND) on every
 *                   checkpointing grid point; omitted, the bench's
 *                   grid runs exactly as enumerated (the seed path)
 *
 * Fault tolerance (DESIGN.md §10):
 *
 *   --retries=N       retry a failed point N times on fresh workers
 *                     before quarantining it (forked mode; default 2)
 *   --point-timeout=S per-point wall-clock watchdog: SIGKILL + retry
 *                     a worker wedged longer than S seconds (0: off)
 *   --journal=FILE    append every completed point to FILE as fsync'd
 *                     wire records (crash-safe progress log + result
 *                     cache)
 *   --resume          load --journal and serve already-completed
 *                     points from it instead of re-simulating
 *   --cache=FILE      content-addressed cross-bench result cache
 *                     (DESIGN.md §11; default $ACR_CACHE): identical
 *                     (workload, config, threads) points — from any
 *                     bench, at any grid position — are served from
 *                     FILE instead of simulating, and fresh results
 *                     are appended fsync'd. Lookups are
 *                     coordinator-side in every mode, so cached
 *                     points are never dealt to --forks workers.
 *                     Quarantined points are never cached (they
 *                     retry). Hit/miss/insert counters go to stderr.
 *
 * Determinism contract: for a fixed grid, the rendered output of
 * `--jobs=1`, `--jobs=N`, `--forks=N`, `--listen` (any TCP fleet,
 * however it churned), and `--shard`-then-`--merge` is byte-identical
 * (host timing goes to stderr) — including when points were retried
 * after worker crashes, transport faults, or disconnections, or
 * served from a journal or the content-addressed result cache.
 * A sweep with quarantined points renders FAILED cells and exits 3.
 */

#ifndef ACR_HARNESS_BENCH_MAIN_HH
#define ACR_HARNESS_BENCH_MAIN_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/options.hh"
#include "common/table.hh"
#include "harness/sharded_sweep.hh"

namespace acr::harness
{

/** Parsed common command line of a bench binary. */
struct BenchOptions
{
    unsigned jobs = 0;   ///< 0: Sweep::defaultJobs()
    unsigned forks = 0;  ///< >0: local fork/exec worker processes
    ShardedSweep::Shard shard{};
    bool shardMode = false;   ///< --shard given: emit wire records
    bool workerMode = false;  ///< --worker
    bool listenMode = false;  ///< --listen given: TCP coordinator
    net::Endpoint listen;     ///< parsed --listen endpoint
    bool connectMode = false;  ///< --connect given: TCP worker
    net::Endpoint connect;     ///< parsed --connect endpoint
    unsigned heartbeatSec = 5;  ///< --heartbeat (distributed mode)
    TableFormat format = TableFormat::kTable;
    std::vector<std::string> workloads;   ///< resolved selection
    std::vector<std::string> mergeFiles;  ///< --merge given: render

    /** --backend given: force this store on every checkpointing grid
     *  point (NoCkpt points keep kLog — they store nothing). */
    bool backendOverride = false;
    ckpt::Backend backend = ckpt::Backend::kLog;

    unsigned retries = 2;       ///< --retries (forked mode)
    double pointTimeout = 0.0;  ///< --point-timeout seconds (0: off)
    std::string journal;        ///< --journal path ("" : none)
    bool resume = false;        ///< --resume (needs --journal)
    std::string cachePath;      ///< --cache / $ACR_CACHE ("" : none)
};

/** Everything a bench's grid/render callbacks may touch. */
class BenchContext
{
  public:
    BenchContext(std::string name, const BenchOptions &options,
                 RunnerPool &runners, std::ostream &out)
        : name_(std::move(name)), options_(options), runners_(runners),
          out_(out)
    {
    }

    const std::string &name() const { return name_; }
    const BenchOptions &options() const { return options_; }

    /** The selected workload axis (--workloads, else the spec's
     *  default, else every workload). */
    const std::vector<std::string> &workloads() const
    {
        return options_.workloads;
    }

    RunnerPool &runners() { return runners_; }
    Runner &runner(unsigned threads = 8) { return runners_.at(threads); }

    std::ostream &out() { return out_; }

    /** Prose line around tables; suppressed under csv/json so machine
     *  formats stay parseable. */
    void
    note(const std::string &text)
    {
        if (options_.format == TableFormat::kTable)
            out_ << text;
    }

    /** Render a table in the selected format. */
    void emit(const Table &table) { table.emit(out_, options_.format); }

  private:
    std::string name_;
    const BenchOptions &options_;
    RunnerPool &runners_;
    std::ostream &out_;
};

/** A bench binary, declaratively. */
struct BenchSpec
{
    /** Program name (usage text, shard manifests). */
    std::string name;

    /** Workload axis when --workloads is absent; empty means every
     *  workload (workloads::allWorkloadNames()). */
    std::vector<std::string> defaultWorkloads;

    /** Enumerate the experiment grid, in submission (= output) order. */
    std::function<std::vector<GridPoint>(BenchContext &)> grid;

    /** Render results; results[i] belongs to grid point i. Must be a
     *  pure function of the results and the (deterministic) Runner
     *  caches so merged/sharded output stays byte-identical. */
    std::function<void(BenchContext &,
                       const std::vector<ExperimentResult> &)>
        render;

    /** Declare bench-specific flags on the shared parser, before
     *  parse() — use OptionParser::envDefault here so a flag and its
     *  environment variable share one validation path (optional). */
    std::function<void(OptionParser &)> options;

    /** Read the bench-specific flags back after parse() (optional;
     *  typically stores into file-scope config the grid/render
     *  callbacks consult). Runs in --worker mode too, so workers
     *  inherit the same settings through their environment. */
    std::function<void(const OptionParser &)> readOptions;

    /** Pick an extra exit code from the rendered results (optional).
     *  Called wherever render is (sweep and merge modes, not shard or
     *  worker); the process exits with max(quarantine code, this). */
    std::function<int(BenchContext &,
                      const std::vector<ExperimentResult> &)>
        exitCode;
};

/** Run a bench binary: parse the common flags, execute the requested
 *  mode, return the process exit code. */
int benchMain(int argc, const char *const *argv, const BenchSpec &spec);

} // namespace acr::harness

#endif // ACR_HARNESS_BENCH_MAIN_HH
