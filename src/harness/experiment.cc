#include "harness/experiment.hh"

#include "common/logging.hh"

namespace acr::harness
{

std::string
ExperimentConfig::label() const
{
    std::string base;
    switch (mode) {
      case BerMode::kNoCkpt:
        return "NoCkpt";
      case BerMode::kCkpt:
        base = "Ckpt";
        break;
      case BerMode::kReCkpt:
        base = "ReCkpt";
        break;
    }
    base += numErrors > 0 ? "_E" : "_NE";
    if (coordination == ckpt::Coordination::kLocal)
        base += ",Loc";
    // Default-backend labels stay exactly as they always were, so the
    // seed benches render byte-identically when --backend is omitted.
    if (backend != ckpt::Backend::kLog)
        base += std::string("@") + ckpt::backendName(backend);
    return base;
}

std::string
ExperimentConfig::validate() const
{
    if (detectionLatencyFraction < 0.0 || detectionLatencyFraction > 1.0)
        return csprintf("detectionLatencyFraction must be in [0, 1] "
                        "(Sec. II-A: detection within one checkpoint "
                        "period), got %g",
                        detectionLatencyFraction);
    if (placement == PlacementPolicy::kRecomputeAware &&
        mode != BerMode::kReCkpt)
        return csprintf("placement == kRecomputeAware requires "
                        "mode == kReCkpt (deferral decisions need the "
                        "slice profile), got mode %s",
                        label().c_str());
    if (sliceThreshold == 0)
        return "sliceThreshold must be nonzero (0 is only a request "
               "for the per-workload default, which Runner::run "
               "resolves before validation)";
    if (numErrors > 0 && mode == BerMode::kNoCkpt)
        return csprintf("numErrors > 0 requires a checkpointing mode "
                        "(NoCkpt cannot recover), got numErrors = %u",
                        numErrors);
    if (mode == BerMode::kNoCkpt && backend != ckpt::Backend::kLog)
        return csprintf("backend == %s requires a checkpointing mode "
                        "(NoCkpt stores no checkpoints, so a non-"
                        "default backend would silently measure "
                        "nothing)",
                        ckpt::backendName(backend));
    if (placementSlack < 0.0 || placementSlack > 1.0)
        return csprintf("placementSlack must be in [0, 1] (a fraction "
                        "of the checkpoint period), got %g",
                        placementSlack);
    if (oracle && mode == BerMode::kNoCkpt)
        return "oracle == true requires a checkpointing mode (there is "
               "no recovery to validate under NoCkpt)";
    if (faultEventMask == 0 && numErrors > 0)
        return csprintf("faultEventMask == 0 would silently drop all "
                        "%u planned errors; use numErrors = 0 instead",
                        numErrors);
    if (storageErrors > 0 && mode == BerMode::kNoCkpt)
        return csprintf("storageErrors > 0 requires a checkpointing "
                        "mode (NoCkpt stores nothing to corrupt), got "
                        "storageErrors = %u",
                        storageErrors);
    if (storageFaultMask == 0 && storageErrors > 0)
        return csprintf("storageFaultMask == 0 would silently drop all "
                        "%u planned storage faults; use "
                        "storageErrors = 0 instead",
                        storageErrors);
    return "";
}

} // namespace acr::harness
