/**
 * @file
 * Overhead decomposition in the paper's own terms (Equations 1-4).
 *
 *   o_chk     = #chk x o_wr,chk                       (Eq. 1)
 *   o_rec     = #rec x (o_waste + o_roll-back)        (Eq. 2)
 *   o_rec,ACR = #rec x (o_waste + o_roll-back,rcmp
 *                               + o_rcmp)             (Eq. 3)
 *
 * and ACR keeps recovery overhead at bay iff
 *
 *   o_roll-back,rcmp + o_rcmp <= o_roll-back          (Eq. 4)
 *
 * The breakdown is extracted from a run's StatSet; rollbackCycles
 * already contains both the restore and the recomputation time, so the
 * Eq. 4 comparison is a direct cycles comparison between an ACR run and
 * its baseline counterpart.
 */

#ifndef ACR_HARNESS_ANALYSIS_HH
#define ACR_HARNESS_ANALYSIS_HH

#include <ostream>

#include "harness/experiment.hh"

namespace acr::harness
{

/** The Eq. 1-3 components of one run. */
struct BerBreakdown
{
    // Equation 1.
    double checkpoints = 0;        ///< #chk
    double establishCycles = 0;    ///< sum of o_wr,chk (core-cycles)
    double loggedBytes = 0;
    double omittedBytes = 0;

    // Equations 2/3.
    double recoveries = 0;         ///< #rec
    double wasteCycles = 0;        ///< sum of o_waste
    double rollbackCycles = 0;     ///< o_roll-back(,rcmp) + o_rcmp
    double restoredWords = 0;
    double recomputedWords = 0;
    double replayAluOps = 0;       ///< the work inside o_rcmp

    /** Mean o_wr,chk per checkpoint. */
    double
    meanEstablishCycles() const
    {
        return checkpoints == 0 ? 0 : establishCycles / checkpoints;
    }

    /** Mean (o_waste + o_roll-back) per recovery. */
    double
    meanRecoveryCycles() const
    {
        return recoveries == 0
                   ? 0
                   : (wasteCycles + rollbackCycles) / recoveries;
    }
};

/** Extract the breakdown from a finished run. */
inline BerBreakdown
analyze(const ExperimentResult &result)
{
    BerBreakdown b;
    b.checkpoints = result.stats.get("ckpt.establishments");
    b.establishCycles = result.stats.get("ckpt.establishStallCycles");
    b.loggedBytes = result.stats.get("ckpt.loggedBytes");
    b.omittedBytes = result.stats.get("ckpt.omittedBytes");
    b.recoveries = result.stats.get("rec.recoveries");
    b.wasteCycles = result.stats.get("rec.wasteCycles");
    b.rollbackCycles = result.stats.get("rec.rollbackCycles");
    b.restoredWords = result.stats.get("rec.restoredWords");
    b.recomputedWords = result.stats.get("rec.recomputedWords");
    b.replayAluOps = result.stats.get("acr.replayAluOps");
    return b;
}

/**
 * Equation 4: does the ACR run's per-recovery roll-back cost (restore
 * of the shrunken checkpoint + recomputation) stay within the
 * baseline's roll-back cost? @p slack tolerates measurement noise.
 */
inline bool
eq4Holds(const ExperimentResult &acr_run,
         const ExperimentResult &baseline_run, double slack = 1.0)
{
    BerBreakdown a = analyze(acr_run);
    BerBreakdown b = analyze(baseline_run);
    if (a.recoveries == 0 || b.recoveries == 0)
        return true;  // vacuously: no recovery happened
    return a.rollbackCycles / a.recoveries <=
           slack * b.rollbackCycles / b.recoveries;
}

/** Print the decomposition in the paper's notation. */
inline void
printBreakdown(std::ostream &os, const BerBreakdown &b)
{
    os << "Eq. 1: #chk = " << b.checkpoints
       << ", mean o_wr,chk = " << b.meanEstablishCycles()
       << " core-cycles (" << b.loggedBytes / 1024.0 << " KB logged, "
       << b.omittedBytes / 1024.0 << " KB omitted)\n";
    os << "Eq. 2/3: #rec = " << b.recoveries
       << ", o_waste = " << b.wasteCycles
       << " cycles, o_roll-back(+rcmp) = " << b.rollbackCycles
       << " cycles (" << b.restoredWords << " words restored, "
       << b.recomputedWords << " recomputed via "
       << b.replayAluOps << " replayed ops)\n";
}

} // namespace acr::harness

#endif // ACR_HARNESS_ANALYSIS_HH
