#include "harness/result_cache.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iterator>
#include <vector>

#include "common/logging.hh"

namespace acr::harness
{

namespace
{

/** write(2) the whole buffer, retrying on EINTR; fatal() on error. */
void
writeAllFd(int fd, const std::string &bytes, const char *what)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("writing %s: %s", what, std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
}

/** write(2) the whole buffer, retrying on EINTR; false on error with
 *  errno left describing it (the ENOSPC/EIO degrade path). */
bool
tryWriteAllFd(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void
fsyncOrDie(int fd, const std::string &path)
{
    while (::fsync(fd) < 0) {
        if (errno != EINTR)
            fatal("fsync cache '%s': %s", path.c_str(),
                  std::strerror(errno));
    }
}

std::string
headerLine()
{
    serde::Json json = serde::Json::object();
    json.set("type", "acr-cache")
        .set("cachev", ResultCache::kCacheVersion)
        .set("wirev", wire::kVersion);
    return json.dump();
}

std::string
entryLine(const std::string &point_dump, std::uint64_t key,
          const ExperimentResult &result)
{
    serde::Json json = serde::Json::object();
    json.set("type", "entry")
        .set("key", key)
        .set("point", serde::Json::parse(point_dump))
        .set("result", wire::encodeResult(result));
    return json.dump();
}

} // namespace

ResultCache::~ResultCache()
{
    close();
}

void
ResultCache::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ACR_ASSERT(fd_ < 0, "cache already open");
    path_ = path;

    std::vector<std::string> lines;
    std::size_t durable_bytes = 0;
    {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::string content((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
            std::size_t start = 0;
            while (start < content.size()) {
                const std::size_t newline = content.find('\n', start);
                if (newline == std::string::npos) {
                    // Torn tail: a writer died mid-append. The entry
                    // is simply recomputed next time it is needed.
                    warn("cache '%s': dropping torn final line",
                         path.c_str());
                    break;
                }
                lines.push_back(content.substr(start, newline - start));
                start = newline + 1;
                durable_bytes = start;
            }
        }
    }

    // Validate the header. Anything unrecognized — garbage, a future
    // cache schema, records encoded under a different wire version —
    // makes the whole file cold: every lookup misses, the sweep
    // recomputes, and the file is re-headed for this build.
    bool cold = lines.empty();
    if (!cold) {
        try {
            serde::Json json = serde::Json::parse(lines.front());
            serde::ObjectReader reader(json, "cache header");
            const std::string type = reader.requireString("type");
            const std::uint64_t cachev = reader.requireUint("cachev");
            const std::uint64_t wirev = reader.requireUint("wirev");
            reader.finish();
            if (type != "acr-cache" || cachev != kCacheVersion) {
                warn("cache '%s': unrecognized header; starting cold",
                     path.c_str());
                cold = true;
            } else if (wirev != wire::kVersion) {
                warn("cache '%s': entries use wire v%llu but this "
                     "build speaks v%llu; starting cold",
                     path.c_str(),
                     static_cast<unsigned long long>(wirev),
                     static_cast<unsigned long long>(wire::kVersion));
                cold = true;
            }
        } catch (const serde::SerdeError &error) {
            warn("cache '%s': unreadable header (%s); starting cold",
                 path.c_str(), error.what());
            cold = true;
        }
    }

    if (cold) {
        fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd_ < 0)
            fatal("cannot create cache '%s': %s", path.c_str(),
                  std::strerror(errno));
        writeAllFd(fd_, headerLine() + "\n", "cache");
        fsyncOrDie(fd_, path_);
        return;
    }

    for (std::size_t i = 1; i < lines.size(); ++i) {
        // One bad entry (flipped byte, schema drift, key/point
        // mismatch) is a miss for that experiment, not a dead cache.
        try {
            serde::Json json = serde::Json::parse(lines[i]);
            serde::ObjectReader reader(json, "cache entry");
            if (reader.requireString("type") != "entry")
                throw serde::SerdeError("not an entry record");
            const std::uint64_t key = reader.requireUint("key");
            const GridPoint point =
                wire::decodePoint(reader.require("point"));
            ExperimentResult result =
                wire::decodeResult(reader.require("result"));
            reader.finish();
            if (key != wire::pointHash(point))
                throw serde::SerdeError(
                    "key does not match the point encoding");
            entries_[wire::encodePoint(point).dump()] =
                std::move(result);
        } catch (const serde::SerdeError &error) {
            warn("cache '%s': skipping unreadable entry %zu: %s",
                 path.c_str(), i, error.what());
        }
    }

    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd_ < 0)
        fatal("cannot reopen cache '%s': %s", path.c_str(),
              std::strerror(errno));
    // Chop dropped tail bytes so the next append starts on a clean
    // line boundary instead of extending the torn remnant.
    while (::ftruncate(fd_, static_cast<off_t>(durable_bytes)) < 0) {
        if (errno != EINTR)
            fatal("truncate cache '%s': %s", path.c_str(),
                  std::strerror(errno));
    }
}

void
ResultCache::failNextWriteForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    failNextWrite_ = true;
}

bool
ResultCache::tryAppend(const std::string &bytes)
{
    int error = 0;
    if (failNextWrite_) {
        // Injected failure: behave exactly as if write(2) returned
        // ENOSPC, so tests drive the same degrade the real disk would.
        failNextWrite_ = false;
        error = ENOSPC;
    } else if (!tryWriteAllFd(fd_, bytes)) {
        error = errno;
    } else {
        while (::fsync(fd_) < 0) {
            if (errno != EINTR) {
                error = errno;
                break;
            }
        }
    }
    if (error == 0)
        return true;
    warn("cache '%s': append failed (%s); disabling the cache file — "
         "loaded entries still serve, new results are not persisted",
         path_.c_str(), std::strerror(error));
    ::close(fd_);
    fd_ = -1;
    degraded_ = true;
    return false;
}

const ExperimentResult *
ResultCache::find(const GridPoint &point)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ACR_ASSERT(isOpen(), "cache not open");
    if (point.config.trace != nullptr) {
        // A host-memory trace sink cannot be serialized, so the point
        // was never cached; don't try to encode it.
        ++misses_;
        return nullptr;
    }
    const auto it = entries_.find(wire::encodePoint(point).dump());
    if (it == entries_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    return &it->second;
}

void
ResultCache::insert(const GridPoint &point,
                    const ExperimentResult &result)
{
    // Quarantined points are not cached: retrying on the next run is
    // the natural resume semantic, matching the journal.
    if (result.failed || point.config.trace != nullptr)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    ACR_ASSERT(isOpen(), "cache not open");
    const std::string dump = wire::encodePoint(point).dump();
    if (entries_.count(dump))
        return;
    // Degraded (ENOSPC/EIO on an earlier append): keep deduplicating
    // in memory so this process still gets hits; nothing persists.
    const bool durable =
        fd_ >= 0 &&
        tryAppend(entryLine(dump, wire::pointHash(point), result) +
                  "\n");
    entries_[dump] = result;
    if (durable)
        ++inserts_;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
ResultCache::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    degraded_ = false;
}

} // namespace acr::harness
