#include "harness/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <thread>

#include "common/logging.hh"
#include "common/options.hh"

namespace acr::harness
{

namespace
{

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

Sweep::Sweep(Runner &runner, unsigned jobs)
    : runner_(runner), jobs_(jobs > 0 ? jobs : defaultJobs())
{
}

unsigned
Sweep::defaultJobs()
{
    if (const char *env = std::getenv("ACR_JOBS")) {
        long long value = 0;
        if (parseStrictInt(env, value) && value > 0 &&
            value <= std::numeric_limits<unsigned>::max())
            return static_cast<unsigned>(value);
        warn("ignoring ACR_JOBS='%s' (want a positive integer)", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::vector<ExperimentResult>
Sweep::run(const std::vector<SweepPoint> &points)
{
    std::vector<ExperimentResult> results(points.size());
    std::vector<double> point_millis(points.size(), 0.0);

    const auto wall_start = std::chrono::steady_clock::now();

    // Workers pull the next unclaimed index; each index's result lands
    // in its own pre-allocated slot, so submission order is preserved
    // without any post-hoc sorting and the only cross-thread traffic is
    // the claim counter and the Runner's internal caches.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        while (true) {
            const std::size_t i = next.fetch_add(1);
            if (i >= points.size())
                return;
            const auto point_start = std::chrono::steady_clock::now();
            results[i] = runner_.run(points[i].workload,
                                     points[i].config);
            point_millis[i] = millisSince(point_start);
        }
    };

    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        jobs_, points.empty() ? 1 : points.size()));
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }

    hostStats_.clear();
    hostStats_.set("sweep.jobs", static_cast<double>(jobs_));
    hostStats_.set("sweep.points", static_cast<double>(points.size()));
    hostStats_.set("sweep.wallMillis", millisSince(wall_start));
    double work = 0.0;
    for (std::size_t i = 0; i < point_millis.size(); ++i) {
        hostStats_.set(csprintf("sweep.point.%03zu.millis", i),
                       point_millis[i]);
        work += point_millis[i];
    }
    hostStats_.set("sweep.workMillis", work);
    return results;
}

void
Sweep::reportTiming(std::ostream &os) const
{
    const double wall = hostStats_.get("sweep.wallMillis");
    const double work = hostStats_.get("sweep.workMillis");
    os << "[sweep] " << hostStats_.get("sweep.points") << " points on "
       << jobs_ << " job(s): " << wall << " ms wall, " << work
       << " ms of work (parallelism "
       << (wall > 0.0 ? work / wall : 0.0) << "x)\n";
}

} // namespace acr::harness
