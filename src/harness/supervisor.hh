/**
 * @file
 * Fault-tolerant execution layer under harness::ShardedSweep — the
 * paper's checkpoint/recovery discipline applied to the harness's own
 * long-running sweeps (DESIGN.md §10). Two pieces:
 *
 * `Supervisor` drives a fleet of forked `--worker` processes through a
 * single-threaded poll() event loop: nonblocking wire I/O, crash
 * detection via waitpid(WNOHANG) + pipe EOF, an optional per-point
 * wall-clock watchdog that SIGKILLs a wedged child, and automatic
 * respawn of replacement workers. A failed point is retried on a fresh
 * worker with jittered exponential backoff; a point that exhausts its
 * retries is *quarantined* — delivered as an
 * `ExperimentResult::quarantined` placeholder (a `failed` wire record
 * downstream) so the sweep completes around it instead of aborting.
 *
 * `Journal` is the crash-safe completion log behind `--journal` /
 * `--resume`: each completed point is appended as one fsync'd
 * canonical ndjson record, and a reload validates the header against
 * the current grid (bench, shard, gridHash), tolerates a torn final
 * line (dropped), and serves already-completed points without
 * re-simulating them — which doubles as a result cache across repeated
 * bench invocations.
 *
 * Determinism contract: a result is byte-identical whether it came
 * from a first-try worker, a retried worker, or the journal; only
 * host-side timing (stderr) differs.
 */

#ifndef ACR_HARNESS_SUPERVISOR_HH
#define ACR_HARNESS_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/net.hh"
#include "harness/wire.hh"

namespace acr::harness
{

/** Forked- and TCP-worker supervision: retry/backoff/watchdog/
 *  quarantine over an elastic fleet. */
class Supervisor
{
  public:
    struct Options
    {
        /** Target live worker processes (clamped to the task count). */
        unsigned workers = 1;

        /** Retries after a point's first failed attempt; a point that
         *  fails 1 + retries attempts is quarantined. */
        unsigned retries = 2;

        /** Per-point wall-clock watchdog in seconds; a worker that
         *  holds a point longer is SIGKILLed and the point retried.
         *  0 disables the watchdog. */
        double pointTimeoutSec = 0.0;

        /** First retry delay; doubles per subsequent attempt. */
        double backoffBaseSec = 0.05;

        /** Backoff growth cap. */
        double backoffCapSec = 2.0;

        /** Seed for the backoff jitter (timing only — results are
         *  unaffected). */
        std::uint64_t jitterSeed = 0x5eed;
    };

    /**
     * Distributed-mode knobs (runListen): where to accept TCP workers
     * and the identity their handshake must match (DESIGN.md §15).
     * The heartbeat paces keepalive pings; idle peers time out after
     * four missed heartbeats, and an empty fleet with queued work is
     * given eight heartbeats for a (re)join before every queued point
     * is quarantined — the sweep degrades to FAILED cells, it never
     * hangs.
     */
    struct NetOptions
    {
        net::Endpoint listen;       ///< port 0: kernel-picked
        unsigned heartbeatSec = 5;  ///< keepalive ping cadence

        /** Handshake identity: a worker whose hello disagrees on any
         *  of these (or on net::kProtocolVersion) is rejected. */
        std::string bench;
        std::uint64_t gridPoints = 0;
        std::uint64_t gridHash = 0;
    };

    /** One unit of supervised work. */
    struct Task
    {
        std::size_t slot = 0;       ///< caller's merge slot
        std::size_t gridIndex = 0;  ///< index the worker echoes back
        const GridPoint *point = nullptr;
    };

    /**
     * Fires once per task, in completion order, with either the
     * decoded worker result or the quarantine placeholder
     * (`result.failed`). The callback runs on the supervising thread.
     */
    using Deliver =
        std::function<void(const Task &, ExperimentResult)>;

    /** @param workerCmd argv of a `--worker` invocation of this very
     *  binary (see ShardedSweep::selfExecutable). */
    Supervisor(std::vector<std::string> workerCmd, Options options);

    /** Distributed mode: no worker command — the fleet dials in
     *  (runListen only; run() requires the forked-worker ctor). */
    explicit Supervisor(Options options);

    /**
     * Run every task to completion (success or quarantine). Writes
     * supervision counters into @p stats: sweep.respawns,
     * sweep.retries, sweep.workerCrashes, sweep.watchdogKills,
     * sweep.quarantined.
     */
    void run(const std::vector<Task> &tasks, const Deliver &deliver,
             StatSet &stats);

    /**
     * Distributed mode (DESIGN.md §15): accept `--connect` workers on
     * @p net.listen (the actual bound endpoint — port 0 resolved — is
     * announced as "[net] listening on HOST:PORT" on stderr), deal
     * points one at a time to idle handshaken members, and run every
     * task to completion (success or quarantine). Membership is
     * elastic: workers may join late, leave idle, crash busy, or
     * reconnect; a lost busy worker's point re-enters the same
     * retry/backoff/quarantine ladder as a crashed forked worker.
     * Counters in @p stats: sweep.retries, sweep.workerCrashes (busy
     * connection losses), sweep.watchdogKills, sweep.quarantined,
     * sweep.netJoins, sweep.netLeaves.
     */
    void runListen(const std::vector<Task> &tasks,
                   const NetOptions &net, const Deliver &deliver,
                   StatSet &stats);

    /** Backoff before attempt @p tries+1 of @p gridIndex, in seconds:
     *  capped exponential with deterministic jitter in [0.5, 1.5)x.
     *  Exposed for tests. */
    static double backoffSeconds(const Options &options, unsigned tries,
                                 std::size_t gridIndex);

  private:
    std::vector<std::string> workerCmd_;
    Options options_;
};

/**
 * Crash-safe sweep completion log: a manifest header identifying the
 * grid, then one fsync'd `result`/`failed` ndjson record per completed
 * point, appended in completion order.
 */
class Journal
{
  public:
    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open @p path for the sweep @p bench is about to run over
     * @p grid (shard @p shard of it). With @p resume, an existing
     * journal is validated — bench name, shard, grid size, and
     * gridHash must match, else fatal() — and its completed results
     * load into entries(); a torn final line (no trailing newline or
     * unparseable tail) is dropped, and `failed` records are skipped
     * so quarantined points rerun. Without @p resume, or when the
     * file is missing/empty, the journal starts fresh with a new
     * header. fatal()s on I/O errors or a corrupt (non-tail) record.
     */
    void open(const std::string &path, bool resume,
              const std::string &bench, std::uint64_t shard_index,
              std::uint64_t shard_count,
              const std::vector<GridPoint> &grid);

    /** Completed points loaded from the journal, by grid index. */
    const std::map<std::size_t, ExperimentResult> &entries() const
    {
        return entries_;
    }

    /** True after open() — including after a write-failure degrade
     *  (loaded entries are still served; only appends stopped). */
    bool isOpen() const { return fd_ >= 0 || degraded_; }

    /** The backing file was disabled by a failed append/fsync. */
    bool degraded() const { return degraded_; }

    /** Test hook: make the next append fail as if the disk were full
     *  (exercises the ENOSPC degrade path without a full disk). */
    void failNextWriteForTest();

    /**
     * Append one completed point (fsync'd before returning), as a
     * `result` record — or a `failed` record when
     * @p result.failed. Thread-safe: in-process sweeps append from
     * worker threads. A failed append (ENOSPC, EIO) disables the
     * journal with a one-line warning instead of killing the sweep:
     * the run completes, it just cannot be resumed past this point.
     */
    void record(std::size_t gridIndex, const ExperimentResult &result);

    /** Records appended by this process (excludes loaded entries). */
    std::uint64_t appended() const { return appended_; }

    void close();

  private:
    std::mutex mutex_;
    std::string path_;
    int fd_ = -1;
    bool degraded_ = false;
    bool failNextWrite_ = false;
    std::uint64_t appended_ = 0;
    std::map<std::size_t, ExperimentResult> entries_;
};

} // namespace acr::harness

#endif // ACR_HARNESS_SUPERVISOR_HH
