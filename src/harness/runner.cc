#include "harness/runner.hh"

#include "common/logging.hh"

namespace acr::harness
{

Runner::Runner(unsigned threads, unsigned scale)
    : machine_(sim::MachineConfig::tableI(threads))
{
    params_.threads = threads;
    params_.scale = scale;
}

const isa::Program &
Runner::baseProgram(const std::string &workload)
{
    return programs_.getOrCompute(workload, [&] {
        auto kernel = workloads::makeWorkload(workload);
        return kernel->build(params_);
    });
}

const amnesic::SlicePassResult &
Runner::profileAt(const std::string &workload, unsigned threshold,
                  slice::SelectionPolicy policy)
{
    auto key = std::make_tuple(workload, threshold,
                               static_cast<int>(policy));
    return passes_.getOrCompute(key, [&] {
        slice::SlicePolicyConfig policy_config;
        policy_config.policy = policy;
        policy_config.lengthThreshold = threshold;
        return amnesic::SlicePass::run(baseProgram(workload), machine_,
                                       policy_config);
    });
}

const amnesic::SlicePassResult &
Runner::profile(const std::string &workload)
{
    return profileAt(workload, defaultThreshold(workload));
}

const ExperimentResult &
Runner::noCkpt(const std::string &workload)
{
    return noCkpt_.getOrCompute(workload, [&] {
        ExperimentConfig config;
        config.mode = BerMode::kNoCkpt;
        return run(workload, config);
    });
}

ExperimentResult
Runner::run(const std::string &workload, ExperimentConfig config)
{
    if (config.sliceThreshold == 0)
        config.sliceThreshold = defaultThreshold(workload);

    if (std::string error = config.validate(); !error.empty())
        fatal("invalid ExperimentConfig for workload '%s': %s",
              workload.c_str(), error.c_str());

    const amnesic::SlicePassResult &pass =
        profileAt(workload, config.sliceThreshold, config.policy);

    const isa::Program &program = config.mode == BerMode::kReCkpt
                                      ? pass.program
                                      : baseProgram(workload);
    return BerRuntime::run(program, machine_, config, pass);
}

} // namespace acr::harness
