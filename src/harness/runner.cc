#include "harness/runner.hh"

#include <cstdlib>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "fault/injector.hh"

namespace acr::harness
{

namespace
{

bool
prefixShareDefault()
{
    const char *env = std::getenv("ACR_PREFIX_SHARE");
    if (!env)
        return true;
    std::string value(env);
    return value != "0" && value != "off";
}

/** Progress of the earliest armed fault event of @p config, or
 *  UINT64_MAX when the run is effectively error-free. Mirrors the
 *  plan construction in BerRuntime::run exactly. */
std::uint64_t
firstTrigger(const ExperimentConfig &config,
             const amnesic::SlicePassResult &pass)
{
    if (config.numErrors == 0)
        return ~std::uint64_t{0};
    const Cycle period_cycles =
        pass.cycles / (config.numCheckpoints + 1);
    const Cycle latency = static_cast<Cycle>(
        config.detectionLatencyFraction *
        static_cast<double>(period_cycles));
    auto plan = fault::FaultPlan::uniform(config.numErrors,
                                          pass.totalProgress, latency,
                                          config.seed)
                    .masked(config.faultEventMask);
    std::uint64_t first = ~std::uint64_t{0};
    for (const fault::FaultPlan::Event &event : plan.events)
        first = std::min(first, event.progressTrigger);
    return first;
}

/** Everything that shapes execution before the first fault trigger. */
std::string
prefixKey(const std::string &workload, const ExperimentConfig &config)
{
    std::ostringstream key;
    key << workload << '|' << static_cast<int>(config.mode) << '|'
        << static_cast<int>(config.coordination) << '|'
        << static_cast<int>(config.backend) << '|'
        << config.numCheckpoints << '|' << config.sliceThreshold << '|'
        << static_cast<int>(config.policy) << '|'
        << config.addrMapRetention << '|'
        << static_cast<int>(config.placement) << '|'
        << config.placementSlack;
    return key.str();
}

} // namespace

Runner::Runner(unsigned threads, unsigned scale)
    : machine_(sim::MachineConfig::tableI(threads)),
      prefixShare_(prefixShareDefault())
{
    params_.threads = threads;
    params_.scale = scale;
}

const isa::Program &
Runner::baseProgram(const std::string &workload)
{
    return programs_.getOrCompute(workload, [&] {
        auto kernel = workloads::makeWorkload(workload);
        return kernel->build(params_);
    });
}

const amnesic::SlicePassResult &
Runner::profileAt(const std::string &workload, unsigned threshold,
                  slice::SelectionPolicy policy)
{
    auto key = std::make_tuple(workload, threshold,
                               static_cast<int>(policy));
    return passes_.getOrCompute(key, [&] {
        slice::SlicePolicyConfig policy_config;
        policy_config.policy = policy;
        policy_config.lengthThreshold = threshold;
        return amnesic::SlicePass::run(baseProgram(workload), machine_,
                                       policy_config);
    });
}

const amnesic::SlicePassResult &
Runner::profile(const std::string &workload)
{
    return profileAt(workload, defaultThreshold(workload));
}

const ExperimentResult &
Runner::noCkpt(const std::string &workload)
{
    return noCkpt_.getOrCompute(workload, [&] {
        ExperimentConfig config;
        config.mode = BerMode::kNoCkpt;
        return run(workload, config);
    });
}

ExperimentResult
Runner::run(const std::string &workload, ExperimentConfig config)
{
    if (config.sliceThreshold == 0)
        config.sliceThreshold = defaultThreshold(workload);

    if (std::string error = config.validate(); !error.empty())
        fatal("invalid ExperimentConfig for workload '%s': %s",
              workload.c_str(), error.c_str());

    const amnesic::SlicePassResult &pass =
        profileAt(workload, config.sliceThreshold, config.policy);

    const isa::Program &program = config.mode == BerMode::kReCkpt
                                      ? pass.program
                                      : baseProgram(workload);

    // Prefix sharing is sound only when every component's pre-trigger
    // behavior is covered by the snapshot: the oracle, the event
    // trace, the secondary tier, stateful store backends, and the
    // storage-fault integrity layer (per-checkpoint checksums and
    // armed corruptions accrue from establishment #1) all keep shadow
    // state of their own, so those configurations take the full
    // re-simulation path.
    const bool eligible = prefixShare_ &&
                          config.mode != BerMode::kNoCkpt &&
                          !config.oracle && config.trace == nullptr &&
                          config.secondaryPeriod == 0 &&
                          config.storageErrors == 0 &&
                          config.backend == ckpt::Backend::kLog;
    PrefixHandle handle;
    PrefixHandle *prefix = nullptr;
    std::shared_ptr<const PrefixSnapshot> resume_hold;
    std::string key;
    if (eligible) {
        const std::uint64_t trigger = firstTrigger(config, pass);
        key = prefixKey(workload, config);
        {
            std::lock_guard<std::mutex> lock(prefixMutex_);
            const auto it = prefixCache_.find(key);
            if (it != prefixCache_.end()) {
                for (const auto &snap : it->second) {
                    if (snap->stopProgress > trigger)
                        continue;
                    if (!resume_hold ||
                        snap->stopProgress > resume_hold->stopProgress)
                        resume_hold = snap;
                }
            }
        }
        if (resume_hold) {
            handle.resume = resume_hold.get();
        } else if (trigger != ~std::uint64_t{0} && trigger > 0) {
            handle.captureAt = trigger;
        }
        prefix = &handle;
    }

    ExperimentResult result =
        BerRuntime::run(program, machine_, config, pass, prefix);

    if (prefix) {
        std::lock_guard<std::mutex> lock(prefixMutex_);
        if (handle.resume)
            ++prefixResumes_;
        if (handle.captured) {
            prefixCache_[key].push_back(std::move(handle.captured));
            ++prefixCaptures_;
        }
    }
    return result;
}

} // namespace acr::harness
