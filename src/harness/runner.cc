#include "harness/runner.hh"

#include "common/logging.hh"

namespace acr::harness
{

Runner::Runner(unsigned threads, unsigned scale)
    : machine_(sim::MachineConfig::tableI(threads))
{
    params_.threads = threads;
    params_.scale = scale;
}

const isa::Program &
Runner::baseProgram(const std::string &workload)
{
    auto it = programs_.find(workload);
    if (it == programs_.end()) {
        auto kernel = workloads::makeWorkload(workload);
        it = programs_.emplace(workload, kernel->build(params_)).first;
    }
    return it->second;
}

const amnesic::SlicePassResult &
Runner::profileAt(const std::string &workload, unsigned threshold,
                  slice::SelectionPolicy policy)
{
    auto key = std::make_tuple(workload, threshold,
                               static_cast<int>(policy));
    auto it = passes_.find(key);
    if (it == passes_.end()) {
        slice::SlicePolicyConfig policy_config;
        policy_config.policy = policy;
        policy_config.lengthThreshold = threshold;
        auto result = amnesic::SlicePass::run(baseProgram(workload),
                                              machine_, policy_config);
        it = passes_.emplace(key, std::move(result)).first;
    }
    return it->second;
}

const amnesic::SlicePassResult &
Runner::profile(const std::string &workload)
{
    return profileAt(workload, defaultThreshold(workload));
}

const ExperimentResult &
Runner::noCkpt(const std::string &workload)
{
    auto it = noCkpt_.find(workload);
    if (it == noCkpt_.end()) {
        ExperimentConfig config;
        config.mode = BerMode::kNoCkpt;
        it = noCkpt_.emplace(workload, run(workload, config)).first;
    }
    return it->second;
}

ExperimentResult
Runner::run(const std::string &workload, ExperimentConfig config)
{
    if (config.sliceThreshold == 0)
        config.sliceThreshold = defaultThreshold(workload);

    const amnesic::SlicePassResult &pass =
        profileAt(workload, config.sliceThreshold, config.policy);

    const isa::Program &program = config.mode == BerMode::kReCkpt
                                      ? pass.program
                                      : baseProgram(workload);
    return BerRuntime::run(program, machine_, config, pass);
}

} // namespace acr::harness
