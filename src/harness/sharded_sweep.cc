#include "harness/sharded_sweep.hh"

#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <thread>

#include "common/logging.hh"
#include "common/options.hh"
#include "harness/sweep.hh"

namespace acr::harness
{

namespace
{

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Parse a numeric environment variable (0 when unset/empty);
 *  fatal() on garbage — "4x" must not silently mean 4. */
unsigned long long
envCount(const char *name)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return 0;
    unsigned long long parsed = 0;
    if (!parseStrictUint(value, parsed))
        fatal("%s='%s' is not an unsigned integer", name, value);
    return parsed;
}

/**
 * The worker-side fault-injection hooks (doc on the workerLoop
 * declaration), shared by the pipe (`--worker`) and TCP (`--connect`)
 * loops; all inert unless the environment arms them.
 */
struct WorkerHooks
{
    bool respawned = false;
    unsigned long long crashAt = 0;
    unsigned long long wedgeAt = 0;
    bool haveCrashIndex = false;
    unsigned long long crashIndex = 0;
    unsigned long long processed = 0;

    static WorkerHooks
    fromEnv()
    {
        WorkerHooks hooks;
        hooks.respawned =
            std::getenv("ACR_TEST_RESPAWNED") != nullptr;
        hooks.crashAt = envCount("ACR_TEST_CRASH_AT");
        hooks.wedgeAt = envCount("ACR_TEST_WEDGE_AT");
        const char *crash_index =
            std::getenv("ACR_TEST_CRASH_INDEX");
        // 0 is a valid grid index, so presence (not value) arms it.
        hooks.haveCrashIndex =
            crash_index != nullptr && *crash_index != '\0';
        hooks.crashIndex =
            hooks.haveCrashIndex ? envCount("ACR_TEST_CRASH_INDEX")
                                 : 0;
        return hooks;
    }

    /** Call once per dealt point, before simulating it; _exit(42)s,
     *  wedges, or _exit(43)s per the armed hooks. */
    void
    onPoint(std::uint64_t grid_index)
    {
        ++processed;
        if (!respawned && crashAt != 0 && processed == crashAt)
            ::_exit(42);
        if (!respawned && wedgeAt != 0 && processed == wedgeAt) {
            while (true)
                ::pause();
        }
        if (haveCrashIndex && grid_index == crashIndex)
            ::_exit(43);
    }
};

/** Ascending-order result merger: slots fill in any order, the sink
 *  fires strictly in order as the completed prefix grows. */
class OrderedMerger
{
  public:
    explicit OrderedMerger(std::size_t size)
        : results_(size), done_(size, false)
    {
    }

    void
    deliver(std::size_t slot, ExperimentResult result)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ACR_ASSERT(!done_[slot], "slot %zu delivered twice", slot);
        results_[slot] = std::move(result);
        done_[slot] = true;
        ready_.notify_all();
    }

    /** Wait for every slot, draining the sink in ascending order. */
    std::vector<ExperimentResult>
    collect(const std::vector<std::size_t> &grid_indices,
            const ShardedSweep::OrderedSink &sink)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (std::size_t slot = 0; slot < results_.size(); ++slot) {
            ready_.wait(lock, [&] { return done_[slot]; });
            if (sink)
                sink(grid_indices[slot], results_[slot]);
        }
        return std::move(results_);
    }

  private:
    std::mutex mutex_;
    std::condition_variable ready_;
    std::vector<ExperimentResult> results_;
    std::vector<bool> done_;
};

} // namespace

Runner &
RunnerPool::at(unsigned threads)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = runners_[threads];
    if (!slot)
        slot = std::make_unique<Runner>(threads, scale_);
    return *slot;
}

ShardedSweep::ShardedSweep(RunnerPool &pool, unsigned jobs)
    : pool_(pool), jobs_(jobs > 0 ? jobs : Sweep::defaultJobs())
{
}

std::vector<std::size_t>
ShardedSweep::shardIndices(std::size_t total, Shard shard)
{
    ACR_ASSERT(shard.count > 0 && shard.index < shard.count,
               "bad shard %u/%u", shard.index, shard.count);
    std::vector<std::size_t> indices;
    for (std::size_t i = shard.index; i < total; i += shard.count)
        indices.push_back(i);
    return indices;
}

ShardedSweep::Shard
ShardedSweep::parseShard(const std::string &spec)
{
    // Canonical "digits/digits" only. CI templating stamps these out
    // mechanically, and strtol's leniency ("+1/4", " 1/4", "01/4")
    // would let non-canonical spellings silently alias a shard.
    auto canonical = [](const std::string &text) {
        if (text.empty())
            return false;
        for (const char c : text)
            if (c < '0' || c > '9')
                return false;
        return text.size() == 1 || text[0] != '0';
    };
    const auto slash = spec.find('/');
    unsigned long long index = 0, count = 0;
    bool ok = slash != std::string::npos;
    if (ok) {
        const std::string left = spec.substr(0, slash);
        const std::string right = spec.substr(slash + 1);
        ok = canonical(left) && canonical(right) &&
             parseStrictUint(left, index) &&
             parseStrictUint(right, count);
    }
    if (!ok || count == 0 || index >= count ||
        count > std::numeric_limits<unsigned>::max())
        fatal("bad --shard '%s' (want canonical i/N with 0 <= i < N)",
              spec.c_str());
    return Shard{static_cast<unsigned>(index),
                 static_cast<unsigned>(count)};
}

std::vector<ExperimentResult>
ShardedSweep::run(const std::vector<GridPoint> &points, Shard shard,
                  const OrderedSink &sink)
{
    SweepControls controls;
    controls.sink = sink;
    return run(points, shard, controls);
}

std::vector<ExperimentResult>
ShardedSweep::run(const std::vector<GridPoint> &points, Shard shard,
                  const SweepControls &controls)
{
    const auto indices = shardIndices(points.size(), shard);
    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<double> point_millis(indices.size(), 0.0);

    auto cached =
        [&](std::size_t grid_index) -> const ExperimentResult * {
        if (controls.cache == nullptr)
            return nullptr;
        const auto hit = controls.cache->find(grid_index);
        return hit == controls.cache->end() ? nullptr : &hit->second;
    };
    double journal_hits = 0.0;

    std::vector<ExperimentResult> results;
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, indices.empty() ? 1
                                                     : indices.size()));
    if (workers <= 1) {
        results.resize(indices.size());
        for (std::size_t slot = 0; slot < indices.size(); ++slot) {
            const std::size_t grid_index = indices[slot];
            if (const auto *hit = cached(grid_index)) {
                results[slot] = *hit;
                ++journal_hits;
            } else {
                const GridPoint &point = points[grid_index];
                const auto point_start =
                    std::chrono::steady_clock::now();
                results[slot] = pool_.at(point.threads)
                                    .run(point.workload, point.config);
                point_millis[slot] = millisSince(point_start);
                if (controls.completed)
                    controls.completed(grid_index, results[slot]);
            }
            if (controls.sink)
                controls.sink(grid_index, results[slot]);
        }
    } else {
        OrderedMerger merger(indices.size());
        // Serve journal hits up front; the worker threads skip those
        // slots (from_cache is read-only once they start).
        std::vector<bool> from_cache(indices.size(), false);
        for (std::size_t slot = 0; slot < indices.size(); ++slot) {
            if (const auto *hit = cached(indices[slot])) {
                from_cache[slot] = true;
                ++journal_hits;
                merger.deliver(slot, *hit);
            }
        }
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            while (true) {
                const std::size_t slot = next.fetch_add(1);
                if (slot >= indices.size())
                    return;
                if (from_cache[slot])
                    continue;
                const GridPoint &point = points[indices[slot]];
                const auto point_start =
                    std::chrono::steady_clock::now();
                auto result = pool_.at(point.threads)
                                  .run(point.workload, point.config);
                point_millis[slot] = millisSince(point_start);
                if (controls.completed)
                    controls.completed(indices[slot], result);
                merger.deliver(slot, std::move(result));
            }
        };
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            threads.emplace_back(worker);
        results = merger.collect(indices, controls.sink);
        for (auto &thread : threads)
            thread.join();
    }

    hostStats_.clear();
    hostStats_.set("sweep.jobs", static_cast<double>(jobs_));
    hostStats_.set("sweep.points", static_cast<double>(indices.size()));
    hostStats_.set("sweep.wallMillis", millisSince(wall_start));
    double work = 0.0;
    for (std::size_t slot = 0; slot < indices.size(); ++slot) {
        hostStats_.set(csprintf("sweep.point.%03zu.millis",
                                indices[slot]),
                       point_millis[slot]);
        work += point_millis[slot];
    }
    hostStats_.set("sweep.workMillis", work);
    if (controls.cache != nullptr)
        hostStats_.set("sweep.journalHits", journal_hits);
    return results;
}

std::vector<ExperimentResult>
ShardedSweep::runForked(const std::vector<GridPoint> &points,
                        unsigned workers,
                        const std::vector<std::string> &workerCmd,
                        Shard shard, const OrderedSink &sink)
{
    SweepControls controls;
    controls.sink = sink;
    return runForked(points, workers, workerCmd, shard, controls);
}

std::vector<ExperimentResult>
ShardedSweep::runForked(const std::vector<GridPoint> &points,
                        unsigned workers,
                        const std::vector<std::string> &workerCmd,
                        Shard shard, const SweepControls &controls)
{
    ACR_ASSERT(!workerCmd.empty(), "empty worker command");
    for (const auto &point : points)
        if (point.config.trace != nullptr)
            fatal("GridPoint trace sinks cannot cross a process "
                  "boundary; use the in-process executor");

    const auto indices = shardIndices(points.size(), shard);
    const auto wall_start = std::chrono::steady_clock::now();

    // The supervisor delivers in completion order; the ordered sink
    // fires here as the completed prefix grows, so rendered output
    // stays byte-identical to a --jobs=1 run regardless of crashes,
    // retries, or journal hits.
    std::vector<ExperimentResult> results(indices.size());
    std::vector<bool> done(indices.size(), false);
    std::size_t next_emit = 0;
    auto flushReady = [&] {
        while (next_emit < indices.size() && done[next_emit]) {
            if (controls.sink)
                controls.sink(indices[next_emit], results[next_emit]);
            ++next_emit;
        }
    };

    double journal_hits = 0.0;
    std::vector<Supervisor::Task> tasks;
    for (std::size_t slot = 0; slot < indices.size(); ++slot) {
        const std::size_t grid_index = indices[slot];
        const ExperimentResult *hit = nullptr;
        if (controls.cache != nullptr) {
            const auto found = controls.cache->find(grid_index);
            if (found != controls.cache->end())
                hit = &found->second;
        }
        if (hit != nullptr) {
            results[slot] = *hit;
            done[slot] = true;
            ++journal_hits;
        } else {
            tasks.push_back({slot, grid_index, &points[grid_index]});
        }
    }
    flushReady();

    StatSet supervision;
    if (!tasks.empty()) {
        Supervisor::Options options = controls.supervise;
        options.workers = workers == 0 ? 1 : workers;
        Supervisor supervisor(workerCmd, options);
        supervisor.run(
            tasks,
            [&](const Supervisor::Task &task, ExperimentResult result) {
                if (controls.completed)
                    controls.completed(task.gridIndex, result);
                results[task.slot] = std::move(result);
                done[task.slot] = true;
                flushReady();
            },
            supervision);
    }
    ACR_ASSERT(next_emit == indices.size(),
               "supervised sweep finished with %zu of %zu slots",
               next_emit, indices.size());

    hostStats_.clear();
    hostStats_.set("sweep.forkedWorkers",
                   static_cast<double>(std::min<std::size_t>(
                       workers == 0 ? 1 : workers,
                       tasks.empty() ? 1 : tasks.size())));
    hostStats_.set("sweep.points", static_cast<double>(indices.size()));
    hostStats_.set("sweep.wallMillis", millisSince(wall_start));
    if (controls.cache != nullptr)
        hostStats_.set("sweep.journalHits", journal_hits);
    hostStats_.merge(supervision);
    return results;
}

std::vector<ExperimentResult>
ShardedSweep::runDistributed(const std::vector<GridPoint> &points,
                             const net::Endpoint &listen,
                             unsigned heartbeatSec,
                             const std::string &bench,
                             const SweepControls &controls)
{
    for (const auto &point : points)
        if (point.config.trace != nullptr)
            fatal("GridPoint trace sinks cannot cross a process "
                  "boundary; use the in-process executor");

    const auto indices = shardIndices(points.size(), {});
    const auto wall_start = std::chrono::steady_clock::now();

    // Identical ordered-merge scaffolding to runForked: delivery is
    // completion-order, the sink fires as the completed prefix grows.
    std::vector<ExperimentResult> results(indices.size());
    std::vector<bool> done(indices.size(), false);
    std::size_t next_emit = 0;
    auto flushReady = [&] {
        while (next_emit < indices.size() && done[next_emit]) {
            if (controls.sink)
                controls.sink(indices[next_emit], results[next_emit]);
            ++next_emit;
        }
    };

    double journal_hits = 0.0;
    std::vector<Supervisor::Task> tasks;
    for (std::size_t slot = 0; slot < indices.size(); ++slot) {
        const std::size_t grid_index = indices[slot];
        const ExperimentResult *hit = nullptr;
        if (controls.cache != nullptr) {
            const auto found = controls.cache->find(grid_index);
            if (found != controls.cache->end())
                hit = &found->second;
        }
        if (hit != nullptr) {
            results[slot] = *hit;
            done[slot] = true;
            ++journal_hits;
        } else {
            tasks.push_back({slot, grid_index, &points[grid_index]});
        }
    }
    flushReady();

    StatSet supervision;
    if (!tasks.empty()) {
        Supervisor supervisor(controls.supervise);
        Supervisor::NetOptions net_options;
        net_options.listen = listen;
        net_options.heartbeatSec = heartbeatSec;
        net_options.bench = bench;
        net_options.gridPoints = points.size();
        net_options.gridHash = wire::gridHash(points);
        supervisor.runListen(
            tasks, net_options,
            [&](const Supervisor::Task &task, ExperimentResult result) {
                if (controls.completed)
                    controls.completed(task.gridIndex, result);
                results[task.slot] = std::move(result);
                done[task.slot] = true;
                flushReady();
            },
            supervision);
    }
    ACR_ASSERT(next_emit == indices.size(),
               "distributed sweep finished with %zu of %zu slots",
               next_emit, indices.size());

    hostStats_.clear();
    // Zero-seed the counters so a fully-served grid (runListen never
    // ran) still reports as a distributed sweep; merge accumulates.
    hostStats_.set("sweep.netJoins", 0.0);
    hostStats_.set("sweep.netLeaves", 0.0);
    hostStats_.set("sweep.retries", 0.0);
    hostStats_.set("sweep.workerCrashes", 0.0);
    hostStats_.set("sweep.watchdogKills", 0.0);
    hostStats_.set("sweep.quarantined", 0.0);
    hostStats_.set("sweep.points", static_cast<double>(indices.size()));
    hostStats_.set("sweep.wallMillis", millisSince(wall_start));
    if (controls.cache != nullptr)
        hostStats_.set("sweep.journalHits", journal_hits);
    hostStats_.merge(supervision);
    return results;
}

int
ShardedSweep::netWorkerLoop(RunnerPool &pool, const std::string &bench,
                            const std::vector<GridPoint> &grid,
                            const net::Endpoint &coordinator,
                            unsigned heartbeatSec)
{
    ACR_ASSERT(heartbeatSec > 0, "heartbeat must be positive");
    // A coordinator dying mid-frame must surface as a closed channel
    // (triggering a reconnect), not kill the worker.
    std::signal(SIGPIPE, SIG_IGN);

    // One process-wide fault plan: frame ordinals keep counting
    // across reconnects, so "torn=3" tears the third frame this
    // process ever sends no matter how many connections that takes.
    net::FaultPlan fault = net::FaultPlan::fromEnv();
    WorkerHooks hooks = WorkerHooks::fromEnv();

    wire::HelloRecord identity;
    identity.bench = bench;
    identity.gridPoints = grid.size();
    identity.gridHash = wire::gridHash(grid);
    identity.netVersion = net::kProtocolVersion;
    const std::string hello_line = wire::encodeHelloLine(identity);

    using Clock = std::chrono::steady_clock;
    const auto window =
        std::chrono::seconds(static_cast<long long>(heartbeatSec) * 10);
    auto down_since = Clock::now();
    bool ever_joined = false;

    // Reconnect window exhausted: a worker that saw the sweep is a
    // clean straggler (the coordinator finished and left), one that
    // never reached a coordinator is an error.
    auto giveUp = [&](const std::string &why) -> int {
        std::fprintf(stderr,
                     "[net] giving up on %s after %llus "
                     "disconnected: %s\n",
                     coordinator.describe().c_str(),
                     static_cast<unsigned long long>(heartbeatSec) *
                         10,
                     why.c_str());
        return ever_joined ? 0 : 1;
    };

    while (true) {
        std::string error;
        const int fd = net::connectOnce(coordinator, error);
        if (fd < 0) {
            if (Clock::now() - down_since > window)
                return giveUp(error);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
            continue;
        }

        net::FrameChannel channel(fd, &fault);
        channel.send(net::FrameType::kWire, hello_line);
        bool joined = false;

        while (channel.isOpen()) {
            if (channel.flushWrites(error) ==
                net::FrameChannel::Io::kClosed)
                break;
            pollfd pfd{channel.fd(), POLLIN, 0};
            if (channel.wantsWrite())
                pfd.events |= POLLOUT;
            const int rc = ::poll(&pfd, 1, 200);
            if (rc < 0 && errno != EINTR)
                fatal("poll: %s", std::strerror(errno));
            down_since = Clock::now();  // connected counts as healthy
            if (rc <= 0)
                continue;
            std::vector<net::Frame> frames;
            const auto io = channel.readFrames(frames, error);
            for (const auto &frame : frames) {
                if (frame.type == net::FrameType::kPing) {
                    channel.send(net::FrameType::kPong, "");
                    continue;
                }
                if (frame.type == net::FrameType::kShutdown) {
                    // Clean end of sweep.
                    std::string ignored;
                    channel.flushWrites(ignored);
                    return 0;
                }
                if (frame.type != net::FrameType::kWire)
                    continue;  // a stray pong is harmless
                wire::Record record;
                try {
                    record = wire::decodeLine(frame.payload);
                } catch (const serde::SerdeError &err) {
                    std::fprintf(stderr,
                                 "[net] protocol error from "
                                 "coordinator: %s\n",
                                 err.what());
                    channel.close();
                    break;
                }
                if (!joined) {
                    if (record.type != wire::Record::Type::kHello) {
                        std::fprintf(stderr,
                                     "[net] coordinator spoke before "
                                     "its hello\n");
                        channel.close();
                        break;
                    }
                    const auto &hello = record.hello;
                    if (hello.netVersion != net::kProtocolVersion ||
                        hello.bench != identity.bench ||
                        hello.gridPoints != identity.gridPoints ||
                        hello.gridHash != identity.gridHash) {
                        // Version/bench/grid skew cannot heal by
                        // reconnecting: report and exit nonzero.
                        std::fprintf(
                            stderr,
                            "[net] handshake mismatch: coordinator "
                            "runs bench '%s' with %llu point(s) "
                            "(grid %016llx, net v%llu); this worker "
                            "built '%s' with %llu (grid %016llx, "
                            "net v%llu)\n",
                            hello.bench.c_str(),
                            static_cast<unsigned long long>(
                                hello.gridPoints),
                            static_cast<unsigned long long>(
                                hello.gridHash),
                            static_cast<unsigned long long>(
                                hello.netVersion),
                            identity.bench.c_str(),
                            static_cast<unsigned long long>(
                                identity.gridPoints),
                            static_cast<unsigned long long>(
                                identity.gridHash),
                            static_cast<unsigned long long>(
                                identity.netVersion));
                        return 1;
                    }
                    joined = true;
                    ever_joined = true;
                    continue;
                }
                if (record.type != wire::Record::Type::kPoint) {
                    std::fprintf(stderr,
                                 "[net] unexpected record from "
                                 "coordinator\n");
                    channel.close();
                    break;
                }
                hooks.onPoint(record.point.index);
                const GridPoint &point = record.point.point;
                ExperimentResult result =
                    pool.at(point.threads)
                        .run(point.workload, point.config);
                channel.send(net::FrameType::kWire,
                             wire::encodeResultLine(
                                 {record.point.index,
                                  std::move(result)}));
            }
            if (io == net::FrameChannel::Io::kClosed)
                break;
        }

        if (!error.empty())
            std::fprintf(stderr, "[net] connection to %s lost: %s\n",
                         coordinator.describe().c_str(),
                         error.c_str());
        if (Clock::now() - down_since > window)
            return giveUp(error.empty() ? "connection lost" : error);
    }
}

int
ShardedSweep::workerLoop(RunnerPool &pool, std::istream &in,
                         std::ostream &out)
{
    WorkerHooks hooks = WorkerHooks::fromEnv();

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        wire::Record record;
        try {
            record = wire::decodeLine(line);
        } catch (const serde::SerdeError &error) {
            std::fprintf(stderr, "sweep worker: %s\n", error.what());
            return 1;
        }
        if (record.type != wire::Record::Type::kPoint) {
            std::fprintf(stderr,
                         "sweep worker: expected a point record\n");
            return 1;
        }
        hooks.onPoint(record.point.index);
        const GridPoint &point = record.point.point;
        ExperimentResult result =
            pool.at(point.threads).run(point.workload, point.config);
        out << wire::encodeResultLine(
                   {record.point.index, std::move(result)})
            << "\n"
            << std::flush;
    }
    return 0;
}

std::string
ShardedSweep::selfExecutable(const std::string &argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0)
        return std::string(buf, static_cast<std::size_t>(n));
    return argv0;
}

void
ShardedSweep::reportTiming(std::ostream &os) const
{
    const double wall = hostStats_.get("sweep.wallMillis");
    os << "[sweep] " << hostStats_.get("sweep.points") << " points";
    if (hostStats_.has("sweep.netJoins")) {
        os << " via --listen: " << wall << " ms wall, "
           << hostStats_.get("sweep.netJoins") << " worker join(s), "
           << hostStats_.get("sweep.netLeaves") << " leave(s)\n";
        const double losses = hostStats_.get("sweep.workerCrashes");
        const double kills = hostStats_.get("sweep.watchdogKills");
        if (losses > 0 || kills > 0) {
            os << "[sweep] supervision: " << losses
               << " connection loss(es), " << kills
               << " watchdog kill(s), "
               << hostStats_.get("sweep.retries") << " retr(y/ies), "
               << hostStats_.get("sweep.quarantined")
               << " quarantined\n";
        }
        return;
    }
    if (hostStats_.has("sweep.forkedWorkers")) {
        os << " on " << hostStats_.get("sweep.forkedWorkers")
           << " forked worker(s): " << wall << " ms wall\n";
        const double crashes = hostStats_.get("sweep.workerCrashes");
        const double kills = hostStats_.get("sweep.watchdogKills");
        if (crashes > 0 || kills > 0) {
            os << "[sweep] supervision: " << crashes
               << " worker crash(es), " << kills
               << " watchdog kill(s), "
               << hostStats_.get("sweep.retries") << " retr(y/ies), "
               << hostStats_.get("sweep.respawns") << " respawn(s), "
               << hostStats_.get("sweep.quarantined")
               << " quarantined\n";
        }
        return;
    }
    const double work = hostStats_.get("sweep.workMillis");
    os << " on " << jobs_ << " job(s): " << wall << " ms wall, " << work
       << " ms of work (parallelism "
       << (wall > 0.0 ? work / wall : 0.0) << "x)\n";
}

} // namespace acr::harness
