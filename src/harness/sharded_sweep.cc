#include "harness/sharded_sweep.hh"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>

#include "common/logging.hh"
#include "harness/sweep.hh"

namespace acr::harness
{

namespace
{

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Blocking line reader over a raw pipe fd. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /** False on EOF with no pending bytes. */
    bool
    readLine(std::string &line)
    {
        line.clear();
        while (true) {
            auto newline = buffer_.find('\n');
            if (newline != std::string::npos) {
                line = buffer_.substr(0, newline);
                buffer_.erase(0, newline + 1);
                return true;
            }
            char chunk[4096];
            ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                fatal("reading from sweep worker: %s",
                      std::strerror(errno));
            }
            if (n == 0) {
                if (buffer_.empty())
                    return false;
                line = std::move(buffer_);
                buffer_.clear();
                return true;
            }
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_;
    std::string buffer_;
};

void
writeAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("writing to sweep worker: %s", std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
}

/** Ascending-order result merger: slots fill in any order, the sink
 *  fires strictly in order as the completed prefix grows. */
class OrderedMerger
{
  public:
    explicit OrderedMerger(std::size_t size)
        : results_(size), done_(size, false)
    {
    }

    void
    deliver(std::size_t slot, ExperimentResult result)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ACR_ASSERT(!done_[slot], "slot %zu delivered twice", slot);
        results_[slot] = std::move(result);
        done_[slot] = true;
        ready_.notify_all();
    }

    /** Wait for every slot, draining the sink in ascending order. */
    std::vector<ExperimentResult>
    collect(const std::vector<std::size_t> &grid_indices,
            const ShardedSweep::OrderedSink &sink)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (std::size_t slot = 0; slot < results_.size(); ++slot) {
            ready_.wait(lock, [&] { return done_[slot]; });
            if (sink)
                sink(grid_indices[slot], results_[slot]);
        }
        return std::move(results_);
    }

  private:
    std::mutex mutex_;
    std::condition_variable ready_;
    std::vector<ExperimentResult> results_;
    std::vector<bool> done_;
};

} // namespace

Runner &
RunnerPool::at(unsigned threads)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = runners_[threads];
    if (!slot)
        slot = std::make_unique<Runner>(threads, scale_);
    return *slot;
}

ShardedSweep::ShardedSweep(RunnerPool &pool, unsigned jobs)
    : pool_(pool), jobs_(jobs > 0 ? jobs : Sweep::defaultJobs())
{
}

std::vector<std::size_t>
ShardedSweep::shardIndices(std::size_t total, Shard shard)
{
    ACR_ASSERT(shard.count > 0 && shard.index < shard.count,
               "bad shard %u/%u", shard.index, shard.count);
    std::vector<std::size_t> indices;
    for (std::size_t i = shard.index; i < total; i += shard.count)
        indices.push_back(i);
    return indices;
}

ShardedSweep::Shard
ShardedSweep::parseShard(const std::string &spec)
{
    const auto slash = spec.find('/');
    char *end = nullptr;
    long index = -1, count = -1;
    if (slash != std::string::npos) {
        index = std::strtol(spec.c_str(), &end, 10);
        if (end != spec.c_str() + slash)
            index = -1;
        count = std::strtol(spec.c_str() + slash + 1, &end, 10);
        if (*end != '\0')
            count = -1;
    }
    if (index < 0 || count <= 0 || index >= count)
        fatal("bad --shard '%s' (want i/N with 0 <= i < N)",
              spec.c_str());
    return Shard{static_cast<unsigned>(index),
                 static_cast<unsigned>(count)};
}

std::vector<ExperimentResult>
ShardedSweep::run(const std::vector<GridPoint> &points, Shard shard,
                  const OrderedSink &sink)
{
    const auto indices = shardIndices(points.size(), shard);
    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<double> point_millis(indices.size(), 0.0);

    std::vector<ExperimentResult> results;
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, indices.empty() ? 1
                                                     : indices.size()));
    if (workers <= 1) {
        results.resize(indices.size());
        for (std::size_t slot = 0; slot < indices.size(); ++slot) {
            const GridPoint &point = points[indices[slot]];
            const auto point_start = std::chrono::steady_clock::now();
            results[slot] = pool_.at(point.threads)
                                .run(point.workload, point.config);
            point_millis[slot] = millisSince(point_start);
            if (sink)
                sink(indices[slot], results[slot]);
        }
    } else {
        OrderedMerger merger(indices.size());
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            while (true) {
                const std::size_t slot = next.fetch_add(1);
                if (slot >= indices.size())
                    return;
                const GridPoint &point = points[indices[slot]];
                const auto point_start =
                    std::chrono::steady_clock::now();
                auto result = pool_.at(point.threads)
                                  .run(point.workload, point.config);
                point_millis[slot] = millisSince(point_start);
                merger.deliver(slot, std::move(result));
            }
        };
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            threads.emplace_back(worker);
        results = merger.collect(indices, sink);
        for (auto &thread : threads)
            thread.join();
    }

    hostStats_.clear();
    hostStats_.set("sweep.jobs", static_cast<double>(jobs_));
    hostStats_.set("sweep.points", static_cast<double>(indices.size()));
    hostStats_.set("sweep.wallMillis", millisSince(wall_start));
    double work = 0.0;
    for (std::size_t slot = 0; slot < indices.size(); ++slot) {
        hostStats_.set(csprintf("sweep.point.%03zu.millis",
                                indices[slot]),
                       point_millis[slot]);
        work += point_millis[slot];
    }
    hostStats_.set("sweep.workMillis", work);
    return results;
}

std::vector<ExperimentResult>
ShardedSweep::runForked(const std::vector<GridPoint> &points,
                        unsigned workers,
                        const std::vector<std::string> &workerCmd,
                        Shard shard, const OrderedSink &sink)
{
    ACR_ASSERT(!workerCmd.empty(), "empty worker command");
    for (const auto &point : points)
        if (point.config.trace != nullptr)
            fatal("GridPoint trace sinks cannot cross a process "
                  "boundary; use the in-process executor");

    const auto indices = shardIndices(points.size(), shard);
    const auto wall_start = std::chrono::steady_clock::now();

    // A dead child must surface as a read error, not a SIGPIPE kill.
    std::signal(SIGPIPE, SIG_IGN);

    const unsigned live = static_cast<unsigned>(std::min<std::size_t>(
        workers == 0 ? 1 : workers, indices.size()));

    // Slot s (ascending grid index) is owned by worker s % live; the
    // merged order is independent of the deal.
    std::vector<std::vector<std::size_t>> slots_of(live);
    for (std::size_t slot = 0; slot < indices.size(); ++slot)
        slots_of[slot % live].push_back(slot);

    OrderedMerger merger(indices.size());
    std::vector<std::thread> services;
    std::vector<pid_t> children(live, -1);

    for (unsigned w = 0; w < live; ++w) {
        int to_child[2], from_child[2];
        if (::pipe(to_child) != 0 || ::pipe(from_child) != 0)
            fatal("pipe: %s", std::strerror(errno));

        const pid_t pid = ::fork();
        if (pid < 0)
            fatal("fork: %s", std::strerror(errno));
        if (pid == 0) {
            // Child: stdin/stdout onto the pipes, stderr inherited,
            // then become the --worker process.
            ::dup2(to_child[0], STDIN_FILENO);
            ::dup2(from_child[1], STDOUT_FILENO);
            ::close(to_child[0]);
            ::close(to_child[1]);
            ::close(from_child[0]);
            ::close(from_child[1]);
            std::vector<char *> argv;
            argv.reserve(workerCmd.size() + 1);
            for (const auto &arg : workerCmd)
                argv.push_back(const_cast<char *>(arg.c_str()));
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            std::fprintf(stderr, "execv %s: %s\n", argv[0],
                         std::strerror(errno));
            ::_exit(127);
        }
        children[w] = pid;
        ::close(to_child[0]);
        ::close(from_child[1]);

        const int in_fd = to_child[1];
        const int out_fd = from_child[0];
        // Per-child service thread: stream points in, results out,
        // keeping a small send window so the child never starves
        // waiting for its next assignment.
        services.emplace_back([&, w, in_fd, out_fd] {
            const auto &mine = slots_of[w];
            LineReader reader(out_fd);
            constexpr std::size_t kWindow = 2;
            std::size_t sent = 0;
            std::string line;
            for (std::size_t received = 0; received < mine.size();
                 ++received) {
                while (sent < mine.size() &&
                       sent - received < kWindow) {
                    const std::size_t grid_index = indices[mine[sent]];
                    writeAll(in_fd,
                             wire::encodePointLine(
                                 {grid_index, points[grid_index]}) +
                                 "\n");
                    ++sent;
                }
                if (!reader.readLine(line))
                    fatal("sweep worker %u exited after %zu of %zu "
                          "results",
                          w, received, mine.size());
                wire::Record record;
                try {
                    record = wire::decodeLine(line);
                } catch (const serde::SerdeError &error) {
                    fatal("sweep worker %u: %s", w, error.what());
                }
                if (record.type != wire::Record::Type::kResult)
                    fatal("sweep worker %u sent a non-result record",
                          w);
                const std::size_t expect = indices[mine[received]];
                if (record.result.index != expect)
                    fatal("sweep worker %u answered point %llu out of "
                          "order (expected %zu)",
                          w,
                          static_cast<unsigned long long>(
                              record.result.index),
                          expect);
                merger.deliver(mine[received],
                               std::move(record.result.result));
            }
            ::close(in_fd);
            ::close(out_fd);
        });
    }

    auto results = merger.collect(indices, sink);
    for (auto &service : services)
        service.join();
    for (unsigned w = 0; w < live; ++w) {
        int status = 0;
        if (::waitpid(children[w], &status, 0) < 0)
            fatal("waitpid: %s", std::strerror(errno));
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            fatal("sweep worker %u exited abnormally (status %d)", w,
                  status);
    }

    hostStats_.clear();
    hostStats_.set("sweep.forkedWorkers", static_cast<double>(live));
    hostStats_.set("sweep.points", static_cast<double>(indices.size()));
    hostStats_.set("sweep.wallMillis", millisSince(wall_start));
    return results;
}

int
ShardedSweep::workerLoop(RunnerPool &pool, std::istream &in,
                         std::ostream &out)
{
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        wire::Record record;
        try {
            record = wire::decodeLine(line);
        } catch (const serde::SerdeError &error) {
            std::fprintf(stderr, "sweep worker: %s\n", error.what());
            return 1;
        }
        if (record.type != wire::Record::Type::kPoint) {
            std::fprintf(stderr,
                         "sweep worker: expected a point record\n");
            return 1;
        }
        const GridPoint &point = record.point.point;
        ExperimentResult result =
            pool.at(point.threads).run(point.workload, point.config);
        out << wire::encodeResultLine(
                   {record.point.index, std::move(result)})
            << "\n"
            << std::flush;
    }
    return 0;
}

std::string
ShardedSweep::selfExecutable(const std::string &argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0)
        return std::string(buf, static_cast<std::size_t>(n));
    return argv0;
}

void
ShardedSweep::reportTiming(std::ostream &os) const
{
    const double wall = hostStats_.get("sweep.wallMillis");
    os << "[sweep] " << hostStats_.get("sweep.points") << " points";
    if (hostStats_.has("sweep.forkedWorkers")) {
        os << " on " << hostStats_.get("sweep.forkedWorkers")
           << " forked worker(s): " << wall << " ms wall\n";
        return;
    }
    const double work = hostStats_.get("sweep.workMillis");
    os << " on " << jobs_ << " job(s): " << wall << " ms wall, " << work
       << " ms of work (parallelism "
       << (wall > 0.0 ? work / wall : 0.0) << "x)\n";
}

} // namespace acr::harness
