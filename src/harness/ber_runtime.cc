#include "harness/ber_runtime.hh"

#include <memory>

#include "acr/acr_engine.hh"
#include "ckpt/secondary.hh"
#include "common/logging.hh"
#include "energy/energy_model.hh"
#include "fault/injector.hh"
#include "fault/storage_fault.hh"
#include "sim/system.hh"
#include "slice/engine.hh"
#include "validate/recovery_oracle.hh"

namespace acr::harness
{

namespace
{

/** Fans instruction events out to the slicer, the checkpoint logger,
 *  and ACR's ASSOC-ADDR handling, in dependency order. */
class DriverObserver final : public cpu::ExecObserver
{
  public:
    DriverObserver(ckpt::CheckpointManager *manager,
                   amnesic::AcrEngine *acr, slice::SliceEngine *slicer)
        : manager_(manager), acr_(acr), slicer_(slicer)
    {
    }

    void
    onInstr(const cpu::InstrEvent &event) override
    {
        if (isa::isStore(event.inst->op)) {
            // The logging decision must see the producer map as of
            // *before* this store (the old value's producer), so the
            // manager runs first and the ASSOC-ADDR update second.
            if (manager_)
                manager_->onStore(event.core, event.addr, event.oldValue);
            if (acr_)
                acr_->onStoreRetired(event);
            return;
        }
        if (slicer_)
            slicer_->observe(event);
    }

  private:
    ckpt::CheckpointManager *manager_;
    amnesic::AcrEngine *acr_;
    slice::SliceEngine *slicer_;
};

} // namespace

ExperimentResult
BerRuntime::run(const isa::Program &program,
                const sim::MachineConfig &machine,
                const ExperimentConfig &config,
                const amnesic::SlicePassResult &profile,
                PrefixHandle *prefix)
{
    ACR_ASSERT(profile.totalProgress > 0, "profile has no progress");

    ExperimentResult result;
    StatSet &stats = result.stats;

    // An error-free NoCkpt run replays the slice pass step for step:
    // same program, same machine, and an observer that never perturbs
    // timing. The pass already recorded everything such a run would
    // measure (cycles, exported counters, the final image), so answer
    // from the profile instead of re-simulating. Final-state
    // verification holds trivially — the reference image *is* this
    // execution's image. The guards keep every config that could
    // diverge (errors, oracle, secondary tier, tracing) on the full
    // simulation path; NoCkpt configs reject most of those anyway.
    if (config.mode == BerMode::kNoCkpt && config.numErrors == 0 &&
        !config.oracle && config.secondaryPeriod == 0 && !config.trace)
    {
        result.stats = profile.stats;
        stats.set("sim.numCores", static_cast<double>(machine.numCores));
        energy::EnergyModel energy_model;
        result.energyPj = energy_model.annotate(stats);
        result.cycles = profile.cycles;
        result.edp =
            energy::EnergyModel::edp(result.energyPj, result.cycles);
        result.recoveries =
            static_cast<std::uint64_t>(stats.get("rec.recoveries"));
        return result;
    }

    sim::MulticoreSystem system(machine, program);

    // --- Optional ACR machinery ---
    std::unique_ptr<slice::SliceEngine> slicer;
    std::unique_ptr<amnesic::AcrEngine> acr;
    if (config.mode == BerMode::kReCkpt) {
        slicer = std::make_unique<slice::SliceEngine>(machine.numCores);
        amnesic::AcrConfig acr_config;
        acr_config.policy.policy = config.policy;
        acr_config.policy.lengthThreshold = config.sliceThreshold;
        acr_config.retentionIntervals = config.addrMapRetention;
        acr = std::make_unique<amnesic::AcrEngine>(acr_config, *slicer,
                                                   stats);
    }

    // --- Checkpoint substrate ---
    std::unique_ptr<ckpt::CheckpointManager> manager;
    if (config.mode != BerMode::kNoCkpt) {
        ckpt::CheckpointManager::Config mgr_config;
        mgr_config.mode = config.coordination;
        mgr_config.backend = config.backend;
        manager = std::make_unique<ckpt::CheckpointManager>(
            mgr_config, system, acr.get(), stats);
        manager->initialCheckpoint();
    }

    // --- Storage-fault injection (DESIGN.md §16) ---
    std::unique_ptr<fault::StorageFaultInjector> storage_faults;
    if (config.storageErrors > 0) {
        ACR_ASSERT(manager != nullptr,
                   "storage faults require a checkpointing mode");
        // Ordinal-keyed against establishment, seeded off the compute-
        // error seed (salted so the two plans draw independent
        // streams) and shrinkable through storageFaultMask exactly
        // like the compute plan through faultEventMask.
        auto plan = fault::StorageFaultPlan::uniform(
                        config.storageErrors, config.numCheckpoints,
                        ckpt::storageFaultKinds(config.backend),
                        config.seed ^ 0x5704a6e'fa017ULL)
                        .masked(config.storageFaultMask);
        storage_faults = std::make_unique<fault::StorageFaultInjector>(
            plan, stats);
        manager->setStorageFaults(storage_faults.get());
    }

    // --- Recovery validation (oracle) ---
    std::unique_ptr<validate::RecoveryOracle> oracle;
    if (config.oracle) {
        ACR_ASSERT(manager != nullptr,
                   "the oracle requires a checkpointing mode");
        oracle = std::make_unique<validate::RecoveryOracle>(
            system, machine, config.coordination, stats);
        manager->setAuditor(oracle.get());
        oracle->onInitialCheckpoint(*manager);
    }

    // --- Error injection ---
    const std::uint64_t period =
        profile.totalProgress / (config.numCheckpoints + 1);
    const Cycle period_cycles =
        profile.cycles / (config.numCheckpoints + 1);
    std::unique_ptr<fault::ErrorInjector> injector;
    if (config.numErrors > 0) {
        ACR_ASSERT(manager != nullptr,
                   "errors require a checkpointing mode");
        Cycle latency = static_cast<Cycle>(
            config.detectionLatencyFraction *
            static_cast<double>(period_cycles));
        auto plan = fault::FaultPlan::uniform(config.numErrors,
                                              profile.totalProgress,
                                              latency, config.seed)
                        .masked(config.faultEventMask);
        injector = std::make_unique<fault::ErrorInjector>(plan, stats);
    }

    // --- Optional hierarchical second tier ---
    std::unique_ptr<ckpt::SecondaryTier> secondary;
    if (config.secondaryPeriod > 0) {
        ckpt::SecondaryConfig secondary_config;
        secondary_config.promotionPeriod = config.secondaryPeriod;
        secondary = std::make_unique<ckpt::SecondaryTier>(
            secondary_config, stats);
    }

    DriverObserver observer(manager.get(), acr.get(), slicer.get());

    // Storage faults defeated every escalation rung mid-rollback: the
    // modeled machine is lost and the run stops at the failed
    // recovery with a structured outcome (DESIGN.md §16).
    bool lost = false;

    auto handle_detection = [&](const fault::DetectionEvent &detection) {
        if (config.trace) {
            config.trace->instant("fault",
                                  csprintf("error on core %u",
                                           detection.core),
                                  detection.errorTime);
            config.trace->instant("fault", "detection",
                                  detection.detectTime);
        }
        if (oracle)
            oracle->beforeRecovery(*manager);
        auto outcome = manager->recover(detection.core,
                                        detection.errorTime,
                                        detection.detectTime);
        if (oracle)
            oracle->afterRecovery(*manager, outcome);
        if (outcome.unrecoverable) {
            result.unrecoverable = true;
            result.unrecoverableDetail = outcome.failureDetail;
            lost = true;
            return outcome;  // no resume: the machine state is gone
        }
        // Corruptions the rollback erased must be re-posted, or a
        // multi-error plan would wait forever on a dead corruption.
        if (injector)
            injector->onRecovery(outcome.affected,
                                 outcome.targetEstablishedAt);
        if (config.trace) {
            config.trace->span(
                "recovery",
                csprintf("rollback to ckpt %llu",
                         static_cast<unsigned long long>(
                             outcome.targetIndex)),
                detection.detectTime, outcome.resumeCycle);
        }
        // Producer chains of rolled-back cores are stale; reseed the
        // slicer from the restored register files.
        if (slicer) {
            for (CoreId c = 0; c < system.numCores(); ++c) {
                if (!(outcome.affected & (cache::SharerMask{1} << c)))
                    continue;
                std::array<Word, isa::kNumRegs> regs;
                for (unsigned r = 0; r < isa::kNumRegs; ++r)
                    regs[r] = system.core(c).reg(r);
                slicer->resetCore(c, regs);
            }
        }
        return outcome;
    };

    std::uint64_t next_ckpt = manager ? period : ~std::uint64_t{0};

    // --- Prefix sharing (DESIGN.md §13) ---
    // Resume: overwrite the freshly built components with the donor
    // snapshot and substitute its saved step result for the first
    // iteration's stepWith(). The Runner guarantees eligibility (no
    // oracle/trace/secondary, stateless backend, trigger >= snapshot).
    bool resume_pending = false;
    if (prefix && prefix->resume) {
        ACR_ASSERT(manager && !oracle && !secondary && !config.trace,
                   "prefix resume with an ineligible configuration");
        resumePrefix(*prefix->resume, system, next_ckpt, stats,
                     slicer.get(), acr.get(), *manager);
        resume_pending = true;
    }

    while (true) {
        sim::SystemState state;
        if (resume_pending) {
            state = prefix->resume->stepState;
            resume_pending = false;
        } else {
            state = system.stepWith(&observer);
        }

        // Capture: the first step at or past the threshold, *before*
        // this iteration's injector poll — every pre-capture poll
        // happened strictly below the threshold, so any run whose
        // first trigger is >= captureAt reaches this exact state.
        if (prefix && prefix->captureAt != 0 && !prefix->captured &&
            manager && system.progress() >= prefix->captureAt) {
            prefix->captured = std::make_shared<PrefixSnapshot>(
                capturePrefix(prefix->captureAt, system, state,
                              next_ckpt, stats, slicer.get(), acr.get(),
                              *manager));
        }

        if (injector) {
            if (auto detection = injector->poll(system)) {
                auto outcome = handle_detection(*detection);
                if (lost)
                    break;
                next_ckpt = outcome.progressAt + period;
                continue;
            }
        }

        if (state == sim::SystemState::kBlocked) {
            // A corrupted value wrecked control flow badly enough to
            // wedge a barrier rendezvous: the watchdog detects the
            // error now (Sec. II-A: detection need not be instantaneous
            // but must happen within the checkpoint period).
            std::optional<fault::DetectionEvent> detection;
            if (injector)
                detection = injector->forceDetection(system);
            if (!detection) {
                panic("system wedged without an injected error in "
                      "flight: program '%s' has divergent barriers",
                      program.name().c_str());
            }
            auto outcome = handle_detection(*detection);
            if (lost)
                break;
            next_ckpt = outcome.progressAt + period;
            continue;
        }

        if (manager && system.progress() >= next_ckpt &&
            !system.allHalted()) {
            bool defer = false;
            if (config.placement == PlacementPolicy::kRecomputeAware &&
                acr && profile.dynamicStores > 0) {
                // Defer while the open interval is recomputation-poor
                // relative to the program's profiled slice coverage,
                // up to the slack bound (Sec. V-D1's observation).
                const auto &log = manager->openLog();
                double coverage =
                    static_cast<double>(profile.sliceableStores) /
                    static_cast<double>(profile.dynamicStores);
                double ratio =
                    log.totalRecords() == 0
                        ? 1.0
                        : static_cast<double>(log.amnesicRecords()) /
                              static_cast<double>(log.totalRecords());
                std::uint64_t limit =
                    next_ckpt + static_cast<std::uint64_t>(
                                    config.placementSlack *
                                    static_cast<double>(period));
                defer = ratio < coverage && system.progress() < limit;
                if (defer)
                    stats.add("ckpt.placementDeferrals");
            }
            if (!defer) {
                Cycle before = system.maxCycle();
                manager->establish();
                if (oracle)
                    oracle->onEstablish(
                        *manager,
                        injector ? injector->latentCount() : 0);
                if (config.trace) {
                    config.trace->span(
                        "checkpoint",
                        csprintf("ckpt %llu",
                                 static_cast<unsigned long long>(
                                     manager->checkpointsEstablished())),
                        before, system.maxCycle());
                }
                next_ckpt += period;
                if (secondary &&
                    secondary->duePromotion(
                        manager->checkpointsEstablished())) {
                    secondary->promote(system,
                                       manager->checkpointsEstablished(),
                                       system.maxCycle());
                }
            }
        }

        if (state == sim::SystemState::kAllHalted) {
            // Flush any error still in flight (a halted victim forces
            // detection; recovery revives the rolled-back cores).
            if (injector && !injector->done()) {
                if (auto detection = injector->poll(system)) {
                    auto outcome = handle_detection(*detection);
                    if (lost)
                        break;
                    next_ckpt = outcome.progressAt + period;
                    continue;
                }
                if (!injector->done())
                    continue;  // injector advanced (drop/reschedule)
            }
            break;
        }
    }

    // --- Verification: recovery must be transparent ---
    // An unrecoverable run never reached its final state — there is
    // nothing to verify against the reference; the structured outcome
    // (exit 5 upstream) is the verdict.
    if (config.verifyFinalState && !result.unrecoverable) {
        if (oracle) {
            // With the oracle on, a diverged final image is one more
            // structured finding, not a process abort.
            oracle->onFinalImage(profile.finalImage);
        } else {
            auto image = system.memory().image();
            if (image != profile.finalImage) {
                Addr bad = kInvalidAddr;
                for (const auto &[addr, value] : profile.finalImage) {
                    auto it = image.find(addr);
                    if (it == image.end() || it->second != value) {
                        bad = addr;
                        break;
                    }
                }
                panic("%s: final state diverged from the error-free "
                      "reference (first bad addr %llu)",
                      config.label().c_str(),
                      static_cast<unsigned long long>(bad));
            }
        }
    }

    // --- Results ---
    system.exportStats(stats);
    stats.set("sim.numCores", static_cast<double>(machine.numCores));
    if (acr)
        acr->exportStats();

    energy::EnergyModel energy_model;
    result.energyPj = energy_model.annotate(stats);
    result.cycles = system.maxCycle();
    result.edp = energy::EnergyModel::edp(result.energyPj, result.cycles);
    if (manager) {
        result.checkpointsEstablished = manager->checkpointsEstablished();
        result.history = manager->history();
        for (const auto &interval : result.history) {
            result.ckptBytesStored += interval.storedBytes();
            result.ckptBytesOmitted += interval.omittedBytes;
        }
    }
    result.recoveries =
        static_cast<std::uint64_t>(stats.get("rec.recoveries"));
    if (oracle) {
        result.oracleDivergences =
            static_cast<std::uint64_t>(stats.get("oracle.divergences"));
        result.oracleReport = oracle->report();
    }
    return result;
}

} // namespace acr::harness
