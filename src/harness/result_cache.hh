/**
 * @file
 * ResultCache: the persistent, content-addressed, cross-bench result
 * store (DESIGN.md §11) — the second half of the paper's "never
 * regenerate what you already have durable" discipline applied to the
 * harness's own sweeps.
 *
 * Where the Journal (supervisor.hh) keys completed points by *grid
 * index* and is therefore bound to one bench invocation's exact grid,
 * the ResultCache keys them by *content*: the FNV-1a hash of the
 * canonical serde encoding of the GridPoint itself (workload + full
 * ExperimentConfig + threads, wire::pointHash). Any bench that
 * enumerates the same experiment — at any grid position, under any
 * sharding — is served the stored result instead of re-simulating.
 *
 * On disk the cache is one ndjson file with the Journal's durability
 * discipline: a versioned header line (cache schema version plus the
 * wire::kVersion its records were encoded under), then one fsync'd
 * entry per result, appended as they complete. Every corruption mode
 * degrades to recompute, never to a crash or a wrong table:
 *
 *   - unknown/garbled header, stale cache version, or a wirev that
 *     does not match this build  → the whole file is cold (truncated
 *     and re-headed; every lookup misses);
 *   - a torn final line (no trailing newline)  → dropped and the file
 *     truncated to the durable prefix, like the journal;
 *   - an unreadable entry line (flipped byte, key/point mismatch,
 *     schema drift)  → that entry alone is skipped (served as a miss);
 *   - a failed append or fsync (ENOSPC, EIO, a yanked disk)  → the
 *     file is disabled with a one-line warning and the sweep keeps
 *     going: find() still serves everything already loaded, insert()
 *     keeps deduplicating in memory, nothing new persists.
 *
 * Quarantined results are never cached: a failed point's natural
 * resume semantic is retry, exactly as in the journal.
 *
 * Thread-safety: find() and insert() take an internal mutex; the
 * in-process sweep calls insert() from worker threads. Returned
 * pointers stay valid for the cache's lifetime (std::map nodes are
 * stable under insertion).
 */

#ifndef ACR_HARNESS_RESULT_CACHE_HH
#define ACR_HARNESS_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "harness/wire.hh"

namespace acr::harness
{

/** Content-addressed cross-bench experiment result cache. */
class ResultCache
{
  public:
    /** Bump on any change to the cache file schema (header or entry
     *  layout). Distinct from wire::kVersion, which covers the record
     *  payload encodings and is checked separately via the header's
     *  `wirev` field. */
    static constexpr std::uint64_t kCacheVersion = 1;

    ResultCache() = default;
    ~ResultCache();

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Open (creating if absent) the cache file at @p path and load
     * every readable entry. Corrupt content is never fatal — see the
     * file comment for the degradation ladder. fatal()s only on real
     * I/O errors (unopenable path, failed fsync).
     */
    void open(const std::string &path);

    /** True after open() — including after a write-failure degrade
     *  (loaded entries are still served; only persistence stopped). */
    bool isOpen() const { return fd_ >= 0 || degraded_; }

    /** The backing file was disabled by a failed append/fsync. */
    bool degraded() const { return degraded_; }

    /** Test hook: make the next append fail as if the disk were full
     *  (exercises the ENOSPC degrade path without a full disk). */
    void failNextWriteForTest();

    /**
     * Look up @p point by content; nullptr on miss. Counts into
     * hits()/misses(). A point carrying a host-memory trace sink is
     * uncacheable and always misses.
     */
    const ExperimentResult *find(const GridPoint &point);

    /**
     * Append @p result under @p point's content key (fsync'd before
     * returning). No-op for quarantined results (retry semantics),
     * uncacheable points, and keys already present. A failed append
     * (ENOSPC/EIO) degrades the cache instead of dying — see the file
     * comment. Thread-safe.
     */
    void insert(const GridPoint &point, const ExperimentResult &result);

    /** Entries currently loaded/inserted. */
    std::size_t size() const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /** Entries appended by this process (excludes loaded ones). */
    std::uint64_t inserts() const { return inserts_; }

    const std::string &path() const { return path_; }

    void close();

  private:
    /** Append @p bytes + fsync; on failure warn once, close the file
     *  and enter the degraded state. Caller holds mutex_. */
    bool tryAppend(const std::string &bytes);

    mutable std::mutex mutex_;
    std::string path_;
    int fd_ = -1;
    bool degraded_ = false;
    bool failNextWrite_ = false;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t inserts_ = 0;

    /** Canonical point encoding (wire::encodePoint dump) → result.
     *  Keyed by the full encoding rather than its hash so even a
     *  64-bit FNV collision cannot serve the wrong experiment. */
    std::map<std::string, ExperimentResult> entries_;
};

} // namespace acr::harness

#endif // ACR_HARNESS_RESULT_CACHE_HH
