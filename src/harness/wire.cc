#include "harness/wire.hh"

#include <limits>

#include "common/logging.hh"

namespace acr::harness::wire
{

namespace
{

using serde::Json;
using serde::ObjectReader;
using serde::SerdeError;

// --- Enum <-> string tables (decode rejects unknown names) ---

const char *
modeName(BerMode mode)
{
    switch (mode) {
      case BerMode::kNoCkpt: return "NoCkpt";
      case BerMode::kCkpt: return "Ckpt";
      case BerMode::kReCkpt: return "ReCkpt";
    }
    return "?";
}

BerMode
modeFromName(const std::string &name)
{
    if (name == "NoCkpt")
        return BerMode::kNoCkpt;
    if (name == "Ckpt")
        return BerMode::kCkpt;
    if (name == "ReCkpt")
        return BerMode::kReCkpt;
    throw SerdeError("unknown BerMode '" + name + "'");
}

const char *
coordinationName(ckpt::Coordination coordination)
{
    return coordination == ckpt::Coordination::kGlobal ? "Global"
                                                       : "Local";
}

ckpt::Coordination
coordinationFromName(const std::string &name)
{
    if (name == "Global")
        return ckpt::Coordination::kGlobal;
    if (name == "Local")
        return ckpt::Coordination::kLocal;
    throw SerdeError("unknown Coordination '" + name + "'");
}

ckpt::Backend
backendFromName(const std::string &name)
{
    ckpt::Backend backend;
    if (!ckpt::parseBackend(name, backend))
        throw SerdeError("unknown Backend '" + name + "'");
    return backend;
}

const char *
policyName(slice::SelectionPolicy policy)
{
    return policy == slice::SelectionPolicy::kGreedyThreshold
               ? "GreedyThreshold"
               : "CostModel";
}

slice::SelectionPolicy
policyFromName(const std::string &name)
{
    if (name == "GreedyThreshold")
        return slice::SelectionPolicy::kGreedyThreshold;
    if (name == "CostModel")
        return slice::SelectionPolicy::kCostModel;
    throw SerdeError("unknown SelectionPolicy '" + name + "'");
}

const char *
placementName(PlacementPolicy placement)
{
    return placement == PlacementPolicy::kUniform ? "Uniform"
                                                  : "RecomputeAware";
}

PlacementPolicy
placementFromName(const std::string &name)
{
    if (name == "Uniform")
        return PlacementPolicy::kUniform;
    if (name == "RecomputeAware")
        return PlacementPolicy::kRecomputeAware;
    throw SerdeError("unknown PlacementPolicy '" + name + "'");
}

unsigned
asUnsigned(const Json &json, const char *what)
{
    std::uint64_t value = json.asUint();
    if (value > std::numeric_limits<unsigned>::max())
        throw SerdeError(std::string(what) + " out of range");
    return static_cast<unsigned>(value);
}

Json
encodeInterval(const ckpt::IntervalSizes &sizes)
{
    Json json = Json::object();
    json.set("interval", sizes.interval)
        .set("records", sizes.records)
        .set("amnesicRecords", sizes.amnesicRecords)
        .set("loggedBytes", sizes.loggedBytes)
        .set("omittedBytes", sizes.omittedBytes)
        .set("flushedLines", sizes.flushedLines)
        .set("archBytes", sizes.archBytes);
    return json;
}

ckpt::IntervalSizes
decodeInterval(const Json &json)
{
    ObjectReader reader(json, "IntervalSizes");
    ckpt::IntervalSizes sizes;
    sizes.interval = reader.requireUint("interval");
    sizes.records = reader.requireUint("records");
    sizes.amnesicRecords = reader.requireUint("amnesicRecords");
    sizes.loggedBytes = reader.requireUint("loggedBytes");
    sizes.omittedBytes = reader.requireUint("omittedBytes");
    sizes.flushedLines = reader.requireUint("flushedLines");
    sizes.archBytes = reader.requireUint("archBytes");
    reader.finish();
    return sizes;
}

/** The `{"v":N,"type":T,...}` envelope shared by every record line. */
Json
envelope(const char *type)
{
    Json json = Json::object();
    json.set("v", kVersion).set("type", type);
    return json;
}

} // namespace

Json
encodeConfig(const ExperimentConfig &config)
{
    if (config.trace != nullptr)
        throw SerdeError("ExperimentConfig with a trace sink cannot be "
                         "serialized (host memory does not survive a "
                         "process boundary)");
    Json json = Json::object();
    json.set("mode", modeName(config.mode))
        .set("coordination", coordinationName(config.coordination))
        .set("backend", ckpt::backendName(config.backend))
        .set("numCheckpoints", config.numCheckpoints)
        .set("numErrors", config.numErrors)
        .set("sliceThreshold", config.sliceThreshold)
        .set("policy", policyName(config.policy))
        .set("addrMapRetention", config.addrMapRetention)
        .set("detectionLatencyFraction",
             config.detectionLatencyFraction)
        .set("placement", placementName(config.placement))
        .set("placementSlack", config.placementSlack)
        .set("secondaryPeriod", config.secondaryPeriod)
        .set("seed", config.seed)
        .set("verifyFinalState", config.verifyFinalState)
        .set("oracle", config.oracle)
        .set("faultEventMask", config.faultEventMask)
        .set("storageErrors", config.storageErrors)
        .set("storageFaultMask", config.storageFaultMask);
    return json;
}

ExperimentConfig
decodeConfig(const Json &json)
{
    ObjectReader reader(json, "ExperimentConfig");
    ExperimentConfig config;
    config.mode = modeFromName(reader.requireString("mode"));
    config.coordination =
        coordinationFromName(reader.requireString("coordination"));
    config.backend = backendFromName(reader.requireString("backend"));
    config.numCheckpoints =
        asUnsigned(reader.require("numCheckpoints"), "numCheckpoints");
    config.numErrors =
        asUnsigned(reader.require("numErrors"), "numErrors");
    config.sliceThreshold =
        asUnsigned(reader.require("sliceThreshold"), "sliceThreshold");
    config.policy = policyFromName(reader.requireString("policy"));
    config.addrMapRetention = asUnsigned(
        reader.require("addrMapRetention"), "addrMapRetention");
    config.detectionLatencyFraction =
        reader.requireDouble("detectionLatencyFraction");
    config.placement =
        placementFromName(reader.requireString("placement"));
    config.placementSlack = reader.requireDouble("placementSlack");
    config.secondaryPeriod = asUnsigned(
        reader.require("secondaryPeriod"), "secondaryPeriod");
    config.seed = reader.requireUint("seed");
    config.verifyFinalState = reader.requireBool("verifyFinalState");
    config.oracle = reader.requireBool("oracle");
    config.faultEventMask = reader.requireUint("faultEventMask");
    config.storageErrors =
        asUnsigned(reader.require("storageErrors"), "storageErrors");
    config.storageFaultMask = reader.requireUint("storageFaultMask");
    config.trace = nullptr;
    reader.finish();
    return config;
}

Json
encodeStats(const StatSet &stats)
{
    // StatSet iterates its map in name order, so the encoding is
    // canonical without extra sorting.
    Json json = Json::object();
    for (const auto &[name, value] : stats.all())
        json.set(name, value);
    return json;
}

StatSet
decodeStats(const Json &json)
{
    StatSet stats;
    for (const auto &[name, value] : json.members())
        stats.set(name, value.asDouble());
    return stats;
}

Json
encodeResult(const ExperimentResult &result)
{
    if (result.failed)
        throw SerdeError("a quarantined result travels as a 'failed' "
                         "record, not a 'result' record");
    Json history = Json::array();
    for (const auto &interval : result.history)
        history.push(encodeInterval(interval));

    Json json = Json::object();
    json.set("cycles", result.cycles)
        .set("energyPj", result.energyPj)
        .set("edp", result.edp)
        .set("checkpointsEstablished", result.checkpointsEstablished)
        .set("recoveries", result.recoveries)
        .set("oracleDivergences", result.oracleDivergences)
        .set("oracleReport", result.oracleReport)
        .set("ckptBytesStored", result.ckptBytesStored)
        .set("ckptBytesOmitted", result.ckptBytesOmitted)
        .set("unrecoverable", result.unrecoverable)
        .set("unrecoverableDetail", result.unrecoverableDetail)
        .set("stats", encodeStats(result.stats))
        .set("history", std::move(history));
    return json;
}

ExperimentResult
decodeResult(const Json &json)
{
    ObjectReader reader(json, "ExperimentResult");
    ExperimentResult result;
    result.cycles = reader.requireUint("cycles");
    result.energyPj = reader.requireDouble("energyPj");
    result.edp = reader.requireDouble("edp");
    result.checkpointsEstablished =
        reader.requireUint("checkpointsEstablished");
    result.recoveries = reader.requireUint("recoveries");
    result.oracleDivergences = reader.requireUint("oracleDivergences");
    result.oracleReport = reader.requireString("oracleReport");
    result.ckptBytesStored = reader.requireUint("ckptBytesStored");
    result.ckptBytesOmitted = reader.requireUint("ckptBytesOmitted");
    result.unrecoverable = reader.requireBool("unrecoverable");
    result.unrecoverableDetail =
        reader.requireString("unrecoverableDetail");
    result.stats = decodeStats(reader.require("stats"));
    for (const auto &interval : reader.require("history").items())
        result.history.push_back(decodeInterval(interval));
    reader.finish();
    return result;
}

Json
encodePoint(const GridPoint &point)
{
    Json json = Json::object();
    json.set("workload", point.workload)
        .set("threads", point.threads)
        .set("config", encodeConfig(point.config));
    return json;
}

GridPoint
decodePoint(const Json &json)
{
    ObjectReader reader(json, "GridPoint");
    GridPoint point;
    point.workload = reader.requireString("workload");
    point.threads = asUnsigned(reader.require("threads"), "threads");
    point.config = decodeConfig(reader.require("config"));
    reader.finish();
    return point;
}

std::uint64_t
pointHash(const GridPoint &point)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
    for (unsigned char c : encodePoint(point).dump()) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
encodePointLine(const PointRecord &record)
{
    Json json = envelope("point");
    json.set("index", record.index)
        .set("point", encodePoint(record.point));
    return json.dump();
}

std::string
encodeResultLine(const ResultRecord &record)
{
    Json json = envelope("result");
    json.set("index", record.index)
        .set("result", encodeResult(record.result));
    return json.dump();
}

std::string
encodeManifestLine(const ManifestRecord &record)
{
    Json json = envelope("manifest");
    json.set("bench", record.bench)
        .set("shard", record.shard)
        .set("shardCount", record.shardCount)
        .set("gridPoints", record.gridPoints)
        .set("gridHash", record.gridHash);
    return json.dump();
}

std::string
encodeFailedLine(const FailedRecord &record)
{
    Json json = envelope("failed");
    json.set("index", record.index)
        .set("attempts", record.attempts)
        .set("reason", record.reason);
    return json.dump();
}

std::string
encodeHelloLine(const HelloRecord &record)
{
    Json json = envelope("hello");
    json.set("bench", record.bench)
        .set("gridPoints", record.gridPoints)
        .set("gridHash", record.gridHash)
        .set("netVersion", record.netVersion);
    return json.dump();
}

Record
decodeLine(const std::string &line)
{
    Json json = Json::parse(line);
    ObjectReader reader(json, "wire record");
    const std::uint64_t version = reader.requireUint("v");
    if (version != kVersion)
        throw SerdeError(csprintf("wire version mismatch: record has "
                                  "v=%llu, this build speaks v=%llu",
                                  static_cast<unsigned long long>(
                                      version),
                                  static_cast<unsigned long long>(
                                      kVersion)));
    const std::string type = reader.requireString("type");

    Record record;
    if (type == "point") {
        record.type = Record::Type::kPoint;
        record.point.index = reader.requireUint("index");
        record.point.point = decodePoint(reader.require("point"));
    } else if (type == "result") {
        record.type = Record::Type::kResult;
        record.result.index = reader.requireUint("index");
        record.result.result = decodeResult(reader.require("result"));
    } else if (type == "failed") {
        record.type = Record::Type::kFailed;
        record.failed.index = reader.requireUint("index");
        record.failed.attempts = reader.requireUint("attempts");
        record.failed.reason = reader.requireString("reason");
    } else if (type == "manifest") {
        record.type = Record::Type::kManifest;
        record.manifest.bench = reader.requireString("bench");
        record.manifest.shard = reader.requireUint("shard");
        record.manifest.shardCount = reader.requireUint("shardCount");
        record.manifest.gridPoints = reader.requireUint("gridPoints");
        record.manifest.gridHash = reader.requireUint("gridHash");
    } else if (type == "hello") {
        record.type = Record::Type::kHello;
        record.hello.bench = reader.requireString("bench");
        record.hello.gridPoints = reader.requireUint("gridPoints");
        record.hello.gridHash = reader.requireUint("gridHash");
        record.hello.netVersion = reader.requireUint("netVersion");
    } else {
        throw SerdeError("unknown record type '" + type + "'");
    }
    reader.finish();
    return record;
}

std::uint64_t
gridHash(const std::vector<GridPoint> &points)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
    auto mix = [&hash](const std::string &bytes) {
        for (unsigned char c : bytes) {
            hash ^= c;
            hash *= 0x100000001b3ULL;
        }
    };
    for (std::uint64_t i = 0; i < points.size(); ++i) {
        mix(encodePointLine(PointRecord{i, points[i]}));
        mix("\n");
    }
    return hash;
}

} // namespace acr::harness::wire
