/**
 * @file
 * Sweep: a host-thread-pool experiment executor. A sweep is an ordered
 * list of (workload, ExperimentConfig) points; run() fans independent
 * points out across worker threads sharing one Runner and returns the
 * results in submission order, bit-identical to a serial execution
 * regardless of scheduling (see the Runner thread-safety contract:
 * shared state is computed once and then immutable; everything mutable
 * is per-experiment).
 *
 * Host-side timing is deliberately kept OUT of ExperimentResult —
 * wall-clock depends on scheduling, and results must not — and exposed
 * via hostStats() instead.
 */

#ifndef ACR_HARNESS_SWEEP_HH
#define ACR_HARNESS_SWEEP_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"

namespace acr::harness
{

/** One point of a sweep: a workload plus its configuration. */
struct SweepPoint
{
    std::string workload;
    ExperimentConfig config;
};

/** Parallel executor for independent experiment points. */
class Sweep
{
  public:
    /**
     * @param runner shared experiment driver; not owned
     * @param jobs   worker threads (0: defaultJobs())
     */
    explicit Sweep(Runner &runner, unsigned jobs = 0);

    /** The --jobs default: ACR_JOBS if set to a positive integer, else
     *  std::thread::hardware_concurrency(). */
    static unsigned defaultJobs();

    unsigned jobs() const { return jobs_; }

    /**
     * Execute every point; results come back in submission order.
     * Points must be independent: in particular, any non-null
     * config.trace sink must not be shared between points (trace
     * sinks are not synchronized — give each point its own, or use
     * jobs=1).
     */
    std::vector<ExperimentResult> run(const std::vector<SweepPoint> &points);

    /**
     * Host-side timing of the most recent run(): sweep.jobs,
     * sweep.points, sweep.wallMillis, sweep.workMillis (sum of
     * per-point times — the serial-equivalent cost), and
     * sweep.point.<index>.millis per point.
     */
    const StatSet &hostStats() const { return hostStats_; }

    /** One-line wall/work/parallelism summary of the last run(). */
    void reportTiming(std::ostream &os) const;

  private:
    Runner &runner_;
    unsigned jobs_;
    StatSet hostStats_;
};

} // namespace acr::harness

#endif // ACR_HARNESS_SWEEP_HH
