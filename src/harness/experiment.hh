/**
 * @file
 * Experiment configurations and results. The configuration space spans
 * exactly the paper's Sec. IV matrix: {NoCkpt, Ckpt, ReCkpt} ×
 * {error-free, with errors} × {global, local coordination}, plus the
 * knobs the sensitivity studies sweep (checkpoint count, error count,
 * slice threshold, thread count).
 */

#ifndef ACR_HARNESS_EXPERIMENT_HH
#define ACR_HARNESS_EXPERIMENT_HH

#include <limits>
#include <map>
#include <string>

#include "ckpt/manager.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "slice/policy.hh"

namespace acr::harness
{

/** Which BER scheme runs. */
enum class BerMode
{
    kNoCkpt,  ///< error-free execution, no checkpointing (baseline)
    kCkpt,    ///< incremental in-memory checkpointing
    kReCkpt,  ///< ACR: amnesic checkpointing and recovery
};

/**
 * Checkpoint placement policy. The paper places checkpoints uniformly
 * (Sec. IV) and observes (Sec. V-D1/V-D3) that shifting checkpoint times
 * toward recomputation-rich execution regions would help — left as
 * future work there, implemented here as kRecomputeAware: at a trigger
 * point, establishment is deferred (up to a slack fraction of the
 * period) while the open interval's recomputable fraction is still
 * below the program's profiled slice coverage.
 */
enum class PlacementPolicy
{
    kUniform,
    kRecomputeAware,
};

/** One experiment configuration. */
struct ExperimentConfig
{
    BerMode mode = BerMode::kCkpt;
    ckpt::Coordination coordination = ckpt::Coordination::kGlobal;

    /** Checkpoint storage backend (DESIGN.md §14): the seed's DRAM
     *  undo log, a ReStore-style replicated image store, or a
     *  JASS-style NVM log. Requires a checkpointing mode when not
     *  kLog (NoCkpt stores nothing). */
    ckpt::Backend backend = ckpt::Backend::kLog;

    /** Checkpoints uniformly distributed over execution (Sec. IV). */
    unsigned numCheckpoints = 25;

    /** Errors uniformly distributed over execution (0 = error-free). */
    unsigned numErrors = 0;

    /** Slice-length threshold for ReCkpt modes (paper default 10;
     *  5 for is, footnote 4). */
    unsigned sliceThreshold = 10;

    /** Slice selection policy (ablation: kCostModel). */
    slice::SelectionPolicy policy =
        slice::SelectionPolicy::kGreedyThreshold;

    /** AddrMap age expiry in intervals (0: live until overwritten;
     *  2: the strict Sec. III-A reading). */
    unsigned addrMapRetention = 0;

    /** Detection latency as a fraction of the checkpoint period
     *  (must stay <= 1 per Sec. II-A). */
    double detectionLatencyFraction = 0.25;

    /** Checkpoint placement (kRecomputeAware needs mode == kReCkpt). */
    PlacementPolicy placement = PlacementPolicy::kUniform;

    /** Max deferral under kRecomputeAware, as a fraction of the period. */
    double placementSlack = 0.3;

    /**
     * Hierarchical checkpointing (Sec. II-A): promote every Nth
     * in-memory checkpoint to the storage tier (0 disables).
     */
    unsigned secondaryPeriod = 0;

    /** Seed for error masks. */
    std::uint64_t seed = 0xacce55ULL;

    /** Panic if the final memory state diverges from the error-free
     *  reference (always sound: recovery must be transparent). */
    bool verifyFinalState = true;

    /**
     * Attach the RecoveryOracle: differentially validate every
     * recovery and report structured divergences in the result instead
     * of aborting. Requires a checkpointing mode.
     */
    bool oracle = false;

    /**
     * FaultPlan shrinking: keep planned error i iff bit (i % 64) is
     * set. All-ones (the default) keeps the full plan; the torture
     * front-end bisects this mask to a minimal failing event set.
     */
    std::uint64_t faultEventMask = ~std::uint64_t{0};

    /**
     * Storage faults injected into the checkpoint medium (0 = the
     * reliable medium; DESIGN.md §16). Seeded and ordinal-keyed like
     * compute errors; requires a checkpointing mode. Kinds are
     * backend-specific (ckpt::storageFaultKinds).
     */
    unsigned storageErrors = 0;

    /** StorageFaultPlan shrinking mask, same keep-bit convention as
     *  faultEventMask (the torture shrinker bisects it). */
    std::uint64_t storageFaultMask = ~std::uint64_t{0};

    /** Optional event timeline sink (checkpoints, errors, recoveries);
     *  not owned. */
    EventTrace *trace = nullptr;

    /** Human-readable label ("ReCkpt_E,Loc" etc.). */
    std::string label() const;

    /**
     * Check the configuration's internal consistency. Returns an empty
     * string when valid, else a descriptive error naming the offending
     * field. Runner::run calls this (after defaulting
     * sliceThreshold == 0 to the workload's threshold) and fatal()s on
     * the message, so invalid combinations fail at the API boundary
     * instead of deep inside BerRuntime — or worse, silently
     * mis-measuring (e.g. a detection latency longer than the
     * checkpoint period).
     */
    std::string validate() const;
};

/** Measurements from one run. */
struct ExperimentResult
{
    Cycle cycles = 0;
    double energyPj = 0.0;
    double edp = 0.0;

    std::uint64_t checkpointsEstablished = 0;
    std::uint64_t recoveries = 0;

    /** Oracle findings (0 when the oracle is off or the run is clean). */
    std::uint64_t oracleDivergences = 0;
    /** Structured divergence report ("" when clean). */
    std::string oracleReport;

    /** Stored checkpoint bytes over the whole run / bytes ACR omitted. */
    std::uint64_t ckptBytesStored = 0;
    std::uint64_t ckptBytesOmitted = 0;

    StatSet stats;
    std::vector<ckpt::IntervalSizes> history;

    /**
     * Quarantine marker: the sweep supervisor exhausted every retry
     * for this grid point, so the slot holds a placeholder instead of
     * a measurement. The numeric payload is NaN-poisoned so every
     * derived metric a bench computes from it renders as a FAILED
     * table cell; the wire layer refuses to encode it as a `result`
     * record (it travels as an explicit `failed` record instead).
     */
    bool failed = false;
    /** Worker attempts consumed (meaningful when failed). */
    unsigned attempts = 1;
    /** Why the last attempt died (meaningful when failed). */
    std::string failReason;

    /**
     * Storage faults defeated every escalation rung (DESIGN.md §16):
     * the modeled machine could not be restored to any checkpoint and
     * the run stopped at the failed recovery. Unlike `failed` this IS
     * a measurement — a deterministic, cacheable statement about the
     * configuration — so cycles/stats hold the partial run up to the
     * loss and only the derived overhead metrics NaN-poison.
     */
    bool unrecoverable = false;
    /** Which stored datum was unserveable (when unrecoverable). */
    std::string unrecoverableDetail;

    /** The quarantine placeholder for a point that failed every
     *  attempt. */
    static ExperimentResult
    quarantined(unsigned attempts, std::string reason)
    {
        ExperimentResult result;
        result.failed = true;
        result.attempts = attempts;
        result.failReason = std::move(reason);
        result.energyPj = std::numeric_limits<double>::quiet_NaN();
        result.edp = std::numeric_limits<double>::quiet_NaN();
        return result;
    }

    /** % overhead of this run w.r.t. a NoCkpt reference. NaN for
     *  quarantined and unrecoverable results (FAILED-style cells: a
     *  truncated run's overhead is not comparable to a finished
     *  one's). */
    double
    timeOverheadPct(Cycle no_ckpt_cycles) const
    {
        if (failed || unrecoverable)
            return std::numeric_limits<double>::quiet_NaN();
        return 100.0 *
               (static_cast<double>(cycles) -
                static_cast<double>(no_ckpt_cycles)) /
               static_cast<double>(no_ckpt_cycles);
    }

    double
    energyOverheadPct(double no_ckpt_energy) const
    {
        if (failed || unrecoverable)
            return std::numeric_limits<double>::quiet_NaN();
        return 100.0 * (energyPj - no_ckpt_energy) / no_ckpt_energy;
    }

    double
    edpReductionPct(double baseline_edp) const
    {
        if (failed || unrecoverable)
            return std::numeric_limits<double>::quiet_NaN();
        return 100.0 * (baseline_edp - edp) / baseline_edp;
    }
};

} // namespace acr::harness

#endif // ACR_HARNESS_EXPERIMENT_HH
