/**
 * @file
 * Error-free prefix sharing (DESIGN.md §13): within one sweep cell the
 * +error and −error runs of a configuration execute identically up to
 * the first armed fault event. PrefixSnapshot captures the entire
 * mutable state of a BerRuntime run at a progress threshold — machine
 * (cores/memory/caches), slicer DAG, ACR engine, and checkpoint
 * retention — so a sibling run whose first fault trigger lies at or
 * beyond that threshold can fork from the snapshot instead of
 * re-simulating the shared prefix.
 *
 * The capture point sits immediately after the scheduling step whose
 * progress first reaches the threshold, *before* that iteration's
 * injector poll: the injector is a provable no-op until its first
 * trigger, so any consumer with trigger >= stopProgress would have
 * reached this exact state instruction for instruction.
 *
 * Live SliceInstances are the delicate part: they hold a reference to
 * their run's OperandBufferAccounting and are shared (by pointer)
 * between AddrMap entries and retained undo-log records. The snapshot
 * therefore serializes each distinct instance exactly once into an
 * indexed table and re-materializes it exactly once per resumed run —
 * double-materializing would double-charge live operand words and
 * diverge later capacity rejections.
 */

#ifndef ACR_HARNESS_PREFIX_SHARE_HH
#define ACR_HARNESS_PREFIX_SHARE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "acr/acr_engine.hh"
#include "ckpt/manager.hh"
#include "common/stats.hh"
#include "sim/system.hh"
#include "slice/engine.hh"

namespace acr::harness
{

/** Full mid-run state of one BerRuntime execution. */
struct PrefixSnapshot
{
    /** Sentinel instance index: a plain (non-amnesic) log record. */
    static constexpr std::uint32_t kNoInstance = ~std::uint32_t{0};

    /** One serialized undo-log record (amnesic pointer by index). */
    struct RecordSnap
    {
        Addr addr = 0;
        Word oldValue = 0;
        CoreId writer = 0;
        std::uint32_t amnesic = kNoInstance;
    };

    /** One serialized IntervalLog. */
    struct LogSnap
    {
        std::uint64_t interval = 0;
        std::vector<RecordSnap> records;
    };

    /** One serialized retained checkpoint. */
    struct CkptSnap
    {
        std::uint64_t index = 0;
        Cycle establishedAt = 0;
        std::uint64_t progressAt = 0;
        std::vector<cpu::ArchState> arch;
        std::vector<cache::SharerMask> interactions;
        cache::SharerMask validFor = ~cache::SharerMask{0};
        LogSnap log;
    };

    /**
     * The progress threshold this snapshot was captured at (the
     * consuming run's first fault trigger must be >= this). This is
     * the *threshold*, not the possibly-larger actual progress — the
     * eligibility proof needs the last pre-capture injector poll to
     * have happened strictly below it.
     */
    std::uint64_t stopProgress = 0;

    sim::MulticoreSystem::Snapshot system;
    /** Result of the step the capture followed (consumed in place of
     *  the resumed run's first stepWith()). */
    sim::SystemState stepState = sim::SystemState::kRunning;
    std::uint64_t nextCkpt = 0;
    StatSet stats;

    /** Deduplicated live slice instances (AddrMap + undo logs). */
    std::vector<amnesic::AcrEngine::Snap::InstanceEntry> instances;
    std::optional<slice::SliceEngine> slicer;
    std::optional<amnesic::AcrEngine::Snap> acr;

    // --- Checkpoint-manager retention ---
    LogSnap openLog;
    /** Newest last, matching CheckpointManager::retained(). */
    std::vector<CkptSnap> retained;
    std::uint64_t established = 0;
    std::vector<ckpt::IntervalSizes> history;
};

/**
 * Capture a snapshot. Call right after the stepWith() whose progress
 * first reaches @p stop_progress, before the injector poll. @p slicer
 * and @p acr may be null (plain Ckpt mode); @p manager must not be.
 */
PrefixSnapshot capturePrefix(std::uint64_t stop_progress,
                             const sim::MulticoreSystem &system,
                             sim::SystemState step_state,
                             std::uint64_t next_ckpt,
                             const StatSet &stats,
                             const slice::SliceEngine *slicer,
                             const amnesic::AcrEngine *acr,
                             const ckpt::CheckpointManager &manager);

/**
 * Overwrite a freshly constructed run's components with @p snap.
 * The caller must have built every component exactly as a normal run
 * does (including manager.initialCheckpoint()); null-ness of
 * @p slicer / @p acr must match the snapshot's.
 */
void resumePrefix(const PrefixSnapshot &snap, sim::MulticoreSystem &system,
                  std::uint64_t &next_ckpt, StatSet &stats,
                  slice::SliceEngine *slicer, amnesic::AcrEngine *acr,
                  ckpt::CheckpointManager &manager);

/**
 * In/out handle BerRuntime::run uses to participate in sharing.
 * At most one of resume / captureAt is active per run: a run either
 * forks from an existing snapshot or may produce one, never both.
 */
struct PrefixHandle
{
    /** Snapshot to fork from, or null to run from the start. */
    const PrefixSnapshot *resume = nullptr;
    /** Progress threshold to capture at (0 = never capture). */
    std::uint64_t captureAt = 0;
    /** Filled by BerRuntime when a capture happened. */
    std::shared_ptr<PrefixSnapshot> captured;
};

} // namespace acr::harness

#endif // ACR_HARNESS_PREFIX_SHARE_HH
