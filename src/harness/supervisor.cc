#include "harness/supervisor.hh"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iterator>
#include <memory>
#include <optional>

#include "common/logging.hh"
#include "common/rng.hh"

namespace acr::harness
{

namespace
{

using Clock = std::chrono::steady_clock;

Clock::duration
secondsDuration(double seconds)
{
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
}

/** write(2) the whole buffer, retrying on EINTR; fatal() on error
 *  (used for the journal — worker pipes go through the nonblocking
 *  path below). */
void
writeAllFd(int fd, const std::string &bytes, const char *what)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("writing %s: %s", what, std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
}

std::string
describeStatus(int status)
{
    if (WIFEXITED(status))
        return csprintf("exited with status %d", WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return csprintf("killed by signal %d", WTERMSIG(status));
    return csprintf("ended with wait status %d", status);
}

/** One attempt of one task, with its backoff gate. */
struct Attempt
{
    Supervisor::Task task;
    unsigned tries = 0;  ///< failed attempts so far
    Clock::time_point readyAt;
};

/**
 * The one retry/backoff/quarantine ladder every executor shares
 * (forked and TCP alike): bump the failed attempt and either requeue
 * it behind its jittered backoff or quarantine it — delivered as the
 * placeholder result so the sweep completes around it.
 */
void
retryOrQuarantine(const Supervisor::Options &options, Attempt attempt,
                  const std::string &reason, std::deque<Attempt> &queue,
                  const Supervisor::Deliver &deliver,
                  std::size_t &remaining, double &retries,
                  double &quarantined)
{
    ++attempt.tries;
    const std::size_t index = attempt.task.gridIndex;
    if (attempt.tries > options.retries) {
        ++quarantined;
        std::fprintf(stderr,
                     "[sweep] quarantining point %zu after %u "
                     "attempt(s): %s\n",
                     index, attempt.tries, reason.c_str());
        deliver(attempt.task,
                ExperimentResult::quarantined(attempt.tries, reason));
        --remaining;
    } else {
        ++retries;
        const double delay =
            Supervisor::backoffSeconds(options, attempt.tries, index);
        std::fprintf(stderr,
                     "[sweep] point %zu failed (%s); retry %u/%u on a "
                     "fresh worker in %.2fs\n",
                     index, reason.c_str(), attempt.tries,
                     options.retries, delay);
        attempt.readyAt = Clock::now() + secondsDuration(delay);
        queue.push_back(attempt);
    }
}

/** A live worker child and its nonblocking pipe state. */
struct Worker
{
    pid_t pid = -1;
    int in = -1;   ///< parent → child stdin (point lines)
    int out = -1;  ///< child stdout → parent (result lines)
    std::string rbuf;
    std::string wbuf;
    bool busy = false;
    Attempt attempt;  ///< valid while busy
    Clock::time_point deadline;  ///< valid while busy w/ watchdog
    std::optional<int> reapedStatus;  ///< set by the WNOHANG sweep
};

void
setNonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("fcntl(O_NONBLOCK): %s", std::strerror(errno));
}

} // namespace

Supervisor::Supervisor(std::vector<std::string> workerCmd,
                       Options options)
    : workerCmd_(std::move(workerCmd)), options_(options)
{
    ACR_ASSERT(!workerCmd_.empty(), "empty worker command");
}

Supervisor::Supervisor(Options options) : options_(options)
{
}

double
Supervisor::backoffSeconds(const Options &options, unsigned tries,
                           std::size_t gridIndex)
{
    const unsigned exponent = tries > 0 ? tries - 1 : 0;
    double delay = options.backoffBaseSec *
                   std::ldexp(1.0, static_cast<int>(
                                       std::min(exponent, 20u)));
    delay = std::min(delay, options.backoffCapSec);
    // Deterministic jitter in [0.5, 1.5)x: spreads retries without
    // making runs irreproducible (timing only; results are merged by
    // grid index regardless).
    Rng rng(options.jitterSeed ^
            (static_cast<std::uint64_t>(gridIndex) *
             0x9e3779b97f4a7c15ULL) ^
            tries);
    return delay * (0.5 + rng.uniform());
}

void
Supervisor::run(const std::vector<Task> &tasks, const Deliver &deliver,
                StatSet &stats)
{
    ACR_ASSERT(deliver, "supervisor needs a delivery sink");
    ACR_ASSERT(!workerCmd_.empty(),
               "forked run() needs a worker command (the net-only "
               "constructor only supports runListen)");

    // A write to a just-died worker must surface as EPIPE (triggering
    // a retry), not kill the whole sweep.
    std::signal(SIGPIPE, SIG_IGN);

    double respawns = 0, retries = 0, crashes = 0, watchdog_kills = 0,
           quarantined = 0;

    std::deque<Attempt> queue;
    for (const auto &task : tasks)
        queue.push_back({task, 0, Clock::now()});

    std::vector<std::unique_ptr<Worker>> workers;
    std::size_t remaining = tasks.size();
    const std::size_t initial_fleet = std::min<std::size_t>(
        std::max(1u, options_.workers), tasks.size());
    std::size_t total_spawned = 0;

    auto spawn = [&]() {
        int to_child[2], from_child[2];
        if (::pipe2(to_child, O_CLOEXEC) != 0 ||
            ::pipe2(from_child, O_CLOEXEC) != 0)
            fatal("pipe2: %s", std::strerror(errno));
        const bool respawn = total_spawned >= initial_fleet;
        const pid_t pid = ::fork();
        if (pid < 0)
            fatal("fork: %s", std::strerror(errno));
        if (pid == 0) {
            // Child: stdin/stdout onto the pipes (dup2 clears
            // O_CLOEXEC, so every other parent-held fd — including
            // sibling workers' pipes — closes across exec; a dead
            // sibling's pipe EOF therefore stays observable).
            ::dup2(to_child[0], STDIN_FILENO);
            ::dup2(from_child[1], STDOUT_FILENO);
            if (respawn)
                ::setenv("ACR_TEST_RESPAWNED", "1", 1);
            std::vector<char *> argv;
            argv.reserve(workerCmd_.size() + 1);
            for (const auto &arg : workerCmd_)
                argv.push_back(const_cast<char *>(arg.c_str()));
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            std::fprintf(stderr, "execv %s: %s\n", argv[0],
                         std::strerror(errno));
            ::_exit(127);
        }
        ::close(to_child[0]);
        ::close(from_child[1]);
        setNonblocking(to_child[1]);
        setNonblocking(from_child[0]);
        auto worker = std::make_unique<Worker>();
        worker->pid = pid;
        worker->in = to_child[1];
        worker->out = from_child[0];
        workers.push_back(std::move(worker));
        ++total_spawned;
        if (respawn)
            ++respawns;
    };

    auto eraseWorker = [&](Worker *worker) {
        workers.erase(
            std::find_if(workers.begin(), workers.end(),
                         [&](const std::unique_ptr<Worker> &w) {
                             return w.get() == worker;
                         }));
    };

    // Tear the worker down and retry or quarantine its in-flight
    // point. Invalidates `worker`.
    auto failWorker = [&](Worker *worker, const std::string &reason) {
        if (!worker->reapedStatus) {
            ::kill(worker->pid, SIGKILL);
            int status = 0;
            while (::waitpid(worker->pid, &status, 0) < 0) {
                if (errno != EINTR) {
                    status = -1;
                    break;
                }
            }
        }
        ::close(worker->in);
        ::close(worker->out);
        if (worker->busy)
            retryOrQuarantine(options_, worker->attempt, reason, queue,
                              deliver, remaining, retries,
                              quarantined);
        eraseWorker(worker);
    };

    // Flush wbuf opportunistically; on a hard write error rely on the
    // read side (EOF) for the authoritative failure unless the error
    // is immediate (EPIPE: the child is already gone).
    auto flushWrites = [&](Worker *worker) -> bool {
        while (!worker->wbuf.empty()) {
            const ssize_t n =
                ::write(worker->in, worker->wbuf.data(),
                        worker->wbuf.size());
            if (n > 0) {
                worker->wbuf.erase(0, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return true;
            failWorker(worker,
                       csprintf("write to worker failed: %s",
                                std::strerror(errno)));
            return false;
        }
        return true;
    };

    // Drain readable result lines; returns false once the worker has
    // been failed (crash, EOF, protocol violation).
    auto drainReads = [&](Worker *worker) -> bool {
        while (true) {
            char chunk[65536];
            const ssize_t n =
                ::read(worker->out, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return true;
                failWorker(worker,
                           csprintf("read from worker failed: %s",
                                    std::strerror(errno)));
                return false;
            }
            if (n == 0) {
                // EOF: the child is gone; report how it died.
                ++crashes;
                int status = 0;
                std::string how = "pipe closed";
                if (worker->reapedStatus) {
                    how = describeStatus(*worker->reapedStatus);
                } else {
                    pid_t reaped;
                    while ((reaped = ::waitpid(worker->pid, &status,
                                               WNOHANG)) < 0 &&
                           errno == EINTR) {
                    }
                    if (reaped == worker->pid) {
                        worker->reapedStatus = status;
                        how = describeStatus(status);
                    }
                }
                failWorker(worker, "worker " + how);
                return false;
            }
            worker->rbuf.append(chunk, static_cast<std::size_t>(n));
            std::size_t newline;
            while ((newline = worker->rbuf.find('\n')) !=
                   std::string::npos) {
                const std::string line =
                    worker->rbuf.substr(0, newline);
                worker->rbuf.erase(0, newline + 1);
                wire::Record record;
                try {
                    record = wire::decodeLine(line);
                } catch (const serde::SerdeError &error) {
                    failWorker(worker,
                               csprintf("protocol error: %s",
                                        error.what()));
                    return false;
                }
                if (record.type != wire::Record::Type::kResult ||
                    !worker->busy ||
                    record.result.index !=
                        worker->attempt.task.gridIndex) {
                    failWorker(worker,
                               "protocol error: unexpected record");
                    return false;
                }
                deliver(worker->attempt.task,
                        std::move(record.result.result));
                worker->busy = false;
                --remaining;
            }
        }
    };

    while (remaining > 0) {
        // Reap crashed children (crash detection half 1; the pipe EOF
        // is half 2 and carries the retry).
        while (true) {
            int status = 0;
            const pid_t pid = ::waitpid(-1, &status, WNOHANG);
            if (pid <= 0) {
                if (pid < 0 && errno == EINTR)
                    continue;
                break;
            }
            for (auto &worker : workers)
                if (worker->pid == pid)
                    worker->reapedStatus = status;
        }

        // Keep the fleet at strength: one live worker per outstanding
        // point, capped at --forks.
        while (workers.size() <
               std::min<std::size_t>(std::max(1u, options_.workers),
                                     remaining))
            spawn();

        // Hand ready work to idle workers.
        const auto now = Clock::now();
        for (auto &worker : workers) {
            if (worker->busy || queue.empty())
                continue;
            const auto ready = std::find_if(
                queue.begin(), queue.end(), [&](const Attempt &a) {
                    return a.readyAt <= now;
                });
            if (ready == queue.end())
                break;
            worker->attempt = *ready;
            queue.erase(ready);
            worker->busy = true;
            worker->wbuf += wire::encodePointLine(
                                {worker->attempt.task.gridIndex,
                                 *worker->attempt.task.point}) +
                            "\n";
            if (options_.pointTimeoutSec > 0)
                worker->deadline =
                    now + secondsDuration(options_.pointTimeoutSec);
        }

        // Nearest wakeup: a watchdog deadline or a backoff expiry.
        int timeout_ms = -1;
        auto wakeAt = [&](Clock::time_point when) {
            const auto delta =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    when - now)
                    .count();
            const int ms =
                static_cast<int>(std::max<long long>(0, delta));
            timeout_ms =
                timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
        };
        for (const auto &worker : workers)
            if (worker->busy && options_.pointTimeoutSec > 0)
                wakeAt(worker->deadline);
        for (const auto &attempt : queue)
            wakeAt(attempt.readyAt);

        std::vector<pollfd> fds;
        std::vector<std::pair<pid_t, bool>> owners;  // pid, is_out
        fds.reserve(workers.size() * 2);
        for (const auto &worker : workers) {
            fds.push_back({worker->out, POLLIN, 0});
            owners.emplace_back(worker->pid, true);
            if (!worker->wbuf.empty()) {
                fds.push_back({worker->in, POLLOUT, 0});
                owners.emplace_back(worker->pid, false);
            }
        }
        const int rc =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   timeout_ms);
        if (rc < 0 && errno != EINTR)
            fatal("poll: %s", std::strerror(errno));

        auto findWorker = [&](pid_t pid) -> Worker * {
            for (auto &worker : workers)
                if (worker->pid == pid)
                    return worker.get();
            return nullptr;
        };

        if (rc > 0) {
            for (std::size_t i = 0; i < fds.size(); ++i) {
                if (fds[i].revents == 0)
                    continue;
                // The worker may have been failed (and erased) while
                // handling an earlier fd this round.
                Worker *worker = findWorker(owners[i].first);
                if (worker == nullptr)
                    continue;
                if (owners[i].second)
                    drainReads(worker);
                else
                    flushWrites(worker);
            }
        }

        // Watchdog: SIGKILL a worker that has sat on one point past
        // --point-timeout.
        if (options_.pointTimeoutSec > 0) {
            const auto check = Clock::now();
            for (std::size_t i = 0; i < workers.size();) {
                Worker *worker = workers[i].get();
                if (worker->busy && check >= worker->deadline) {
                    ++watchdog_kills;
                    failWorker(
                        worker,
                        csprintf("point exceeded --point-timeout=%g s",
                                 options_.pointTimeoutSec));
                    // failWorker erased the worker; don't advance.
                    continue;
                }
                ++i;
            }
        }
    }

    // Graceful shutdown: stdin EOF ends each worker loop.
    for (const auto &worker : workers) {
        ::close(worker->in);
        ::close(worker->out);
    }
    for (const auto &worker : workers) {
        int status = 0;
        while (::waitpid(worker->pid, &status, 0) < 0) {
            if (errno != EINTR)
                break;
        }
    }
    workers.clear();

    stats.set("sweep.respawns", respawns);
    stats.set("sweep.retries", retries);
    stats.set("sweep.workerCrashes", crashes);
    stats.set("sweep.watchdogKills", watchdog_kills);
    stats.set("sweep.quarantined", quarantined);
}

void
Supervisor::runListen(const std::vector<Task> &tasks,
                      const NetOptions &net_options,
                      const Deliver &deliver, StatSet &stats)
{
    ACR_ASSERT(deliver, "supervisor needs a delivery sink");
    ACR_ASSERT(net_options.heartbeatSec > 0,
               "heartbeat must be positive");

    // A send to a just-vanished worker must surface as a closed
    // channel (triggering a re-deal), not kill the coordinator.
    std::signal(SIGPIPE, SIG_IGN);

    double retries = 0, losses = 0, watchdog_kills = 0,
           quarantined = 0, joins = 0, leaves = 0;

    std::deque<Attempt> queue;
    for (const auto &task : tasks)
        queue.push_back({task, 0, Clock::now()});
    std::size_t remaining = tasks.size();

    net::Endpoint bound;
    const int listen_fd = net::listenOn(net_options.listen, bound);
    std::fprintf(stderr, "[net] listening on %s\n",
                 bound.describe().c_str());

    /** One connected (or connecting) TCP member of the fleet. */
    struct NetWorker
    {
        enum class State { kHandshake, kIdle, kBusy };

        std::uint64_t id = 0;
        net::FrameChannel channel;
        State state = State::kHandshake;
        Attempt attempt;             ///< valid while kBusy
        Clock::time_point deadline;  ///< valid while kBusy w/ watchdog
        Clock::time_point lastHeard;
        Clock::time_point lastPing;

        NetWorker(std::uint64_t id_, int fd) : id(id_), channel(fd) {}
    };
    std::vector<std::unique_ptr<NetWorker>> workers;
    std::uint64_t next_id = 1;

    const auto heartbeat = secondsDuration(net_options.heartbeatSec);
    // An unresponsive *idle* peer is dropped after missing several
    // heartbeats. A busy peer is single-threadedly simulating and
    // cannot answer pings, so only the --point-timeout watchdog (and
    // TCP itself, for an outright death) covers it.
    const auto idle_timeout = heartbeat * 4;
    // With work queued and nobody connected, wait this long for a
    // (re)join before quarantining everything left — the sweep
    // degrades to FAILED cells and exit 3, it never hangs.
    const auto join_grace = heartbeat * 8;
    auto empty_since = Clock::now();

    wire::HelloRecord identity;
    identity.bench = net_options.bench;
    identity.gridPoints = net_options.gridPoints;
    identity.gridHash = net_options.gridHash;
    identity.netVersion = net::kProtocolVersion;
    const std::string hello_line = wire::encodeHelloLine(identity);

    auto eraseWorker = [&](NetWorker *worker) {
        workers.erase(
            std::find_if(workers.begin(), workers.end(),
                         [&](const std::unique_ptr<NetWorker> &w) {
                             return w.get() == worker;
                         }));
    };

    // Drop the connection; a busy member's in-flight point re-enters
    // the shared retry/backoff/quarantine ladder, an idle leave costs
    // nothing. Invalidates `worker`.
    auto dropWorker = [&](NetWorker *worker,
                          const std::string &reason) {
        if (worker->state != NetWorker::State::kHandshake)
            ++leaves;
        if (worker->state == NetWorker::State::kBusy) {
            ++losses;
            retryOrQuarantine(options_, worker->attempt, reason, queue,
                              deliver, remaining, retries,
                              quarantined);
        } else {
            std::fprintf(
                stderr, "[net] worker #%llu left: %s\n",
                static_cast<unsigned long long>(worker->id),
                reason.c_str());
        }
        worker->channel.close();
        eraseWorker(worker);
    };

    // Apply one inbound frame; returns false once the worker has been
    // dropped (protocol violation, handshake mismatch).
    auto handleFrame = [&](NetWorker *worker,
                           const net::Frame &frame) -> bool {
        worker->lastHeard = Clock::now();
        if (frame.type == net::FrameType::kPong)
            return true;
        if (frame.type != net::FrameType::kWire) {
            dropWorker(worker,
                       csprintf("protocol error: unexpected frame "
                                "type %u",
                                static_cast<unsigned>(frame.type)));
            return false;
        }
        wire::Record record;
        try {
            record = wire::decodeLine(frame.payload);
        } catch (const serde::SerdeError &error) {
            // A garbled frame (or a skewed wire version — the record
            // envelope carries it) reads as a protocol error; the
            // member is dropped and any in-flight point re-dealt.
            dropWorker(worker, csprintf("protocol error: %s",
                                        error.what()));
            return false;
        }
        if (worker->state == NetWorker::State::kHandshake) {
            if (record.type != wire::Record::Type::kHello) {
                dropWorker(worker,
                           "protocol error: expected a hello record");
                return false;
            }
            const auto &hello = record.hello;
            if (hello.netVersion != net::kProtocolVersion ||
                hello.bench != identity.bench ||
                hello.gridPoints != identity.gridPoints ||
                hello.gridHash != identity.gridHash) {
                dropWorker(
                    worker,
                    csprintf("handshake mismatch: worker offers "
                             "bench '%s', %llu point(s), grid "
                             "%016llx, net v%llu",
                             hello.bench.c_str(),
                             static_cast<unsigned long long>(
                                 hello.gridPoints),
                             static_cast<unsigned long long>(
                                 hello.gridHash),
                             static_cast<unsigned long long>(
                                 hello.netVersion)));
                return false;
            }
            worker->state = NetWorker::State::kIdle;
            ++joins;
            std::fprintf(stderr, "[net] worker #%llu joined\n",
                         static_cast<unsigned long long>(worker->id));
            return true;
        }
        if (record.type != wire::Record::Type::kResult ||
            worker->state != NetWorker::State::kBusy ||
            record.result.index != worker->attempt.task.gridIndex) {
            dropWorker(worker, "protocol error: unexpected record");
            return false;
        }
        deliver(worker->attempt.task, std::move(record.result.result));
        worker->state = NetWorker::State::kIdle;
        --remaining;
        return true;
    };

    while (remaining > 0) {
        const auto now = Clock::now();

        // Accept joiners — late ones included; membership is elastic.
        while (true) {
            const int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    break;
                fatal("accept: %s", std::strerror(errno));
            }
            setNonblocking(fd);
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            auto worker = std::make_unique<NetWorker>(next_id++, fd);
            worker->lastHeard = now;
            worker->lastPing = now;
            worker->channel.send(net::FrameType::kWire, hello_line);
            workers.push_back(std::move(worker));
        }

        // Deal ready work to idle members (dynamic work-stealing: the
        // next free worker takes the next ready point, so a fleet of
        // any changing size drains the same queue).
        for (auto &worker : workers) {
            if (worker->state != NetWorker::State::kIdle ||
                queue.empty())
                continue;
            const auto ready = std::find_if(
                queue.begin(), queue.end(),
                [&](const Attempt &a) { return a.readyAt <= now; });
            if (ready == queue.end())
                break;
            worker->attempt = *ready;
            queue.erase(ready);
            worker->state = NetWorker::State::kBusy;
            worker->channel.send(
                net::FrameType::kWire,
                wire::encodePointLine(
                    {worker->attempt.task.gridIndex,
                     *worker->attempt.task.point}));
            if (options_.pointTimeoutSec > 0)
                worker->deadline =
                    now + secondsDuration(options_.pointTimeoutSec);
        }

        // Heartbeats out; unresponsive idle peers and wedged busy
        // peers dropped.
        for (std::size_t i = 0; i < workers.size();) {
            NetWorker *worker = workers[i].get();
            if (now - worker->lastPing >= heartbeat) {
                worker->lastPing = now;
                worker->channel.send(net::FrameType::kPing, "");
            }
            if (worker->state != NetWorker::State::kBusy &&
                now - worker->lastHeard > idle_timeout) {
                dropWorker(worker, "heartbeat timeout");
                continue;  // dropWorker erased workers[i]
            }
            if (worker->state == NetWorker::State::kBusy &&
                options_.pointTimeoutSec > 0 &&
                now >= worker->deadline) {
                ++watchdog_kills;
                dropWorker(worker,
                           csprintf("point exceeded "
                                    "--point-timeout=%g s",
                                    options_.pointTimeoutSec));
                continue;
            }
            ++i;
        }

        if (workers.empty()) {
            if (now - empty_since > join_grace) {
                while (!queue.empty()) {
                    const Attempt attempt = queue.front();
                    queue.pop_front();
                    ++quarantined;
                    std::fprintf(
                        stderr,
                        "[sweep] quarantining point %zu after %u "
                        "attempt(s): no connected workers\n",
                        attempt.task.gridIndex, attempt.tries);
                    deliver(attempt.task,
                            ExperimentResult::quarantined(
                                attempt.tries,
                                "no connected workers"));
                    --remaining;
                }
                continue;
            }
        } else {
            empty_since = now;
        }

        // Wake at the nearest backoff expiry or watchdog deadline,
        // capped so the time-based sweeps above run at a bounded
        // cadence regardless.
        int timeout_ms = 200;
        auto wakeAt = [&](Clock::time_point when) {
            const auto delta =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    when - now)
                    .count();
            timeout_ms = std::min(
                timeout_ms,
                static_cast<int>(std::max<long long>(0, delta)));
        };
        for (const auto &attempt : queue)
            wakeAt(attempt.readyAt);
        for (const auto &worker : workers)
            if (worker->state == NetWorker::State::kBusy &&
                options_.pointTimeoutSec > 0)
                wakeAt(worker->deadline);

        std::vector<pollfd> fds;
        std::vector<std::uint64_t> owner;
        fds.push_back({listen_fd, POLLIN, 0});
        owner.push_back(0);
        for (const auto &worker : workers) {
            short events = POLLIN;
            if (worker->channel.wantsWrite())
                events |= POLLOUT;
            fds.push_back({worker->channel.fd(), events, 0});
            owner.push_back(worker->id);
        }
        const int rc =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   timeout_ms);
        if (rc < 0 && errno != EINTR)
            fatal("poll: %s", std::strerror(errno));
        if (rc <= 0)
            continue;

        auto findWorker = [&](std::uint64_t id) -> NetWorker * {
            for (auto &worker : workers)
                if (worker->id == id)
                    return worker.get();
            return nullptr;
        };

        for (std::size_t i = 1; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            // The member may have been dropped while handling an
            // earlier fd this round.
            NetWorker *worker = findWorker(owner[i]);
            if (worker == nullptr)
                continue;
            std::vector<net::Frame> frames;
            std::string error;
            const auto io = worker->channel.readFrames(frames, error);
            // Complete frames that arrived ahead of a close still
            // count (a result racing its sender's crash lands).
            bool alive = true;
            for (const auto &frame : frames)
                if (!(alive = handleFrame(worker, frame)))
                    break;
            if (!alive)
                continue;
            if (io == net::FrameChannel::Io::kClosed) {
                dropWorker(worker, error);
                continue;
            }
            if (worker->channel.flushWrites(error) ==
                net::FrameChannel::Io::kClosed)
                dropWorker(worker, error);
        }
    }

    // Sweep complete: tell every member to exit cleanly, with a short
    // best-effort flush (a stuck peer must not wedge the
    // coordinator's own exit).
    for (auto &worker : workers)
        worker->channel.send(net::FrameType::kShutdown, "");
    const auto flush_deadline = Clock::now() + std::chrono::seconds(2);
    while (Clock::now() < flush_deadline) {
        bool pending = false;
        for (auto &worker : workers) {
            std::string error;
            if (worker->channel.isOpen() &&
                worker->channel.flushWrites(error) ==
                    net::FrameChannel::Io::kOk &&
                worker->channel.wantsWrite())
                pending = true;
        }
        if (!pending)
            break;
        ::poll(nullptr, 0, 10);
    }
    workers.clear();
    ::close(listen_fd);

    stats.set("sweep.retries", retries);
    stats.set("sweep.workerCrashes", losses);
    stats.set("sweep.watchdogKills", watchdog_kills);
    stats.set("sweep.quarantined", quarantined);
    stats.set("sweep.netJoins", joins);
    stats.set("sweep.netLeaves", leaves);
}

// --- Journal ---

Journal::~Journal()
{
    close();
}

void
Journal::open(const std::string &path, bool resume,
              const std::string &bench, std::uint64_t shard_index,
              std::uint64_t shard_count,
              const std::vector<GridPoint> &grid)
{
    ACR_ASSERT(fd_ < 0, "journal already open");
    path_ = path;
    const std::uint64_t expect_hash = wire::gridHash(grid);

    std::vector<std::string> lines;
    // Byte offset one past each parsed line's newline; used to chop
    // dropped tail bytes off the file so a resumed append never glues
    // onto a torn partial record.
    std::vector<std::size_t> line_ends;
    std::size_t durable_bytes = 0;
    if (resume) {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::string content(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            std::size_t start = 0;
            while (start < content.size()) {
                const std::size_t newline =
                    content.find('\n', start);
                if (newline == std::string::npos) {
                    // Torn tail: the coordinator died mid-append;
                    // that point simply reruns.
                    warn("journal '%s': dropping torn final line",
                         path.c_str());
                    break;
                }
                lines.push_back(
                    content.substr(start, newline - start));
                start = newline + 1;
                line_ends.push_back(start);
            }
            durable_bytes = line_ends.empty() ? 0 : line_ends.back();
        }
    }

    if (!lines.empty()) {
        // Validate the header against the grid this invocation is
        // about to sweep.
        wire::Record header;
        try {
            header = wire::decodeLine(lines.front());
        } catch (const serde::SerdeError &error) {
            fatal("journal '%s': bad header: %s", path.c_str(),
                  error.what());
        }
        if (header.type != wire::Record::Type::kManifest)
            fatal("journal '%s' does not start with a manifest record",
                  path.c_str());
        const auto &manifest = header.manifest;
        if (manifest.bench != bench)
            fatal("journal '%s' belongs to bench '%s', not '%s'",
                  path.c_str(), manifest.bench.c_str(),
                  bench.c_str());
        if (manifest.shard != shard_index ||
            manifest.shardCount != shard_count)
            fatal("journal '%s' was written for shard %llu/%llu, not "
                  "%llu/%llu",
                  path.c_str(),
                  static_cast<unsigned long long>(manifest.shard),
                  static_cast<unsigned long long>(
                      manifest.shardCount),
                  static_cast<unsigned long long>(shard_index),
                  static_cast<unsigned long long>(shard_count));
        if (manifest.gridPoints != grid.size() ||
            manifest.gridHash != expect_hash)
            fatal("journal '%s' was produced from a different grid "
                  "(points %llu vs %zu; check --workloads and bench "
                  "flags)",
                  path.c_str(),
                  static_cast<unsigned long long>(
                      manifest.gridPoints),
                  grid.size());

        for (std::size_t i = 1; i < lines.size(); ++i) {
            wire::Record record;
            try {
                record = wire::decodeLine(lines[i]);
            } catch (const serde::SerdeError &error) {
                if (i + 1 == lines.size()) {
                    // fsync-per-line makes this nearly impossible,
                    // but a torn-but-newline-terminated final record
                    // is still recoverable: drop it.
                    warn("journal '%s': dropping unreadable final "
                         "record: %s",
                         path.c_str(), error.what());
                    durable_bytes = line_ends[i - 1];
                    break;
                }
                fatal("journal '%s' record %zu is corrupt: %s",
                      path.c_str(), i + 1, error.what());
            }
            if (record.type == wire::Record::Type::kResult) {
                if (record.result.index >= grid.size())
                    fatal("journal '%s': result index %llu out of "
                          "range",
                          path.c_str(),
                          static_cast<unsigned long long>(
                              record.result.index));
                entries_[record.result.index] =
                    std::move(record.result.result);
            } else if (record.type == wire::Record::Type::kFailed) {
                // Quarantined points are not served from the journal:
                // a resume is the natural moment to retry them.
            } else {
                fatal("journal '%s' record %zu has unexpected type",
                      path.c_str(), i + 1);
            }
        }

        fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
        if (fd_ < 0)
            fatal("cannot reopen journal '%s': %s", path.c_str(),
                  std::strerror(errno));
        // Chop any dropped tail bytes so the next append starts on a
        // clean line boundary instead of extending the torn remnant.
        while (::ftruncate(fd_, static_cast<off_t>(durable_bytes)) <
               0) {
            if (errno != EINTR)
                fatal("truncate journal '%s': %s", path.c_str(),
                      std::strerror(errno));
        }
        return;
    }

    // Fresh journal (no --resume, missing file, or nothing durable in
    // it): truncate and write the identifying header.
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0)
        fatal("cannot create journal '%s': %s", path.c_str(),
              std::strerror(errno));
    wire::ManifestRecord manifest;
    manifest.bench = bench;
    manifest.shard = shard_index;
    manifest.shardCount = shard_count;
    manifest.gridPoints = grid.size();
    manifest.gridHash = expect_hash;
    writeAllFd(fd_, wire::encodeManifestLine(manifest) + "\n",
               "journal");
    while (::fsync(fd_) < 0) {
        if (errno != EINTR)
            fatal("fsync journal '%s': %s", path.c_str(),
                  std::strerror(errno));
    }
}

void
Journal::failNextWriteForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    failNextWrite_ = true;
}

void
Journal::record(std::size_t gridIndex, const ExperimentResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ACR_ASSERT(isOpen(), "journal not open");
    if (fd_ < 0)
        return;  // degraded: the sweep outlives its journal
    const std::string line =
        (result.failed
             ? wire::encodeFailedLine({gridIndex, result.attempts,
                                       result.failReason})
             : wire::encodeResultLine({gridIndex, result})) +
        "\n";

    // An append that hits ENOSPC/EIO (or a failed fsync) must degrade
    // — one warning, journaling off, the sweep keeps running — never
    // take down a multi-hour run over its completion log.
    int error = 0;
    if (failNextWrite_) {
        // Injected failure: behave exactly as if write(2) returned
        // ENOSPC, so tests drive the same degrade the real disk would.
        failNextWrite_ = false;
        error = ENOSPC;
    } else {
        std::size_t off = 0;
        while (off < line.size()) {
            const ssize_t n = ::write(fd_, line.data() + off,
                                      line.size() - off);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                error = errno;
                break;
            }
            off += static_cast<std::size_t>(n);
        }
        while (error == 0 && ::fsync(fd_) < 0) {
            if (errno != EINTR) {
                error = errno;
                break;
            }
        }
    }
    if (error != 0) {
        warn("journal '%s': append failed (%s); journaling disabled — "
             "the sweep continues but cannot resume past this point",
             path_.c_str(), std::strerror(error));
        ::close(fd_);
        fd_ = -1;
        degraded_ = true;
        return;
    }
    ++appended_;
}

void
Journal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    degraded_ = false;
}

} // namespace acr::harness
