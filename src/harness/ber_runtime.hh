/**
 * @file
 * BerRuntime: executes one experiment — wires the multicore system, the
 * checkpoint substrate, the ACR engine, and the error injector together,
 * drives the progress-based checkpoint schedule, reacts to detections
 * with recovery, and verifies that the final memory state matches the
 * error-free reference (recovery transparency).
 */

#ifndef ACR_HARNESS_BER_RUNTIME_HH
#define ACR_HARNESS_BER_RUNTIME_HH

#include "acr/slice_pass.hh"
#include "harness/experiment.hh"
#include "harness/prefix_share.hh"
#include "sim/machine_config.hh"

namespace acr::harness
{

/** One-shot experiment executor. */
class BerRuntime
{
  public:
    /**
     * Run @p config against @p program.
     *
     * @param program  the kernel; must carry slice hints (from
     *                 SlicePass) when config.mode == kReCkpt
     * @param profile  NoCkpt profile of the same program (progress and
     *                 cycle totals drive the checkpoint/error schedules;
     *                 the final image is the verification reference)
     * @param prefix   optional prefix-sharing handle (DESIGN.md §13):
     *                 resume from a snapshot and/or capture one. The
     *                 caller (Runner) owns all eligibility guards.
     */
    static ExperimentResult run(const isa::Program &program,
                                const sim::MachineConfig &machine,
                                const ExperimentConfig &config,
                                const amnesic::SlicePassResult &profile,
                                PrefixHandle *prefix = nullptr);
};

} // namespace acr::harness

#endif // ACR_HARNESS_BER_RUNTIME_HH
