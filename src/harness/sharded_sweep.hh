/**
 * @file
 * ShardedSweep: the multi-process successor of harness::Sweep. A
 * coordinator enumerates an experiment grid (std::vector<GridPoint>),
 * partitions it deterministically — `--shard=i/N` carves out every
 * N-th point for static machine-level sharding, and a local mode
 * fork/execs `--worker` child processes of the same bench binary —
 * and merges results back **in submission order**, so the rendered
 * output is bit-identical to a `--jobs=1` single-process run no
 * matter how the work was spread.
 *
 * Workers speak the wire format (harness/wire.hh): the coordinator
 * streams PointRecords to a worker's stdin and reads ResultRecords
 * from its stdout as line-delimited JSON, one flushed line per
 * finished experiment, so results arrive (and the ordered sink fires)
 * as they land rather than at an end-of-sweep barrier.
 *
 * Simulated results never contain host timing (see Sweep); wall-clock
 * observations live in hostStats().
 */

#ifndef ACR_HARNESS_SHARDED_SWEEP_HH
#define ACR_HARNESS_SHARDED_SWEEP_HH

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/net.hh"
#include "harness/runner.hh"
#include "harness/supervisor.hh"
#include "harness/wire.hh"

namespace acr::harness
{

/**
 * Lazily constructed Runners, one per simulated-machine core count
 * (GridPoint::threads). Thread-safe; references stay valid for the
 * pool's lifetime (each Runner is heap-allocated and itself
 * shareable across threads).
 */
class RunnerPool
{
  public:
    explicit RunnerPool(unsigned scale = 1) : scale_(scale) {}

    Runner &at(unsigned threads);

  private:
    std::mutex mutex_;
    unsigned scale_;
    std::map<unsigned, std::unique_ptr<Runner>> runners_;
};

/** Multi-process/multi-thread sweep executor over one RunnerPool. */
class ShardedSweep
{
  public:
    /** A static partition: this invocation owns every point whose grid
     *  index i satisfies i % count == index. */
    struct Shard
    {
        unsigned index;
        unsigned count;

        // An explicit constructor (not member initializers) so the
        // whole-grid default Shard() can appear in the enclosing
        // class's default arguments.
        constexpr Shard(unsigned index_ = 0, unsigned count_ = 1)
            : index(index_), count(count_)
        {
        }
    };

    /**
     * Ordered streaming sink: invoked with (grid index, result) in
     * strictly ascending grid-index order, each as soon as every
     * earlier owned point has completed — no end-of-run barrier.
     */
    using OrderedSink =
        std::function<void(std::size_t, const ExperimentResult &)>;

    /**
     * Completion-order sink: fires once per point *as it finishes*
     * (no ordering guarantee), before the ordered sink sees it — the
     * journal's append hook. In-process multi-job sweeps invoke it
     * from worker threads; callers must make it thread-safe
     * (Journal::record is).
     */
    using CompletionSink =
        std::function<void(std::size_t, const ExperimentResult &)>;

    /**
     * Everything a fault-tolerant sweep threads through the executor
     * beyond the grid itself. Plain run()/runForked() overloads
     * taking an OrderedSink forward here with the defaults.
     */
    struct SweepControls
    {
        /** Ascending-grid-index streaming sink (may be empty). */
        OrderedSink sink;

        /** Completion-order journal hook (may be empty). */
        CompletionSink completed;

        /**
         * Already-completed results by grid index (a loaded
         * Journal's entries()); owned points found here are served
         * without re-simulation and never reach `completed`. Not
         * owned; may be null.
         */
        const std::map<std::size_t, ExperimentResult> *cache = nullptr;

        /** Retry/backoff/watchdog knobs for the forked executor
         *  (workers is overridden by runForked's argument). */
        Supervisor::Options supervise;
    };

    /**
     * @param pool shared Runner cache; not owned
     * @param jobs in-process worker threads (0: Sweep::defaultJobs())
     */
    explicit ShardedSweep(RunnerPool &pool, unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /** Grid indices owned by @p shard, ascending. */
    static std::vector<std::size_t> shardIndices(std::size_t total,
                                                 Shard shard);

    /** Parse "i/N" (0 <= i < N); fatal() on malformed input. */
    static Shard parseShard(const std::string &spec);

    /**
     * Execute this shard's slice of @p points on the in-process thread
     * pool. Returns the owned results in ascending grid-index order
     * (all of them when shard is the default whole-grid 0/1).
     */
    std::vector<ExperimentResult>
    run(const std::vector<GridPoint> &points, Shard shard = {},
        const OrderedSink &sink = {});

    /** As above, with the full fault-tolerance controls (journal
     *  cache + completion hook; supervision options are unused on the
     *  in-process path, which cannot crash partially). */
    std::vector<ExperimentResult>
    run(const std::vector<GridPoint> &points, Shard shard,
        const SweepControls &controls);

    /**
     * Execute this shard's slice on up to @p workers forked child
     * processes running @p workerCmd (argv of a `--worker` invocation
     * of the same bench binary; resolve via selfExecutable()),
     * supervised by harness::Supervisor: points are assigned
     * one-at-a-time to idle workers, a crashed or wedged worker is
     * replaced and its in-flight point retried with backoff, and a
     * point that exhausts its retries is delivered as an
     * ExperimentResult::quarantined placeholder.
     */
    std::vector<ExperimentResult>
    runForked(const std::vector<GridPoint> &points, unsigned workers,
              const std::vector<std::string> &workerCmd,
              Shard shard = {}, const OrderedSink &sink = {});

    /** As above, with the full fault-tolerance controls. */
    std::vector<ExperimentResult>
    runForked(const std::vector<GridPoint> &points, unsigned workers,
              const std::vector<std::string> &workerCmd, Shard shard,
              const SweepControls &controls);

    /**
     * Distributed mode (`--listen`, DESIGN.md §15): accept TCP
     * `--connect` workers on @p listen and deal the whole grid to
     * whatever fleet shows up, via Supervisor::runListen — elastic
     * membership, the shared retry/backoff/quarantine ladder, and the
     * same ordered merge, so rendered output stays byte-identical to
     * a local `--jobs=1` run no matter how the fleet churned. Cached
     * points (journal / result cache) are served coordinator-side and
     * never dealt; a fully served grid returns without ever
     * listening.
     */
    std::vector<ExperimentResult>
    runDistributed(const std::vector<GridPoint> &points,
                   const net::Endpoint &listen, unsigned heartbeatSec,
                   const std::string &bench,
                   const SweepControls &controls);

    /**
     * The `--connect` side of a distributed sweep: dial the
     * coordinator, handshake (bench + grid identity + protocol
     * version, both directions), run dealt points, answer heartbeat
     * pings, and reconnect with the same identity after a dropped
     * connection. Exits 0 on the coordinator's shutdown frame; when
     * the reconnect window — ten heartbeats of continuous
     * disconnection — closes, exits 0 if the sweep was ever joined
     * (the coordinator finished and went away) and 1 if the
     * coordinator was never reachable. A handshake mismatch
     * (version/bench/grid skew) exits 1 immediately: reconnecting
     * cannot fix it.
     *
     * The workerLoop fault hooks apply here too, and ACR_NET_FAULT
     * (net::FaultPlan) arms one transport fault on outbound frames,
     * with ordinals counted across reconnects.
     */
    static int netWorkerLoop(RunnerPool &pool, const std::string &bench,
                             const std::vector<GridPoint> &grid,
                             const net::Endpoint &coordinator,
                             unsigned heartbeatSec);

    /**
     * The `--worker` side: read PointRecord lines from @p in until
     * EOF, execute each against @p pool, and write one flushed
     * ResultRecord line to @p out per point. Returns a process exit
     * code (nonzero after a malformed record).
     *
     * Fault-injection hooks for the supervisor tests (inert unless
     * the environment variables are set): ACR_TEST_CRASH_AT=k
     * _exit(42)s before answering the k-th point this process reads;
     * ACR_TEST_WEDGE_AT=k blocks forever there instead (watchdog
     * bait). Both are suppressed when ACR_TEST_RESPAWNED is set (the
     * supervisor marks replacement workers), so a retry succeeds.
     * ACR_TEST_CRASH_INDEX=g is sticky: every worker _exit(43)s on
     * grid index g, forcing quarantine.
     */
    static int workerLoop(RunnerPool &pool, std::istream &in,
                          std::ostream &out);

    /** Path of the running binary (/proc/self/exe), for workerCmd;
     *  falls back to @p argv0. */
    static std::string selfExecutable(const std::string &argv0);

    /** Host-side timing of the most recent run()/runForked():
     *  sweep.jobs or sweep.forkedWorkers, sweep.points,
     *  sweep.wallMillis, and for in-process runs sweep.workMillis
     *  plus sweep.point.<index>.millis. With a journal cache,
     *  sweep.journalHits; forked runs add the Supervisor counters
     *  (sweep.respawns, sweep.retries, sweep.workerCrashes,
     *  sweep.watchdogKills, sweep.quarantined); distributed runs add
     *  sweep.netJoins and sweep.netLeaves. */
    const StatSet &hostStats() const { return hostStats_; }

    /** One-line wall/work summary of the last run. */
    void reportTiming(std::ostream &os) const;

  private:
    RunnerPool &pool_;
    unsigned jobs_;
    StatSet hostStats_;
};

} // namespace acr::harness

#endif // ACR_HARNESS_SHARDED_SWEEP_HH
