#include "harness/bench_main.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/options.hh"
#include "harness/exit_code.hh"
#include "harness/result_cache.hh"
#include "harness/supervisor.hh"
#include "harness/sweep.hh"
#include "workloads/workload.hh"

namespace acr::harness
{

namespace
{

std::vector<std::string>
splitCommaList(const std::string &text)
{
    std::vector<std::string> parts;
    std::stringstream stream(text);
    std::string part;
    while (std::getline(stream, part, ','))
        if (!part.empty())
            parts.push_back(part);
    return parts;
}

std::vector<std::string>
resolveWorkloads(const std::string &flag, const BenchSpec &spec)
{
    std::vector<std::string> selected = splitCommaList(flag);
    if (selected.empty())
        selected = spec.defaultWorkloads;
    if (selected.empty())
        selected = workloads::allWorkloadNames();
    const auto &known = workloads::allWorkloadNames();
    for (const auto &name : selected)
        if (std::find(known.begin(), known.end(), name) == known.end())
            fatal("unknown workload '%s' (have: %s)", name.c_str(),
                  [&] {
                      std::string all;
                      for (const auto &k : known)
                          all += (all.empty() ? "" : ", ") + k;
                      return all;
                  }()
                      .c_str());
    return selected;
}

BenchOptions
parseOptions(int argc, const char *const *argv, const BenchSpec &spec)
{
    OptionParser parser(spec.name);
    parser.addInt("jobs", 0,
                  "sweep worker threads (0: ACR_JOBS, then hardware "
                  "concurrency)");
    parser.addInt("forks", 0,
                  "local worker processes (fork/exec of this binary "
                  "with --worker; 0: in-process threads)");
    parser.addString("shard", "",
                     "run only shard i of N ('i/N') and emit wire "
                     "records instead of rendering");
    parser.addString("merge", "",
                     "comma-separated shard record files to merge and "
                     "render");
    parser.addFlag("worker",
                   "wire-protocol worker: read point records on stdin, "
                   "write result records to stdout");
    parser.addString("listen", "",
                     "distributed coordinator: accept TCP --connect "
                     "workers on HOST:PORT (port 0: kernel-picked, "
                     "announced on stderr) and deal grid points to "
                     "them");
    parser.addString("connect", "",
                     "distributed worker: dial a --listen coordinator "
                     "at HOST:PORT and run dealt points (default: "
                     "$ACR_CONNECT)");
    parser.envDefault("connect", "ACR_CONNECT");
    parser.addUint("heartbeat", 5,
                   "distributed keepalive cadence in seconds (idle "
                   "timeout 4x, join grace 8x, reconnect window 10x)");
    parser.addString("format", "table",
                     "output format: table, csv, or json");
    parser.addString("workloads", "",
                     "comma-separated workload subset (default: all)");
    parser.addString("backend", "",
                     "checkpoint store backend override for every "
                     "checkpointing grid point: log, replicated, or "
                     "nvm (default: run the bench's grid exactly as "
                     "enumerated; env $ACR_BACKEND)");
    parser.envDefault("backend", "ACR_BACKEND");
    parser.addInt("retries", 2,
                  "retry a failed point this many times on fresh "
                  "workers before quarantining it (forked mode)");
    parser.addDouble("point-timeout", 0.0,
                     "per-point watchdog in seconds: SIGKILL and retry "
                     "a worker wedged longer than this (0: off)");
    parser.addString("journal", "",
                     "append each completed point to this file as "
                     "fsync'd wire records (progress log + result "
                     "cache)");
    parser.addFlag("resume",
                   "serve points already completed in --journal "
                   "instead of re-simulating them");
    parser.addString("cache", "",
                     "content-addressed cross-bench result cache "
                     "file: serve identical (workload, config, "
                     "threads) points from it instead of simulating, "
                     "and append fresh results (default: $ACR_CACHE)");
    if (spec.options)
        spec.options(parser);
    parser.parse(argc, argv);
    if (spec.readOptions)
        spec.readOptions(parser);

    BenchOptions options;
    const long long jobs = parser.getInt("jobs");
    if (jobs < 0)
        fatal("--jobs must be >= 0, got %lld", jobs);
    options.jobs = static_cast<unsigned>(jobs);
    const long long forks = parser.getInt("forks");
    if (forks < 0)
        fatal("--forks must be >= 0, got %lld", forks);
    options.forks = static_cast<unsigned>(forks);
    const std::string shard = parser.getString("shard");
    if (!shard.empty()) {
        options.shardMode = true;
        options.shard = ShardedSweep::parseShard(shard);
    }
    options.mergeFiles = splitCommaList(parser.getString("merge"));
    options.workerMode = parser.getFlag("worker");
    const std::string listen = parser.getString("listen");
    if (!listen.empty()) {
        options.listenMode = true;
        // Port 0 asks the kernel for a free port (the bound endpoint
        // is announced on stderr); --connect needs a real one.
        options.listen = net::parseEndpoint(listen, "--listen", true);
    }
    const std::string connect = parser.getString("connect");
    if (!connect.empty()) {
        options.connectMode = true;
        options.connect =
            net::parseEndpoint(connect, "--connect", false);
    }
    const unsigned long long heartbeat = parser.getUint("heartbeat");
    if (heartbeat < 1 || heartbeat > 3600)
        fatal("--heartbeat must be in [1, 3600] seconds, got %llu",
              heartbeat);
    options.heartbeatSec = static_cast<unsigned>(heartbeat);
    options.format = parseTableFormat(parser.getString("format"));
    options.workloads =
        resolveWorkloads(parser.getString("workloads"), spec);
    const std::string backend = parser.getString("backend");
    if (!backend.empty()) {
        options.backendOverride = true;
        if (!ckpt::parseBackend(backend, options.backend))
            fatal("--backend must be log, replicated, or nvm, got "
                  "'%s'",
                  backend.c_str());
    }
    const long long retries = parser.getInt("retries");
    if (retries < 0)
        fatal("--retries must be >= 0, got %lld", retries);
    options.retries = static_cast<unsigned>(retries);
    options.pointTimeout = parser.getDouble("point-timeout");
    if (options.pointTimeout < 0)
        fatal("--point-timeout must be >= 0, got %g",
              options.pointTimeout);
    options.journal = parser.getString("journal");
    options.resume = parser.getFlag("resume");
    options.cachePath = parser.getString("cache");

    if (options.shardMode && !options.mergeFiles.empty())
        fatal("--shard and --merge are mutually exclusive");
    if (options.workerMode &&
        (options.shardMode || !options.mergeFiles.empty()))
        fatal("--worker does not combine with --shard/--merge");
    if (options.listenMode && options.connectMode)
        fatal("--listen and --connect are mutually exclusive (one "
              "process is either the coordinator or a worker)");
    if (options.listenMode &&
        (options.workerMode || options.shardMode ||
         !options.mergeFiles.empty() || options.forks > 0))
        fatal("--listen does not combine with "
              "--worker/--shard/--merge/--forks");
    if (options.connectMode &&
        (options.workerMode || options.shardMode ||
         !options.mergeFiles.empty() || options.forks > 0))
        fatal("--connect does not combine with "
              "--worker/--shard/--merge/--forks");
    if (options.connectMode &&
        (!options.journal.empty() || !options.cachePath.empty()))
        fatal("--journal/--cache are coordinator-side; they do not "
              "combine with --connect");
    if (options.resume && options.journal.empty())
        fatal("--resume needs --journal");
    if (!options.journal.empty() &&
        (options.workerMode || !options.mergeFiles.empty()))
        fatal("--journal only applies when this invocation sweeps "
              "(not --worker/--merge)");
    if (!options.cachePath.empty() &&
        (options.workerMode || !options.mergeFiles.empty()))
        fatal("--cache only applies when this invocation sweeps "
              "(not --worker/--merge)");
    // ACR_CACHE is only a default for sweeping invocations: forked
    // --worker children and TCP --connect workers inherit the
    // environment, but lookups are coordinator-side by design (cached
    // points are never dealt out).
    if (options.cachePath.empty() && !options.workerMode &&
        !options.connectMode && options.mergeFiles.empty())
        if (const char *env = std::getenv("ACR_CACHE"))
            options.cachePath = env;
    return options;
}

/**
 * Load shard record files, verify they are a complete, disjoint cover
 * of exactly this grid (same point count, same gridHash, every shard
 * of the declared partition present once), and return the results in
 * grid order.
 */
std::vector<ExperimentResult>
mergeShardFiles(const BenchSpec &spec,
                const std::vector<GridPoint> &grid,
                const std::vector<std::string> &files)
{
    const std::uint64_t expect_hash = wire::gridHash(grid);
    std::vector<ExperimentResult> results(grid.size());
    std::vector<bool> filled(grid.size(), false);
    std::set<std::uint64_t> shards_seen;
    std::uint64_t shard_count = 0;

    for (const auto &file : files) {
        std::ifstream in(file);
        if (!in)
            fatal("cannot open shard file '%s'", file.c_str());
        std::string line;
        bool have_manifest = false;
        std::uint64_t file_shard = 0;
        std::size_t line_number = 0;
        while (std::getline(in, line)) {
            ++line_number;
            if (line.empty())
                continue;
            wire::Record record;
            try {
                record = wire::decodeLine(line);
            } catch (const serde::SerdeError &error) {
                fatal("%s:%zu: %s", file.c_str(), line_number,
                      error.what());
            }
            if (record.type == wire::Record::Type::kManifest) {
                const auto &manifest = record.manifest;
                if (have_manifest)
                    fatal("%s: second manifest record", file.c_str());
                have_manifest = true;
                if (manifest.bench != spec.name)
                    fatal("%s: records belong to bench '%s', not "
                          "'%s'",
                          file.c_str(), manifest.bench.c_str(),
                          spec.name.c_str());
                if (manifest.gridPoints != grid.size() ||
                    manifest.gridHash != expect_hash)
                    fatal("%s: shard was produced from a different "
                          "grid (points %llu vs %zu; check that "
                          "--workloads and bench flags match)",
                          file.c_str(),
                          static_cast<unsigned long long>(
                              manifest.gridPoints),
                          grid.size());
                if (shard_count == 0)
                    shard_count = manifest.shardCount;
                else if (shard_count != manifest.shardCount)
                    fatal("%s: shard declares 1/%llu but earlier "
                          "files declared 1/%llu",
                          file.c_str(),
                          static_cast<unsigned long long>(
                              manifest.shardCount),
                          static_cast<unsigned long long>(
                              shard_count));
                if (!shards_seen.insert(manifest.shard).second)
                    fatal("%s: shard %llu appears twice",
                          file.c_str(),
                          static_cast<unsigned long long>(
                              manifest.shard));
                file_shard = manifest.shard;
                continue;
            }
            // A shard stream carries its quarantined points as
            // explicit `failed` records; merging turns them back into
            // quarantine placeholders so the rendered table shows
            // FAILED cells instead of the merge aborting.
            const bool quarantine =
                record.type == wire::Record::Type::kFailed;
            if (record.type != wire::Record::Type::kResult &&
                !quarantine)
                fatal("%s:%zu: unexpected record type", file.c_str(),
                      line_number);
            if (!have_manifest)
                fatal("%s: result record before the manifest",
                      file.c_str());
            const std::uint64_t index = quarantine
                                            ? record.failed.index
                                            : record.result.index;
            if (index >= grid.size())
                fatal("%s:%zu: result index %llu out of range",
                      file.c_str(), line_number,
                      static_cast<unsigned long long>(index));
            if (index % shard_count != file_shard)
                fatal("%s:%zu: result index %llu does not belong to "
                      "shard %llu/%llu",
                      file.c_str(), line_number,
                      static_cast<unsigned long long>(index),
                      static_cast<unsigned long long>(file_shard),
                      static_cast<unsigned long long>(shard_count));
            if (filled[index])
                fatal("%s:%zu: duplicate result for index %llu",
                      file.c_str(), line_number,
                      static_cast<unsigned long long>(index));
            if (quarantine)
                results[index] = ExperimentResult::quarantined(
                    static_cast<unsigned>(record.failed.attempts),
                    record.failed.reason);
            else
                results[index] = std::move(record.result.result);
            filled[index] = true;
        }
        if (!have_manifest)
            fatal("%s: no manifest record", file.c_str());
    }

    for (std::uint64_t shard = 0; shard < shard_count; ++shard)
        if (!shards_seen.count(shard))
            fatal("shard %llu/%llu is missing from --merge",
                  static_cast<unsigned long long>(shard),
                  static_cast<unsigned long long>(shard_count));
    for (std::size_t i = 0; i < filled.size(); ++i)
        if (!filled[i])
            fatal("no result for grid point %zu (workload '%s', "
                  "config %s)",
                  i, grid[i].workload.c_str(),
                  grid[i].config.label().c_str());
    return results;
}

/**
 * Report quarantined and unrecoverable points (results[slot] belongs
 * to grid index indices[slot]) to stderr and pick the process exit
 * code: kExitClean for a clean sweep, kExitQuarantine when any point
 * failed every attempt, kExitUnrecoverable when any point's storage
 * faults defeated the escalation ladder (precedence:
 * harness/exit_code.hh).
 */
int
quarantineExit(const std::vector<GridPoint> &grid,
               const std::vector<std::size_t> &indices,
               const std::vector<ExperimentResult> &results)
{
    std::size_t failures = 0;
    std::size_t losses = 0;
    for (std::size_t slot = 0; slot < results.size(); ++slot) {
        const std::size_t index = indices[slot];
        if (results[slot].unrecoverable) {
            ++losses;
            std::cerr << "[sweep] UNRECOVERABLE point " << index << " ("
                      << grid[index].workload << ", "
                      << grid[index].config.label()
                      << "): " << results[slot].unrecoverableDetail
                      << "\n";
        }
        if (!results[slot].failed)
            continue;
        ++failures;
        std::cerr << "[sweep] FAILED point " << index << " ("
                  << grid[index].workload << ", "
                  << grid[index].config.label() << ") after "
                  << results[slot].attempts
                  << " attempt(s): " << results[slot].failReason
                  << "\n";
    }
    int code = kExitClean;
    if (failures != 0) {
        std::cerr << "[sweep] " << failures << " of " << results.size()
                  << " point(s) quarantined; treat rendered output as "
                     "partial (NaN-derived columns show FAILED)\n";
        code = combineExitCodes(code, kExitQuarantine);
    }
    if (losses != 0) {
        std::cerr << "[sweep] " << losses << " of " << results.size()
                  << " point(s) unrecoverable: storage faults "
                     "defeated every escalation rung (DESIGN.md §16)\n";
        code = combineExitCodes(code, kExitUnrecoverable);
    }
    return code;
}

} // namespace

int
benchMain(int argc, const char *const *argv, const BenchSpec &spec)
{
    ACR_ASSERT(spec.grid && spec.render, "incomplete BenchSpec");
    const BenchOptions options = parseOptions(argc, argv, spec);

    RunnerPool pool;
    if (options.workerMode)
        return ShardedSweep::workerLoop(pool, std::cin, std::cout);

    BenchContext context(spec.name, options, pool, std::cout);
    std::vector<GridPoint> grid = spec.grid(context);
    ACR_ASSERT(!grid.empty(), "bench grid is empty");

    // --backend rewrites the grid before anything derives from it
    // (gridHash, journals, manifests, cache keys), so every mode —
    // jobs, forks, shard, merge — agrees on the same points and the
    // ResultCache distinguishes backends by content. NoCkpt points
    // keep the default: they store nothing, and validate() rejects a
    // non-log backend on them.
    if (options.backendOverride)
        for (GridPoint &point : grid)
            if (point.config.mode != BerMode::kNoCkpt)
                point.config.backend = options.backend;

    // The TCP worker enumerates the same grid (same binary, flags,
    // and environment) so its handshake hash proves it will simulate
    // exactly the points the coordinator deals.
    if (options.connectMode)
        return ShardedSweep::netWorkerLoop(pool, spec.name, grid,
                                           options.connect,
                                           options.heartbeatSec);

    if (!options.mergeFiles.empty()) {
        const auto results =
            mergeShardFiles(spec, grid, options.mergeFiles);
        spec.render(context, results);
        int code = quarantineExit(
            grid, ShardedSweep::shardIndices(grid.size(), {}),
            results);
        if (spec.exitCode)
            code = combineExitCodes(code,
                                    spec.exitCode(context, results));
        return code;
    }

    ShardedSweep sweep(pool, options.jobs);
    const std::vector<std::string> worker_cmd = {
        ShardedSweep::selfExecutable(argc > 0 ? argv[0] : spec.name),
        "--worker"};

    const ShardedSweep::Shard shard =
        options.shardMode ? options.shard : ShardedSweep::Shard{};
    const auto owned =
        ShardedSweep::shardIndices(grid.size(), shard);

    Journal journal;
    if (!options.journal.empty())
        journal.open(options.journal, options.resume, spec.name,
                     shard.index, shard.count, grid);

    ResultCache cache;
    if (!options.cachePath.empty())
        cache.open(options.cachePath);

    // Test hook: _exit abruptly after this many journal appends —
    // simulates a coordinator SIGKILLed mid-sweep for the --resume
    // tests. Inert unless the environment sets it.
    const char *exit_env = std::getenv("ACR_TEST_COORD_EXIT_AFTER");
    unsigned long long exit_after = 0;
    if (exit_env != nullptr && *exit_env != '\0' &&
        !parseStrictUint(exit_env, exit_after))
        fatal("ACR_TEST_COORD_EXIT_AFTER='%s' is not an unsigned "
              "integer",
              exit_env);

    ShardedSweep::SweepControls controls;
    controls.supervise.retries = options.retries;
    controls.supervise.pointTimeoutSec = options.pointTimeout;

    // Coordinator-side serving map, by grid index: the journal's
    // grid-keyed completions plus content-addressed cache hits. Both
    // feed SweepControls::cache, so a served point is never dealt to
    // a worker — in-process, forked, or sharded mode alike.
    std::map<std::size_t, ExperimentResult> served;
    if (journal.isOpen()) {
        served = journal.entries();
        std::size_t hits = 0;
        for (const auto index : owned)
            hits += journal.entries().count(index);
        std::cerr << "[sweep] journal: served " << hits << " of "
                  << owned.size() << " owned point(s) from '"
                  << options.journal << "'\n";
    }
    if (cache.isOpen())
        for (const auto index : owned)
            if (!served.count(index))
                if (const auto *hit = cache.find(grid[index]))
                    served.emplace(index, *hit);
    if (journal.isOpen() || cache.isOpen()) {
        controls.cache = &served;
        controls.completed = [&journal, &cache, &grid, exit_after](
                                 std::size_t index,
                                 const ExperimentResult &result) {
            if (journal.isOpen()) {
                journal.record(index, result);
                if (exit_after != 0 &&
                    journal.appended() >= exit_after)
                    ::_exit(7);
            }
            if (cache.isOpen())
                cache.insert(grid[index], result);
        };
    }

    if (options.shardMode) {
        // Emit this shard's slice as wire records: a manifest line,
        // then one result (or failed) line per owned point, streamed
        // in grid order as results land.
        wire::ManifestRecord manifest;
        manifest.bench = spec.name;
        manifest.shard = options.shard.index;
        manifest.shardCount = options.shard.count;
        manifest.gridPoints = grid.size();
        manifest.gridHash = wire::gridHash(grid);
        std::cout << wire::encodeManifestLine(manifest) << "\n"
                  << std::flush;
        controls.sink = [&](std::size_t index,
                            const ExperimentResult &result) {
            std::cout << (result.failed
                              ? wire::encodeFailedLine(
                                    {index, result.attempts,
                                     result.failReason})
                              : wire::encodeResultLine(
                                    {index, result}))
                      << "\n"
                      << std::flush;
        };
    }

    std::vector<ExperimentResult> results;
    if (options.listenMode)
        results = sweep.runDistributed(grid, options.listen,
                                       options.heartbeatSec,
                                       spec.name, controls);
    else if (options.forks > 0)
        results = sweep.runForked(grid, options.forks, worker_cmd,
                                  shard, controls);
    else
        results = sweep.run(grid, shard, controls);
    sweep.reportTiming(std::cerr);
    if (cache.isOpen())
        std::cerr << "[sweep] cache: " << cache.hits() << " hit(s), "
                  << cache.misses() << " miss(es), "
                  << cache.inserts() << " insert(s) in '"
                  << options.cachePath << "'\n";
    if (!options.shardMode)
        spec.render(context, results);
    int code = quarantineExit(grid, owned, results);
    if (!options.shardMode && spec.exitCode)
        code = combineExitCodes(code,
                                spec.exitCode(context, results));
    return code;
}

} // namespace acr::harness
