#include "harness/net.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.hh"
#include "common/options.hh"

namespace acr::harness::net
{

namespace
{

void
setNonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal("fcntl(O_NONBLOCK): %s", std::strerror(errno));
}

void
setNodelay(int fd)
{
    // Point/result lines are single small frames on a lockstep
    // request/reply path; Nagle would serialize the whole sweep on
    // delayed ACKs.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/** getaddrinfo for one IPv4 stream endpoint; fatal() via @p what on
 *  resolution failure. Caller frees with freeaddrinfo. */
addrinfo *
resolve(const Endpoint &endpoint, bool passive, const char *what)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
    addrinfo *info = nullptr;
    const std::string service = std::to_string(endpoint.port);
    const int rc = ::getaddrinfo(endpoint.host.c_str(),
                                 service.c_str(), &hints, &info);
    if (rc != 0)
        fatal("%s: cannot resolve '%s': %s", what,
              endpoint.describe().c_str(), ::gai_strerror(rc));
    return info;
}

} // namespace

std::string
Endpoint::describe() const
{
    return host + ":" + std::to_string(port);
}

std::string
encodeFrame(FrameType type, const std::string &payload)
{
    ACR_ASSERT(payload.size() <= kMaxFramePayload,
               "frame payload of %zu bytes exceeds the %u-byte bound",
               payload.size(), kMaxFramePayload);
    const std::uint32_t length =
        static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(kFrameHeaderBytes + payload.size());
    frame.push_back(static_cast<char>(length & 0xff));
    frame.push_back(static_cast<char>((length >> 8) & 0xff));
    frame.push_back(static_cast<char>((length >> 16) & 0xff));
    frame.push_back(static_cast<char>((length >> 24) & 0xff));
    frame.push_back(static_cast<char>(type));
    frame += payload;
    return frame;
}

Endpoint
parseEndpoint(const std::string &spec, const char *flag,
              bool allow_port_zero)
{
    Endpoint endpoint;
    if (!parseHostPort(spec, endpoint.host, endpoint.port,
                       allow_port_zero))
        fatal("bad %s '%s' (want HOST:PORT with a port in [%d, 65535])",
              flag, spec.c_str(), allow_port_zero ? 0 : 1);
    return endpoint;
}

int
listenOn(const Endpoint &endpoint, Endpoint &bound)
{
    addrinfo *info = resolve(endpoint, true, "--listen");
    const int fd = ::socket(info->ai_family, info->ai_socktype, 0);
    if (fd < 0)
        fatal("socket: %s", std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, info->ai_addr, info->ai_addrlen) != 0)
        fatal("bind %s: %s", endpoint.describe().c_str(),
              std::strerror(errno));
    ::freeaddrinfo(info);
    if (::listen(fd, 64) != 0)
        fatal("listen %s: %s", endpoint.describe().c_str(),
              std::strerror(errno));

    sockaddr_in actual{};
    socklen_t length = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&actual),
                      &length) != 0)
        fatal("getsockname: %s", std::strerror(errno));
    char text[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &actual.sin_addr, text, sizeof(text));
    bound.host = text;
    bound.port = ntohs(actual.sin_port);

    setNonblocking(fd);
    return fd;
}

int
connectOnce(const Endpoint &endpoint, std::string &error)
{
    addrinfo *info = resolve(endpoint, false, "--connect");
    const int fd = ::socket(info->ai_family, info->ai_socktype, 0);
    if (fd < 0)
        fatal("socket: %s", std::strerror(errno));
    int rc;
    do {
        rc = ::connect(fd, info->ai_addr, info->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    ::freeaddrinfo(info);
    if (rc != 0) {
        error = std::strerror(errno);
        ::close(fd);
        return -1;
    }
    setNonblocking(fd);
    setNodelay(fd);
    return fd;
}

// --- FaultPlan ---

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    const auto fail = [&spec]() -> FaultPlan {
        fatal("ACR_NET_FAULT='%s' is not a known fault (want "
              "drop-after=N, torn=N, stall=N:SECS, or garble=N)",
              spec.c_str());
    };

    const auto equals = spec.find('=');
    if (equals == std::string::npos)
        return fail();
    const std::string kind = spec.substr(0, equals);
    const std::string arg = spec.substr(equals + 1);

    FaultPlan plan;
    std::string ordinal = arg;
    if (kind == "drop-after") {
        plan.kind = Kind::kDropAfter;
    } else if (kind == "torn") {
        plan.kind = Kind::kTorn;
    } else if (kind == "garble") {
        plan.kind = Kind::kGarble;
    } else if (kind == "stall") {
        const auto colon = arg.find(':');
        if (colon == std::string::npos)
            return fail();
        plan.kind = Kind::kStall;
        ordinal = arg.substr(0, colon);
        if (!parseStrictDouble(arg.substr(colon + 1), plan.stallSec) ||
            plan.stallSec < 0)
            return fail();
    } else {
        return fail();
    }
    unsigned long long frame = 0;
    if (!parseStrictUint(ordinal, frame) || frame == 0)
        return fail();
    plan.frame = frame;
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    const char *spec = std::getenv("ACR_NET_FAULT");
    if (spec == nullptr || *spec == '\0')
        return FaultPlan{};
    return parse(spec);
}

// --- FrameChannel ---

FrameChannel::FrameChannel(int fd, FaultPlan *fault)
    : fd_(fd), fault_(fault)
{
    ACR_ASSERT(fd >= 0, "FrameChannel needs a connected fd");
}

FrameChannel::~FrameChannel()
{
    close();
}

void
FrameChannel::send(FrameType type, const std::string &payload)
{
    if (fd_ < 0 || closeAfterFlush_)
        return;  // the injected close already won

    std::string bytes;
    if (fault_ != nullptr && fault_->active()) {
        const std::uint64_t ordinal = ++fault_->sent;
        switch (fault_->kind) {
        case FaultPlan::Kind::kDropAfter:
            bytes = encodeFrame(type, payload);
            if (ordinal == fault_->frame) {
                fault_->fired = true;
                closeAfterFlush_ = true;
            }
            break;
        case FaultPlan::Kind::kTorn:
            bytes = encodeFrame(type, payload);
            if (ordinal == fault_->frame) {
                fault_->fired = true;
                bytes.resize(bytes.size() / 2);
                closeAfterFlush_ = true;
            }
            break;
        case FaultPlan::Kind::kStall:
            if (ordinal == fault_->frame) {
                fault_->fired = true;
                // A genuine stall: the whole process sleeps, reads
                // included, exactly like a wedged remote host.
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(fault_->stallSec));
            }
            bytes = encodeFrame(type, payload);
            break;
        case FaultPlan::Kind::kGarble:
            if (ordinal == fault_->frame) {
                fault_->fired = true;
                std::string garbled = payload;
                for (char &c : garbled)
                    c = static_cast<char>(c ^ 0x5a);
                bytes = encodeFrame(type, garbled);
            } else {
                bytes = encodeFrame(type, payload);
            }
            break;
        case FaultPlan::Kind::kNone:
            bytes = encodeFrame(type, payload);
            break;
        }
    } else {
        bytes = encodeFrame(type, payload);
    }
    wbuf_ += bytes;
}

FrameChannel::Io
FrameChannel::flushWrites(std::string &error)
{
    while (fd_ >= 0 && !wbuf_.empty()) {
        const ssize_t n =
            ::send(fd_, wbuf_.data(), wbuf_.size(), MSG_NOSIGNAL);
        if (n > 0) {
            wbuf_.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return Io::kOk;
        error = csprintf("write failed: %s", std::strerror(errno));
        close();
        return Io::kClosed;
    }
    if (fd_ >= 0 && wbuf_.empty() && closeAfterFlush_) {
        // Injected drop/tear: vanish without so much as a FIN delay.
        close();
        error = "connection closed by fault injection";
        return Io::kClosed;
    }
    return Io::kOk;
}

FrameChannel::Io
FrameChannel::readFrames(std::vector<Frame> &frames, std::string &error)
{
    // Complete frames that arrived together with the close are still
    // parsed and delivered below — a shutdown (or result) racing its
    // sender's exit must not be discarded.
    Io io = Io::kOk;
    while (fd_ >= 0) {
        char chunk[65536];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            error = csprintf("read failed: %s", std::strerror(errno));
            io = Io::kClosed;
            break;
        }
        if (n == 0) {
            error = "connection closed by peer";
            io = Io::kClosed;
            break;
        }
        rbuf_.append(chunk, static_cast<std::size_t>(n));
    }

    while (rbuf_.size() >= kFrameHeaderBytes) {
        const auto *bytes =
            reinterpret_cast<const unsigned char *>(rbuf_.data());
        const std::uint32_t length =
            static_cast<std::uint32_t>(bytes[0]) |
            (static_cast<std::uint32_t>(bytes[1]) << 8) |
            (static_cast<std::uint32_t>(bytes[2]) << 16) |
            (static_cast<std::uint32_t>(bytes[3]) << 24);
        const std::uint8_t type = bytes[4];
        if (length > kMaxFramePayload) {
            error = csprintf("frame header claims %u bytes (garbled "
                             "stream?)",
                             length);
            close();
            return Io::kClosed;
        }
        if (type < static_cast<std::uint8_t>(FrameType::kWire) ||
            type > static_cast<std::uint8_t>(FrameType::kShutdown)) {
            error = csprintf("unknown frame type %u", type);
            close();
            return Io::kClosed;
        }
        if (rbuf_.size() < kFrameHeaderBytes + length)
            break;  // partial frame: wait for more bytes
        Frame frame;
        frame.type = static_cast<FrameType>(type);
        frame.payload = rbuf_.substr(kFrameHeaderBytes, length);
        rbuf_.erase(0, kFrameHeaderBytes + length);
        frames.push_back(std::move(frame));
    }
    if (io == Io::kClosed)
        close();
    return io;
}

void
FrameChannel::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    wbuf_.clear();
}

} // namespace acr::harness::net
