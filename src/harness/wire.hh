/**
 * @file
 * The experiment wire format (DESIGN.md §8): versioned, schema-checked
 * JSON encodings of ExperimentConfig, ExperimentResult (StatSet and
 * history included), and the shard records the multi-process sweep
 * exchanges — the "checkpoint state must survive a process boundary"
 * discipline applied to the harness's own data.
 *
 * Records travel as line-delimited JSON ("ndjson"): one record per
 * line, each carrying the wire version (`v`) and a `type` tag so a
 * stream is self-describing. Decoding rejects unknown keys and
 * mismatched versions outright (forward-compatibility rule: any field
 * change bumps kVersion).
 */

#ifndef ACR_HARNESS_WIRE_HH
#define ACR_HARNESS_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serde.hh"
#include "harness/experiment.hh"

namespace acr::harness
{

/** One point of a (possibly multi-machine) sweep grid: a workload, its
 *  configuration, and the simulated-machine core count it runs on. */
struct GridPoint
{
    std::string workload;
    ExperimentConfig config;
    unsigned threads = 8;
};

namespace wire
{

/** Bump on ANY schema change (field added/removed/renamed/retyped).
 *  v2: added the `failed` record type (quarantined sweep points).
 *  v3: config gained `oracle` + `faultEventMask`, result gained
 *      `oracleDivergences` + `oracleReport` (recovery validation).
 *  v4: config gained `backend` (pluggable checkpoint stores), so
 *      ResultCache keys and shard grids distinguish backends.
 *  v5: added the `hello` record type (the distributed sweep's strict
 *      TCP handshake, harness/net.hh).
 *  v6: config gained `storageErrors` + `storageFaultMask` (checkpoint-
 *      medium fault injection), result gained `unrecoverable` +
 *      `unrecoverableDetail` (escalation-ladder exhaustion), so
 *      ResultCache keys and shard grids distinguish storage-fault
 *      campaigns. */
inline constexpr std::uint64_t kVersion = 6;

// --- Value encodings (no version envelope; record lines add it) ---

/** Encode a config. The trace sink is host memory and cannot cross a
 *  process boundary: non-null trace throws SerdeError. */
serde::Json encodeConfig(const ExperimentConfig &config);
ExperimentConfig decodeConfig(const serde::Json &json);

serde::Json encodeStats(const StatSet &stats);
StatSet decodeStats(const serde::Json &json);

serde::Json encodeResult(const ExperimentResult &result);
ExperimentResult decodeResult(const serde::Json &json);

/** Canonical encoding of one grid point (workload + full config +
 *  threads) — position-independent, the ResultCache's key material. */
serde::Json encodePoint(const GridPoint &point);
GridPoint decodePoint(const serde::Json &json);

/** FNV-1a over encodePoint(point).dump(): two points hash equal iff
 *  they are the same experiment, regardless of which bench enumerated
 *  them or where in its grid they sit. */
std::uint64_t pointHash(const GridPoint &point);

// --- Record lines ---

/** Work sent to a worker: grid index + the point itself. */
struct PointRecord
{
    std::uint64_t index = 0;
    GridPoint point;
};

/** A finished experiment travelling back to the coordinator. */
struct ResultRecord
{
    std::uint64_t index = 0;
    ExperimentResult result;
};

/**
 * A point the supervisor quarantined after exhausting its retries:
 * the sweep completed around it, and the failure travels through the
 * result stream (shard files, journals) as an explicit record instead
 * of aborting the whole run.
 */
struct FailedRecord
{
    std::uint64_t index = 0;
    std::uint64_t attempts = 0;
    std::string reason;
};

/**
 * First line of a shard's output: which slice of which grid this
 * stream holds, so merging can verify the shards are disjoint,
 * complete, and come from the same grid (gridHash covers every
 * point's full encoding).
 */
struct ManifestRecord
{
    std::string bench;
    std::uint64_t shard = 0;
    std::uint64_t shardCount = 1;
    std::uint64_t gridPoints = 0;
    std::uint64_t gridHash = 0;
};

/**
 * The distributed sweep's handshake (DESIGN.md §15): the first record
 * either end of a TCP connection sends, carrying everything both
 * sides must agree on before any point is dealt — the bench name, the
 * exact grid (size + hash over every point's full encoding), and the
 * net-layer framing version. The record's own `v` envelope pins the
 * wire version, so a version-skewed peer is rejected by decodeLine
 * itself before any field is compared.
 */
struct HelloRecord
{
    std::string bench;
    std::uint64_t gridPoints = 0;
    std::uint64_t gridHash = 0;
    std::uint64_t netVersion = 0;
};

std::string encodePointLine(const PointRecord &record);
std::string encodeResultLine(const ResultRecord &record);
std::string encodeManifestLine(const ManifestRecord &record);
std::string encodeFailedLine(const FailedRecord &record);
std::string encodeHelloLine(const HelloRecord &record);

/** One decoded record line (tagged union over the five types). */
struct Record
{
    enum class Type
    {
        kPoint,
        kResult,
        kManifest,
        kFailed,
        kHello,
    };
    Type type = Type::kPoint;
    PointRecord point;
    ResultRecord result;
    ManifestRecord manifest;
    FailedRecord failed;
    HelloRecord hello;
};

/** Decode any record line; throws SerdeError on bad version/type/keys. */
Record decodeLine(const std::string &line);

/** FNV-1a over the canonical point-record encodings: two invocations
 *  agree iff they enumerated the identical grid. */
std::uint64_t gridHash(const std::vector<GridPoint> &points);

} // namespace wire
} // namespace acr::harness

#endif // ACR_HARNESS_WIRE_HH
