#include "mem/dram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acr::mem
{

DramModel::DramModel(const DramConfig &config)
    : config_(config)
{
    ACR_ASSERT(config_.controllers > 0, "DRAM needs >= 1 controller");
    ACR_ASSERT(config_.bytesPerCycle > 0, "DRAM bandwidth must be > 0");
    channelFree_.assign(config_.controllers, 0.0);
}

unsigned
DramModel::controllerOf(LineId line) const
{
    return static_cast<unsigned>(line % config_.controllers);
}

Cycle
DramModel::access(unsigned ctrl, Cycle now, std::size_t bytes, bool write)
{
    double start = std::max(static_cast<double>(now), channelFree_[ctrl]);
    double occupancy = static_cast<double>(bytes) / config_.bytesPerCycle;
    channelFree_[ctrl] = start + occupancy;

    double queue_delay = start - static_cast<double>(now);
    counters_.queueDelayCycles += queue_delay;
    counters_.bytes += bytes;
    if (write)
        ++counters_.writes;
    else
        ++counters_.reads;

    return now + static_cast<Cycle>(queue_delay + occupancy + 0.5)
           + config_.latency;
}

void
DramModel::exportStats(StatSet &stats, const std::string &prefix) const
{
    stats.add(prefix + ".reads", static_cast<double>(counters_.reads));
    stats.add(prefix + ".writes", static_cast<double>(counters_.writes));
    stats.add(prefix + ".bytes", static_cast<double>(counters_.bytes));
    stats.add(prefix + ".queueDelayCycles", counters_.queueDelayCycles);
}

Cycle
DramModel::lineRead(LineId line, Cycle now)
{
    return access(controllerOf(line), now, kLineBytes, false);
}

Cycle
DramModel::lineWrite(LineId line, Cycle now)
{
    return access(controllerOf(line), now, kLineBytes, true);
}

Cycle
DramModel::wordRead(Addr addr, Cycle now)
{
    return access(controllerOf(lineOf(addr)), now, kWordBytes, false);
}

Cycle
DramModel::wordWrite(Addr addr, Cycle now)
{
    return access(controllerOf(lineOf(addr)), now, kWordBytes, true);
}

void
DramModel::reset()
{
    std::fill(channelFree_.begin(), channelFree_.end(), 0.0);
}

} // namespace acr::mem
