#include "mem/main_memory.hh"

#include <algorithm>
#include <set>

namespace acr::mem
{

const MainMemory::Page *
MainMemory::findPage(Addr page_id) const
{
    auto it = pages_.find(page_id);
    return it == pages_.end() ? nullptr : &it->second;
}

MainMemory::Page &
MainMemory::touchPage(Addr page_id)
{
    auto it = pages_.find(page_id);
    if (it == pages_.end())
        it = pages_.emplace(page_id, Page(kPageWords, 0)).first;
    return it->second;
}

Word
MainMemory::read(Addr addr) const
{
    const Page *page = findPage(pageIdOf(addr));
    if (!page)
        return 0;
    return (*page)[addr % kPageWords];
}

Word
MainMemory::write(Addr addr, Word value)
{
    Page &page = touchPage(pageIdOf(addr));
    Word &slot = page[addr % kPageWords];
    Word old = slot;
    slot = value;
    return old;
}

std::map<Addr, Word>
MainMemory::image() const
{
    std::map<Addr, Word> out;
    for (const auto &[page_id, page] : pages_) {
        for (std::size_t i = 0; i < kPageWords; ++i) {
            if (page[i] != 0)
                out[page_id * kPageWords + i] = page[i];
        }
    }
    return out;
}

Addr
MainMemory::firstDifference(const MainMemory &other) const
{
    std::set<Addr> page_ids;
    for (const auto &kv : pages_)
        page_ids.insert(kv.first);
    for (const auto &kv : other.pages_)
        page_ids.insert(kv.first);

    for (Addr page_id : page_ids) {
        const Page *a = findPage(page_id);
        const Page *b = other.findPage(page_id);
        for (std::size_t i = 0; i < kPageWords; ++i) {
            Word va = a ? (*a)[i] : 0;
            Word vb = b ? (*b)[i] : 0;
            if (va != vb)
                return page_id * kPageWords + i;
        }
    }
    return kInvalidAddr;
}

} // namespace acr::mem
