#include "mem/main_memory.hh"

#include <algorithm>

namespace acr::mem
{

const Word *
MainMemory::findSlowPage(Addr page_id) const
{
    auto it = overflow_.find(page_id);
    return it == overflow_.end() ? nullptr : it->second.get();
}

const Word *
MainMemory::findPage(Addr page_id) const
{
    if (page_id < direct_.size())
        return direct_[page_id].get();
    return findSlowPage(page_id);
}

Word *
MainMemory::touchPage(Addr page_id)
{
    if (page_id < kDirectPages) {
        if (page_id >= direct_.size())
            direct_.resize(page_id + 1);
        if (!direct_[page_id]) {
            direct_[page_id] = std::make_unique<Word[]>(kPageWords);
            ++directCount_;
        }
        return direct_[page_id].get();
    }
    auto it = overflow_.find(page_id);
    if (it == overflow_.end()) {
        it = overflow_
                 .emplace(page_id, std::make_unique<Word[]>(kPageWords))
                 .first;
    }
    return it->second.get();
}

void
MainMemory::clear()
{
    direct_.clear();
    directCount_ = 0;
    overflow_.clear();
}

std::vector<Addr>
MainMemory::pageIds() const
{
    std::vector<Addr> ids;
    ids.reserve(pageCount());
    for (Addr id = 0; id < direct_.size(); ++id) {
        if (direct_[id])
            ids.push_back(id);
    }
    // Overflow ids are all >= kDirectPages, so appending keeps order.
    for (const auto &kv : overflow_)
        ids.push_back(kv.first);
    return ids;
}

std::map<Addr, Word>
MainMemory::image() const
{
    std::map<Addr, Word> out;
    for (Addr page_id : pageIds()) {
        const Word *page = findPage(page_id);
        for (std::size_t i = 0; i < kPageWords; ++i) {
            if (page[i] != 0)
                out[page_id * kPageWords + i] = page[i];
        }
    }
    return out;
}

Addr
MainMemory::firstDifference(const MainMemory &other) const
{
    std::vector<Addr> ids = pageIds();
    std::vector<Addr> other_ids = other.pageIds();
    std::vector<Addr> all;
    all.reserve(ids.size() + other_ids.size());
    std::merge(ids.begin(), ids.end(), other_ids.begin(),
               other_ids.end(), std::back_inserter(all));
    all.erase(std::unique(all.begin(), all.end()), all.end());

    for (Addr page_id : all) {
        const Word *a = findPage(page_id);
        const Word *b = other.findPage(page_id);
        for (std::size_t i = 0; i < kPageWords; ++i) {
            Word va = a ? a[i] : 0;
            Word vb = b ? b[i] : 0;
            if (va != vb)
                return page_id * kPageWords + i;
        }
    }
    return kInvalidAddr;
}

MainMemory::Snap
MainMemory::save() const
{
    Snap snap;
    snap.pages.reserve(pageCount());
    for (Addr page_id : pageIds()) {
        const Word *page = findPage(page_id);
        snap.pages.emplace_back(
            page_id, std::vector<Word>(page, page + kPageWords));
    }
    return snap;
}

void
MainMemory::restore(const Snap &snap)
{
    clear();
    for (const auto &[page_id, words] : snap.pages) {
        Word *page = touchPage(page_id);
        std::copy(words.begin(), words.end(), page);
    }
}

} // namespace acr::mem
