/**
 * @file
 * MainMemory holds the *functional* state of the simulated machine.
 *
 * The simulator is functional-first (like Snipersim): every load and store
 * operates directly on this container, while caches and DRAM are timing /
 * bookkeeping models layered beside it. Checkpoint correctness — rollback
 * restoring a bit-exact earlier state — is defined against this object,
 * which is what makes it directly testable.
 *
 * Storage is paged and sparse; untouched words read as zero.
 */

#ifndef ACR_MEM_MAIN_MEMORY_HH
#define ACR_MEM_MAIN_MEMORY_HH

#include <cstddef>
#include <map>
#include <vector>

#include "common/types.hh"

namespace acr::mem
{

/** Sparse, paged, word-addressed functional memory. */
class MainMemory
{
  public:
    /** Words per allocation page (power of two). */
    static constexpr std::size_t kPageWords = 4096;

    /** Read one word; untouched words are zero. */
    Word read(Addr addr) const;

    /**
     * Write one word.
     * @return the previous value (what an undo-log record would hold).
     */
    Word write(Addr addr, Word value);

    /** Number of pages currently allocated. */
    std::size_t pageCount() const { return pages_.size(); }

    /** Total words currently backed by storage. */
    std::size_t backedWords() const { return pages_.size() * kPageWords; }

    /** Drop all contents. */
    void clear() { pages_.clear(); }

    /**
     * A full copy of the backed state, for golden-model comparison in
     * tests. Pages that were allocated but remained all-zero compare
     * equal to absent pages.
     */
    std::map<Addr, Word> image() const;

    /**
     * Compare against another memory, treating unbacked words as zero.
     * @return the first differing address, or kInvalidAddr if identical.
     */
    Addr firstDifference(const MainMemory &other) const;

  private:
    using Page = std::vector<Word>;

    static Addr pageIdOf(Addr addr) { return addr / kPageWords; }

    const Page *findPage(Addr page_id) const;
    Page &touchPage(Addr page_id);

    std::map<Addr, Page> pages_;
};

} // namespace acr::mem

#endif // ACR_MEM_MAIN_MEMORY_HH
