/**
 * @file
 * MainMemory holds the *functional* state of the simulated machine.
 *
 * The simulator is functional-first (like Snipersim): every load and store
 * operates directly on this container, while caches and DRAM are timing /
 * bookkeeping models layered beside it. Checkpoint correctness — rollback
 * restoring a bit-exact earlier state — is defined against this object,
 * which is what makes it directly testable.
 *
 * Storage is paged and sparse; untouched words read as zero. The hot
 * read()/write() path indexes a flat page directory (one pointer load,
 * no tree walk); page ids beyond the directory — reachable only through
 * corrupted addresses after fault injection — fall back to an ordered
 * overflow map. Both paths are inline in this header so the CPU model's
 * load/store dispatch folds the lookup in.
 */

#ifndef ACR_MEM_MAIN_MEMORY_HH
#define ACR_MEM_MAIN_MEMORY_HH

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace acr::mem
{

/** Sparse, paged, word-addressed functional memory. */
class MainMemory
{
  public:
    /** Words per allocation page (power of two). */
    static constexpr std::size_t kPageWords = 4096;

    /**
     * Page ids below this live in the flat directory (covers the entire
     * well-formed address space of the workloads); larger ids — only
     * producible by corrupted pointers — go to the overflow map.
     */
    static constexpr Addr kDirectPages = 1 << 14;

    /** Read one word; untouched words are zero. */
    Word
    read(Addr addr) const
    {
        const Addr page_id = addr / kPageWords;
        if (page_id < direct_.size()) {
            const Word *page = direct_[page_id].get();
            return page ? page[addr % kPageWords] : 0;
        }
        const Word *page = findSlowPage(page_id);
        return page ? page[addr % kPageWords] : 0;
    }

    /**
     * Write one word.
     * @return the previous value (what an undo-log record would hold).
     */
    Word
    write(Addr addr, Word value)
    {
        const Addr page_id = addr / kPageWords;
        Word *page;
        if (page_id < direct_.size() && direct_[page_id]) {
            page = direct_[page_id].get();
        } else {
            page = touchPage(page_id);
        }
        Word &slot = page[addr % kPageWords];
        Word old = slot;
        slot = value;
        return old;
    }

    /** Number of pages currently allocated. */
    std::size_t pageCount() const
    {
        return directCount_ + overflow_.size();
    }

    /** Total words currently backed by storage. */
    std::size_t backedWords() const { return pageCount() * kPageWords; }

    /** Drop all contents. */
    void clear();

    /**
     * A full copy of the backed state, for golden-model comparison in
     * tests. Pages that were allocated but remained all-zero compare
     * equal to absent pages.
     */
    std::map<Addr, Word> image() const;

    /**
     * Compare against another memory, treating unbacked words as zero.
     * @return the first differing address, or kInvalidAddr if identical.
     */
    Addr firstDifference(const MainMemory &other) const;

    /** Backed pages by id, for the prefix-sharing snapshot
     *  (DESIGN.md §13). */
    struct Snap
    {
        std::vector<std::pair<Addr, std::vector<Word>>> pages;
    };

    Snap save() const;

    /** Replace all contents with @p snap's pages. */
    void restore(const Snap &snap);

  private:
    using Page = std::unique_ptr<Word[]>;

    /** Overflow-map read path (page id past the flat directory). */
    const Word *findSlowPage(Addr page_id) const;

    /** Read-only page lookup across both tiers. */
    const Word *findPage(Addr page_id) const;

    /** Allocate-on-demand page lookup (cold path of write()). */
    Word *touchPage(Addr page_id);

    /** Every allocated page id, in ascending order. */
    std::vector<Addr> pageIds() const;

    /** Flat directory, grown on demand up to kDirectPages entries. */
    std::vector<Page> direct_;
    /** Allocated entries in direct_ (pageCount bookkeeping). */
    std::size_t directCount_ = 0;
    /** Pages whose id is >= kDirectPages (corrupted addresses). */
    std::map<Addr, Page> overflow_;
};

} // namespace acr::mem

#endif // ACR_MEM_MAIN_MEMORY_HH
