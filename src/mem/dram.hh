/**
 * @file
 * DRAM timing model per Table I of the paper: fixed access latency
 * (120 ns ≈ 131 cycles at 1.09 GHz) plus a per-controller bandwidth queue
 * (7.6 GB/s per controller, one controller per four cores). Lines are
 * interleaved across controllers.
 */

#ifndef ACR_MEM_DRAM_HH
#define ACR_MEM_DRAM_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace acr::mem
{

/** Plain-integer event counters (hot path). */
struct DramCounters
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes = 0;
    double queueDelayCycles = 0.0;
};

/** Configuration of the DRAM subsystem. */
struct DramConfig
{
    /** Access latency in core cycles (120 ns at 1.09 GHz). */
    Cycle latency = 131;

    /** Sustained bandwidth per controller, bytes per core cycle
     *  (7.6 GB/s at 1.09 GHz ≈ 6.97 B/cycle). */
    double bytesPerCycle = 6.97;

    /** Number of memory controllers (paper: one per four cores). */
    unsigned controllers = 2;

    /** Controllers for a given core count per the paper's rule. */
    static unsigned
    controllersFor(unsigned cores)
    {
        return cores < 4 ? 1 : cores / 4;
    }
};

/**
 * Per-controller bandwidth/latency model. Timing only — functional data
 * lives in MainMemory.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /** Controller serving a line (simple interleave). */
    unsigned controllerOf(LineId line) const;

    /**
     * Account one line-granular read issued at @p now.
     * @return cycle at which the data is available.
     */
    Cycle lineRead(LineId line, Cycle now);

    /**
     * Account one line-granular write issued at @p now.
     * @return cycle at which the write completes.
     */
    Cycle lineWrite(LineId line, Cycle now);

    /**
     * Account a word-granular access (undo-log record traffic). Costs
     * latency plus word-sized bandwidth occupancy.
     */
    Cycle wordRead(Addr addr, Cycle now);
    Cycle wordWrite(Addr addr, Cycle now);

    /** Reset bandwidth queues (e.g., between experiment phases). */
    void reset();

    const DramConfig &config() const { return config_; }
    const DramCounters &counters() const { return counters_; }

    /** Publish counters as "<prefix>.reads" etc. */
    void exportStats(StatSet &stats, const std::string &prefix) const;

  private:
    Cycle access(unsigned ctrl, Cycle now, std::size_t bytes, bool write);

    DramConfig config_;
    /** Earliest cycle each controller's channel is free. */
    std::vector<double> channelFree_;
    DramCounters counters_;
};

} // namespace acr::mem

#endif // ACR_MEM_DRAM_HH
