/**
 * @file
 * CacheSystem: all per-core cache hierarchies (L1I/L1D/L2) plus the shared
 * directory and DRAM, wired together. This is the single entry point the
 * CPU model uses for the *timing* of every data access; functional values
 * always come from MainMemory.
 *
 * Coherence actions are performed for real across hierarchies (a remote
 * write invalidates local copies, a remote read downgrades a dirty owner),
 * so each core's dirty-line set — the quantity checkpoint establishment
 * pays for — is always globally consistent.
 */

#ifndef ACR_CACHE_HIERARCHY_HH
#define ACR_CACHE_HIERARCHY_HH

#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "cache/directory.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/dram.hh"

namespace acr::cache
{

/** Per-core cache geometry (Table I defaults). */
struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 4, 4};
    CacheConfig l1d{"l1d", 32 * 1024, 8, 4};
    CacheConfig l2{"l2", 512 * 1024, 8, 27};

    /** Latency of a remote invalidation / cache-to-cache forward. */
    Cycle coherenceLatency = 30;
};

/** Result of flushing dirty lines for a checkpoint. */
struct FlushResult
{
    /** Cycle at which the last write-back completes. */
    Cycle done = 0;
    /** Number of lines written back. */
    std::uint64_t lines = 0;
};

/** The full memory-side timing model shared by all cores. */
class CacheSystem
{
  public:
    CacheSystem(unsigned num_cores, const HierarchyConfig &hier_config,
                const mem::DramConfig &dram_config);

    /**
     * Account the timing of one data access by @p core.
     * @return completion cycle (>= now + L1D latency).
     * The L1 hit path (the overwhelmingly common case) is inline; a
     * clean-line write upgrade or an L1 miss drops to the out-of-line
     * slow path.
     */
    Cycle
    dataAccess(CoreId core, Addr addr, bool write, Cycle now)
    {
        ACR_ASSERT(core < numCores_, "bad core id %u", core);
        const LineId line = lineOf(addr);
        AccessResult r1 = l1d_[core]->access(line, write);
        if (r1.hit) {
            Cycle done = now + config_.l1d.latency;
            if (write && !r1.wasDirty)
                done = writeUpgrade(core, line, done);
            return done;
        }
        return dataAccessMiss(core, line, write, now, r1);
    }

    /** Account one instruction fetch (always-hit L1I model). */
    void fetch(CoreId core) { ++fetches_[core]; }

    /** Batched fetch accounting: @p count fetches by @p core (the core's
     *  quantum loop tallies locally and flushes once per quantum). */
    void addFetches(CoreId core, std::uint64_t count)
    {
        fetches_[core] += count;
    }

    /** Dirty lines currently held by @p core (L1D ∪ L2). */
    std::vector<LineId> dirtyLines(CoreId core) const;

    /** Count of dirty lines held by @p core. */
    std::size_t dirtyLineCount(CoreId core) const;

    /**
     * Write back every dirty line of the cores in @p cores, keeping
     * clean copies (Rebound-style checkpoint flush). DRAM bandwidth
     * queues are charged; @p now is when the flush starts.
     */
    FlushResult flushCores(SharerMask cores, Cycle now);

    /** Drop all cached state of the cores in @p cores (rollback). */
    void invalidateCores(SharerMask cores);

    unsigned numCores() const { return numCores_; }
    Directory &directory() { return directory_; }
    const Directory &directory() const { return directory_; }
    mem::DramModel &dram() { return dram_; }
    const mem::DramModel &dram() const { return dram_; }
    Cache &l1d(CoreId core) { return *l1d_[core]; }
    Cache &l2(CoreId core) { return *l2_[core]; }
    const HierarchyConfig &config() const { return config_; }

    /** Instruction fetches issued by a core (L1I accesses). */
    std::uint64_t fetches(CoreId core) const { return fetches_[core]; }

    /** Aggregate counters over all cores into @p stats. */
    void exportStats(StatSet &stats) const;

    /** Value copy of the whole timing-model state, for the
     *  prefix-sharing snapshot (DESIGN.md §13). */
    struct Snap
    {
        /** optional only because DramModel/Directory have no default
         *  ctor; always engaged in a saved snapshot. */
        std::optional<mem::DramModel> dram;
        std::optional<Directory> directory;
        std::vector<Cache> l1d;
        std::vector<Cache> l2;
        std::vector<std::uint64_t> fetches;
    };

    Snap save() const;

    /** Overwrite all timing state with @p snap (geometry must match). */
    void restore(const Snap &snap);

  private:
    /**
     * A write by @p core gained ownership of @p line: invalidate every
     * remote copy. Returns true if a remote dirty copy supplied the data.
     */
    bool acquireExclusive(CoreId core, LineId line);

    /** L1 write hit on a clean line: ownership upgrade + L2 update. */
    Cycle writeUpgrade(CoreId core, LineId line, Cycle done);

    /** L1-miss continuation of dataAccess(). */
    Cycle dataAccessMiss(CoreId core, LineId line, bool write, Cycle now,
                         const AccessResult &r1);

    unsigned numCores_;
    HierarchyConfig config_;
    mem::DramModel dram_;
    Directory directory_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::vector<std::uint64_t> fetches_;
};

} // namespace acr::cache

#endif // ACR_CACHE_HIERARCHY_HH
