#include "cache/cache.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace acr::cache
{

Cache::Cache(const CacheConfig &config)
    : config_(config), sets_(config.sets())
{
    ACR_ASSERT(config_.ways > 0, "%s: zero ways", config_.name.c_str());
    ACR_ASSERT(sets_ > 0, "%s: size too small for geometry",
               config_.name.c_str());
    ACR_ASSERT(config_.sizeBytes % (config_.ways * kLineBytes) == 0,
               "%s: size not a multiple of way size",
               config_.name.c_str());
    const std::size_t n = sets_ * config_.ways;
    tags_.assign(n, 0);
    lastUse_.assign(n, 0);
    validBits_.assign((n + 63) / 64, 0);
    dirtyBits_.assign((n + 63) / 64, 0);
}

AccessResult
Cache::accessMiss(LineId line, bool write)
{
    AccessResult result;
    ++counters_.misses;

    // Choose a victim: an invalid way if any, else true LRU.
    const std::size_t base = setOf(line) * config_.ways;
    std::size_t victim = base;
    for (unsigned w = 0; w < config_.ways; ++w) {
        const std::size_t i = base + w;
        if (!testBit(validBits_, i)) {
            victim = i;
            break;
        }
        if (lastUse_[i] < lastUse_[victim])
            victim = i;
    }

    if (testBit(validBits_, victim)) {
        ++counters_.evictions;
        if (testBit(dirtyBits_, victim)) {
            ++counters_.dirtyEvictions;
            result.dirtyVictim = tags_[victim];
            result.hasDirtyVictim = true;
        }
    }

    tags_[victim] = line;
    setBit(validBits_, victim);
    if (write)
        setBit(dirtyBits_, victim);
    else
        clearBit(dirtyBits_, victim);
    lastUse_[victim] = useClock_;
    return result;
}

bool
Cache::contains(LineId line) const
{
    return find(line) != kNoWay;
}

bool
Cache::isDirty(LineId line) const
{
    std::size_t i = find(line);
    return i != kNoWay && testBit(dirtyBits_, i);
}

bool
Cache::invalidate(LineId line)
{
    if (std::size_t i = find(line); i != kNoWay) {
        bool was_dirty = testBit(dirtyBits_, i);
        clearBit(validBits_, i);
        clearBit(dirtyBits_, i);
        ++counters_.invalidations;
        return was_dirty;
    }
    return false;
}

bool
Cache::clean(LineId line)
{
    if (std::size_t i = find(line); i != kNoWay) {
        bool was_dirty = testBit(dirtyBits_, i);
        clearBit(dirtyBits_, i);
        return was_dirty;
    }
    return false;
}

std::vector<LineId>
Cache::dirtyLines() const
{
    // Dirty implies valid (every transition that sets a dirty bit also
    // sets the valid bit); the AND keeps the invariant explicit.
    std::vector<LineId> out;
    for (std::size_t w = 0; w < dirtyBits_.size(); ++w) {
        std::uint64_t bits = dirtyBits_[w] & validBits_[w];
        while (bits != 0) {
            unsigned b = static_cast<unsigned>(std::countr_zero(bits));
            out.push_back(tags_[w * 64 + b]);
            bits &= bits - 1;
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t
Cache::dirtyCount() const
{
    std::size_t n = 0;
    for (std::size_t w = 0; w < dirtyBits_.size(); ++w)
        n += static_cast<std::size_t>(
            std::popcount(dirtyBits_[w] & validBits_[w]));
    return n;
}

void
Cache::invalidateAll()
{
    std::fill(validBits_.begin(), validBits_.end(), 0);
    std::fill(dirtyBits_.begin(), dirtyBits_.end(), 0);
}

void
Cache::exportStats(StatSet &stats, const std::string &prefix) const
{
    stats.add(prefix + ".hits", static_cast<double>(counters_.hits));
    stats.add(prefix + ".misses", static_cast<double>(counters_.misses));
    stats.add(prefix + ".evictions",
              static_cast<double>(counters_.evictions));
    stats.add(prefix + ".dirtyEvictions",
              static_cast<double>(counters_.dirtyEvictions));
    stats.add(prefix + ".invalidations",
              static_cast<double>(counters_.invalidations));
}

} // namespace acr::cache
