#include "cache/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acr::cache
{

Cache::Cache(const CacheConfig &config)
    : config_(config), sets_(config.sets())
{
    ACR_ASSERT(config_.ways > 0, "%s: zero ways", config_.name.c_str());
    ACR_ASSERT(sets_ > 0, "%s: size too small for geometry",
               config_.name.c_str());
    ACR_ASSERT(config_.sizeBytes % (config_.ways * kLineBytes) == 0,
               "%s: size not a multiple of way size",
               config_.name.c_str());
    ways_.assign(sets_ * config_.ways, Way{});
}

Cache::Way *
Cache::find(LineId line)
{
    std::size_t base = setOf(line) * config_.ways;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Way &way = ways_[base + w];
        if (way.valid && way.line == line)
            return &way;
    }
    return nullptr;
}

const Cache::Way *
Cache::find(LineId line) const
{
    return const_cast<Cache *>(this)->find(line);
}

AccessResult
Cache::access(LineId line, bool write)
{
    ++useClock_;
    AccessResult result;

    if (Way *way = find(line)) {
        result.hit = true;
        result.wasDirty = way->dirty;
        way->lastUse = useClock_;
        way->dirty = way->dirty || write;
        ++counters_.hits;
        return result;
    }

    ++counters_.misses;

    // Choose a victim: an invalid way if any, else true LRU.
    std::size_t base = setOf(line) * config_.ways;
    Way *victim = &ways_[base];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Way &way = ways_[base + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }

    if (victim->valid) {
        ++counters_.evictions;
        if (victim->dirty) {
            ++counters_.dirtyEvictions;
            result.dirtyVictim = victim->line;
            result.hasDirtyVictim = true;
        }
    }

    victim->line = line;
    victim->valid = true;
    victim->dirty = write;
    victim->lastUse = useClock_;
    return result;
}

bool
Cache::contains(LineId line) const
{
    return find(line) != nullptr;
}

bool
Cache::isDirty(LineId line) const
{
    const Way *way = find(line);
    return way && way->dirty;
}

bool
Cache::invalidate(LineId line)
{
    if (Way *way = find(line)) {
        bool was_dirty = way->dirty;
        way->valid = false;
        way->dirty = false;
        ++counters_.invalidations;
        return was_dirty;
    }
    return false;
}

bool
Cache::clean(LineId line)
{
    if (Way *way = find(line)) {
        bool was_dirty = way->dirty;
        way->dirty = false;
        return was_dirty;
    }
    return false;
}

std::vector<LineId>
Cache::dirtyLines() const
{
    std::vector<LineId> out;
    for (const Way &way : ways_) {
        if (way.valid && way.dirty)
            out.push_back(way.line);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t
Cache::dirtyCount() const
{
    std::size_t n = 0;
    for (const Way &way : ways_)
        if (way.valid && way.dirty)
            ++n;
    return n;
}

void
Cache::invalidateAll()
{
    for (Way &way : ways_) {
        way.valid = false;
        way.dirty = false;
    }
}

void
Cache::exportStats(StatSet &stats, const std::string &prefix) const
{
    stats.add(prefix + ".hits", static_cast<double>(counters_.hits));
    stats.add(prefix + ".misses", static_cast<double>(counters_.misses));
    stats.add(prefix + ".evictions",
              static_cast<double>(counters_.evictions));
    stats.add(prefix + ".dirtyEvictions",
              static_cast<double>(counters_.dirtyEvictions));
    stats.add(prefix + ".invalidations",
              static_cast<double>(counters_.invalidations));
}

} // namespace acr::cache
