/**
 * @file
 * Directory controller for the shared-memory many-core: tracks, per line,
 * the sharer set and current owner (last writer), returns the remote
 * caches that must be invalidated or downgraded, and records the
 * inter-core interaction graph within each checkpoint interval — the
 * mechanism coordinated *local* checkpointing uses to confine
 * coordination to communicating cores (Sec. V-E of the paper).
 */

#ifndef ACR_CACHE_DIRECTORY_HH
#define ACR_CACHE_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace acr::cache
{

/** Sharer bitmask; supports up to 64 cores. */
using SharerMask = std::uint64_t;

/** Plain-integer event counters (hot path). */
struct DirectoryCounters
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t invalidationsSent = 0;
    std::uint64_t ownerForwards = 0;
};

/** Directory-based coherence bookkeeping (MESI-style, timing-only). */
class Directory
{
  public:
    explicit Directory(unsigned num_cores);

    /**
     * A core fetched a line for reading (L2 miss).
     * @return remote owner that must downgrade (supplying the data),
     *         or kInvalidCore when memory supplies it.
     */
    CoreId onRead(CoreId core, LineId line);

    /**
     * A core fetched or upgraded a line for writing.
     * @return mask of remote caches holding the line, which the caller
     *         must invalidate.
     */
    SharerMask onWrite(CoreId core, LineId line);

    /** A line left @p core's caches entirely (eviction to memory). */
    void onEviction(CoreId core, LineId line);

    /** Sharer set of a line (zero if untracked). */
    SharerMask sharers(LineId line) const;

    /** Current owner (last writer still holding it), or kInvalidCore. */
    CoreId owner(LineId line) const;

    /**
     * Cores that interacted with @p core through shared lines since the
     * last clearInteractions(), as a bitmask including the core itself.
     */
    SharerMask interactions(CoreId core) const;

    /** The raw interaction adjacency, one mask per core. */
    const std::vector<SharerMask> &interactionMatrix() const
    {
        return interaction_;
    }

    /**
     * Connected components of the interaction graph: each entry is a
     * bitmask of mutually-communicating cores. Every core appears in
     * exactly one group (singleton if it communicated with no one).
     * Exposed statically so checkpoint code can also combine retained
     * matrices from earlier intervals.
     */
    static std::vector<SharerMask>
    groupsOf(const std::vector<SharerMask> &adjacency);

    /** Groups of the current interval's interactions. */
    std::vector<SharerMask> communicationGroups() const;

    /** Forget interval-local interaction state (at each checkpoint). */
    void clearInteractions();

    /** Drop all directory state (rollback invalidates caches). */
    void reset();

    /**
     * Remove the given cores from every sharer set / ownership (their
     * caches were invalidated by a group-local rollback).
     */
    void dropCores(SharerMask cores);

    unsigned numCores() const { return numCores_; }
    const DirectoryCounters &counters() const { return counters_; }

    /** Publish counters as "<prefix>.reads" etc. */
    void exportStats(StatSet &stats, const std::string &prefix) const;

  private:
    struct Entry
    {
        SharerMask sharers = 0;
        CoreId owner = kInvalidCore;
    };

    void recordInteraction(CoreId a, CoreId b);

    unsigned numCores_;
    std::unordered_map<LineId, Entry> entries_;
    /** interaction_[c] = mask of cores c communicated with (incl. c). */
    std::vector<SharerMask> interaction_;
    DirectoryCounters counters_;
};

} // namespace acr::cache

#endif // ACR_CACHE_DIRECTORY_HH
