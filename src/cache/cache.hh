/**
 * @file
 * Set-associative write-back cache with true-LRU replacement.
 *
 * This is a timing/bookkeeping model: it tracks tags, dirty bits and LRU
 * order, while the data itself lives in MainMemory (functional-first
 * simulation, see DESIGN.md). Dirty-line tracking is what the checkpoint
 * substrate consumes — establishing a checkpoint "involves writing all
 * dirty cache lines back to memory" (Sec. II-A).
 *
 * Layout is structure-of-arrays (DESIGN.md §13): tags and LRU stamps are
 * flat way-indexed arrays, and the valid/dirty state lives in packed
 * bitmaps. The lookup loop touches one contiguous tag run per set, and
 * the checkpoint flush scans 64 ways per machine word instead of one
 * 24-byte struct per way.
 *
 * Counters are plain integers (this is the hottest path in the
 * simulator); exportStats() publishes them into a StatSet.
 */

#ifndef ACR_CACHE_CACHE_HH
#define ACR_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace acr::cache
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::size_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    /** Access latency in core cycles. */
    Cycle latency = 4;

    std::size_t lines() const { return sizeBytes / kLineBytes; }
    std::size_t sets() const { return lines() / ways; }
};

/** Outcome of a cache access. */
struct AccessResult
{
    bool hit = false;
    /** State of the line before this access (false on miss). */
    bool wasDirty = false;
    /** Line evicted dirty by this access (needs write-back downstream). */
    LineId dirtyVictim = ~LineId{0};
    bool hasDirtyVictim = false;
};

/** Event counters kept as plain integers for speed. */
struct CacheCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t invalidations = 0;

    std::uint64_t accesses() const { return hits + misses; }
};

/** One level of set-associative write-back cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up @p line; on miss, allocate it, evicting LRU.
     * @param write marks the line dirty on completion.
     * The hit path is inline (one tag scan, two bitmap tests); the
     * miss path (victim choice, eviction bookkeeping) is out of line.
     */
    AccessResult
    access(LineId line, bool write)
    {
        ++useClock_;
        if (std::size_t i = find(line); i != kNoWay) {
            AccessResult result;
            result.hit = true;
            result.wasDirty = testBit(dirtyBits_, i);
            lastUse_[i] = useClock_;
            if (write)
                setBit(dirtyBits_, i);
            ++counters_.hits;
            return result;
        }
        return accessMiss(line, write);
    }

    /** True if the line is resident. */
    bool contains(LineId line) const;

    /** True if the line is resident and dirty. */
    bool isDirty(LineId line) const;

    /**
     * Remove @p line if resident.
     * @return true if it was resident and dirty (caller owns write-back).
     */
    bool invalidate(LineId line);

    /**
     * Mark @p line clean if resident (data written back, copy kept —
     * the Rebound-style checkpoint flush).
     * @return true if it was dirty.
     */
    bool clean(LineId line);

    /** All currently dirty resident lines, sorted. */
    std::vector<LineId> dirtyLines() const;

    /** Count of currently dirty resident lines. */
    std::size_t dirtyCount() const;

    /** Invalidate everything (rollback discards cached state). */
    void invalidateAll();

    const CacheConfig &config() const { return config_; }
    const CacheCounters &counters() const { return counters_; }

    /** Publish counters as "<prefix>.hits" etc. */
    void exportStats(StatSet &stats, const std::string &prefix) const;

  private:
    /** Sentinel way index for "not resident". */
    static constexpr std::size_t kNoWay = ~std::size_t{0};

    std::size_t setOf(LineId line) const { return line % sets_; }

    /** Way index of @p line, or kNoWay. */
    std::size_t
    find(LineId line) const
    {
        const std::size_t base = setOf(line) * config_.ways;
        for (unsigned w = 0; w < config_.ways; ++w) {
            const std::size_t i = base + w;
            if (tags_[i] == line && testBit(validBits_, i))
                return i;
        }
        return kNoWay;
    }

    /** Allocate-and-evict path of access(). */
    AccessResult accessMiss(LineId line, bool write);

    bool
    testBit(const std::vector<std::uint64_t> &bits, std::size_t i) const
    {
        return (bits[i >> 6] >> (i & 63)) & 1;
    }

    void
    setBit(std::vector<std::uint64_t> &bits, std::size_t i)
    {
        bits[i >> 6] |= std::uint64_t{1} << (i & 63);
    }

    void
    clearBit(std::vector<std::uint64_t> &bits, std::size_t i)
    {
        bits[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    CacheConfig config_;
    std::size_t sets_;

    // Structure-of-arrays way state, set-major (way i of set s lives at
    // index s * ways + i). Valid/dirty are packed 64-ways-per-word.
    std::vector<LineId> tags_;
    std::vector<std::uint64_t> lastUse_;
    std::vector<std::uint64_t> validBits_;
    std::vector<std::uint64_t> dirtyBits_;

    std::uint64_t useClock_ = 0;
    CacheCounters counters_;
};

} // namespace acr::cache

#endif // ACR_CACHE_CACHE_HH
