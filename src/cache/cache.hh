/**
 * @file
 * Set-associative write-back cache with true-LRU replacement.
 *
 * This is a timing/bookkeeping model: it tracks tags, dirty bits and LRU
 * order, while the data itself lives in MainMemory (functional-first
 * simulation, see DESIGN.md). Dirty-line tracking is what the checkpoint
 * substrate consumes — establishing a checkpoint "involves writing all
 * dirty cache lines back to memory" (Sec. II-A).
 *
 * Counters are plain integers (this is the hottest path in the
 * simulator); exportStats() publishes them into a StatSet.
 */

#ifndef ACR_CACHE_CACHE_HH
#define ACR_CACHE_CACHE_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace acr::cache
{

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::size_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    /** Access latency in core cycles. */
    Cycle latency = 4;

    std::size_t lines() const { return sizeBytes / kLineBytes; }
    std::size_t sets() const { return lines() / ways; }
};

/** Outcome of a cache access. */
struct AccessResult
{
    bool hit = false;
    /** State of the line before this access (false on miss). */
    bool wasDirty = false;
    /** Line evicted dirty by this access (needs write-back downstream). */
    LineId dirtyVictim = ~LineId{0};
    bool hasDirtyVictim = false;
};

/** Event counters kept as plain integers for speed. */
struct CacheCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::uint64_t invalidations = 0;

    std::uint64_t accesses() const { return hits + misses; }
};

/** One level of set-associative write-back cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up @p line; on miss, allocate it, evicting LRU.
     * @param write marks the line dirty on completion.
     */
    AccessResult access(LineId line, bool write);

    /** True if the line is resident. */
    bool contains(LineId line) const;

    /** True if the line is resident and dirty. */
    bool isDirty(LineId line) const;

    /**
     * Remove @p line if resident.
     * @return true if it was resident and dirty (caller owns write-back).
     */
    bool invalidate(LineId line);

    /**
     * Mark @p line clean if resident (data written back, copy kept —
     * the Rebound-style checkpoint flush).
     * @return true if it was dirty.
     */
    bool clean(LineId line);

    /** All currently dirty resident lines, sorted. */
    std::vector<LineId> dirtyLines() const;

    /** Count of currently dirty resident lines. */
    std::size_t dirtyCount() const;

    /** Invalidate everything (rollback discards cached state). */
    void invalidateAll();

    const CacheConfig &config() const { return config_; }
    const CacheCounters &counters() const { return counters_; }

    /** Publish counters as "<prefix>.hits" etc. */
    void exportStats(StatSet &stats, const std::string &prefix) const;

  private:
    struct Way
    {
        LineId line = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::size_t setOf(LineId line) const { return line % sets_; }
    Way *find(LineId line);
    const Way *find(LineId line) const;

    CacheConfig config_;
    std::size_t sets_;
    std::vector<Way> ways_;  ///< sets_ × config_.ways, set-major.
    std::uint64_t useClock_ = 0;
    CacheCounters counters_;
};

} // namespace acr::cache

#endif // ACR_CACHE_CACHE_HH
