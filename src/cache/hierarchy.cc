#include "cache/hierarchy.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace acr::cache
{

CacheSystem::CacheSystem(unsigned num_cores,
                         const HierarchyConfig &hier_config,
                         const mem::DramConfig &dram_config)
    : numCores_(num_cores),
      config_(hier_config),
      dram_(dram_config),
      directory_(num_cores)
{
    ACR_ASSERT(num_cores >= 1, "need at least one core");
    for (unsigned c = 0; c < num_cores; ++c) {
        CacheConfig l1d_cfg = config_.l1d;
        CacheConfig l2_cfg = config_.l2;
        l1d_cfg.name = csprintf("core%u.l1d", c);
        l2_cfg.name = csprintf("core%u.l2", c);
        l1d_.push_back(std::make_unique<Cache>(l1d_cfg));
        l2_.push_back(std::make_unique<Cache>(l2_cfg));
    }
    fetches_.assign(num_cores, 0);
}

bool
CacheSystem::acquireExclusive(CoreId core, LineId line)
{
    SharerMask remote = directory_.onWrite(core, line);
    bool remote_dirty = false;
    if (!remote)
        return false;
    for (CoreId c = 0; c < numCores_; ++c) {
        if (!(remote & (SharerMask{1} << c)))
            continue;
        bool d1 = l1d_[c]->invalidate(line);
        bool d2 = l2_[c]->invalidate(line);
        remote_dirty = remote_dirty || d1 || d2;
    }
    return remote_dirty;
}

Cycle
CacheSystem::writeUpgrade(CoreId core, LineId line, Cycle done)
{
    // Upgrade: gain exclusive ownership of a shared/clean line.
    if (acquireExclusive(core, line))
        done += config_.coherenceLatency;
    // Keep L2's copy coherent with L1's new dirty state.
    l2_[core]->access(line, true);
    return done;
}

Cycle
CacheSystem::dataAccessMiss(CoreId core, LineId line, bool write,
                            Cycle now, const AccessResult &r1)
{
    Cache &l1 = *l1d_[core];
    Cache &l2c = *l2_[core];

    Cycle done = now + config_.l1d.latency;

    // L1 miss: the victim (if dirty) is written back into L2.
    if (r1.hasDirtyVictim) {
        AccessResult wb = l2c.access(r1.dirtyVictim, true);
        if (wb.hasDirtyVictim) {
            dram_.lineWrite(wb.dirtyVictim, now);  // posted write-back
            l1.invalidate(wb.dirtyVictim);
            directory_.onEviction(core, wb.dirtyVictim);
        }
    }

    done += config_.l2.latency;
    AccessResult r2 = l2c.access(line, write);

    if (r2.hasDirtyVictim) {
        dram_.lineWrite(r2.dirtyVictim, now);  // posted write-back
        l1.invalidate(r2.dirtyVictim);
        directory_.onEviction(core, r2.dirtyVictim);
    }

    if (r2.hit) {
        if (write && !r2.wasDirty) {
            if (acquireExclusive(core, line))
                done += config_.coherenceLatency;
        }
        return done;
    }

    // L2 miss: coherence + fill from a remote cache or from memory.
    bool filled_remotely = false;
    if (write) {
        filled_remotely = acquireExclusive(core, line);
    } else {
        CoreId fwd = directory_.onRead(core, line);
        if (fwd != kInvalidCore) {
            // Remote dirty owner downgrades: writes back, keeps a clean
            // copy, and forwards the data cache-to-cache.
            bool d1 = l1d_[fwd]->clean(line);
            bool d2 = l2_[fwd]->clean(line);
            if (d1 || d2)
                dram_.lineWrite(line, now);  // posted downgrade write-back
            filled_remotely = true;
        }
    }

    if (filled_remotely) {
        done += config_.coherenceLatency;
    } else {
        done = dram_.lineRead(line, done);
    }
    return done;
}

std::vector<LineId>
CacheSystem::dirtyLines(CoreId core) const
{
    std::vector<LineId> l1 = l1d_[core]->dirtyLines();
    std::vector<LineId> l2v = l2_[core]->dirtyLines();
    std::vector<LineId> out;
    out.reserve(l1.size() + l2v.size());
    std::set_union(l1.begin(), l1.end(), l2v.begin(), l2v.end(),
                   std::back_inserter(out));
    return out;
}

std::size_t
CacheSystem::dirtyLineCount(CoreId core) const
{
    return dirtyLines(core).size();
}

FlushResult
CacheSystem::flushCores(SharerMask cores, Cycle now)
{
    FlushResult result;
    result.done = now;
    for (CoreId c = 0; c < numCores_; ++c) {
        if (!(cores & (SharerMask{1} << c)))
            continue;
        for (LineId line : dirtyLines(c)) {
            l1d_[c]->clean(line);
            l2_[c]->clean(line);
            Cycle t = dram_.lineWrite(line, now);
            result.done = std::max(result.done, t);
            ++result.lines;
        }
    }
    return result;
}

void
CacheSystem::invalidateCores(SharerMask cores)
{
    for (CoreId c = 0; c < numCores_; ++c) {
        if (!(cores & (SharerMask{1} << c)))
            continue;
        l1d_[c]->invalidateAll();
        l2_[c]->invalidateAll();
    }
    directory_.dropCores(cores);
}

void
CacheSystem::exportStats(StatSet &stats) const
{
    CacheCounters l1d_total, l2_total;
    std::uint64_t fetch_total = 0;
    for (unsigned c = 0; c < numCores_; ++c) {
        const CacheCounters &a = l1d_[c]->counters();
        const CacheCounters &b = l2_[c]->counters();
        l1d_total.hits += a.hits;
        l1d_total.misses += a.misses;
        l1d_total.evictions += a.evictions;
        l1d_total.dirtyEvictions += a.dirtyEvictions;
        l1d_total.invalidations += a.invalidations;
        l2_total.hits += b.hits;
        l2_total.misses += b.misses;
        l2_total.evictions += b.evictions;
        l2_total.dirtyEvictions += b.dirtyEvictions;
        l2_total.invalidations += b.invalidations;
        fetch_total += fetches_[c];
    }
    stats.add("l1d.hits", static_cast<double>(l1d_total.hits));
    stats.add("l1d.misses", static_cast<double>(l1d_total.misses));
    stats.add("l2.hits", static_cast<double>(l2_total.hits));
    stats.add("l2.misses", static_cast<double>(l2_total.misses));
    stats.add("l1i.fetches", static_cast<double>(fetch_total));
    directory_.exportStats(stats, "directory");
    dram_.exportStats(stats, "dram");
}

CacheSystem::Snap
CacheSystem::save() const
{
    Snap snap;
    snap.dram = dram_;
    snap.directory = directory_;
    snap.l1d.reserve(numCores_);
    snap.l2.reserve(numCores_);
    for (unsigned c = 0; c < numCores_; ++c) {
        snap.l1d.push_back(*l1d_[c]);
        snap.l2.push_back(*l2_[c]);
    }
    snap.fetches = fetches_;
    return snap;
}

void
CacheSystem::restore(const Snap &snap)
{
    ACR_ASSERT(snap.l1d.size() == numCores_ && snap.l2.size() == numCores_,
               "snapshot geometry mismatch");
    dram_ = *snap.dram;
    directory_ = *snap.directory;
    for (unsigned c = 0; c < numCores_; ++c) {
        *l1d_[c] = snap.l1d[c];
        *l2_[c] = snap.l2[c];
    }
    fetches_ = snap.fetches;
}

} // namespace acr::cache
