#include "cache/directory.hh"

#include <bit>

#include "common/logging.hh"

namespace acr::cache
{

Directory::Directory(unsigned num_cores)
    : numCores_(num_cores)
{
    ACR_ASSERT(num_cores >= 1 && num_cores <= 64,
               "directory supports 1..64 cores, got %u", num_cores);
    interaction_.assign(numCores_, 0);
    clearInteractions();
}

void
Directory::recordInteraction(CoreId a, CoreId b)
{
    interaction_[a] |= SharerMask{1} << b;
    interaction_[b] |= SharerMask{1} << a;
}

CoreId
Directory::onRead(CoreId core, LineId line)
{
    Entry &entry = entries_[line];
    CoreId forwarder = kInvalidCore;

    if (entry.owner != kInvalidCore && entry.owner != core) {
        // Remote owner supplies the data and downgrades to shared.
        recordInteraction(core, entry.owner);
        ++counters_.ownerForwards;
        forwarder = entry.owner;
        entry.owner = kInvalidCore;
    }
    entry.sharers |= SharerMask{1} << core;
    ++counters_.reads;
    return forwarder;
}

SharerMask
Directory::onWrite(CoreId core, LineId line)
{
    Entry &entry = entries_[line];
    const SharerMask self = SharerMask{1} << core;
    SharerMask remote = entry.sharers & ~self;
    if (entry.owner != kInvalidCore && entry.owner != core)
        remote |= SharerMask{1} << entry.owner;

    for (CoreId c = 0; c < numCores_; ++c) {
        if (remote & (SharerMask{1} << c))
            recordInteraction(core, c);
    }

    entry.sharers = self;
    entry.owner = core;
    ++counters_.writes;
    counters_.invalidationsSent +=
        static_cast<std::uint64_t>(std::popcount(remote));
    return remote;
}

void
Directory::onEviction(CoreId core, LineId line)
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        return;
    it->second.sharers &= ~(SharerMask{1} << core);
    if (it->second.owner == core)
        it->second.owner = kInvalidCore;
    if (it->second.sharers == 0 && it->second.owner == kInvalidCore)
        entries_.erase(it);
}

SharerMask
Directory::sharers(LineId line) const
{
    auto it = entries_.find(line);
    return it == entries_.end() ? 0 : it->second.sharers;
}

CoreId
Directory::owner(LineId line) const
{
    auto it = entries_.find(line);
    return it == entries_.end() ? kInvalidCore : it->second.owner;
}

SharerMask
Directory::interactions(CoreId core) const
{
    ACR_ASSERT(core < numCores_, "bad core id %u", core);
    return interaction_[core];
}

std::vector<SharerMask>
Directory::groupsOf(const std::vector<SharerMask> &adjacency)
{
    const unsigned n = static_cast<unsigned>(adjacency.size());
    std::vector<CoreId> parent(n);
    for (CoreId c = 0; c < n; ++c)
        parent[c] = c;

    auto find = [&](CoreId x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };

    for (CoreId c = 0; c < n; ++c) {
        for (CoreId d = 0; d < n; ++d) {
            if (adjacency[c] & (SharerMask{1} << d)) {
                CoreId a = find(c);
                CoreId b = find(d);
                if (a != b)
                    parent[b] = a;
            }
        }
    }

    std::vector<SharerMask> masks(n, 0);
    for (CoreId c = 0; c < n; ++c)
        masks[find(c)] |= SharerMask{1} << c;

    std::vector<SharerMask> groups;
    for (CoreId c = 0; c < n; ++c) {
        if (find(c) == c)
            groups.push_back(masks[c]);
    }
    return groups;
}

std::vector<SharerMask>
Directory::communicationGroups() const
{
    return groupsOf(interaction_);
}

void
Directory::clearInteractions()
{
    for (CoreId c = 0; c < numCores_; ++c)
        interaction_[c] = SharerMask{1} << c;
}

void
Directory::reset()
{
    entries_.clear();
    clearInteractions();
}

void
Directory::dropCores(SharerMask cores)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        Entry &entry = it->second;
        entry.sharers &= ~cores;
        if (entry.owner != kInvalidCore &&
            (cores & (SharerMask{1} << entry.owner))) {
            entry.owner = kInvalidCore;
        }
        if (entry.sharers == 0 && entry.owner == kInvalidCore)
            it = entries_.erase(it);
        else
            ++it;
    }
}

void
Directory::exportStats(StatSet &stats, const std::string &prefix) const
{
    stats.add(prefix + ".reads", static_cast<double>(counters_.reads));
    stats.add(prefix + ".writes", static_cast<double>(counters_.writes));
    stats.add(prefix + ".invalidationsSent",
              static_cast<double>(counters_.invalidationsSent));
    stats.add(prefix + ".ownerForwards",
              static_cast<double>(counters_.ownerForwards));
}

} // namespace acr::cache
