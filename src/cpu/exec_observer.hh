/**
 * @file
 * Observation interface onto the dynamic instruction stream.
 *
 * This is the simulator's equivalent of the paper's Pin instrumentation:
 * the dynamic slicer tracks register producer chains through it, and the
 * checkpoint substrate intercepts stores for undo logging. One observer is
 * attached per run; composite observers fan events out.
 */

#ifndef ACR_CPU_EXEC_OBSERVER_HH
#define ACR_CPU_EXEC_OBSERVER_HH

#include "common/types.hh"
#include "isa/instruction.hh"

namespace acr::cpu
{

/** Everything knowable about one retired dynamic instruction. */
struct InstrEvent
{
    CoreId core = 0;
    /** Static pc of the instruction. */
    std::size_t pc = 0;
    const isa::Instruction *inst = nullptr;

    /**
     * Value produced: rd's new value for ALU ops and loads, the stored
     * value for stores, 0 otherwise.
     */
    Word result = 0;

    /** Effective address for loads/stores. */
    Addr addr = 0;

    /** Previous memory value at addr, for stores (the undo-log datum). */
    Word oldValue = 0;
};

/** Callback interface invoked once per retired instruction. */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;
    virtual void onInstr(const InstrEvent &event) = 0;
};

} // namespace acr::cpu

#endif // ACR_CPU_EXEC_OBSERVER_HH
