#include "cpu/core.hh"

#include "common/logging.hh"

namespace acr::cpu
{

using isa::Opcode;

Core::Core(CoreId id, const isa::Program &program, mem::MainMemory &memory,
           cache::CacheSystem &caches, const CoreTimingConfig &timing)
    : id_(id), program_(program), memory_(memory), caches_(caches),
      timing_(timing)
{
    ACR_ASSERT(timing_.issueWidth >= 1, "issue width must be >= 1");
    ACR_ASSERT(timing_.mlpFactor >= 1.0, "mlp factor must be >= 1");
    regs_.fill(0);
}

CoreState
Core::run(std::uint64_t max_instrs, ExecObserver *observer)
{
    // Explicit virtual-dispatch instantiation of the header template.
    return run<ExecObserver>(max_instrs, observer);
}

void
Core::releaseBarrier(Cycle resume_cycle)
{
    ACR_ASSERT(state_ == CoreState::kAtBarrier,
               "releaseBarrier on core %u not at a barrier", id_);
    ACR_ASSERT(isa::isBarrier(program_.at(pc_).op),
               "core %u barrier state desynced from pc", id_);
    pc_ += 1;
    state_ = CoreState::kRunning;
    ++barrierEpoch_;
    setCycle(resume_cycle);
}

void
Core::setCycle(Cycle cycle)
{
    ACR_ASSERT(cycle >= cycle_,
               "core %u clock would move backwards (%llu -> %llu)", id_,
               static_cast<unsigned long long>(cycle_),
               static_cast<unsigned long long>(cycle));
    cycle_ = cycle;
}

ArchState
Core::saveArch() const
{
    ArchState arch;
    arch.pc = pc_;
    arch.regs = regs_;
    arch.instrsRetired = counters_.instrs;
    arch.state = state_;
    arch.barrierEpoch = barrierEpoch_;
    return arch;
}

void
Core::restoreArch(const ArchState &arch)
{
    pc_ = arch.pc;
    regs_ = arch.regs;
    counters_.instrs = arch.instrsRetired;
    state_ = arch.state;
    barrierEpoch_ = arch.barrierEpoch;
    // A corruption scheduled but not yet applied dies with the rollback.
    corruptMask_.reset();
}

void
Core::scheduleCorruption(Word mask)
{
    ACR_ASSERT(mask != 0, "corruption mask must flip at least one bit");
    corruptMask_ = mask;
}

std::optional<Cycle>
Core::takeCorruptionEvent()
{
    auto event = corruptionEvent_;
    corruptionEvent_.reset();
    return event;
}

void
Core::exportStats(StatSet &stats, const std::string &prefix) const
{
    stats.add(prefix + ".instrs", static_cast<double>(counters_.instrs));
    stats.add(prefix + ".aluOps", static_cast<double>(counters_.aluOps));
    stats.add(prefix + ".loads", static_cast<double>(counters_.loads));
    stats.add(prefix + ".stores", static_cast<double>(counters_.stores));
    stats.add(prefix + ".branches",
              static_cast<double>(counters_.branches));
    stats.add(prefix + ".barriers",
              static_cast<double>(counters_.barriers));
    stats.add(prefix + ".memStallCycles",
              static_cast<double>(counters_.memStallCycles));
}

} // namespace acr::cpu
