#include "cpu/core.hh"

#include "common/logging.hh"

namespace acr::cpu
{

using isa::Opcode;

Core::Core(CoreId id, const isa::Program &program, mem::MainMemory &memory,
           cache::CacheSystem &caches, const CoreTimingConfig &timing)
    : id_(id), program_(program), memory_(memory), caches_(caches),
      timing_(timing)
{
    ACR_ASSERT(timing_.issueWidth >= 1, "issue width must be >= 1");
    ACR_ASSERT(timing_.mlpFactor >= 1.0, "mlp factor must be >= 1");
    regs_.fill(0);
}

CoreState
Core::run(std::uint64_t max_instrs, ExecObserver *observer)
{
    if (state_ != CoreState::kRunning)
        return state_;

    const Cycle l1d_latency = caches_.config().l1d.latency;

    for (std::uint64_t n = 0; n < max_instrs; ++n) {
        ACR_ASSERT(pc_ < program_.size(), "core %u ran off program end",
                   id_);
        const isa::Instruction &inst = program_.at(pc_);
        caches_.fetch(id_);

        InstrEvent event;
        event.core = id_;
        event.pc = pc_;
        event.inst = &inst;

        // Issue-slot accounting shared by all instruction classes.
        if (++issueBuf_ >= timing_.issueWidth) {
            issueBuf_ = 0;
            ++cycle_;
        }

        std::size_t next_pc = pc_ + 1;

        if (isSliceable(inst.op)) {
            Word a = regs_[inst.rs1];
            Word b = regs_[inst.rs2];
            Word value = isa::evalArith(inst.op, a, b, inst.imm, id_);
            if (corruptMask_) {
                value ^= *corruptMask_;
                corruptMask_.reset();
                corruptionEvent_ = cycle_;
            }
            regs_[inst.rd] = value;
            regs_[0] = 0;
            event.result = value;
            ++counters_.aluOps;
        } else if (isa::isLoad(inst.op)) {
            Addr addr = regs_[inst.rs1] + static_cast<Word>(inst.imm);
            Word value = memory_.read(addr);
            if (corruptMask_) {
                value ^= *corruptMask_;
                corruptMask_.reset();
                corruptionEvent_ = cycle_;
            }
            Cycle done = caches_.dataAccess(id_, addr, false, cycle_);
            Cycle latency = done - cycle_;
            if (latency > l1d_latency) {
                Cycle stall = static_cast<Cycle>(
                    static_cast<double>(latency - l1d_latency) /
                    timing_.mlpFactor);
                cycle_ += stall;
                counters_.memStallCycles += stall;
            }
            regs_[inst.rd] = value;
            regs_[0] = 0;
            event.result = value;
            event.addr = addr;
            ++counters_.loads;
        } else if (isa::isStore(inst.op)) {
            Addr addr = regs_[inst.rs1] + static_cast<Word>(inst.imm);
            Word value = regs_[inst.rs2];
            Word old = memory_.write(addr, value);
            Cycle done = caches_.dataAccess(id_, addr, true, cycle_);
            Cycle latency = done - cycle_;
            if (latency > l1d_latency) {
                Cycle stall = static_cast<Cycle>(
                    static_cast<double>(latency - l1d_latency) /
                    timing_.mlpFactor);
                cycle_ += stall;
                counters_.memStallCycles += stall;
            }
            event.result = value;
            event.addr = addr;
            event.oldValue = old;
            ++counters_.stores;
        } else if (isa::isBranch(inst.op)) {
            bool taken = false;
            Word a = regs_[inst.rs1];
            Word b = regs_[inst.rs2];
            switch (inst.op) {
              case Opcode::kBeq: taken = a == b; break;
              case Opcode::kBne: taken = a != b; break;
              case Opcode::kBltu: taken = a < b; break;
              case Opcode::kBgeu: taken = a >= b; break;
              case Opcode::kBlts:
                taken = static_cast<SWord>(a) < static_cast<SWord>(b);
                break;
              case Opcode::kJmp: taken = true; break;
              default:
                panic("unhandled branch opcode");
            }
            if (taken) {
                next_pc = static_cast<std::size_t>(inst.imm);
                cycle_ += timing_.takenBranchPenalty;
            }
            ++counters_.branches;
        } else if (isa::isBarrier(inst.op)) {
            // Stay at this pc; the system releases us past it.
            state_ = CoreState::kAtBarrier;
            ++counters_.barriers;
            ++counters_.instrs;
            if (observer)
                observer->onInstr(event);
            return state_;
        } else if (isa::isHalt(inst.op)) {
            state_ = CoreState::kHalted;
            ++counters_.instrs;
            if (observer)
                observer->onInstr(event);
            return state_;
        } else {
            panic("core %u: unknown opcode at pc %zu", id_, pc_);
        }

        pc_ = next_pc;
        ++counters_.instrs;
        if (observer)
            observer->onInstr(event);
    }
    return state_;
}

void
Core::releaseBarrier(Cycle resume_cycle)
{
    ACR_ASSERT(state_ == CoreState::kAtBarrier,
               "releaseBarrier on core %u not at a barrier", id_);
    ACR_ASSERT(isa::isBarrier(program_.at(pc_).op),
               "core %u barrier state desynced from pc", id_);
    pc_ += 1;
    state_ = CoreState::kRunning;
    ++barrierEpoch_;
    setCycle(resume_cycle);
}

void
Core::setCycle(Cycle cycle)
{
    ACR_ASSERT(cycle >= cycle_,
               "core %u clock would move backwards (%llu -> %llu)", id_,
               static_cast<unsigned long long>(cycle_),
               static_cast<unsigned long long>(cycle));
    cycle_ = cycle;
}

ArchState
Core::saveArch() const
{
    ArchState arch;
    arch.pc = pc_;
    arch.regs = regs_;
    arch.instrsRetired = counters_.instrs;
    arch.state = state_;
    arch.barrierEpoch = barrierEpoch_;
    return arch;
}

void
Core::restoreArch(const ArchState &arch)
{
    pc_ = arch.pc;
    regs_ = arch.regs;
    counters_.instrs = arch.instrsRetired;
    state_ = arch.state;
    barrierEpoch_ = arch.barrierEpoch;
    // A corruption scheduled but not yet applied dies with the rollback.
    corruptMask_.reset();
}

void
Core::scheduleCorruption(Word mask)
{
    ACR_ASSERT(mask != 0, "corruption mask must flip at least one bit");
    corruptMask_ = mask;
}

std::optional<Cycle>
Core::takeCorruptionEvent()
{
    auto event = corruptionEvent_;
    corruptionEvent_.reset();
    return event;
}

void
Core::exportStats(StatSet &stats, const std::string &prefix) const
{
    stats.add(prefix + ".instrs", static_cast<double>(counters_.instrs));
    stats.add(prefix + ".aluOps", static_cast<double>(counters_.aluOps));
    stats.add(prefix + ".loads", static_cast<double>(counters_.loads));
    stats.add(prefix + ".stores", static_cast<double>(counters_.stores));
    stats.add(prefix + ".branches",
              static_cast<double>(counters_.branches));
    stats.add(prefix + ".barriers",
              static_cast<double>(counters_.barriers));
    stats.add(prefix + ".memStallCycles",
              static_cast<double>(counters_.memStallCycles));
}

} // namespace acr::cpu
