/**
 * @file
 * In-order core model per Table I of the paper: 4-issue, 1.09 GHz, eight
 * outstanding loads/stores (approximated by an overlap divisor on miss
 * stalls), with functional execution against MainMemory and timing
 * against the CacheSystem.
 */

#ifndef ACR_CPU_CORE_HH
#define ACR_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <optional>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/exec_observer.hh"
#include "isa/program.hh"
#include "mem/main_memory.hh"

namespace acr::cpu
{

/** Issue/stall parameters of the in-order pipeline. */
struct CoreTimingConfig
{
    /** Instructions issued per cycle (Table I: 4-issue). */
    unsigned issueWidth = 4;

    /**
     * Divisor applied to exposed miss latency, approximating the memory
     * level parallelism of 8 outstanding loads/stores on an in-order
     * core.
     */
    double mlpFactor = 2.0;

    /** Extra cycles charged for a taken branch. */
    Cycle takenBranchPenalty = 1;
};

/** Execution state of a core. */
enum class CoreState
{
    kRunning,
    kAtBarrier,
    kHalted,
};

/**
 * Architectural state captured by a checkpoint and restored by rollback.
 * instrsRetired is included so that "program progress" (which drives the
 * checkpoint and error schedules) rewinds together with the rollback.
 */
struct ArchState
{
    std::size_t pc = 0;
    std::array<Word, isa::kNumRegs> regs{};
    std::uint64_t instrsRetired = 0;
    CoreState state = CoreState::kRunning;

    /**
     * Barriers passed so far. Restored on rollback, which lets a
     * rolled-back group re-arrive at barriers whose other participants
     * are already past them: the system releases a waiter as soon as no
     * live core is at a smaller epoch (see MulticoreSystem::step).
     */
    std::uint64_t barrierEpoch = 0;

    bool operator==(const ArchState &other) const = default;
};

/** Plain-integer per-core event counters. */
struct CoreCounters
{
    std::uint64_t instrs = 0;
    std::uint64_t aluOps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t barriers = 0;
    std::uint64_t memStallCycles = 0;
};

/** One simulated in-order core executing an SPMD program. */
class Core
{
  public:
    Core(CoreId id, const isa::Program &program, mem::MainMemory &memory,
         cache::CacheSystem &caches, const CoreTimingConfig &timing);

    /**
     * Execute up to @p max_instrs instructions, stopping early at a
     * barrier or halt. @p observer (may be null) sees every retired
     * instruction.
     * @return state after the quantum.
     */
    CoreState run(std::uint64_t max_instrs, ExecObserver *observer);

    CoreId id() const { return id_; }
    CoreState state() const { return state_; }
    bool halted() const { return state_ == CoreState::kHalted; }
    bool atBarrier() const { return state_ == CoreState::kAtBarrier; }

    /**
     * Resume past the barrier the core is waiting at; the caller (the
     * system's barrier logic) supplies the synchronized resume cycle.
     */
    void releaseBarrier(Cycle resume_cycle);

    /** Local clock. */
    Cycle cycle() const { return cycle_; }

    /** Advance the local clock (coordination, checkpoint stalls). */
    void setCycle(Cycle cycle);

    std::uint64_t instrsRetired() const { return counters_.instrs; }

    /** Barriers passed (rolls back with architectural state). */
    std::uint64_t barrierEpoch() const { return barrierEpoch_; }

    /** Capture architectural state for a checkpoint. */
    ArchState saveArch() const;

    /** Restore architectural state from a checkpoint (rollback). */
    void restoreArch(const ArchState &arch);

    /** Read a register (tests, diagnostics). */
    Word reg(unsigned index) const { return regs_[index]; }

    /**
     * Fault injection: XOR @p mask into the destination of the next
     * register-writing instruction (fail-stop model: the wrong value
     * propagates through registers and stores until detection).
     */
    void scheduleCorruption(Word mask);

    /** True while a scheduled corruption has not yet been applied. */
    bool corruptionPending() const { return corruptMask_.has_value(); }

    /** Drop a scheduled-but-unapplied corruption (victim rescheduling). */
    void cancelCorruption() { corruptMask_.reset(); }

    /**
     * Cycle at which the most recent corruption was applied, if one was
     * applied since the last call (consumed on read).
     */
    std::optional<Cycle> takeCorruptionEvent();

    const CoreCounters &counters() const { return counters_; }

    /** Publish counters as "<prefix>.instrs" etc. */
    void exportStats(StatSet &stats, const std::string &prefix) const;

  private:
    CoreId id_;
    const isa::Program &program_;
    mem::MainMemory &memory_;
    cache::CacheSystem &caches_;
    CoreTimingConfig timing_;

    std::size_t pc_ = 0;
    std::array<Word, isa::kNumRegs> regs_{};
    CoreState state_ = CoreState::kRunning;
    Cycle cycle_ = 0;
    unsigned issueBuf_ = 0;
    std::uint64_t barrierEpoch_ = 0;

    std::optional<Word> corruptMask_;
    std::optional<Cycle> corruptionEvent_;

    CoreCounters counters_;
};

} // namespace acr::cpu

#endif // ACR_CPU_CORE_HH
