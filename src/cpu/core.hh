/**
 * @file
 * In-order core model per Table I of the paper: 4-issue, 1.09 GHz, eight
 * outstanding loads/stores (approximated by an overlap divisor on miss
 * stalls), with functional execution against MainMemory and timing
 * against the CacheSystem.
 */

#ifndef ACR_CPU_CORE_HH
#define ACR_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <optional>

#include "cache/hierarchy.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/exec_observer.hh"
#include "isa/program.hh"
#include "mem/main_memory.hh"

namespace acr::cpu
{

/** Issue/stall parameters of the in-order pipeline. */
struct CoreTimingConfig
{
    /** Instructions issued per cycle (Table I: 4-issue). */
    unsigned issueWidth = 4;

    /**
     * Divisor applied to exposed miss latency, approximating the memory
     * level parallelism of 8 outstanding loads/stores on an in-order
     * core.
     */
    double mlpFactor = 2.0;

    /** Extra cycles charged for a taken branch. */
    Cycle takenBranchPenalty = 1;
};

/** Execution state of a core. */
enum class CoreState
{
    kRunning,
    kAtBarrier,
    kHalted,
};

/**
 * Architectural state captured by a checkpoint and restored by rollback.
 * instrsRetired is included so that "program progress" (which drives the
 * checkpoint and error schedules) rewinds together with the rollback.
 */
struct ArchState
{
    std::size_t pc = 0;
    std::array<Word, isa::kNumRegs> regs{};
    std::uint64_t instrsRetired = 0;
    CoreState state = CoreState::kRunning;

    /**
     * Barriers passed so far. Restored on rollback, which lets a
     * rolled-back group re-arrive at barriers whose other participants
     * are already past them: the system releases a waiter as soon as no
     * live core is at a smaller epoch (see MulticoreSystem::step).
     */
    std::uint64_t barrierEpoch = 0;

    bool operator==(const ArchState &other) const = default;
};

/** Plain-integer per-core event counters. */
struct CoreCounters
{
    std::uint64_t instrs = 0;
    std::uint64_t aluOps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t barriers = 0;
    std::uint64_t memStallCycles = 0;
};

/** One simulated in-order core executing an SPMD program. */
class Core
{
  public:
    Core(CoreId id, const isa::Program &program, mem::MainMemory &memory,
         cache::CacheSystem &caches, const CoreTimingConfig &timing);

    /**
     * Execute up to @p max_instrs instructions, stopping early at a
     * barrier or halt. @p observer (may be null) sees every retired
     * instruction.
     *
     * The quantum loop is a template over the concrete observer type:
     * when the caller passes a final observer class (the experiment
     * driver, the slice pass), the per-instruction observer call is
     * devirtualized and inlined into the dispatch loop instead of
     * costing an indirect call per retired instruction. Passing a
     * plain ExecObserver* (or nullptr) selects the non-template
     * overload below and keeps the virtual behavior.
     * @return state after the quantum.
     */
    template <class Obs>
    CoreState run(std::uint64_t max_instrs, Obs *observer);

    /** Virtual-dispatch variant (tests, generic drivers). */
    CoreState run(std::uint64_t max_instrs, ExecObserver *observer);

    CoreId id() const { return id_; }
    CoreState state() const { return state_; }
    bool halted() const { return state_ == CoreState::kHalted; }
    bool atBarrier() const { return state_ == CoreState::kAtBarrier; }

    /**
     * Resume past the barrier the core is waiting at; the caller (the
     * system's barrier logic) supplies the synchronized resume cycle.
     */
    void releaseBarrier(Cycle resume_cycle);

    /** Local clock. */
    Cycle cycle() const { return cycle_; }

    /** Advance the local clock (coordination, checkpoint stalls). */
    void setCycle(Cycle cycle);

    std::uint64_t instrsRetired() const { return counters_.instrs; }

    /** Barriers passed (rolls back with architectural state). */
    std::uint64_t barrierEpoch() const { return barrierEpoch_; }

    /** Capture architectural state for a checkpoint. */
    ArchState saveArch() const;

    /** Restore architectural state from a checkpoint (rollback). */
    void restoreArch(const ArchState &arch);

    /** Read a register (tests, diagnostics). */
    Word reg(unsigned index) const { return regs_[index]; }

    /**
     * Fault injection: XOR @p mask into the destination of the next
     * register-writing instruction (fail-stop model: the wrong value
     * propagates through registers and stores until detection).
     */
    void scheduleCorruption(Word mask);

    /** True while a scheduled corruption has not yet been applied. */
    bool corruptionPending() const { return corruptMask_.has_value(); }

    /** Drop a scheduled-but-unapplied corruption (victim rescheduling). */
    void cancelCorruption() { corruptMask_.reset(); }

    /**
     * Cycle at which the most recent corruption was applied, if one was
     * applied since the last call (consumed on read).
     */
    std::optional<Cycle> takeCorruptionEvent();

    const CoreCounters &counters() const { return counters_; }

    /**
     * Full core state for the harness's error-free prefix-sharing
     * snapshot (DESIGN.md §13) — everything run() reads or writes, so
     * a restored core replays bit-identically to one that simulated
     * the prefix itself.
     */
    struct Snap
    {
        std::size_t pc = 0;
        std::array<Word, isa::kNumRegs> regs{};
        CoreState state = CoreState::kRunning;
        Cycle cycle = 0;
        unsigned issueBuf = 0;
        std::uint64_t barrierEpoch = 0;
        std::optional<Word> corruptMask;
        std::optional<Cycle> corruptionEvent;
        CoreCounters counters;
    };

    Snap
    save() const
    {
        return {pc_,         regs_,         state_,
                cycle_,      issueBuf_,     barrierEpoch_,
                corruptMask_, corruptionEvent_, counters_};
    }

    void
    restore(const Snap &snap)
    {
        pc_ = snap.pc;
        regs_ = snap.regs;
        state_ = snap.state;
        cycle_ = snap.cycle;
        issueBuf_ = snap.issueBuf;
        barrierEpoch_ = snap.barrierEpoch;
        corruptMask_ = snap.corruptMask;
        corruptionEvent_ = snap.corruptionEvent;
        counters_ = snap.counters;
    }

    /** Publish counters as "<prefix>.instrs" etc. */
    void exportStats(StatSet &stats, const std::string &prefix) const;

  private:
    CoreId id_;
    const isa::Program &program_;
    mem::MainMemory &memory_;
    cache::CacheSystem &caches_;
    CoreTimingConfig timing_;

    std::size_t pc_ = 0;
    std::array<Word, isa::kNumRegs> regs_{};
    CoreState state_ = CoreState::kRunning;
    Cycle cycle_ = 0;
    unsigned issueBuf_ = 0;
    std::uint64_t barrierEpoch_ = 0;

    std::optional<Word> corruptMask_;
    std::optional<Cycle> corruptionEvent_;

    CoreCounters counters_;
};

// The dispatch loop lives in the header so every observer type gets
// its own fully-inlined instantiation (see the run() doc comment).
//
// The hot core state (pc, cycle, issue slot, counters, fetch tally)
// lives in locals for the whole quantum and is committed back to the
// members only at the exits. This is safe because no observer reads
// core state mid-quantum — the checkpoint substrate, the ACR engine,
// and the slicer all work from the InstrEvent alone — and it lets the
// compiler keep the loop state in registers across the inlined
// observer body instead of spilling every field each iteration.
template <class Obs>
CoreState
Core::run(std::uint64_t max_instrs, Obs *observer)
{
    if (state_ != CoreState::kRunning)
        return state_;

    const Cycle l1d_latency = caches_.config().l1d.latency;

    std::size_t pc = pc_;
    Cycle cycle = cycle_;
    unsigned issue_buf = issueBuf_;
    CoreCounters cnt = counters_;
    std::uint64_t fetched = 0;

    auto commit = [&] {
        pc_ = pc;
        cycle_ = cycle;
        issueBuf_ = issue_buf;
        counters_ = cnt;
        caches_.addFetches(id_, fetched);
    };

    for (std::uint64_t n = 0; n < max_instrs; ++n) {
        ACR_ASSERT(pc < program_.size(), "core %u ran off program end",
                   id_);
        const isa::Instruction &inst = program_.at(pc);
        ++fetched;

        InstrEvent event;
        event.core = id_;
        event.pc = pc;
        event.inst = &inst;

        // Issue-slot accounting shared by all instruction classes.
        if (++issue_buf >= timing_.issueWidth) {
            issue_buf = 0;
            ++cycle;
        }

        std::size_t next_pc = pc + 1;

        if (isSliceable(inst.op)) {
            Word a = regs_[inst.rs1];
            Word b = regs_[inst.rs2];
            Word value = isa::evalArith(inst.op, a, b, inst.imm, id_);
            if (corruptMask_) {
                value ^= *corruptMask_;
                corruptMask_.reset();
                corruptionEvent_ = cycle;
            }
            regs_[inst.rd] = value;
            regs_[0] = 0;
            event.result = value;
            ++cnt.aluOps;
        } else if (isa::isLoad(inst.op)) {
            Addr addr = regs_[inst.rs1] + static_cast<Word>(inst.imm);
            Word value = memory_.read(addr);
            if (corruptMask_) {
                value ^= *corruptMask_;
                corruptMask_.reset();
                corruptionEvent_ = cycle;
            }
            Cycle done = caches_.dataAccess(id_, addr, false, cycle);
            Cycle latency = done - cycle;
            if (latency > l1d_latency) {
                Cycle stall = static_cast<Cycle>(
                    static_cast<double>(latency - l1d_latency) /
                    timing_.mlpFactor);
                cycle += stall;
                cnt.memStallCycles += stall;
            }
            regs_[inst.rd] = value;
            regs_[0] = 0;
            event.result = value;
            event.addr = addr;
            ++cnt.loads;
        } else if (isa::isStore(inst.op)) {
            Addr addr = regs_[inst.rs1] + static_cast<Word>(inst.imm);
            Word value = regs_[inst.rs2];
            Word old = memory_.write(addr, value);
            Cycle done = caches_.dataAccess(id_, addr, true, cycle);
            Cycle latency = done - cycle;
            if (latency > l1d_latency) {
                Cycle stall = static_cast<Cycle>(
                    static_cast<double>(latency - l1d_latency) /
                    timing_.mlpFactor);
                cycle += stall;
                cnt.memStallCycles += stall;
            }
            event.result = value;
            event.addr = addr;
            event.oldValue = old;
            ++cnt.stores;
        } else if (isa::isBranch(inst.op)) {
            bool taken = false;
            Word a = regs_[inst.rs1];
            Word b = regs_[inst.rs2];
            switch (inst.op) {
              case isa::Opcode::kBeq: taken = a == b; break;
              case isa::Opcode::kBne: taken = a != b; break;
              case isa::Opcode::kBltu: taken = a < b; break;
              case isa::Opcode::kBgeu: taken = a >= b; break;
              case isa::Opcode::kBlts:
                taken = static_cast<SWord>(a) < static_cast<SWord>(b);
                break;
              case isa::Opcode::kJmp: taken = true; break;
              default:
                panic("unhandled branch opcode");
            }
            if (taken) {
                next_pc = static_cast<std::size_t>(inst.imm);
                cycle += timing_.takenBranchPenalty;
            }
            ++cnt.branches;
        } else if (isa::isBarrier(inst.op)) {
            // Stay at this pc; the system releases us past it.
            state_ = CoreState::kAtBarrier;
            ++cnt.barriers;
            ++cnt.instrs;
            commit();
            if (observer)
                observer->onInstr(event);
            return state_;
        } else if (isa::isHalt(inst.op)) {
            state_ = CoreState::kHalted;
            ++cnt.instrs;
            commit();
            if (observer)
                observer->onInstr(event);
            return state_;
        } else {
            panic("core %u: unknown opcode at pc %zu", id_, pc);
        }

        pc = next_pc;
        ++cnt.instrs;
        if (observer)
            observer->onInstr(event);
    }
    commit();
    return state_;
}

} // namespace acr::cpu

#endif // ACR_CPU_CORE_HH
