/**
 * @file
 * McPAT-style per-event energy model at a 22 nm-class operating point.
 *
 * The model converts event counts (gathered as statistics by the cores,
 * caches, DRAM, checkpoint substrate and ACR structures) into picojoules,
 * plus leakage/clock static power integrated over wall-clock cycles. The
 * published constants preserve the paper's driving ratio: a DRAM access
 * costs three orders of magnitude more energy than an ALU operation —
 * the "imbalanced technology scaling" premise (Sec. I) that makes
 * recomputation cheaper than retrieval.
 */

#ifndef ACR_ENERGY_ENERGY_MODEL_HH
#define ACR_ENERGY_ENERGY_MODEL_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace acr::energy
{

/** Per-event energies in picojoules (22 nm-class defaults). */
struct EnergyConfig
{
    /** One integer ALU operation including register-file traffic. */
    double aluOpPj = 1.2;

    /** One instruction fetch from L1-I (amortized). */
    double fetchPj = 0.6;

    /** One L1-D access (hit or miss lookup). */
    double l1dAccessPj = 11.0;

    /** One L2 access. */
    double l2AccessPj = 46.0;

    /** One byte moved to/from DRAM (activation+IO amortized). */
    double dramBytePj = 14.0;

    /** One byte read from the NVM checkpoint tier (PCM-class: reads
     *  cost a little over DRAM, writes far more — the asymmetry that
     *  makes amnesic omission pay on the kNvm backend). */
    double nvmReadBytePj = 18.0;

    /** One byte written to the NVM checkpoint tier. */
    double nvmWriteBytePj = 70.0;

    /** One NVM persist fence (write-queue drain). */
    double nvmPersistPj = 120.0;

    /** One coherence message (invalidate / forward) over the NoC. */
    double nocMessagePj = 14.0;

    /** One AddrMap access (small on-chip buffer, modeled after L1-D
     *  per Sec. IV but far smaller; paper models it "after L1-D"). */
    double addrMapAccessPj = 3.0;

    /** One input-operand-buffer word read/write. */
    double operandBufferPj = 2.2;

    /** Static (leakage + clock) energy per core per cycle. */
    double staticPjPerCoreCycle = 35.0;
};

/** Energy accounting over a StatSet of event counts. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyConfig &config = EnergyConfig{});

    /**
     * Compute component and total energies from the event counters in
     * @p stats and write them back as "energy.*" entries (picojoules).
     *
     * Consumed counters: cores.aluOps, cores.instrs, l1d.hits/misses,
     * l2.hits/misses, l1i.fetches, dram.bytes,
     * directory.invalidationsSent/ownerForwards, acr.addrMapAccesses,
     * acr.operandBufferWords, nvm.bytesRead/bytesWritten/persists,
     * sim.maxCycle, sim.numCores.
     *
     * @return total energy in picojoules.
     */
    double annotate(StatSet &stats) const;

    /** Energy-delay product given total energy (pJ) and cycles. */
    static double
    edp(double energy_pj, Cycle cycles)
    {
        return energy_pj * static_cast<double>(cycles);
    }

    const EnergyConfig &config() const { return config_; }

  private:
    EnergyConfig config_;
};

} // namespace acr::energy

#endif // ACR_ENERGY_ENERGY_MODEL_HH
