#include "energy/energy_model.hh"

namespace acr::energy
{

EnergyModel::EnergyModel(const EnergyConfig &config)
    : config_(config)
{
}

double
EnergyModel::annotate(StatSet &stats) const
{
    const double alu = stats.get("cores.aluOps") * config_.aluOpPj;
    const double fetch = stats.get("l1i.fetches") * config_.fetchPj;
    const double l1d = (stats.get("l1d.hits") + stats.get("l1d.misses"))
                       * config_.l1dAccessPj;
    const double l2 = (stats.get("l2.hits") + stats.get("l2.misses"))
                      * config_.l2AccessPj;
    const double dram = stats.get("dram.bytes") * config_.dramBytePj;
    const double nvm = stats.get("nvm.bytesRead") * config_.nvmReadBytePj
                       + stats.get("nvm.bytesWritten")
                             * config_.nvmWriteBytePj
                       + stats.get("nvm.persists") * config_.nvmPersistPj;
    const double noc = (stats.get("directory.invalidationsSent") +
                        stats.get("directory.ownerForwards"))
                       * config_.nocMessagePj;
    const double addr_map = stats.get("acr.addrMapAccesses")
                            * config_.addrMapAccessPj;
    const double operand_buf = stats.get("acr.operandBufferWords")
                               * config_.operandBufferPj;
    const double replay = stats.get("acr.replayAluOps") * config_.aluOpPj;
    const double static_e = stats.get("sim.maxCycle")
                            * stats.get("sim.numCores")
                            * config_.staticPjPerCoreCycle;

    stats.set("energy.alu", alu);
    stats.set("energy.fetch", fetch);
    stats.set("energy.l1d", l1d);
    stats.set("energy.l2", l2);
    stats.set("energy.dram", dram);
    stats.set("energy.nvm", nvm);
    stats.set("energy.noc", noc);
    stats.set("energy.addrMap", addr_map);
    stats.set("energy.operandBuffer", operand_buf);
    stats.set("energy.sliceReplay", replay);
    stats.set("energy.static", static_e);

    const double total = alu + fetch + l1d + l2 + dram + nvm + noc
                         + addr_map + operand_buf + replay + static_e;
    stats.set("energy.total", total);
    return total;
}

} // namespace acr::energy
