#include "isa/instruction.hh"

#include "common/logging.hh"

namespace acr::isa
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kAdd: return "add";
      case Opcode::kSub: return "sub";
      case Opcode::kMul: return "mul";
      case Opcode::kDivu: return "divu";
      case Opcode::kRemu: return "remu";
      case Opcode::kAnd: return "and";
      case Opcode::kOr: return "or";
      case Opcode::kXor: return "xor";
      case Opcode::kShl: return "shl";
      case Opcode::kShr: return "shr";
      case Opcode::kSra: return "sra";
      case Opcode::kMin: return "min";
      case Opcode::kMax: return "max";
      case Opcode::kCmpEq: return "cmpeq";
      case Opcode::kCmpLtu: return "cmpltu";
      case Opcode::kCmpLts: return "cmplts";
      case Opcode::kAddi: return "addi";
      case Opcode::kMuli: return "muli";
      case Opcode::kAndi: return "andi";
      case Opcode::kOri: return "ori";
      case Opcode::kXori: return "xori";
      case Opcode::kShli: return "shli";
      case Opcode::kShri: return "shri";
      case Opcode::kMovi: return "movi";
      case Opcode::kTid: return "tid";
      case Opcode::kLoad: return "load";
      case Opcode::kStore: return "store";
      case Opcode::kBeq: return "beq";
      case Opcode::kBne: return "bne";
      case Opcode::kBltu: return "bltu";
      case Opcode::kBgeu: return "bgeu";
      case Opcode::kBlts: return "blts";
      case Opcode::kJmp: return "jmp";
      case Opcode::kBarrier: return "barrier";
      case Opcode::kHalt: return "halt";
      default: return "<bad>";
    }
}

void
evalArithBadOpcode(Opcode op)
{
    panic("evalArith on non-arithmetic opcode %s", opcodeName(op));
}

std::string
toString(const Instruction &inst)
{
    const char *name = opcodeName(inst.op);
    switch (inst.op) {
      case Opcode::kLoad:
        return csprintf("%-6s r%u, [r%u%+lld]", name, inst.rd, inst.rs1,
                        static_cast<long long>(inst.imm));
      case Opcode::kStore:
        return csprintf("%-6s [r%u%+lld], r%u%s", name, inst.rs1,
                        static_cast<long long>(inst.imm), inst.rs2,
                        inst.sliceHint ? "  ; assoc-addr" : "");
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBltu:
      case Opcode::kBgeu:
      case Opcode::kBlts:
        return csprintf("%-6s r%u, r%u, %lld", name, inst.rs1, inst.rs2,
                        static_cast<long long>(inst.imm));
      case Opcode::kJmp:
        return csprintf("%-6s %lld", name,
                        static_cast<long long>(inst.imm));
      case Opcode::kBarrier:
      case Opcode::kHalt:
        return name;
      case Opcode::kMovi:
        return csprintf("%-6s r%u, %lld", name, inst.rd,
                        static_cast<long long>(inst.imm));
      case Opcode::kTid:
        return csprintf("%-6s r%u", name, inst.rd);
      default:
        break;
    }
    if (readsRs2(inst.op)) {
        return csprintf("%-6s r%u, r%u, r%u", name, inst.rd, inst.rs1,
                        inst.rs2);
    }
    return csprintf("%-6s r%u, r%u, %lld", name, inst.rd, inst.rs1,
                    static_cast<long long>(inst.imm));
}

} // namespace acr::isa
