/**
 * @file
 * ProgramBuilder: an assembler-style API for constructing Programs with
 * symbolic labels, used by the workload generators and by tests.
 */

#ifndef ACR_ISA_BUILDER_HH
#define ACR_ISA_BUILDER_HH

#include <map>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace acr::isa
{

/**
 * Builds a Program instruction by instruction. Branch targets are symbolic
 * labels; forward references are fixed up in build(). build() validates
 * the result and calls fatal() on malformed programs (a workload-generator
 * bug is a user error from the simulator's perspective).
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** Current pc (index of the next emitted instruction). */
    std::size_t here() const { return code_.size(); }

    /** Define @p name at the current pc. */
    ProgramBuilder &label(const std::string &name);

    // --- Arithmetic/logic, register-register ---
    ProgramBuilder &add(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &sub(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &mul(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &divu(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &remu(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &and_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &or_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &xor_(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &shl(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &shr(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &sra(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &min(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &max(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &cmpeq(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &cmpltu(Reg rd, Reg rs1, Reg rs2);
    ProgramBuilder &cmplts(Reg rd, Reg rs1, Reg rs2);

    // --- Arithmetic/logic, register-immediate ---
    ProgramBuilder &addi(Reg rd, Reg rs1, SWord imm);
    ProgramBuilder &muli(Reg rd, Reg rs1, SWord imm);
    ProgramBuilder &andi(Reg rd, Reg rs1, SWord imm);
    ProgramBuilder &ori(Reg rd, Reg rs1, SWord imm);
    ProgramBuilder &xori(Reg rd, Reg rs1, SWord imm);
    ProgramBuilder &shli(Reg rd, Reg rs1, SWord imm);
    ProgramBuilder &shri(Reg rd, Reg rs1, SWord imm);
    ProgramBuilder &movi(Reg rd, SWord imm);
    ProgramBuilder &mov(Reg rd, Reg rs);   ///< addi rd, rs, 0
    ProgramBuilder &tid(Reg rd);

    // --- Memory ---
    ProgramBuilder &load(Reg rd, Reg base, SWord offset = 0);
    ProgramBuilder &store(Reg base, Reg value, SWord offset = 0);

    // --- Control flow (targets are labels) ---
    ProgramBuilder &beq(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &bne(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &bltu(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &bgeu(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &blts(Reg rs1, Reg rs2, const std::string &target);
    ProgramBuilder &jmp(const std::string &target);

    // --- Synchronization / termination ---
    ProgramBuilder &barrier();
    ProgramBuilder &halt();

    // --- Data segment ---
    ProgramBuilder &data(Addr addr, Word value);

    /**
     * Resolve labels, validate, and return the finished program.
     * fatal() on undefined labels or validation failure.
     */
    Program build();

  private:
    ProgramBuilder &emit(Instruction inst);
    ProgramBuilder &branchTo(Opcode op, Reg rs1, Reg rs2,
                             const std::string &target);

    Program program_;
    std::vector<Instruction> code_;
    std::map<std::string, std::size_t> labels_;
    /// (pc of branch, label) pairs awaiting resolution.
    std::vector<std::pair<std::size_t, std::string>> fixups_;
};

} // namespace acr::isa

#endif // ACR_ISA_BUILDER_HH
