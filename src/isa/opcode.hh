/**
 * @file
 * Opcode set of the simulated RISC-like ISA.
 *
 * The classification helpers below are the contract between the CPU model
 * and the dynamic slicer: a *sliceable* (arithmetic/logic) instruction may
 * appear inside an ACR Slice, while loads, stores, branches, barriers and
 * halts may not (Sec. II-B of the paper: Slices are value-centric backward
 * slices containing neither memory instructions nor branches).
 */

#ifndef ACR_ISA_OPCODE_HH
#define ACR_ISA_OPCODE_HH

#include <cstdint>

namespace acr::isa
{

/** Every operation the simulated machine can execute. */
enum class Opcode : std::uint8_t
{
    // Arithmetic/logic, register-register (sliceable).
    kAdd,
    kSub,
    kMul,
    kDivu,   ///< Unsigned divide; x/0 is defined as 0.
    kRemu,   ///< Unsigned remainder; x%0 is defined as x.
    kAnd,
    kOr,
    kXor,
    kShl,    ///< Logical shift left by (rs2 & 63).
    kShr,    ///< Logical shift right by (rs2 & 63).
    kSra,    ///< Arithmetic shift right by (rs2 & 63).
    kMin,    ///< Unsigned minimum.
    kMax,    ///< Unsigned maximum.
    kCmpEq,  ///< rd = (rs1 == rs2) ? 1 : 0.
    kCmpLtu, ///< rd = (rs1 < rs2), unsigned.
    kCmpLts, ///< rd = (rs1 < rs2), signed.

    // Arithmetic/logic, register-immediate (sliceable).
    kAddi,
    kMuli,
    kAndi,
    kOri,
    kXori,
    kShli,
    kShri,
    kMovi,   ///< rd = imm (constant producer).
    kTid,    ///< rd = core/thread id (deterministic per core).

    // Memory (never inside a Slice).
    kLoad,   ///< rd = M[rs1 + imm].
    kStore,  ///< M[rs1 + imm] = rs2.

    // Control flow (never inside a Slice).
    kBeq,    ///< if (rs1 == rs2) pc = imm.
    kBne,
    kBltu,
    kBgeu,
    kBlts,   ///< Signed less-than branch.
    kJmp,    ///< pc = imm.

    // Synchronization / termination.
    kBarrier, ///< All cores rendezvous.
    kHalt,    ///< Core finished.

    kNumOpcodes,
};

/** True for arithmetic/logic operations allowed inside an ACR Slice. */
constexpr bool
isSliceable(Opcode op)
{
    return op < Opcode::kLoad;
}

constexpr bool isLoad(Opcode op) { return op == Opcode::kLoad; }
constexpr bool isStore(Opcode op) { return op == Opcode::kStore; }

constexpr bool
isMem(Opcode op)
{
    return isLoad(op) || isStore(op);
}

constexpr bool
isBranch(Opcode op)
{
    return op >= Opcode::kBeq && op <= Opcode::kJmp;
}

constexpr bool isBarrier(Opcode op) { return op == Opcode::kBarrier; }
constexpr bool isHalt(Opcode op) { return op == Opcode::kHalt; }

/** True if the instruction writes its destination register. */
constexpr bool
writesReg(Opcode op)
{
    return isSliceable(op) || isLoad(op);
}

/** True if the instruction reads rs1. */
constexpr bool
readsRs1(Opcode op)
{
    switch (op) {
      case Opcode::kMovi:
      case Opcode::kTid:
      case Opcode::kJmp:
      case Opcode::kBarrier:
      case Opcode::kHalt:
        return false;
      default:
        return true;
    }
}

/** True if the instruction reads rs2. */
constexpr bool
readsRs2(Opcode op)
{
    if (isStore(op))
        return true;
    if (isBranch(op))
        return op != Opcode::kJmp;
    switch (op) {
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDivu:
      case Opcode::kRemu:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kSra:
      case Opcode::kMin:
      case Opcode::kMax:
      case Opcode::kCmpEq:
      case Opcode::kCmpLtu:
      case Opcode::kCmpLts:
        return true;
      default:
        return false;
    }
}

/** Mnemonic for disassembly. */
const char *opcodeName(Opcode op);

} // namespace acr::isa

#endif // ACR_ISA_OPCODE_HH
