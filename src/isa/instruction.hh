/**
 * @file
 * Instruction encoding and the pure functional semantics of the
 * arithmetic/logic subset.
 *
 * evalArith() is the single definition of ALU semantics, used both by the
 * CPU model during normal execution and by the Slice replay engine during
 * amnesic recovery — guaranteeing that a recomputed value is bit-identical
 * to the originally stored one whenever the captured input operands are.
 */

#ifndef ACR_ISA_INSTRUCTION_HH
#define ACR_ISA_INSTRUCTION_HH

#include <string>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace acr::isa
{

/** Number of general-purpose registers per core; r0 is hardwired to 0. */
inline constexpr unsigned kNumRegs = 32;

/** Register index type. */
using Reg = std::uint8_t;

/**
 * One decoded instruction.
 *
 * Field roles by opcode class:
 *  - ALU reg-reg:  rd = op(rs1, rs2)
 *  - ALU reg-imm:  rd = op(rs1, imm)
 *  - kLoad:        rd = M[rs1 + imm]
 *  - kStore:       M[rs1 + imm] = rs2; sliceHint marks ASSOC-ADDR fusion
 *  - branches:     compare rs1, rs2; imm is the absolute target pc
 */
struct Instruction
{
    Opcode op = Opcode::kHalt;
    Reg rd = 0;
    Reg rs1 = 0;
    Reg rs2 = 0;
    SWord imm = 0;

    /**
     * Compiler-pass mark on stores: true when the pass embedded a Slice
     * for this store, i.e. an ASSOC-ADDR instruction is fused with it
     * (Sec. III-A: ASSOC-ADDR "gets atomically executed with the
     * corresponding store instruction"). Ignored on non-stores.
     */
    bool sliceHint = false;

    bool operator==(const Instruction &other) const = default;
};

/** Out-of-line panic for evalArith misuse (keeps the hot switch lean). */
[[noreturn]] void evalArithBadOpcode(Opcode op);

/**
 * Evaluate an arithmetic/logic instruction.
 *
 * Defined inline: this is executed once per ALU instruction by the CPU
 * model and once per slice instruction during amnesic replay — the two
 * hottest loops in the simulator — and inlining folds the switch into
 * the callers' dispatch.
 *
 * @param op   a sliceable opcode (panics otherwise)
 * @param a    value of rs1 (ignored by kMovi/kTid)
 * @param b    value of rs2 for reg-reg forms
 * @param imm  immediate for reg-imm forms
 * @param tid  core id, used only by kTid
 * @return the value written to rd
 */
inline Word
evalArith(Opcode op, Word a, Word b, SWord imm, Word tid)
{
    const Word uimm = static_cast<Word>(imm);
    switch (op) {
      case Opcode::kAdd: return a + b;
      case Opcode::kSub: return a - b;
      case Opcode::kMul: return a * b;
      case Opcode::kDivu: return b == 0 ? 0 : a / b;
      case Opcode::kRemu: return b == 0 ? a : a % b;
      case Opcode::kAnd: return a & b;
      case Opcode::kOr: return a | b;
      case Opcode::kXor: return a ^ b;
      case Opcode::kShl: return a << (b & 63);
      case Opcode::kShr: return a >> (b & 63);
      case Opcode::kSra:
        return static_cast<Word>(static_cast<SWord>(a) >> (b & 63));
      case Opcode::kMin: return a < b ? a : b;
      case Opcode::kMax: return a > b ? a : b;
      case Opcode::kCmpEq: return a == b ? 1 : 0;
      case Opcode::kCmpLtu: return a < b ? 1 : 0;
      case Opcode::kCmpLts:
        return static_cast<SWord>(a) < static_cast<SWord>(b) ? 1 : 0;
      case Opcode::kAddi: return a + uimm;
      case Opcode::kMuli: return a * uimm;
      case Opcode::kAndi: return a & uimm;
      case Opcode::kOri: return a | uimm;
      case Opcode::kXori: return a ^ uimm;
      case Opcode::kShli: return a << (uimm & 63);
      case Opcode::kShri: return a >> (uimm & 63);
      case Opcode::kMovi: return uimm;
      case Opcode::kTid: return tid;
      default:
        evalArithBadOpcode(op);
    }
}

/** Disassemble one instruction. */
std::string toString(const Instruction &inst);

} // namespace acr::isa

#endif // ACR_ISA_INSTRUCTION_HH
