#include "isa/builder.hh"

#include "common/logging.hh"

namespace acr::isa
{

ProgramBuilder::ProgramBuilder(std::string name)
    : program_(std::move(name))
{
}

ProgramBuilder &
ProgramBuilder::emit(Instruction inst)
{
    code_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    if (labels_.count(name))
        fatal("duplicate label '%s' in program '%s'", name.c_str(),
              program_.name().c_str());
    labels_[name] = code_.size();
    return *this;
}

#define ACR_RRR(fn, opc)                                                    \
    ProgramBuilder &ProgramBuilder::fn(Reg rd, Reg rs1, Reg rs2)            \
    {                                                                       \
        return emit({Opcode::opc, rd, rs1, rs2, 0, false});                 \
    }

ACR_RRR(add, kAdd)
ACR_RRR(sub, kSub)
ACR_RRR(mul, kMul)
ACR_RRR(divu, kDivu)
ACR_RRR(remu, kRemu)
ACR_RRR(and_, kAnd)
ACR_RRR(or_, kOr)
ACR_RRR(xor_, kXor)
ACR_RRR(shl, kShl)
ACR_RRR(shr, kShr)
ACR_RRR(sra, kSra)
ACR_RRR(min, kMin)
ACR_RRR(max, kMax)
ACR_RRR(cmpeq, kCmpEq)
ACR_RRR(cmpltu, kCmpLtu)
ACR_RRR(cmplts, kCmpLts)
#undef ACR_RRR

#define ACR_RRI(fn, opc)                                                    \
    ProgramBuilder &ProgramBuilder::fn(Reg rd, Reg rs1, SWord imm)          \
    {                                                                       \
        return emit({Opcode::opc, rd, rs1, 0, imm, false});                 \
    }

ACR_RRI(addi, kAddi)
ACR_RRI(muli, kMuli)
ACR_RRI(andi, kAndi)
ACR_RRI(ori, kOri)
ACR_RRI(xori, kXori)
ACR_RRI(shli, kShli)
ACR_RRI(shri, kShri)
#undef ACR_RRI

ProgramBuilder &
ProgramBuilder::movi(Reg rd, SWord imm)
{
    return emit({Opcode::kMovi, rd, 0, 0, imm, false});
}

ProgramBuilder &
ProgramBuilder::mov(Reg rd, Reg rs)
{
    return addi(rd, rs, 0);
}

ProgramBuilder &
ProgramBuilder::tid(Reg rd)
{
    return emit({Opcode::kTid, rd, 0, 0, 0, false});
}

ProgramBuilder &
ProgramBuilder::load(Reg rd, Reg base, SWord offset)
{
    return emit({Opcode::kLoad, rd, base, 0, offset, false});
}

ProgramBuilder &
ProgramBuilder::store(Reg base, Reg value, SWord offset)
{
    return emit({Opcode::kStore, 0, base, value, offset, false});
}

ProgramBuilder &
ProgramBuilder::branchTo(Opcode op, Reg rs1, Reg rs2,
                         const std::string &target)
{
    fixups_.emplace_back(code_.size(), target);
    return emit({op, 0, rs1, rs2, 0, false});
}

ProgramBuilder &
ProgramBuilder::beq(Reg rs1, Reg rs2, const std::string &target)
{
    return branchTo(Opcode::kBeq, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::bne(Reg rs1, Reg rs2, const std::string &target)
{
    return branchTo(Opcode::kBne, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::bltu(Reg rs1, Reg rs2, const std::string &target)
{
    return branchTo(Opcode::kBltu, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::bgeu(Reg rs1, Reg rs2, const std::string &target)
{
    return branchTo(Opcode::kBgeu, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::blts(Reg rs1, Reg rs2, const std::string &target)
{
    return branchTo(Opcode::kBlts, rs1, rs2, target);
}

ProgramBuilder &
ProgramBuilder::jmp(const std::string &target)
{
    return branchTo(Opcode::kJmp, 0, 0, target);
}

ProgramBuilder &
ProgramBuilder::barrier()
{
    return emit({Opcode::kBarrier, 0, 0, 0, 0, false});
}

ProgramBuilder &
ProgramBuilder::halt()
{
    return emit({Opcode::kHalt, 0, 0, 0, 0, false});
}

ProgramBuilder &
ProgramBuilder::data(Addr addr, Word value)
{
    program_.data().set(addr, value);
    return *this;
}

Program
ProgramBuilder::build()
{
    for (const auto &[pc, target] : fixups_) {
        auto it = labels_.find(target);
        if (it == labels_.end())
            fatal("undefined label '%s' in program '%s'", target.c_str(),
                  program_.name().c_str());
        code_[pc].imm = static_cast<SWord>(it->second);
    }
    fixups_.clear();
    program_.code() = code_;
    std::string err = program_.validate();
    if (!err.empty())
        fatal("program '%s' failed validation: %s",
              program_.name().c_str(), err.c_str());
    return program_;
}

} // namespace acr::isa
