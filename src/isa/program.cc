#include "isa/program.hh"

#include <iomanip>

#include "common/logging.hh"

namespace acr::isa
{

std::string
Program::validate() const
{
    if (code_.empty())
        return "program has no instructions";

    bool has_halt = false;
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
        const Instruction &inst = code_[pc];
        if (inst.op >= Opcode::kNumOpcodes)
            return csprintf("pc %zu: invalid opcode", pc);
        if (writesReg(inst.op)) {
            if (inst.rd >= kNumRegs)
                return csprintf("pc %zu: rd out of range", pc);
            if (inst.rd == 0)
                return csprintf("pc %zu: writes hardwired r0", pc);
        }
        if (readsRs1(inst.op) && inst.rs1 >= kNumRegs)
            return csprintf("pc %zu: rs1 out of range", pc);
        if (readsRs2(inst.op) && inst.rs2 >= kNumRegs)
            return csprintf("pc %zu: rs2 out of range", pc);
        if (isBranch(inst.op)) {
            if (inst.imm < 0 ||
                static_cast<std::size_t>(inst.imm) >= code_.size()) {
                return csprintf("pc %zu: branch target %lld out of range",
                                pc, static_cast<long long>(inst.imm));
            }
        }
        if (inst.sliceHint && !isStore(inst.op))
            return csprintf("pc %zu: sliceHint on non-store", pc);
        if (isHalt(inst.op))
            has_halt = true;
    }
    if (!has_halt)
        return "program has no halt instruction";
    return "";
}

std::size_t
Program::sliceHintedStores() const
{
    std::size_t n = 0;
    for (const auto &inst : code_)
        if (isStore(inst.op) && inst.sliceHint)
            ++n;
    return n;
}

void
Program::disassemble(std::ostream &os) const
{
    os << "; program '" << name_ << "', " << code_.size()
       << " instructions, " << data_.words.size() << " data words\n";
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
        os << std::setw(6) << pc << ":  " << toString(code_[pc]) << "\n";
    }
}

} // namespace acr::isa
