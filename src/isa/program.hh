/**
 * @file
 * A Program is the unit of execution: one SPMD instruction sequence run by
 * every core (differentiated through kTid), plus its initial data segment.
 */

#ifndef ACR_ISA_PROGRAM_HH
#define ACR_ISA_PROGRAM_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace acr::isa
{

/** Initial memory contents: (word address, value) pairs. */
struct DataSegment
{
    std::vector<std::pair<Addr, Word>> words;

    /** Set one word, overwriting any earlier initializer for it. */
    void set(Addr addr, Word value) { words.emplace_back(addr, value); }
};

/** An executable SPMD program. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Instruction stream; the entry point is pc 0. */
    const std::vector<Instruction> &code() const { return code_; }
    std::vector<Instruction> &code() { return code_; }

    /** Initial data image applied to MainMemory before execution. */
    const DataSegment &data() const { return data_; }
    DataSegment &data() { return data_; }

    std::size_t size() const { return code_.size(); }
    const Instruction &at(std::size_t pc) const { return code_[pc]; }

    /**
     * Static sanity checks: nonempty, ends reachably in kHalt, register
     * indices < kNumRegs, branch targets within [0, size), r0 never
     * written. Returns an empty string when valid, else a description of
     * the first problem found.
     */
    std::string validate() const;

    /** Count of stores carrying the ASSOC-ADDR slice hint. */
    std::size_t sliceHintedStores() const;

    /** Disassemble the whole program. */
    void disassemble(std::ostream &os) const;

  private:
    std::string name_;
    std::vector<Instruction> code_;
    DataSegment data_;
};

} // namespace acr::isa

#endif // ACR_ISA_PROGRAM_HH
