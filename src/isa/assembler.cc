#include "isa/assembler.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>

#include "common/logging.hh"

namespace acr::isa
{

namespace
{

/** Operand shape expected by a mnemonic. */
enum class Form
{
    kRRR,      ///< op rd, rs1, rs2
    kRRI,      ///< op rd, rs1, imm
    kMovi,     ///< movi rd, imm
    kTid,      ///< tid rd
    kLoad,     ///< load rd, [rs1(+|-)imm]
    kStore,    ///< store [rs1(+|-)imm], rs2
    kBranch,   ///< op rs1, rs2, target
    kJmp,      ///< jmp target
    kBare,     ///< barrier / halt
};

struct Mnemonic
{
    Opcode op;
    Form form;
};

const std::map<std::string, Mnemonic> &
mnemonics()
{
    static const std::map<std::string, Mnemonic> table = {
        {"add", {Opcode::kAdd, Form::kRRR}},
        {"sub", {Opcode::kSub, Form::kRRR}},
        {"mul", {Opcode::kMul, Form::kRRR}},
        {"divu", {Opcode::kDivu, Form::kRRR}},
        {"remu", {Opcode::kRemu, Form::kRRR}},
        {"and", {Opcode::kAnd, Form::kRRR}},
        {"or", {Opcode::kOr, Form::kRRR}},
        {"xor", {Opcode::kXor, Form::kRRR}},
        {"shl", {Opcode::kShl, Form::kRRR}},
        {"shr", {Opcode::kShr, Form::kRRR}},
        {"sra", {Opcode::kSra, Form::kRRR}},
        {"min", {Opcode::kMin, Form::kRRR}},
        {"max", {Opcode::kMax, Form::kRRR}},
        {"cmpeq", {Opcode::kCmpEq, Form::kRRR}},
        {"cmpltu", {Opcode::kCmpLtu, Form::kRRR}},
        {"cmplts", {Opcode::kCmpLts, Form::kRRR}},
        {"addi", {Opcode::kAddi, Form::kRRI}},
        {"muli", {Opcode::kMuli, Form::kRRI}},
        {"andi", {Opcode::kAndi, Form::kRRI}},
        {"ori", {Opcode::kOri, Form::kRRI}},
        {"xori", {Opcode::kXori, Form::kRRI}},
        {"shli", {Opcode::kShli, Form::kRRI}},
        {"shri", {Opcode::kShri, Form::kRRI}},
        {"movi", {Opcode::kMovi, Form::kMovi}},
        {"tid", {Opcode::kTid, Form::kTid}},
        {"load", {Opcode::kLoad, Form::kLoad}},
        {"store", {Opcode::kStore, Form::kStore}},
        {"beq", {Opcode::kBeq, Form::kBranch}},
        {"bne", {Opcode::kBne, Form::kBranch}},
        {"bltu", {Opcode::kBltu, Form::kBranch}},
        {"bgeu", {Opcode::kBgeu, Form::kBranch}},
        {"blts", {Opcode::kBlts, Form::kBranch}},
        {"jmp", {Opcode::kJmp, Form::kJmp}},
        {"barrier", {Opcode::kBarrier, Form::kBare}},
        {"halt", {Opcode::kHalt, Form::kBare}},
    };
    return table;
}

std::string
trim(const std::string &s)
{
    std::size_t a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    std::size_t b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

/** Split an operand list on commas and whitespace. */
std::vector<std::string>
tokenize(const std::string &s)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : s) {
        if (c == ',' || c == ' ' || c == '\t') {
            if (!current.empty()) {
                out.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        out.push_back(current);
    return out;
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

/** The assembler's working state. */
struct Assembler
{
    AsmResult result;
    std::map<std::string, std::size_t> labels;
    /// (instruction index, label, source line) fixups.
    std::vector<std::tuple<std::size_t, std::string, unsigned>> fixups;
    unsigned lineNo = 0;

    void
    error(const std::string &message)
    {
        result.errors.push_back(csprintf("line %u: %s", lineNo,
                                         message.c_str()));
    }

    std::optional<Reg>
    parseReg(const std::string &token)
    {
        if (token.size() < 2 || (token[0] != 'r' && token[0] != 'R')) {
            error(csprintf("expected a register, got '%s'",
                           token.c_str()));
            return std::nullopt;
        }
        char *end = nullptr;
        long v = std::strtol(token.c_str() + 1, &end, 10);
        if (*end != '\0' || v < 0 || v >= static_cast<long>(kNumRegs)) {
            error(csprintf("bad register '%s'", token.c_str()));
            return std::nullopt;
        }
        return static_cast<Reg>(v);
    }

    std::optional<SWord>
    parseImm(const std::string &token)
    {
        char *end = nullptr;
        long long v = std::strtoll(token.c_str(), &end, 0);
        if (end == token.c_str() || *end != '\0') {
            error(csprintf("expected an immediate, got '%s'",
                           token.c_str()));
            return std::nullopt;
        }
        return static_cast<SWord>(v);
    }

    /** Parse "[rN]", "[rN+k]" or "[rN-k]". */
    std::optional<std::pair<Reg, SWord>>
    parseMemRef(const std::string &token)
    {
        if (token.size() < 4 || token.front() != '[' ||
            token.back() != ']') {
            error(csprintf("expected [reg+offset], got '%s'",
                           token.c_str()));
            return std::nullopt;
        }
        std::string inner = token.substr(1, token.size() - 2);
        std::size_t sep = inner.find_first_of("+-", 1);
        std::string reg_part =
            sep == std::string::npos ? inner : inner.substr(0, sep);
        auto reg = parseReg(trim(reg_part));
        if (!reg)
            return std::nullopt;
        SWord offset = 0;
        if (sep != std::string::npos) {
            auto imm = parseImm(trim(inner.substr(sep)));
            if (!imm)
                return std::nullopt;
            offset = *imm;
        }
        return std::make_pair(*reg, offset);
    }

    /** Branch target: a label (fixed up later) or an absolute pc. */
    void
    setTarget(Instruction &inst, const std::string &token)
    {
        if (!token.empty() && isIdentStart(token[0])) {
            fixups.emplace_back(result.program.code().size(), token,
                                lineNo);
            return;
        }
        if (auto imm = parseImm(token))
            inst.imm = *imm;
    }

    void
    parseInstruction(const std::string &mnemonic,
                     const std::vector<std::string> &ops, bool hint)
    {
        auto it = mnemonics().find(mnemonic);
        if (it == mnemonics().end()) {
            error(csprintf("unknown mnemonic '%s'", mnemonic.c_str()));
            return;
        }
        const Mnemonic &m = it->second;
        Instruction inst;
        inst.op = m.op;

        auto need = [&](std::size_t n) {
            if (ops.size() != n) {
                error(csprintf("'%s' expects %zu operand(s), got %zu",
                               mnemonic.c_str(), n, ops.size()));
                return false;
            }
            return true;
        };

        switch (m.form) {
          case Form::kRRR: {
            if (!need(3))
                return;
            auto rd = parseReg(ops[0]);
            auto rs1 = parseReg(ops[1]);
            auto rs2 = parseReg(ops[2]);
            if (!rd || !rs1 || !rs2)
                return;
            inst.rd = *rd;
            inst.rs1 = *rs1;
            inst.rs2 = *rs2;
            break;
          }
          case Form::kRRI: {
            if (!need(3))
                return;
            auto rd = parseReg(ops[0]);
            auto rs1 = parseReg(ops[1]);
            auto imm = parseImm(ops[2]);
            if (!rd || !rs1 || !imm)
                return;
            inst.rd = *rd;
            inst.rs1 = *rs1;
            inst.imm = *imm;
            break;
          }
          case Form::kMovi: {
            if (!need(2))
                return;
            auto rd = parseReg(ops[0]);
            auto imm = parseImm(ops[1]);
            if (!rd || !imm)
                return;
            inst.rd = *rd;
            inst.imm = *imm;
            break;
          }
          case Form::kTid: {
            if (!need(1))
                return;
            auto rd = parseReg(ops[0]);
            if (!rd)
                return;
            inst.rd = *rd;
            break;
          }
          case Form::kLoad: {
            if (!need(2))
                return;
            auto rd = parseReg(ops[0]);
            auto mem = parseMemRef(ops[1]);
            if (!rd || !mem)
                return;
            inst.rd = *rd;
            inst.rs1 = mem->first;
            inst.imm = mem->second;
            break;
          }
          case Form::kStore: {
            if (!need(2))
                return;
            auto mem = parseMemRef(ops[0]);
            auto rs2 = parseReg(ops[1]);
            if (!mem || !rs2)
                return;
            inst.rs1 = mem->first;
            inst.imm = mem->second;
            inst.rs2 = *rs2;
            inst.sliceHint = hint;
            break;
          }
          case Form::kBranch: {
            if (!need(3))
                return;
            auto rs1 = parseReg(ops[0]);
            auto rs2 = parseReg(ops[1]);
            if (!rs1 || !rs2)
                return;
            inst.rs1 = *rs1;
            inst.rs2 = *rs2;
            setTarget(inst, ops[2]);
            break;
          }
          case Form::kJmp: {
            if (!need(1))
                return;
            setTarget(inst, ops[0]);
            break;
          }
          case Form::kBare:
            if (!need(0))
                return;
            break;
        }
        result.program.code().push_back(inst);
    }

    void
    parseLine(std::string line)
    {
        // A "; assoc-addr" comment on a store carries the slice hint.
        bool hint = false;
        std::size_t semi = line.find(';');
        if (semi != std::string::npos) {
            if (line.find("assoc-addr", semi) != std::string::npos)
                hint = true;
            line = line.substr(0, semi);
        }
        line = trim(line);
        if (line.empty())
            return;

        // Strip a disassembler pc prefix ("N:") — labels start with a
        // letter or underscore, so all-digit prefixes are unambiguous.
        {
            std::size_t colon = line.find(':');
            if (colon != std::string::npos && colon > 0) {
                bool digits = true;
                for (std::size_t i = 0; i < colon; ++i) {
                    if (!std::isdigit(
                            static_cast<unsigned char>(line[i]))) {
                        digits = false;
                        break;
                    }
                }
                if (digits)
                    line = trim(line.substr(colon + 1));
            }
        }
        if (line.empty())
            return;

        // Directives.
        if (line[0] == '.') {
            auto tokens = tokenize(line);
            if (tokens[0] == ".name") {
                if (tokens.size() != 2) {
                    error(".name expects one argument");
                    return;
                }
                result.program.setName(tokens[1]);
            } else if (tokens[0] == ".data") {
                if (tokens.size() != 3) {
                    error(".data expects an address and a value");
                    return;
                }
                auto addr = parseImm(tokens[1]);
                auto value = parseImm(tokens[2]);
                if (!addr || !value)
                    return;
                result.program.data().set(static_cast<Addr>(*addr),
                                          static_cast<Word>(*value));
            } else {
                error(csprintf("unknown directive '%s'",
                               tokens[0].c_str()));
            }
            return;
        }

        // Label definition.
        if (isIdentStart(line[0])) {
            std::size_t colon = line.find(':');
            if (colon != std::string::npos) {
                std::string name = trim(line.substr(0, colon));
                if (labels.count(name)) {
                    error(csprintf("duplicate label '%s'", name.c_str()));
                    return;
                }
                labels[name] = result.program.code().size();
                line = trim(line.substr(colon + 1));
                if (line.empty())
                    return;
            }
        }

        auto tokens = tokenize(line);
        std::string mnemonic = tokens[0];
        tokens.erase(tokens.begin());
        parseInstruction(mnemonic, tokens, hint);
    }
};

} // namespace

AsmResult
assemble(const std::string &source, const std::string &name)
{
    Assembler assembler;
    assembler.result.program.setName(name);

    std::istringstream stream(source);
    std::string line;
    while (std::getline(stream, line)) {
        ++assembler.lineNo;
        assembler.parseLine(line);
    }

    for (const auto &[index, label, line_no] : assembler.fixups) {
        auto it = assembler.labels.find(label);
        if (it == assembler.labels.end()) {
            assembler.result.errors.push_back(
                csprintf("line %u: undefined label '%s'", line_no,
                         label.c_str()));
            continue;
        }
        assembler.result.program.code()[index].imm =
            static_cast<SWord>(it->second);
    }

    if (assembler.result.ok()) {
        std::string err = assembler.result.program.validate();
        if (!err.empty()) {
            assembler.result.errors.push_back(
                csprintf("validation: %s", err.c_str()));
        }
    }
    return assembler.result;
}

} // namespace acr::isa
