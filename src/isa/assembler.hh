/**
 * @file
 * Textual assembler for the simulated ISA — the inverse of the
 * disassembler, so programs can be written, dumped, edited, and
 * reloaded as plain text.
 *
 * Syntax (one statement per line; ';' starts a comment):
 *
 *   .name  mykernel            ; program name
 *   .data  100  42             ; initialize M[100] = 42
 *   loop:                      ; label definition
 *     movi   r1, 5
 *     addi   r1, r1, -3
 *     load   r2, [r1+4]
 *     store  [r1-2], r2        ; "; assoc-addr" may follow: slice hint
 *     bltu   r1, r2, loop      ; label or absolute pc target
 *     barrier
 *     halt
 *
 * Disassembler output reassembles verbatim: leading "N:" pc prefixes
 * are ignored, and a trailing "; assoc-addr" comment on a store sets
 * its slice hint.
 */

#ifndef ACR_ISA_ASSEMBLER_HH
#define ACR_ISA_ASSEMBLER_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace acr::isa
{

/** Outcome of an assembly run. */
struct AsmResult
{
    Program program;
    /** "line N: message" diagnostics; empty means success. */
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
};

/** Assemble @p source into a program named @p name (overridden by a
 *  .name directive). The program is validated on success. */
AsmResult assemble(const std::string &source,
                   const std::string &name = "asm");

} // namespace acr::isa

#endif // ACR_ISA_ASSEMBLER_HH
