/**
 * @file
 * SliceRepository: the "binary embedding" of Slices (Sec. III-A). The
 * compiler pass interns every selected Slice here; identical shapes are
 * deduplicated, and the repository's total instruction count models the
 * static code-size overhead of embedding Slices into the binary (the
 * paper reports < 2% for is).
 */

#ifndef ACR_SLICE_REPOSITORY_HH
#define ACR_SLICE_REPOSITORY_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "slice/static_slice.hh"

namespace acr::slice
{

/** Deduplicating store of StaticSlices. */
class SliceRepository
{
  public:
    /** Intern @p slice, returning the id of the canonical copy; the
     *  argument is only copied when the shape is new (nearly every
     *  dynamic store interns a shape the repository already holds). */
    SliceId intern(const StaticSlice &slice);

    /** The slice with the given id. */
    const StaticSlice &get(SliceId id) const;

    /** Number of unique slices embedded. */
    std::size_t uniqueSlices() const { return slices_.size(); }

    /** Total instructions across unique slices (binary footprint). */
    std::size_t totalInstrs() const { return totalInstrs_; }

    /** Drop everything. */
    void clear();

  private:
    std::deque<StaticSlice> slices_;
    std::unordered_map<std::size_t, std::vector<SliceId>> byHash_;
    std::size_t totalInstrs_ = 0;
};

} // namespace acr::slice

#endif // ACR_SLICE_REPOSITORY_HH
