#include "slice/engine.hh"

#include "common/logging.hh"

namespace acr::slice
{

using isa::Opcode;

SliceEngine::SliceEngine(unsigned num_cores, unsigned size_cap)
    : numCores_(num_cores), sizeCap_(size_cap)
{
    ACR_ASSERT(num_cores >= 1, "slice engine needs >= 1 core");
    ACR_ASSERT(size_cap >= 1, "size cap must be >= 1");
    regNodes_.resize(num_cores);
    for (auto &regs : regNodes_) {
        for (auto &node : regs)
            node = leaf(0);
    }
}

SliceEngine::~SliceEngine()
{
    for (auto &regs : regNodes_)
        for (auto *node : regs)
            release(node);
}

void
SliceEngine::releaseChildren(Node *a, Node *b)
{
    // Iterative teardown: dropping the last reference to a chain head
    // must not recurse down the chain (sizeCap_ bounds arith depth,
    // but an explicit stack keeps the walk allocation-free and flat).
    if (a != nullptr && --a->refs == 0)
        releaseStack_.push_back(a);
    if (b != nullptr && --b->refs == 0)
        releaseStack_.push_back(b);
    while (!releaseStack_.empty()) {
        Node *dead = releaseStack_.back();
        releaseStack_.pop_back();
        if (dead->in1 && --dead->in1->refs == 0)
            releaseStack_.push_back(dead->in1);
        if (dead->in2 && --dead->in2->refs == 0)
            releaseStack_.push_back(dead->in2);
        dead->in1 = freeList_;
        freeList_ = dead;
        --liveNodes_;
    }
}

const BuiltSlice *
SliceEngine::buildForStore(const cpu::InstrEvent &event,
                           const SlicePolicyConfig &policy)
{
    const isa::Instruction &inst = *event.inst;
    ACR_ASSERT(isa::isStore(inst.op), "buildForStore on a non-store");
    Node *root = regNodes_[event.core][inst.rs2];
    const BuiltSlice *built = buildFromNode(root, policy);
    if (built) {
        ACR_ASSERT(built->value == event.result,
                   "slice root value desynced from stored value");
    }
    return built;
}

const BuiltSlice *
SliceEngine::buildFromNode(Node *root, const SlicePolicyConfig &policy)
{
    if (!root || !root->arith)
        return nullptr;  // pure copies/loads have no Slice

    const unsigned max_instrs = policy.buildCap();

    BuiltSlice &out = buildScratch_;
    out.slice.code.clear();
    out.slice.numInputs = 0;
    out.inputs.clear();
    out.value = root->value;

    // Iterative post-order walk. The visited map lives *in* the nodes:
    // a node whose buildEpoch matches this walk's stamp has its source
    // encoding (slice-instruction index or input index) in buildSlot —
    // same traversal, same emission order as the hash-map version,
    // with the lookup reduced to one compare.
    const std::uint64_t epoch = ++buildEpoch_;
    auto visited = [epoch](const Node *node) {
        return node->buildEpoch == epoch;
    };

    buildStack_.clear();
    buildStack_.push_back({root, false});

    while (!buildStack_.empty()) {
        Frame frame = buildStack_.back();
        buildStack_.pop_back();
        Node *node = frame.node;

        if (visited(node))
            continue;

        if (!node->arith) {
            // Opaque leaf: capture the value as an input operand.
            if (out.inputs.size() >= policy.maxInputs)
                return nullptr;
            std::uint32_t k = static_cast<std::uint32_t>(out.inputs.size());
            out.inputs.push_back(node->value);
            node->buildEpoch = epoch;
            node->buildSlot = inputSrc(k);
            continue;
        }

        if (!frame.expanded) {
            buildStack_.push_back({node, true});
            if (node->in1 && !visited(node->in1))
                buildStack_.push_back({node->in1, false});
            if (node->in2 && !visited(node->in2))
                buildStack_.push_back({node->in2, false});
            continue;
        }

        // Children resolved: emit this instruction.
        if (out.slice.code.size() >= max_instrs)
            return nullptr;
        SliceInstr si;
        si.op = node->op;
        si.imm = node->imm;
        si.src1 = node->in1 ? node->in1->buildSlot : kNoSrc;
        si.src2 = node->in2 ? node->in2->buildSlot : kNoSrc;
        std::int32_t slot = static_cast<std::int32_t>(out.slice.code.size());
        out.slice.code.push_back(si);
        node->buildEpoch = epoch;
        node->buildSlot = slot;
    }

    out.slice.numInputs = static_cast<std::uint32_t>(out.inputs.size());

    if (!policy.accepts(out.slice.length(), out.inputs.size()))
        return nullptr;
    return &out;
}

void
SliceEngine::resetCore(CoreId core,
                       const std::array<Word, isa::kNumRegs> &regs)
{
    ACR_ASSERT(core < numCores_, "resetCore on unknown core %u", core);
    for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        Node *node = leaf(regs[r]);
        release(regNodes_[core][r]);
        regNodes_[core][r] = node;
    }
}

} // namespace acr::slice
