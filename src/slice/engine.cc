#include "slice/engine.hh"

#include <unordered_map>

#include "common/logging.hh"

namespace acr::slice
{

using isa::Opcode;

SliceEngine::SliceEngine(unsigned num_cores, unsigned size_cap)
    : numCores_(num_cores), sizeCap_(size_cap)
{
    ACR_ASSERT(num_cores >= 1, "slice engine needs >= 1 core");
    ACR_ASSERT(size_cap >= 1, "size cap must be >= 1");
    regNodes_.resize(num_cores);
    for (auto &regs : regNodes_) {
        for (auto &node : regs)
            node = leaf(0);
    }
}

SliceEngine::NodePtr
SliceEngine::leaf(Word value)
{
    auto node = std::make_shared<Node>();
    node->arith = false;
    node->value = value;
    node->approxSize = 1;
    return node;
}

void
SliceEngine::observe(const cpu::InstrEvent &event)
{
    const isa::Instruction &inst = *event.inst;
    ACR_ASSERT(event.core < numCores_, "event from unknown core %u",
               event.core);
    auto &regs = regNodes_[event.core];

    if (isa::isLoad(inst.op) || inst.op == Opcode::kTid) {
        // Memory instructions and tid reads terminate slices: the value
        // itself becomes a capturable input operand.
        regs[inst.rd] = leaf(event.result);
        return;
    }

    if (!isSliceable(inst.op))
        return;  // stores, branches, barriers, halt: no register change

    auto node = std::make_shared<Node>();
    node->arith = true;
    node->op = inst.op;
    node->imm = inst.imm;
    node->value = event.result;

    std::uint64_t approx = 1;
    if (isa::readsRs1(inst.op)) {
        node->in1 = regs[inst.rs1];
        approx += node->in1->arith ? node->in1->approxSize : 0;
    }
    if (isa::readsRs2(inst.op)) {
        node->in2 = regs[inst.rs2];
        approx += node->in2->arith ? node->in2->approxSize : 0;
    }

    if (approx > sizeCap_) {
        // Chain exceeds every threshold under study: collapse to an
        // opaque leaf. This bounds tracking memory, builder work, and
        // destructor recursion depth.
        node->arith = false;
        node->in1.reset();
        node->in2.reset();
        node->approxSize = 1;
    } else {
        node->approxSize = static_cast<std::uint32_t>(approx);
    }

    regs[inst.rd] = std::move(node);
}

std::optional<BuiltSlice>
SliceEngine::buildForStore(const cpu::InstrEvent &event,
                           const SlicePolicyConfig &policy) const
{
    const isa::Instruction &inst = *event.inst;
    ACR_ASSERT(isa::isStore(inst.op), "buildForStore on a non-store");
    const NodePtr &root = regNodes_[event.core][inst.rs2];
    auto built = buildFromNode(root, policy);
    if (built) {
        ACR_ASSERT(built->value == event.result,
                   "slice root value desynced from stored value");
    }
    return built;
}

std::optional<BuiltSlice>
SliceEngine::buildFromNode(const NodePtr &root,
                           const SlicePolicyConfig &policy) const
{
    if (!root || !root->arith)
        return std::nullopt;  // pure copies/loads have no Slice

    const unsigned max_instrs = policy.buildCap();

    BuiltSlice out;
    out.value = root->value;

    // Iterative post-order walk; slotOf maps each visited node to its
    // source encoding (slice-instruction index or input index).
    std::unordered_map<const Node *, std::int32_t> slot_of;

    struct Frame
    {
        const Node *node;
        bool expanded;
    };
    std::vector<Frame> stack;
    stack.push_back({root.get(), false});

    while (!stack.empty()) {
        Frame frame = stack.back();
        stack.pop_back();
        const Node *node = frame.node;

        if (slot_of.count(node))
            continue;

        if (!node->arith) {
            // Opaque leaf: capture the value as an input operand.
            if (out.inputs.size() >= policy.maxInputs)
                return std::nullopt;
            std::uint32_t k = static_cast<std::uint32_t>(out.inputs.size());
            out.inputs.push_back(node->value);
            slot_of[node] = inputSrc(k);
            continue;
        }

        if (!frame.expanded) {
            stack.push_back({node, true});
            if (node->in1 && !slot_of.count(node->in1.get()))
                stack.push_back({node->in1.get(), false});
            if (node->in2 && !slot_of.count(node->in2.get()))
                stack.push_back({node->in2.get(), false});
            continue;
        }

        // Children resolved: emit this instruction.
        if (out.slice.code.size() >= max_instrs)
            return std::nullopt;
        SliceInstr si;
        si.op = node->op;
        si.imm = node->imm;
        si.src1 = node->in1 ? slot_of.at(node->in1.get()) : kNoSrc;
        si.src2 = node->in2 ? slot_of.at(node->in2.get()) : kNoSrc;
        std::int32_t slot = static_cast<std::int32_t>(out.slice.code.size());
        out.slice.code.push_back(si);
        slot_of[node] = slot;
    }

    out.slice.numInputs = static_cast<std::uint32_t>(out.inputs.size());

    if (!policy.accepts(out.slice.length(), out.inputs.size()))
        return std::nullopt;
    return out;
}

void
SliceEngine::resetCore(CoreId core,
                       const std::array<Word, isa::kNumRegs> &regs)
{
    ACR_ASSERT(core < numCores_, "resetCore on unknown core %u", core);
    for (unsigned r = 0; r < isa::kNumRegs; ++r)
        regNodes_[core][r] = leaf(regs[r]);
}

} // namespace acr::slice
