#include "slice/engine.hh"

#include "common/logging.hh"

namespace acr::slice
{

using isa::Opcode;

SliceEngine::SliceEngine(unsigned num_cores, unsigned size_cap)
    : numCores_(num_cores), sizeCap_(size_cap)
{
    ACR_ASSERT(num_cores >= 1, "slice engine needs >= 1 core");
    ACR_ASSERT(size_cap >= 1, "size cap must be >= 1");
    ACR_ASSERT(size_cap <= 0xFFFF,
               "size cap must fit the packed 16-bit approxSize");
    regNodes_.resize(num_cores);
    regValues_.resize(num_cores);
    for (auto &regs : regNodes_)
        regs.fill(kLazy);
    for (auto &vals : regValues_)
        vals.fill(0);
}

SliceEngine::~SliceEngine()
{
    for (auto &regs : regNodes_)
        for (NodeRef ref : regs)
            if (ref != kLazy)
                release(ref);
}

void
SliceEngine::releaseChildren(NodeRef a, NodeRef b)
{
    // Iterative teardown: dropping the last reference to a chain head
    // must not recurse down the chain (sizeCap_ bounds arith depth,
    // but an explicit stack keeps the walk allocation-free and flat).
    if (a != kNil && --arena_[a].refs == 0)
        releaseStack_.push_back(a);
    if (b != kNil && --arena_[b].refs == 0)
        releaseStack_.push_back(b);
    while (!releaseStack_.empty()) {
        NodeRef ref = releaseStack_.back();
        releaseStack_.pop_back();
        Node &dead = arena_[ref];
        if (dead.in1 != kNil && --arena_[dead.in1].refs == 0)
            releaseStack_.push_back(dead.in1);
        if (dead.in2 != kNil && --arena_[dead.in2].refs == 0)
            releaseStack_.push_back(dead.in2);
        dead.in1 = freeHead_;
        freeHead_ = ref;
        --liveNodes_;
    }
}

const BuiltSlice *
SliceEngine::buildForStore(const cpu::InstrEvent &event,
                           const SlicePolicyConfig &policy)
{
    const isa::Instruction &inst = *event.inst;
    ACR_ASSERT(isa::isStore(inst.op), "buildForStore on a non-store");
    NodeRef root = regNodes_[event.core][inst.rs2];
    if (root == kLazy)
        return nullptr;  // lazy leaf root: pure load/copy, no Slice
    const BuiltSlice *built = buildFromNode(root, policy);
    if (built) {
        ACR_ASSERT(built->value == event.result,
                   "slice root value desynced from stored value");
    }
    return built;
}

const BuiltSlice *
SliceEngine::buildFromNode(NodeRef rootRef, const SlicePolicyConfig &policy)
{
    if (rootRef == kNil || !arena_[rootRef].arith)
        return nullptr;  // pure copies/loads have no Slice

    const unsigned max_instrs = policy.buildCap();

    BuiltSlice &out = buildScratch_;
    out.slice.code.clear();
    out.slice.numInputs = 0;
    out.inputs.clear();
    out.value = arena_[rootRef].value;

    // Iterative post-order walk. The visited map lives *in* the nodes:
    // a node whose buildEpoch matches this walk's stamp has its source
    // encoding (slice-instruction index or input index) in buildSlot —
    // same traversal, same emission order as the hash-map version,
    // with the lookup reduced to one compare. The stamp is 32 bits to
    // keep the node packed; on the (per-engine, ~4B builds) wraparound
    // every stale stamp is cleared before reuse.
    if (++buildEpoch_ == 0) {
        for (Node &node : arena_)
            node.buildEpoch = 0;
        buildEpoch_ = 1;
    }
    const std::uint32_t epoch = buildEpoch_;
    auto visited = [this, epoch](NodeRef ref) {
        return arena_[ref].buildEpoch == epoch;
    };

    buildStack_.clear();
    buildStack_.push_back({rootRef, false});

    while (!buildStack_.empty()) {
        Frame frame = buildStack_.back();
        buildStack_.pop_back();
        Node &node = arena_[frame.node];

        if (node.buildEpoch == epoch)
            continue;

        if (!node.arith) {
            // Opaque leaf: capture the value as an input operand.
            if (out.inputs.size() >= policy.maxInputs)
                return nullptr;
            std::uint32_t k = static_cast<std::uint32_t>(out.inputs.size());
            out.inputs.push_back(node.value);
            node.buildEpoch = epoch;
            node.buildSlot = inputSrc(k);
            continue;
        }

        if (!frame.expanded) {
            buildStack_.push_back({frame.node, true});
            if (node.in1 != kNil && !visited(node.in1))
                buildStack_.push_back({node.in1, false});
            if (node.in2 != kNil && !visited(node.in2))
                buildStack_.push_back({node.in2, false});
            continue;
        }

        // Children resolved: emit this instruction.
        if (out.slice.code.size() >= max_instrs)
            return nullptr;
        SliceInstr si;
        si.op = node.op;
        si.imm = node.imm;
        si.src1 = node.in1 != kNil ? arena_[node.in1].buildSlot : kNoSrc;
        si.src2 = node.in2 != kNil ? arena_[node.in2].buildSlot : kNoSrc;
        std::int32_t slot = static_cast<std::int32_t>(out.slice.code.size());
        out.slice.code.push_back(si);
        node.buildEpoch = epoch;
        node.buildSlot = slot;
    }

    out.slice.numInputs = static_cast<std::uint32_t>(out.inputs.size());

    if (!policy.accepts(out.slice.length(), out.inputs.size()))
        return nullptr;
    return &out;
}

void
SliceEngine::resetCore(CoreId core,
                       const std::array<Word, isa::kNumRegs> &regs)
{
    ACR_ASSERT(core < numCores_, "resetCore on unknown core %u", core);
    for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        NodeRef old = regNodes_[core][r];
        regNodes_[core][r] = kLazy;
        regValues_[core][r] = regs[r];
        if (old != kLazy)
            release(old);
    }
}

} // namespace acr::slice
