/**
 * @file
 * Slice selection policies (Sec. III-A). The paper's evaluation uses the
 * greedy minimal-complexity policy — embed every Slice shorter than a
 * preset instruction-count threshold — and sketches a probabilistic
 * cost-based alternative, which we implement as an ablation
 * (kCostModel): accept a Slice when its estimated recomputation cost is
 * below the cost of restoring the value from a checkpoint in memory.
 */

#ifndef ACR_SLICE_POLICY_HH
#define ACR_SLICE_POLICY_HH

#include <cstdint>

namespace acr::slice
{

/** How the compiler pass decides which Slices to embed. */
enum class SelectionPolicy
{
    /** Embed iff slice length <= lengthThreshold (the paper's choice). */
    kGreedyThreshold,
    /** Embed iff estimated recompute cost <= estimated restore cost. */
    kCostModel,
};

/** Parameters of slice selection. */
struct SlicePolicyConfig
{
    SelectionPolicy policy = SelectionPolicy::kGreedyThreshold;

    /** Greedy cap on slice instruction count (paper default: 10). */
    unsigned lengthThreshold = 10;

    /** Cap on captured input operands per slice instance. */
    unsigned maxInputs = 64;

    // --- Cost-model parameters (energy-like units, pJ) ---
    double aluCost = 1.2;
    double operandCost = 2.2;
    double wordReadCost = 8 * 14.0;   ///< DRAM word read.
    double wordWriteCost = 8 * 14.0;  ///< DRAM word write.
    /** Accept when recompute <= costMargin * restore. */
    double costMargin = 1.0;
    /** Hard length cap while exploring under the cost model. */
    unsigned costModelMaxLen = 64;

    /** Instruction-count cap the builder should apply while walking. */
    unsigned
    buildCap() const
    {
        return policy == SelectionPolicy::kGreedyThreshold
                   ? lengthThreshold
                   : costModelMaxLen;
    }

    /** Final accept/reject for a built slice. */
    bool
    accepts(std::size_t length, std::size_t num_inputs) const
    {
        if (length == 0)
            return false;  // a pure copy of a loaded value is not a Slice
        if (num_inputs > maxInputs)
            return false;
        if (policy == SelectionPolicy::kGreedyThreshold)
            return length <= lengthThreshold;
        const double recompute = static_cast<double>(length) * aluCost +
                                 static_cast<double>(num_inputs) *
                                     operandCost +
                                 wordWriteCost;
        const double restore = wordReadCost + wordWriteCost;
        return length <= costModelMaxLen &&
               recompute <= costMargin * restore;
    }
};

} // namespace acr::slice

#endif // ACR_SLICE_POLICY_HH
