/**
 * @file
 * Static representation of an ACR Slice (Sec. II-B / III-A of the paper):
 * a straight-line sequence of arithmetic/logic instructions — no loads,
 * no stores, no branches by construction — whose terminal operands come
 * from the input-operand buffer. The final instruction produces the value
 * a store wrote, so replaying the Slice regenerates that value during
 * recovery.
 */

#ifndef ACR_SLICE_STATIC_SLICE_HH
#define ACR_SLICE_STATIC_SLICE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace acr::slice
{

/** Identifier of an interned StaticSlice in the SliceRepository. */
using SliceId = std::uint32_t;

/** Sentinel for "no such slice". */
inline constexpr SliceId kInvalidSlice = ~SliceId{0};

/** Operand slot marker: no second source (reg-imm forms). */
inline constexpr std::int32_t kNoSrc = INT32_MIN;

/**
 * One instruction of a Slice. Sources are either the result of an
 * earlier slice instruction (index >= 0) or a captured input operand
 * (encoded as -1 - inputIndex).
 */
struct SliceInstr
{
    isa::Opcode op = isa::Opcode::kMovi;
    SWord imm = 0;
    std::int32_t src1 = kNoSrc;
    std::int32_t src2 = kNoSrc;

    bool operator==(const SliceInstr &other) const = default;
};

/** Encode "input operand k" as a source index. */
constexpr std::int32_t
inputSrc(std::uint32_t k)
{
    return -1 - static_cast<std::int32_t>(k);
}

/** True if a source index refers to a captured input operand. */
constexpr bool
isInputSrc(std::int32_t src)
{
    return src < 0 && src != kNoSrc;
}

/** Input index encoded by a source. */
constexpr std::uint32_t
inputIndexOf(std::int32_t src)
{
    return static_cast<std::uint32_t>(-1 - src);
}

/**
 * A full Slice: instructions in dependence order (operands precede
 * users); the last instruction produces the recomputed value.
 */
struct StaticSlice
{
    std::vector<SliceInstr> code;
    std::uint32_t numInputs = 0;

    std::size_t length() const { return code.size(); }

    bool operator==(const StaticSlice &other) const = default;

    /** Shape hash for repository dedup. */
    std::size_t hash() const;
};

} // namespace acr::slice

#endif // ACR_SLICE_STATIC_SLICE_HH
