/**
 * @file
 * SliceInstance: one runtime activation of a StaticSlice — the slice id
 * plus the input operand values captured when the associated store
 * executed (Sec. II-B: "record the input operands and their mappings to
 * corresponding Slices"). Instances occupy space in the bounded
 * input-operand buffer; the accounting object enforces the capacity and
 * reclaims space when an instance dies (its AddrMap entry expired and no
 * retained checkpoint log references it).
 */

#ifndef ACR_SLICE_INSTANCE_HH
#define ACR_SLICE_INSTANCE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "slice/repository.hh"

namespace acr::slice
{

/** Bounded-capacity accounting for the input-operand buffer. */
class OperandBufferAccounting
{
  public:
    explicit OperandBufferAccounting(std::size_t capacity_words)
        : capacity_(capacity_words)
    {
    }

    /** Reserve @p words; false (no change) when it would overflow. */
    bool tryReserve(std::size_t words);

    /** Return @p words to the pool. */
    void release(std::size_t words);

    std::size_t capacity() const { return capacity_; }
    std::size_t liveWords() const { return live_; }
    std::size_t peakWords() const { return peak_; }
    std::uint64_t rejections() const { return rejections_; }

    /** Restore history counters a rebuilt pool cannot re-derive (the
     *  prefix-sharing snapshot; live words re-accrue via create()). */
    void
    restoreCounters(std::size_t peak, std::uint64_t rejections)
    {
        peak_ = peak;
        rejections_ = rejections;
    }

  private:
    std::size_t capacity_;
    std::size_t live_ = 0;
    std::size_t peak_ = 0;
    std::uint64_t rejections_ = 0;
};

/** Cost of one slice replay, for timing/energy accounting. */
struct ReplayCost
{
    std::uint64_t aluOps = 0;
    std::uint64_t operandReads = 0;
};

/** A StaticSlice plus its captured input operands. */
class SliceInstance
{
    /** Construction token: keeps the ctor effectively private while
     *  letting create() use make_shared (instances are allocated by
     *  the million — one combined control-block+object allocation
     *  instead of two). */
    struct Private
    {
        explicit Private() = default;
    };

  public:
    /**
     * Create an instance, reserving operand-buffer space.
     * @return null if the buffer cannot hold the inputs.
     */
    static std::shared_ptr<SliceInstance>
    create(SliceId slice, std::vector<Word> inputs,
           OperandBufferAccounting &accounting);

    SliceInstance(Private, SliceId slice, std::vector<Word> inputs,
                  OperandBufferAccounting &accounting);

    ~SliceInstance();

    SliceInstance(const SliceInstance &) = delete;
    SliceInstance &operator=(const SliceInstance &) = delete;

    SliceId slice() const { return slice_; }
    const std::vector<Word> &inputs() const { return inputs_; }

    /**
     * Recompute the value by executing the Slice on a scratch register
     * set (the paper's scratchpad / pre-restore registerfile).
     * @param repo  repository holding the static slice
     * @param cost  accumulated replay cost (may be null)
     */
    Word replay(const SliceRepository &repo, ReplayCost *cost) const;

  private:
    SliceId slice_;
    std::vector<Word> inputs_;
    OperandBufferAccounting &accounting_;
};

} // namespace acr::slice

#endif // ACR_SLICE_INSTANCE_HH
