#include "slice/instance.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/instruction.hh"

namespace acr::slice
{

bool
OperandBufferAccounting::tryReserve(std::size_t words)
{
    if (live_ + words > capacity_) {
        ++rejections_;
        return false;
    }
    live_ += words;
    peak_ = std::max(peak_, live_);
    return true;
}

void
OperandBufferAccounting::release(std::size_t words)
{
    ACR_ASSERT(words <= live_, "operand buffer accounting underflow");
    live_ -= words;
}

std::shared_ptr<SliceInstance>
SliceInstance::create(SliceId slice, std::vector<Word> inputs,
                      OperandBufferAccounting &accounting)
{
    if (!accounting.tryReserve(inputs.size()))
        return nullptr;
    return std::make_shared<SliceInstance>(Private{}, slice,
                                           std::move(inputs), accounting);
}

SliceInstance::SliceInstance(Private, SliceId slice,
                             std::vector<Word> inputs,
                             OperandBufferAccounting &accounting)
    : slice_(slice), inputs_(std::move(inputs)), accounting_(accounting)
{
}

SliceInstance::~SliceInstance()
{
    accounting_.release(inputs_.size());
}

Word
SliceInstance::replay(const SliceRepository &repo, ReplayCost *cost) const
{
    const StaticSlice &slice = repo.get(slice_);
    ACR_ASSERT(!slice.code.empty(), "replaying an empty slice");
    ACR_ASSERT(slice.numInputs == inputs_.size(),
               "instance has %zu inputs, slice expects %u",
               inputs_.size(), slice.numInputs);

    std::vector<Word> slots(slice.code.size(), 0);

    auto fetch = [&](std::int32_t src) -> Word {
        if (src == kNoSrc)
            return 0;
        if (isInputSrc(src)) {
            if (cost)
                ++cost->operandReads;
            return inputs_[inputIndexOf(src)];
        }
        return slots[static_cast<std::size_t>(src)];
    };

    for (std::size_t i = 0; i < slice.code.size(); ++i) {
        const SliceInstr &si = slice.code[i];
        Word a = fetch(si.src1);
        Word b = fetch(si.src2);
        // tid never appears inside a slice (captured as an input), so
        // the tid argument is irrelevant.
        slots[i] = isa::evalArith(si.op, a, b, si.imm, 0);
    }
    if (cost)
        cost->aluOps += slice.code.size();
    return slots.back();
}

} // namespace acr::slice
