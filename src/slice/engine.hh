/**
 * @file
 * SliceEngine: the dynamic backward slicer — the simulator's equivalent
 * of the paper's Pin-based compiler pass (Sec. IV: "We implemented ACR's
 * compiler pass ... as a Pin tool").
 *
 * For every core and register the engine maintains the producer DAG of
 * the current value: arithmetic instructions link to the nodes of their
 * register operands; loads, tid reads and over-long chains become opaque
 * leaves whose *values* are captured. When a store executes, the engine
 * linearizes the DAG behind the stored value into a StaticSlice (arith
 * ops only) plus captured input operands — or reports that no admissible
 * Slice exists.
 */

#ifndef ACR_SLICE_ENGINE_HH
#define ACR_SLICE_ENGINE_HH

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "cpu/exec_observer.hh"
#include "isa/instruction.hh"
#include "slice/policy.hh"
#include "slice/static_slice.hh"

namespace acr::slice
{

/** Result of linearizing a producer DAG. */
struct BuiltSlice
{
    StaticSlice slice;
    std::vector<Word> inputs;
    /** The value the slice recomputes (== the stored value). */
    Word value = 0;
};

/** Per-register producer tracking plus the slice builder. */
class SliceEngine
{
  public:
    /**
     * @param num_cores  cores to track
     * @param size_cap   producer chains whose (approximate) instruction
     *                   count exceeds this become opaque leaves; bounds
     *                   both tracking memory and builder work. Must be
     *                   at least the largest threshold under study.
     */
    explicit SliceEngine(unsigned num_cores, unsigned size_cap = 128);

    /** Feed one retired instruction (call for every instruction). */
    void observe(const cpu::InstrEvent &event);

    /**
     * Build the Slice for the value a store wrote (the producer DAG of
     * rs2 at the time of @p event).
     * @return nullopt when the value has no admissible Slice under
     *         @p limits (producer is a load, chain too long, too many
     *         inputs).
     */
    std::optional<BuiltSlice>
    buildForStore(const cpu::InstrEvent &event,
                  const SlicePolicyConfig &policy) const;

    /**
     * Rollback support: producer chains for @p core are no longer valid;
     * every register becomes an opaque leaf holding its restored value.
     */
    void resetCore(CoreId core, const std::array<Word, isa::kNumRegs> &regs);

    unsigned sizeCap() const { return sizeCap_; }

  private:
    struct Node;
    using NodePtr = std::shared_ptr<Node>;

    /** A producer-DAG node. */
    struct Node
    {
        bool arith = false;       ///< false: opaque leaf (capture value)
        isa::Opcode op = isa::Opcode::kMovi;
        SWord imm = 0;
        Word value = 0;
        NodePtr in1;
        NodePtr in2;
        std::uint32_t approxSize = 1;
    };

    static NodePtr leaf(Word value);

    std::optional<BuiltSlice>
    buildFromNode(const NodePtr &root,
                  const SlicePolicyConfig &policy) const;

    unsigned numCores_;
    unsigned sizeCap_;
    std::vector<std::array<NodePtr, isa::kNumRegs>> regNodes_;
};

} // namespace acr::slice

#endif // ACR_SLICE_ENGINE_HH
