/**
 * @file
 * SliceEngine: the dynamic backward slicer — the simulator's equivalent
 * of the paper's Pin-based compiler pass (Sec. IV: "We implemented ACR's
 * compiler pass ... as a Pin tool").
 *
 * For every core and register the engine maintains the producer DAG of
 * the current value: arithmetic instructions link to the nodes of their
 * register operands; loads, tid reads and over-long chains become opaque
 * leaves whose *values* are captured. When a store executes, the engine
 * linearizes the DAG behind the stored value into a StaticSlice (arith
 * ops only) plus captured input operands — or reports that no admissible
 * Slice exists.
 *
 * Hot-path layout (DESIGN.md §13): the engine allocates one node per
 * retired arithmetic instruction and one per load/tid leaf, so node
 * turnover dominates the whole simulator. Nodes therefore live in an
 * engine-owned arena (chunked, free-listed) with an intrusive
 * non-atomic refcount — an engine belongs to exactly one experiment
 * frame, which runs on one thread — and the linearizer's visited-map
 * is an epoch-stamped slot carried in the node itself instead of a
 * per-call hash map. Both changes are pure allocation/bookkeeping
 * swaps: the DAG shape, traversal order, and emitted slices are
 * bit-identical to the original shared_ptr implementation (locked by
 * perf_equiv_test / golden_stdout).
 */

#ifndef ACR_SLICE_ENGINE_HH
#define ACR_SLICE_ENGINE_HH

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "cpu/exec_observer.hh"
#include "isa/instruction.hh"
#include "slice/policy.hh"
#include "slice/static_slice.hh"

namespace acr::slice
{

/** Result of linearizing a producer DAG. */
struct BuiltSlice
{
    StaticSlice slice;
    std::vector<Word> inputs;
    /** The value the slice recomputes (== the stored value). */
    Word value = 0;
};

/** Per-register producer tracking plus the slice builder. */
class SliceEngine
{
  public:
    /**
     * @param num_cores  cores to track
     * @param size_cap   producer chains whose (approximate) instruction
     *                   count exceeds this become opaque leaves; bounds
     *                   both tracking memory and builder work. Must be
     *                   at least the largest threshold under study.
     */
    explicit SliceEngine(unsigned num_cores, unsigned size_cap = 128);
    ~SliceEngine();

    // The arena hands out raw intra-engine pointers; an engine is
    // therefore pinned to its address.
    SliceEngine(const SliceEngine &) = delete;
    SliceEngine &operator=(const SliceEngine &) = delete;

    /**
     * Feed one retired instruction (call for every instruction).
     * Defined inline below: with the observer devirtualized into the
     * core's dispatch loop, this is the hottest function in the
     * simulator, and keeping it in the header lets the whole
     * alloc/retain/release path fold into the caller.
     */
    void observe(const cpu::InstrEvent &event);

    /**
     * Build the Slice for the value a store wrote (the producer DAG of
     * rs2 at the time of @p event).
     * @return nullptr when the value has no admissible Slice under
     *         @p policy (producer is a load, chain too long, too many
     *         inputs). A non-null result points into engine-owned
     *         scratch reused by the next build call — copy out what
     *         must survive. Millions of stores build slices per run,
     *         so the builder must not allocate fresh result vectors
     *         each time (DESIGN.md §13).
     */
    const BuiltSlice *buildForStore(const cpu::InstrEvent &event,
                                    const SlicePolicyConfig &policy);

    /**
     * Rollback support: producer chains for @p core are no longer valid;
     * every register becomes an opaque leaf holding its restored value.
     */
    void resetCore(CoreId core, const std::array<Word, isa::kNumRegs> &regs);

    unsigned sizeCap() const { return sizeCap_; }

    /** Nodes currently alive (tests/debugging). */
    std::size_t liveNodes() const { return liveNodes_; }

  private:
    /**
     * A producer-DAG node. `refs` counts register slots plus parent
     * links; `buildEpoch`/`buildSlot` are the linearizer's visited
     * stamp (valid only while buildEpoch matches the engine's current
     * walk). When a node sits on the free list, `in1` doubles as the
     * list link.
     */
    struct Node
    {
        Node *in1;
        Node *in2;
        Word value;
        SWord imm;
        std::uint64_t buildEpoch;
        std::uint32_t refs;
        std::uint32_t approxSize;
        std::int32_t buildSlot;
        isa::Opcode op;
        bool arith;
    };

    static constexpr std::size_t kChunkNodes = 4096;

    Node *alloc();
    Node *leaf(Word value);
    void retain(Node *node) { ++node->refs; }
    /** Drop one reference; reclaims the node (and, transitively, its
     *  children) into the free list when it was the last. The childless
     *  case — every load/tid leaf, the bulk of node deaths — is freed
     *  inline; only a node with children drops to the out-of-line
     *  cascade. */
    void
    release(Node *node)
    {
        if (--node->refs != 0)
            return;
        Node *a = node->in1;
        Node *b = node->in2;
        node->in1 = freeList_;
        freeList_ = node;
        --liveNodes_;
        if (a != nullptr || b != nullptr)
            releaseChildren(a, b);
    }
    /** Out-of-line teardown of a freed node's subtrees. */
    void releaseChildren(Node *a, Node *b);

    const BuiltSlice *buildFromNode(Node *root,
                                    const SlicePolicyConfig &policy);

    unsigned numCores_;
    unsigned sizeCap_;
    std::vector<std::array<Node *, isa::kNumRegs>> regNodes_;

    // --- Node arena ---
    std::vector<std::unique_ptr<Node[]>> chunks_;
    std::size_t chunkUsed_ = kChunkNodes;  ///< used slots in chunks_.back()
    Node *freeList_ = nullptr;
    std::size_t liveNodes_ = 0;

    // --- Reused walk scratch (arena-style: capacity survives calls) ---
    struct Frame
    {
        Node *node;
        bool expanded;
    };
    std::vector<Frame> buildStack_;
    std::vector<Node *> releaseStack_;
    std::uint64_t buildEpoch_ = 0;
    /** Result slot of buildFromNode; vectors keep their capacity. */
    BuiltSlice buildScratch_;
};

inline SliceEngine::Node *
SliceEngine::alloc()
{
    Node *node;
    if (freeList_ != nullptr) {
        node = freeList_;
        freeList_ = node->in1;
    } else {
        if (chunkUsed_ == kChunkNodes) {
            chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
            chunkUsed_ = 0;
        }
        node = &chunks_.back()[chunkUsed_++];
    }
    node->in1 = nullptr;
    node->in2 = nullptr;
    node->refs = 1;
    node->buildEpoch = 0;
    ++liveNodes_;
    return node;
}

inline SliceEngine::Node *
SliceEngine::leaf(Word value)
{
    Node *node = alloc();
    node->arith = false;
    node->op = isa::Opcode::kMovi;
    node->imm = 0;
    node->value = value;
    node->approxSize = 1;
    return node;
}

inline void
SliceEngine::observe(const cpu::InstrEvent &event)
{
    const isa::Instruction &inst = *event.inst;
    ACR_ASSERT(event.core < numCores_, "event from unknown core %u",
               event.core);
    auto &regs = regNodes_[event.core];

    if (isa::isLoad(inst.op) || inst.op == isa::Opcode::kTid) {
        // Memory instructions and tid reads terminate slices: the value
        // itself becomes a capturable input operand.
        Node *node = leaf(event.result);
        release(regs[inst.rd]);
        regs[inst.rd] = node;
        return;
    }

    if (!isSliceable(inst.op))
        return;  // stores, branches, barriers, halt: no register change

    Node *node = alloc();
    node->arith = true;
    node->op = inst.op;
    node->imm = inst.imm;
    node->value = event.result;

    std::uint64_t approx = 1;
    if (isa::readsRs1(inst.op)) {
        node->in1 = regs[inst.rs1];
        retain(node->in1);
        approx += node->in1->arith ? node->in1->approxSize : 0;
    }
    if (isa::readsRs2(inst.op)) {
        node->in2 = regs[inst.rs2];
        retain(node->in2);
        approx += node->in2->arith ? node->in2->approxSize : 0;
    }

    if (approx > sizeCap_) {
        // Chain exceeds every threshold under study: collapse to an
        // opaque leaf. This bounds tracking memory, builder work, and
        // teardown depth.
        node->arith = false;
        if (node->in1) {
            release(node->in1);
            node->in1 = nullptr;
        }
        if (node->in2) {
            release(node->in2);
            node->in2 = nullptr;
        }
        node->approxSize = 1;
    } else {
        node->approxSize = static_cast<std::uint32_t>(approx);
    }

    release(regs[inst.rd]);
    regs[inst.rd] = node;
}

} // namespace acr::slice

#endif // ACR_SLICE_ENGINE_HH
