/**
 * @file
 * SliceEngine: the dynamic backward slicer — the simulator's equivalent
 * of the paper's Pin-based compiler pass (Sec. IV: "We implemented ACR's
 * compiler pass ... as a Pin tool").
 *
 * For every core and register the engine maintains the producer DAG of
 * the current value: arithmetic instructions link to the nodes of their
 * register operands; loads, tid reads and over-long chains become opaque
 * leaves whose *values* are captured. When a store executes, the engine
 * linearizes the DAG behind the stored value into a StaticSlice (arith
 * ops only) plus captured input operands — or reports that no admissible
 * Slice exists.
 *
 * Hot-path layout (DESIGN.md §13): the engine allocates one node per
 * retired arithmetic instruction and one per load/tid leaf, so node
 * turnover dominates the whole simulator. Nodes therefore live in a
 * flat engine-owned arena addressed by 32-bit indices — a packed
 * 40-byte node (down from 56 with pointers) with an intrusive
 * non-atomic refcount; an engine belongs to exactly one experiment
 * frame, which runs on one thread. The linearizer's visited-map is an
 * epoch-stamped slot carried in the node itself instead of a per-call
 * hash map. Leaf producers (loads, tid reads, over-cap collapses) are
 * *lazy*: a register slot holds just the value until an arithmetic
 * instruction actually links it, at which point one leaf node is
 * materialized and shared by every subsequent reader — so the very
 * common load→store / load→overwrite patterns never touch the arena
 * at all. All of this is pure allocation/bookkeeping layout: the DAG
 * shape, traversal order, and emitted slices are bit-identical to the
 * original shared_ptr implementation (locked by perf_equiv_test /
 * golden_stdout). A welcome side effect of index addressing is that
 * the whole engine is plain copyable state, which is what lets the
 * prefix-sharing snapshot (DESIGN.md §13) clone a mid-run slicer with
 * a handful of vector copies.
 */

#ifndef ACR_SLICE_ENGINE_HH
#define ACR_SLICE_ENGINE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "cpu/exec_observer.hh"
#include "isa/instruction.hh"
#include "slice/policy.hh"
#include "slice/static_slice.hh"

namespace acr::slice
{

/** Result of linearizing a producer DAG. */
struct BuiltSlice
{
    StaticSlice slice;
    std::vector<Word> inputs;
    /** The value the slice recomputes (== the stored value). */
    Word value = 0;
};

/** Per-register producer tracking plus the slice builder. */
class SliceEngine
{
  public:
    /**
     * @param num_cores  cores to track
     * @param size_cap   producer chains whose (approximate) instruction
     *                   count exceeds this become opaque leaves; bounds
     *                   both tracking memory and builder work. Must be
     *                   at least the largest threshold under study.
     */
    explicit SliceEngine(unsigned num_cores, unsigned size_cap = 128);
    ~SliceEngine();

    // Index-addressed state: copying the engine copies the whole DAG,
    // which the prefix-sharing snapshot relies on.
    SliceEngine(const SliceEngine &) = default;
    SliceEngine &operator=(const SliceEngine &) = default;

    /**
     * Feed one retired instruction (call for every instruction).
     * Defined inline below: with the observer devirtualized into the
     * core's dispatch loop, this is the hottest function in the
     * simulator, and keeping it in the header lets the whole
     * alloc/retain/release path fold into the caller.
     */
    void observe(const cpu::InstrEvent &event);

    /**
     * Build the Slice for the value a store wrote (the producer DAG of
     * rs2 at the time of @p event).
     * @return nullptr when the value has no admissible Slice under
     *         @p policy (producer is a load, chain too long, too many
     *         inputs). A non-null result points into engine-owned
     *         scratch reused by the next build call — copy out what
     *         must survive. Millions of stores build slices per run,
     *         so the builder must not allocate fresh result vectors
     *         each time (DESIGN.md §13).
     */
    const BuiltSlice *buildForStore(const cpu::InstrEvent &event,
                                    const SlicePolicyConfig &policy);

    /**
     * Rollback support: producer chains for @p core are no longer valid;
     * every register becomes an opaque leaf holding its restored value.
     */
    void resetCore(CoreId core, const std::array<Word, isa::kNumRegs> &regs);

    unsigned sizeCap() const { return sizeCap_; }

    /** Nodes currently alive (tests/debugging). */
    std::size_t liveNodes() const { return liveNodes_; }

  private:
    /** Arena index of a node; kNil is the null producer. */
    using NodeRef = std::uint32_t;
    static constexpr NodeRef kNil = 0xFFFFFFFFu;
    /**
     * Register-slot sentinel: the producer is a leaf whose value sits
     * in regValues_ and whose node has not been materialized (and
     * never will be unless an arithmetic instruction links it).
     */
    static constexpr NodeRef kLazy = 0xFFFFFFFEu;

    /**
     * A packed producer-DAG node (40 bytes; two per cache line, vs 56
     * with pointer links). `refs` counts register slots plus parent
     * links; `buildEpoch`/`buildSlot` are the linearizer's visited
     * stamp (valid only while buildEpoch matches the engine's current
     * walk). When a node sits on the free list, `in1` doubles as the
     * list link.
     */
    struct Node
    {
        Word value;
        SWord imm;
        NodeRef in1;
        NodeRef in2;
        std::uint32_t refs;
        std::uint32_t buildEpoch;
        std::int32_t buildSlot;
        std::uint16_t approxSize;
        isa::Opcode op;
        std::uint8_t arith;
    };
    static_assert(sizeof(Node) == 40, "Node packing regressed");

    NodeRef alloc();
    NodeRef leaf(Word value);
    void retain(NodeRef ref) { ++arena_[ref].refs; }
    /** Drop one reference; reclaims the node (and, transitively, its
     *  children) into the free list when it was the last. The childless
     *  case — every load/tid leaf, the bulk of node deaths — is freed
     *  inline; only a node with children drops to the out-of-line
     *  cascade. */
    void
    release(NodeRef ref)
    {
        Node &node = arena_[ref];
        if (--node.refs != 0)
            return;
        NodeRef a = node.in1;
        NodeRef b = node.in2;
        node.in1 = freeHead_;
        freeHead_ = ref;
        --liveNodes_;
        if (a != kNil || b != kNil)
            releaseChildren(a, b);
    }
    /** Out-of-line teardown of a freed node's subtrees. */
    void releaseChildren(NodeRef a, NodeRef b);

    const BuiltSlice *buildFromNode(NodeRef root,
                                    const SlicePolicyConfig &policy);

    unsigned numCores_;
    unsigned sizeCap_;
    std::vector<std::array<NodeRef, isa::kNumRegs>> regNodes_;
    /** Value of each register's producer when its slot is kLazy. */
    std::vector<std::array<Word, isa::kNumRegs>> regValues_;

    // --- Node arena (flat; indices stay valid across growth) ---
    std::vector<Node> arena_;
    NodeRef freeHead_ = kNil;
    std::size_t liveNodes_ = 0;

    // --- Reused walk scratch (arena-style: capacity survives calls) ---
    struct Frame
    {
        NodeRef node;
        bool expanded;
    };
    std::vector<Frame> buildStack_;
    std::vector<NodeRef> releaseStack_;
    std::uint32_t buildEpoch_ = 0;
    /** Result slot of buildFromNode; vectors keep their capacity. */
    BuiltSlice buildScratch_;
};

inline SliceEngine::NodeRef
SliceEngine::alloc()
{
    NodeRef ref;
    if (freeHead_ != kNil) {
        ref = freeHead_;
        freeHead_ = arena_[ref].in1;
    } else {
        ref = static_cast<NodeRef>(arena_.size());
        arena_.emplace_back();
    }
    Node &node = arena_[ref];
    node.in1 = kNil;
    node.in2 = kNil;
    node.refs = 1;
    node.buildEpoch = 0;
    ++liveNodes_;
    return ref;
}

inline SliceEngine::NodeRef
SliceEngine::leaf(Word value)
{
    NodeRef ref = alloc();
    Node &node = arena_[ref];
    node.arith = 0;
    node.op = isa::Opcode::kMovi;
    node.imm = 0;
    node.value = value;
    node.approxSize = 1;
    return ref;
}

inline void
SliceEngine::observe(const cpu::InstrEvent &event)
{
    const isa::Instruction &inst = *event.inst;
    ACR_ASSERT(event.core < numCores_, "event from unknown core %u",
               event.core);
    auto &regs = regNodes_[event.core];
    auto &vals = regValues_[event.core];

    if (isa::isLoad(inst.op) || inst.op == isa::Opcode::kTid) {
        // Memory instructions and tid reads terminate slices: the value
        // itself becomes a capturable input operand. The leaf stays
        // lazy — a value parked in the slot — so a loaded value that is
        // stored or overwritten without arith use never costs a node.
        NodeRef old = regs[inst.rd];
        regs[inst.rd] = kLazy;
        vals[inst.rd] = event.result;
        if (old != kLazy)
            release(old);
        return;
    }

    if (!isSliceable(inst.op))
        return;  // stores, branches, barriers, halt: no register change

    const bool use1 = isa::readsRs1(inst.op);
    const bool use2 = isa::readsRs2(inst.op);

    std::uint64_t approx = 1;
    if (use1 && regs[inst.rs1] != kLazy) {
        const Node &src = arena_[regs[inst.rs1]];
        approx += src.arith ? src.approxSize : 0;
    }
    if (use2 && regs[inst.rs2] != kLazy) {
        const Node &src = arena_[regs[inst.rs2]];
        approx += src.arith ? src.approxSize : 0;
    }

    if (approx > sizeCap_) {
        // Chain exceeds every threshold under study: collapse to an
        // opaque leaf — in the lazy representation, no node at all.
        // This bounds tracking memory, builder work, and teardown
        // depth.
        NodeRef old = regs[inst.rd];
        regs[inst.rd] = kLazy;
        vals[inst.rd] = event.result;
        if (old != kLazy)
            release(old);
        return;
    }

    // Materialize lazy inputs before the node alloc: leaf() may grow
    // the arena, and a materialized leaf parked back in its slot is
    // shared by every later reader of the same register (identical
    // sharing — and therefore identical emitted slices — to the eager
    // scheme).
    NodeRef in1 = kNil;
    NodeRef in2 = kNil;
    if (use1) {
        if (regs[inst.rs1] == kLazy)
            regs[inst.rs1] = leaf(vals[inst.rs1]);
        in1 = regs[inst.rs1];
    }
    if (use2) {
        if (regs[inst.rs2] == kLazy)
            regs[inst.rs2] = leaf(vals[inst.rs2]);
        in2 = regs[inst.rs2];
    }

    NodeRef ref = alloc();
    // No further alloc below: the reference stays valid.
    Node &node = arena_[ref];
    node.arith = 1;
    node.op = inst.op;
    node.imm = inst.imm;
    node.value = event.result;
    node.approxSize = static_cast<std::uint16_t>(approx);
    if (in1 != kNil) {
        node.in1 = in1;
        ++arena_[in1].refs;
    }
    if (in2 != kNil) {
        node.in2 = in2;
        ++arena_[in2].refs;
    }

    // Release the overwritten producer only after the inputs are
    // retained: rd may alias rs1/rs2.
    NodeRef old = regs[inst.rd];
    regs[inst.rd] = ref;
    if (old != kLazy)
        release(old);
}

} // namespace acr::slice

#endif // ACR_SLICE_ENGINE_HH
