#include "slice/repository.hh"

#include "common/logging.hh"

namespace acr::slice
{

std::size_t
StaticSlice::hash() const
{
    std::size_t h = 0x9e3779b97f4a7c15ull ^ numInputs;
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    for (const SliceInstr &si : code) {
        mix(static_cast<std::uint64_t>(si.op));
        mix(static_cast<std::uint64_t>(si.imm));
        mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(si.src1)));
        mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(si.src2)));
    }
    return h;
}

SliceId
SliceRepository::intern(const StaticSlice &slice)
{
    const std::size_t h = slice.hash();
    auto it = byHash_.find(h);
    if (it != byHash_.end()) {
        for (SliceId id : it->second) {
            if (slices_[id] == slice)
                return id;
        }
    }
    ACR_ASSERT(slices_.size() < kInvalidSlice, "slice repository full");
    SliceId id = static_cast<SliceId>(slices_.size());
    totalInstrs_ += slice.code.size();
    slices_.push_back(slice);
    byHash_[h].push_back(id);
    return id;
}

const StaticSlice &
SliceRepository::get(SliceId id) const
{
    ACR_ASSERT(id < slices_.size(), "bad slice id %u", id);
    return slices_[id];
}

void
SliceRepository::clear()
{
    slices_.clear();
    byHash_.clear();
    totalInstrs_ = 0;
}

} // namespace acr::slice
