/**
 * @file
 * Generic SPMD kernel builder: turns a KernelSpec into a Program.
 *
 * Every stored value is produced by a chain of exactly `chainLen`
 * arithmetic instructions rooted at two leaf operands — a loaded seed
 * word and the thread's memory-resident iteration counter — so the
 * backward-slice length of each store is controlled precisely, which is
 * what lets the kernels reproduce Table II's per-threshold behaviour.
 * Loop counters are used only for control flow and address computation;
 * they never feed stored values, mirroring induction-variable code the
 * paper's loops would unroll away.
 */

#include "workloads/kernel_spec.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/builder.hh"

namespace acr::workloads
{

namespace
{

using isa::ProgramBuilder;
using isa::Reg;

// Register conventions (see also DESIGN.md §4).
constexpr Reg rTid = 1;      ///< thread id
constexpr Reg rT = 2;        ///< outer iteration
constexpr Reg rI = 3;        ///< inner loop index
constexpr Reg rAddr = 4;     ///< effective address scratch
constexpr Reg rVal = 5;      ///< value under construction
constexpr Reg rCnt = 6;      ///< per-iteration counter value (leaf)
constexpr Reg rSeed = 7;     ///< loaded seed word (leaf)
constexpr Reg rAcc = 8;      ///< communication accumulator
constexpr Reg rLim = 9;      ///< inner loop limit
constexpr Reg rLocal = 10;   ///< this thread's private region base
constexpr Reg rShared = 11;  ///< this thread's padded shared slot
constexpr Reg rSeedB = 12;   ///< seed table base
constexpr Reg rTmp = 14;
constexpr Reg rTmp2 = 15;
constexpr Reg rMid = 16;     ///< burst iteration index
constexpr Reg rOLim = 17;    ///< outer loop limit
constexpr Reg rKey = 18;     ///< histogram key

// Word-granular memory layout.
constexpr Addr kLocalBase = Addr{1} << 20;
constexpr Addr kThreadStride = Addr{1} << 16;
constexpr Addr kSharedBase = Addr{1} << 23;
constexpr Addr kSeedBase = (Addr{1} << 23) + 1024;
constexpr unsigned kSeedWords = 16;

constexpr SWord kBurstOffset = 32768;
constexpr SWord kHistOffset = 49152;
constexpr SWord kCntOffset = 57344;
constexpr SWord kAuxOffset = 57352;

/**
 * Append exactly @p len dependent arithmetic instructions to @p reg,
 * with operation mix and constants derived from @p salt.
 */
void
emitChain(ProgramBuilder &b, Reg reg, unsigned len, std::uint64_t salt)
{
    Rng rng(salt);
    for (unsigned k = 0; k < len; ++k) {
        std::uint64_t c = rng.next();
        switch (k % 3) {
          case 0:
            b.muli(reg, reg, static_cast<SWord>((c & 0xffff) | 1));
            break;
          case 1:
            b.addi(reg, reg, static_cast<SWord>(c & 0xfffff));
            break;
          default:
            b.xori(reg, reg, static_cast<SWord>(c & 0xffffffff));
            break;
        }
    }
}

/**
 * One store phase: `cells` stores whose values carry a backward slice of
 * exactly `chain_len` instructions (1 xor + chain_len-1 chain ops),
 * rooted at the loaded seed and counter leaves.
 */
void
emitPhase(ProgramBuilder &b, const std::string &label, SWord base_offset,
          unsigned cells, unsigned chain_len, unsigned reps,
          std::uint64_t salt)
{
    ACR_ASSERT(chain_len >= 1, "phase chain length must be >= 1");
    ACR_ASSERT(reps >= 1, "phase needs at least one update per cell");
    b.movi(rLim, static_cast<SWord>(cells));
    b.movi(rI, 0);
    b.label(label);
    b.add(rAddr, rLocal, rI);
    // Each rep re-derives the value from the leaf operands, so every
    // store's backward slice has exactly chain_len instructions; only
    // the first store per interval enters the undo log.
    for (unsigned r = 0; r < reps; ++r) {
        // seed = seeds[i & 15] — address depends on i, the value does
        // not (loads terminate slices; the seed is a captured leaf).
        b.andi(rTmp, rI, kSeedWords - 1);
        b.add(rTmp, rTmp, rSeedB);
        b.load(rSeed, rTmp);
        b.xor_(rVal, rSeed, rCnt);
        emitChain(b, rVal, chain_len - 1, salt ^ (r * 0x51ceull));
        b.store(rAddr, rVal, base_offset);
    }
    b.addi(rI, rI, 1);
    b.bltu(rI, rLim, label);
}

/** is-style histogram: indirect read-modify-write over phase-0 cells. */
void
emitHistogram(ProgramBuilder &b, const std::string &label, unsigned cells)
{
    b.movi(rLim, static_cast<SWord>(cells));
    b.movi(rI, 0);
    b.label(label);
    b.add(rAddr, rLocal, rI);
    b.load(rKey, rAddr);
    b.shri(rTmp, rKey, 3);
    b.andi(rTmp, rTmp, 63);
    b.add(rTmp, rTmp, rLocal);
    b.load(rTmp2, rTmp, kHistOffset);
    b.add(rVal, rTmp2, rKey);  // slice of length 1 over two leaves
    b.store(rTmp, rVal, kHistOffset);
    b.addi(rI, rI, 1);
    b.bltu(rI, rLim, label);
}

/** Load one shared slot (thread @p partner's line-padded word) and fold
 *  it into rAcc. The partner index must already be in rTmp. */
void
emitGatherSlot(ProgramBuilder &b)
{
    b.shli(rTmp, rTmp, 3);  // one cache line per slot
    b.movi(rTmp2, static_cast<SWord>(kSharedBase));
    b.add(rTmp, rTmp, rTmp2);
    b.load(rTmp2, rTmp);
    b.add(rAcc, rAcc, rTmp2);
}

/** The inter-thread exchange for one outer iteration. */
void
emitComm(ProgramBuilder &b, const KernelSpec &spec, unsigned threads,
         const std::string &label)
{
    if (spec.comm == Comm::kNone)
        return;

    if (spec.commPeriod > 1) {
        ACR_ASSERT((spec.commPeriod & (spec.commPeriod - 1)) == 0,
                   "commPeriod must be a power of two");
        b.andi(rTmp, rT, static_cast<SWord>(spec.commPeriod - 1));
        b.bne(rTmp, 0, label + "_skip");
    }

    // Publish my value, rendezvous, then gather partners' values. The
    // slots are line-padded so the directory sees exactly the intended
    // sharing pattern.
    b.barrier();
    b.store(rShared, rVal);
    b.barrier();
    b.mov(rAcc, rVal);

    switch (spec.comm) {
      case Comm::kPair:
        b.xori(rTmp, rTid, 1);
        emitGatherSlot(b);
        break;
      case Comm::kRing:
        b.addi(rTmp, rTid, 1);
        b.movi(rTmp2, static_cast<SWord>(threads));
        b.remu(rTmp, rTmp, rTmp2);
        emitGatherSlot(b);
        break;
      case Comm::kQuad:
        for (unsigned k = 1; k < 4; ++k) {
            b.andi(rTmp, rTid, -4);
            b.addi(rTmp2, rTid, static_cast<SWord>(k));
            b.andi(rTmp2, rTmp2, 3);
            b.or_(rTmp, rTmp, rTmp2);
            emitGatherSlot(b);
        }
        break;
      case Comm::kAllToAll: {
        b.movi(rLim, static_cast<SWord>(threads));
        b.movi(rI, 0);
        b.label(label + "_gather");
        b.mov(rTmp, rI);
        emitGatherSlot(b);
        b.addi(rI, rI, 1);
        b.bltu(rI, rLim, label + "_gather");
        break;
      }
      case Comm::kNone:
        break;
    }
    b.store(rLocal, rAcc, kAuxOffset);

    if (spec.commPeriod > 1)
        b.label(label + "_skip");
}

} // namespace

isa::Program
buildKernel(const KernelSpec &spec, const WorkloadParams &params)
{
    ACR_ASSERT(params.threads >= 1 && params.threads <= 64,
               "1..64 threads supported");
    ACR_ASSERT(!spec.phases.empty(), "kernel '%s' has no phases",
               spec.name.c_str());

    ProgramBuilder b(spec.name);
    Rng rng(params.seed);

    // --- Data segment ---
    for (unsigned s = 0; s < kSeedWords; ++s)
        b.data(kSeedBase + s, rng.next());
    for (unsigned t = 0; t < params.threads; ++t) {
        Addr local = kLocalBase + t * kThreadStride;
        b.data(local + static_cast<Addr>(kCntOffset),
               0x1000 + t * 7919ull);
    }

    // --- Setup ---
    b.tid(rTid);
    b.shli(rTmp, rTid, 16);
    b.movi(rLocal, static_cast<SWord>(kLocalBase));
    b.add(rLocal, rLocal, rTmp);
    b.shli(rTmp, rTid, 3);
    b.movi(rShared, static_cast<SWord>(kSharedBase));
    b.add(rShared, rShared, rTmp);
    b.movi(rSeedB, static_cast<SWord>(kSeedBase));
    b.movi(rMid, static_cast<SWord>(spec.outerIters / 2));
    b.movi(rOLim, static_cast<SWord>(spec.outerIters));
    b.movi(rT, 0);

    // --- Outer (timestep) loop ---
    b.label("outer");

    // Memory-resident per-thread counter: the varying leaf every value
    // chain starts from; its own store carries a length-1 slice.
    b.load(rCnt, rLocal, kCntOffset);
    b.addi(rVal, rCnt, 1);
    b.store(rLocal, rVal, kCntOffset);

    // Store phases, laid out back to back in the private region.
    SWord offset = 0;
    for (std::size_t p = 0; p < spec.phases.size(); ++p) {
        const PhaseSpec &phase = spec.phases[p];
        unsigned cells = phase.cells * params.scale;
        emitPhase(b, csprintf("phase%zu", p), offset, cells,
                  phase.chainLen, spec.reps,
                  params.seed ^ (p * 0x9e37ull));
        offset += static_cast<SWord>(cells);
    }
    ACR_ASSERT(offset < kBurstOffset,
               "kernel '%s': phases overflow the cell region",
               spec.name.c_str());

    if (spec.histogram) {
        emitHistogram(b, "hist",
                      spec.phases.front().cells * params.scale);
    }

    // Burst around the middle iteration: concentrated stores whose
    // recomputability is governed by burst.chainLen and whose old
    // values' recomputability by the ramp shape (drives the Max column
    // of Fig. 9 and the temporal variation of Fig. 10).
    if (spec.burst.cells > 0) {
        const unsigned ramp = std::max(1u, spec.burst.rampIters);
        for (unsigned r = 0; r < ramp; ++r) {
            std::string skip = csprintf("burst%u_skip", r);
            b.movi(rTmp2, static_cast<SWord>(spec.outerIters / 2 + r));
            b.cmpeq(rTmp, rT, rTmp2);
            b.beq(rTmp, 0, skip);
            unsigned covered =
                spec.burst.cells * params.scale * (r + 1) / ramp;
            emitPhase(b, csprintf("burst%u", r), kBurstOffset, covered,
                      spec.burst.chainLen, 1,
                      params.seed ^ 0xb1157ull);
            b.label(skip);
        }
    }

    // Thread-dependent extra work: (tid & 3) * imbalance spin
    // iterations of pure arithmetic (no memory traffic).
    if (spec.imbalance > 0) {
        b.andi(rTmp, rTid, 3);
        b.muli(rTmp, rTmp, static_cast<SWord>(spec.imbalance));
        b.movi(rTmp2, 0);
        b.label("imb_loop");
        b.bgeu(rTmp2, rTmp, "imb_done");
        b.addi(rTmp2, rTmp2, 1);
        b.jmp("imb_loop");
        b.label("imb_done");
    }

    emitComm(b, spec, params.threads, "comm");

    // End-of-iteration rendezvous (BSP style), possibly sparse.
    if (spec.barrierPeriod > 1) {
        ACR_ASSERT((spec.barrierPeriod & (spec.barrierPeriod - 1)) == 0,
                   "barrierPeriod must be a power of two");
        b.andi(rTmp, rT, static_cast<SWord>(spec.barrierPeriod - 1));
        b.bne(rTmp, 0, "bar_skip");
        b.barrier();
        b.label("bar_skip");
    } else {
        b.barrier();
    }

    b.addi(rT, rT, 1);
    b.bltu(rT, rOLim, "outer");
    b.halt();

    return b.build();
}

} // namespace acr::workloads
