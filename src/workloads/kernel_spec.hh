/**
 * @file
 * Declarative kernel description consumed by the generic kernel builder.
 * Each NAS-signature kernel is a spec: store phases with exact backward-
 * chain lengths, an optional one-shot burst phase (non-uniform
 * recomputability over time, Sec. V-D1/Fig. 10), an optional
 * histogram-style indirect-update phase (is), and a communication
 * pattern that shapes the directory interaction graph (Sec. V-E).
 */

#ifndef ACR_WORKLOADS_KERNEL_SPEC_HH
#define ACR_WORKLOADS_KERNEL_SPEC_HH

#include <string>
#include <vector>

#include "isa/program.hh"
#include "workloads/workload.hh"

namespace acr::workloads
{

/** Inter-thread communication pattern per outer iteration. */
enum class Comm
{
    kNone,      ///< fully independent threads
    kPair,      ///< thread t exchanges with t ^ 1
    kQuad,      ///< groups of four neighbouring threads
    kRing,      ///< thread t reads (t + 1) mod T
    kAllToAll,  ///< every thread reads every thread's slot
};

/** One store phase executed each outer iteration. */
struct PhaseSpec
{
    /** Cells (distinct store addresses) per thread. */
    unsigned cells = 0;

    /**
     * Exact backward-slice length of each store's value: the number of
     * arithmetic instructions between the captured leaf operands (a
     * loaded seed and the thread's memory-resident counter) and the
     * store. Lengths above the slicer's size cap are never
     * recomputable.
     */
    unsigned chainLen = 1;
};

/**
 * Burst phase around the middle outer iteration. With rampIters == 1 it
 * is one-shot: every store is a first write (old values are initial
 * data, never recomputable — is's ranking phase, the tiny Max reduction
 * of Fig. 9). With rampIters > 1 the coverage grows linearly over the
 * ramp, so the biggest ramp interval mostly *rewrites* cells whose
 * producers executed one interval earlier — a large and largely
 * recomputable largest checkpoint (dc's 58.3% Max reduction).
 */
struct BurstSpec
{
    unsigned cells = 0;
    unsigned chainLen = 1;
    unsigned rampIters = 1;
};

/** The full kernel description. */
struct KernelSpec
{
    std::string name;
    unsigned outerIters = 30;
    std::vector<PhaseSpec> phases;

    /**
     * Updates per cell per iteration. Only the first store to an
     * address logs within a checkpoint interval, so reps scales the
     * compute-to-logged-record ratio — how much useful work amortizes
     * each undo-log record — without changing checkpoint sizes.
     */
    unsigned reps = 1;

    /** is-style phase: indirect histogram updates over phase-0 cells. */
    bool histogram = false;

    BurstSpec burst{};

    Comm comm = Comm::kAllToAll;

    /** Exchange every commPeriod-th iteration (power of two). */
    unsigned commPeriod = 1;

    /** End-of-iteration barrier every Nth iteration (power of two).
     *  Kernels with sparse barriers let threads drift, which is what
     *  coordinated-local checkpointing capitalizes on (Fig. 13):
     *  global establishment drags every core to the slowest one's
     *  clock, local establishment only aligns communicating groups. */
    unsigned barrierPeriod = 1;

    /** Thread imbalance: (tid mod 4) * imbalance extra arithmetic
     *  instructions per iteration (load imbalance between barriers). */
    unsigned imbalance = 0;
};

/** Emit the SPMD program for @p spec. */
isa::Program buildKernel(const KernelSpec &spec,
                         const WorkloadParams &params);

/** A Workload wrapping a KernelSpec. */
class SpecWorkload : public Workload
{
  public:
    explicit SpecWorkload(KernelSpec spec) : spec_(std::move(spec)) {}

    const std::string &name() const override { return spec_.name; }

    isa::Program
    build(const WorkloadParams &params) const override
    {
        return buildKernel(spec_, params);
    }

    const KernelSpec &spec() const { return spec_; }

  private:
    KernelSpec spec_;
};

} // namespace acr::workloads

#endif // ACR_WORKLOADS_KERNEL_SPEC_HH
