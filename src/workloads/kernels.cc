/**
 * @file
 * The eight NAS-signature kernel specifications (Sec. IV of the paper;
 * DESIGN.md §4 documents each substitution). Chain-length mixes are
 * chosen so the per-threshold checkpoint-size reductions reproduce the
 * qualitative shape of Table II; burst phases reproduce the Max-column
 * behaviour of Fig. 9; communication patterns reproduce Fig. 13's
 * local-coordination winners and losers.
 */

#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/kernel_spec.hh"

namespace acr::workloads
{

namespace
{

KernelSpec
btSpec()
{
    // Block-tridiagonal solver: medium chains, all-to-all boundary
    // exchange every iteration (no local-checkpointing benefit).
    KernelSpec spec;
    spec.name = "bt";
    spec.phases = {{92, 7}, {23, 18}, {102, 27}, {13, 38}, {26, 80}};
    spec.burst = {256, 27};
    spec.comm = Comm::kAllToAll;
    return spec;
}

KernelSpec
cgSpec()
{
    // Conjugate gradient: sparse mat-vec rows with 8/12-element
    // accumulations (chains of 16/24), a small scalar phase, all-to-all
    // reductions. Scarcely sliceable at threshold 10, strongly at 20+.
    KernelSpec spec;
    spec.name = "cg";
    spec.phases = {{12, 6}, {110, 16}, {34, 24}};
    spec.reps = 5;  // many solver iterations per logged record: cg's
                    // checkpoint overhead is the smallest (Sec. V-A)
    spec.comm = Comm::kAllToAll;
    return spec;
}

KernelSpec
dcSpec()
{
    // Data cube: short aggregation chains, a large highly-recomputable
    // mid-run cube-build burst (largest Max reduction in Fig. 9),
    // rare pairwise communication (big local-mode gains).
    KernelSpec spec;
    spec.name = "dc";
    spec.phases = {{154, 5}, {25, 9}, {77, 60}};
    spec.burst = {1024, 6, 4};  // ramped cube build: the largest
                                // checkpoint is mostly recomputable
    spec.comm = Comm::kPair;
    spec.commPeriod = 8;
    spec.barrierPeriod = 8;
    spec.imbalance = 400;
    return spec;
}

KernelSpec
ftSpec()
{
    // 3-D FFT: butterfly chains, double-size working set (largest
    // checkpoint/recovery cost), transpose (all-to-all) every fourth
    // iteration only — local checkpointing wins in between.
    KernelSpec spec;
    spec.name = "ft";
    spec.outerIters = 26;
    spec.phases = {{118, 8}, {240, 16}, {92, 26}, {62, 36}};
    spec.comm = Comm::kAllToAll;
    spec.commPeriod = 4;
    spec.barrierPeriod = 4;
    spec.imbalance = 500;
    return spec;
}

KernelSpec
isSpec()
{
    // Integer sort: LCG-style key generation in <= 8 ops (near-total
    // recomputability at threshold 10, ~80% at the paper's threshold 5
    // for is), histogram updates of slice length 1, and one giant
    // non-recomputable ranking burst that forms the largest checkpoint
    // (hence the tiny Max reduction of Fig. 9). Neighbour pairs only.
    KernelSpec spec;
    spec.name = "is";
    spec.phases = {{205, 4}, {51, 8}};
    spec.reps = 2;
    spec.histogram = true;
    spec.burst = {1024, 60};
    spec.comm = Comm::kPair;
    spec.commPeriod = 4;
    spec.barrierPeriod = 4;
    spec.imbalance = 400;
    return spec;
}

KernelSpec
luSpec()
{
    // LU factorisation: wavefront pipeline, spread-out chain lengths,
    // neighbour-pair communication.
    KernelSpec spec;
    spec.name = "lu";
    spec.phases = {{108, 8}, {13, 18}, {46, 28},
                   {26, 38}, {15, 48}, {48, 70}};
    spec.burst = {384, 8, 2};  // pivot-panel refactorization: a
                               // partially recomputable peak interval
    spec.comm = Comm::kPair;
    spec.commPeriod = 4;
    spec.barrierPeriod = 4;
    spec.imbalance = 350;
    return spec;
}

KernelSpec
mgSpec()
{
    // Multigrid: 27-point-stencil-like chains dominate (sliceable only
    // at threshold >= 30), four-thread block communication.
    KernelSpec spec;
    spec.name = "mg";
    spec.phases = {{31, 9}, {20, 18}, {174, 26}, {5, 45}, {26, 75}};
    spec.comm = Comm::kQuad;
    spec.commPeriod = 4;
    spec.barrierPeriod = 4;
    spec.imbalance = 450;
    return spec;
}

KernelSpec
spSpec()
{
    // Scalar pentadiagonal: broad chain spectrum, all-to-all exchange
    // every iteration.
    KernelSpec spec;
    spec.name = "sp";
    spec.phases = {{96, 8}, {26, 17}, {61, 27},
                   {56, 37}, {8, 46}, {9, 60}};
    spec.comm = Comm::kAllToAll;
    return spec;
}

} // namespace

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "bt", "cg", "dc", "ft", "is", "lu", "mg", "sp",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    KernelSpec spec;
    if (name == "bt")
        spec = btSpec();
    else if (name == "cg")
        spec = cgSpec();
    else if (name == "dc")
        spec = dcSpec();
    else if (name == "ft")
        spec = ftSpec();
    else if (name == "is")
        spec = isSpec();
    else if (name == "lu")
        spec = luSpec();
    else if (name == "mg")
        spec = mgSpec();
    else if (name == "sp")
        spec = spSpec();
    else
        fatal("unknown workload '%s'", name.c_str());
    return std::make_unique<SpecWorkload>(std::move(spec));
}

} // namespace acr::workloads
