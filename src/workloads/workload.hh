/**
 * @file
 * Workload interface and registry for the eight NAS-signature kernels
 * (bt, cg, dc, ft, is, lu, mg, sp — the paper's benchmark set, Sec. IV).
 *
 * The real NAS binaries cannot run on this simulator, so each kernel is
 * an SPMD program reproducing the *signature* that drives ACR's results
 * (DESIGN.md §4): the distribution of backward-slice lengths behind its
 * stores (Table II), the placement of non-recomputable bursts (Fig. 9's
 * Max column), and the inter-thread communication pattern (Fig. 13).
 */

#ifndef ACR_WORKLOADS_WORKLOAD_HH
#define ACR_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace acr::workloads
{

/** Knobs common to every kernel. */
struct WorkloadParams
{
    /** SPMD thread count == core count. */
    unsigned threads = 8;

    /** Multiplies per-thread cell counts (problem "class"). */
    unsigned scale = 1;

    /** Seed for the kernel's deterministic data initialization. */
    std::uint64_t seed = 0x5eed0acaULL;
};

/** A benchmark kernel. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const std::string &name() const = 0;

    /** Emit the SPMD program for the given parameters. */
    virtual isa::Program build(const WorkloadParams &params) const = 0;
};

/** Names of all eight kernels, in the paper's order. */
const std::vector<std::string> &allWorkloadNames();

/** Factory; fatal() on an unknown name. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

} // namespace acr::workloads

#endif // ACR_WORKLOADS_WORKLOAD_HH
