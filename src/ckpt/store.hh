/**
 * @file
 * CheckpointStore: the pluggable storage backend behind the
 * CheckpointManager (DESIGN.md §14). The manager owns the checkpoint
 * *protocol* — what to log, when to establish, which checkpoint a
 * rollback targets, two-checkpoint retention, Fig. 2 suspect skipping —
 * while a store owns the storage *medium*: where checkpoint bytes
 * live, what reading/writing them costs, and what footprint they
 * charge. Three backends:
 *
 *   kLog         undo log in DRAM (the paper's BER substrate; the
 *                seed behavior, bit for bit)
 *   kReplicated  ReStore-style k-replica in-memory images: every
 *                record and the arch state are written k times, and
 *                recovery is served from a replica — no recomputation,
 *                so amnesic omission is disabled
 *   kNvm         JASS-style NVM log: checkpoint bytes go to a
 *                byte-addressable non-volatile tier with distinct
 *                read/write/persist costs (acr::energy charges them
 *                separately); ACR's amnesic omission still applies
 */

#ifndef ACR_CKPT_STORE_HH
#define ACR_CKPT_STORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/directory.hh"
#include "ckpt/log.hh"
#include "common/stats.hh"
#include "sim/system.hh"

namespace acr::ckpt
{

/** Which CheckpointStore implementation a run uses. */
enum class Backend
{
    kLog,         ///< undo log in DRAM (seed behavior)
    kReplicated,  ///< ReStore-style k-replica in-memory images
    kNvm,         ///< JASS-style NVM-resident log
};

/** Canonical lowercase name ("log", "replicated", "nvm") — shared by
 *  the wire encoding and the --backend flag. */
const char *backendName(Backend backend);

/** Parse a canonical backend name; returns false on an unknown name
 *  (callers wrap with SerdeError / fatal as appropriate). */
bool parseBackend(const std::string &name, Backend &backend);

/** Every Backend enumerator, in declaration order (test sweeps). */
const std::vector<Backend> &allBackends();

/** Replica count of the kReplicated store (ReStore's default: one
 *  working image plus one recovery replica per checkpoint datum,
 *  modeled as k independent in-memory copies). */
inline constexpr unsigned kReplicaCount = 2;

/** One established checkpoint. */
struct Checkpoint
{
    /** Checkpoint number (the interval it terminates). */
    std::uint64_t index = 0;

    /** Cycle at which establishment completed (max over groups). */
    Cycle establishedAt = 0;

    /** Program progress (retired instructions) at establishment. */
    std::uint64_t progressAt = 0;

    /** Architectural state of every core. */
    std::vector<cpu::ArchState> arch;

    /** Undo log of the interval that ended at this checkpoint. */
    IntervalLog log;

    /** Interaction adjacency of that interval (local-mode closure). */
    std::vector<cache::SharerMask> interactions;

    /** Cores for which this checkpoint is still a valid rollback
     *  target (group rollbacks invalidate newer checkpoints for the
     *  rolled-back cores only). */
    cache::SharerMask validFor = ~cache::SharerMask{0};
};

/** Per-interval size bookkeeping, kept for the whole run (Fig. 9/10,
 *  Table II). */
struct IntervalSizes
{
    std::uint64_t interval = 0;
    std::uint64_t records = 0;
    std::uint64_t amnesicRecords = 0;
    std::uint64_t loggedBytes = 0;
    std::uint64_t omittedBytes = 0;
    std::uint64_t flushedLines = 0;
    std::uint64_t archBytes = 0;

    /** Stored checkpoint footprint (log + architectural state). */
    std::uint64_t
    storedBytes() const
    {
        return loggedBytes + archBytes;
    }
};

/**
 * The storage API carved out of the CheckpointManager. A store is a
 * cost/footprint model plus retention hooks; it never mutates the
 * functional machine state (memory writes and register restores stay
 * in the manager, so every backend recovers through the identical
 * protocol and the RecoveryOracle validates them all the same way).
 *
 * Contract (DESIGN.md §14):
 *  - establishGroup() charges the medium's establishment traffic for
 *    one coordination group and returns the completion cycle; the
 *    manager stalls the group to it.
 *  - accountFootprint() fills the interval's stored-bytes fields for
 *    this medium (what Fig. 9/10-style metrics read).
 *  - restoreWord()/writeRecomputed()/readArchState() charge rollback
 *    traffic; the returned cycles feed the recovery's resume time.
 *  - onCheckpointRetired()/onCheckpointInvalidated() observe the
 *    manager's retention decisions (reclamation hooks; no-ops for the
 *    built-in backends, which model occupancy through footprint only).
 *  - supportsAmnesic() gates ACR's amnesic omission: a store that
 *    serves recovery from stored bytes alone (kReplicated) must see
 *    every old value, so the manager logs records non-amnesically.
 */
class CheckpointStore
{
  public:
    CheckpointStore(sim::MulticoreSystem &system, StatSet &stats,
                    std::uint64_t arch_bytes_per_core)
        : system_(system), stats_(stats),
          archBytesPerCore_(arch_bytes_per_core)
    {
    }

    virtual ~CheckpointStore() = default;

    virtual Backend backend() const = 0;

    const char *name() const { return backendName(backend()); }

    /** May the manager omit recomputable records from this store? */
    virtual bool supportsAmnesic() const = 0;

    /**
     * Charge establishment traffic for @p group's slice of the open
     * interval @p log (stored records + the group cores' architectural
     * state), issued at @p start. @p flush_done is when the group's
     * dirty-line flush completed. Returns the cycle the last write
     * lands (>= flush_done).
     */
    virtual Cycle establishGroup(const IntervalLog &log,
                                 cache::SharerMask group, Cycle start,
                                 Cycle flush_done) = 0;

    /** Fill @p sizes' loggedBytes/omittedBytes/archBytes for an
     *  interval of @p log stored on this medium by @p num_cores. */
    virtual void accountFootprint(const IntervalLog &log,
                                  unsigned num_cores,
                                  IntervalSizes &sizes) const = 0;

    /** Charge reading @p record's old value from the store and writing
     *  it back to working memory; returns the completion cycle. */
    virtual Cycle restoreWord(const LogRecord &record,
                              Cycle issue_at) = 0;

    /** Charge writing a recomputed (amnesic) word to working memory —
     *  the value was never stored; returns the completion cycle. */
    virtual Cycle writeRecomputed(const LogRecord &record,
                                  Cycle issue_at) = 0;

    /** Charge reading core @p core's checkpointed architectural state
     *  from the store; returns the completion cycle. */
    virtual Cycle readArchState(CoreId core, Cycle issue_at) = 0;

    /** The manager dropped @p ckpt from retention (oldest-first). */
    virtual void
    onCheckpointRetired(const Checkpoint &ckpt)
    {
        (void)ckpt;
    }

    /** A rollback invalidated @p ckpt as a target for @p cores. */
    virtual void
    onCheckpointInvalidated(const Checkpoint &ckpt,
                            cache::SharerMask cores)
    {
        (void)ckpt;
        (void)cores;
    }

  protected:
    sim::MulticoreSystem &system_;
    StatSet &stats_;
    std::uint64_t archBytesPerCore_;
};

/** Construct the @p backend store. */
std::unique_ptr<CheckpointStore>
makeCheckpointStore(Backend backend, sim::MulticoreSystem &system,
                    StatSet &stats, std::uint64_t arch_bytes_per_core);

} // namespace acr::ckpt

#endif // ACR_CKPT_STORE_HH
