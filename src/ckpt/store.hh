/**
 * @file
 * CheckpointStore: the pluggable storage backend behind the
 * CheckpointManager (DESIGN.md §14). The manager owns the checkpoint
 * *protocol* — what to log, when to establish, which checkpoint a
 * rollback targets, two-checkpoint retention, Fig. 2 suspect skipping —
 * while a store owns the storage *medium*: where checkpoint bytes
 * live, what reading/writing them costs, and what footprint they
 * charge. Three backends:
 *
 *   kLog         undo log in DRAM (the paper's BER substrate; the
 *                seed behavior, bit for bit)
 *   kReplicated  ReStore-style k-replica in-memory images: every
 *                record and the arch state are written k times, and
 *                recovery is served from a replica — no recomputation,
 *                so amnesic omission is disabled
 *   kNvm         JASS-style NVM log: checkpoint bytes go to a
 *                byte-addressable non-volatile tier with distinct
 *                read/write/persist costs (acr::energy charges them
 *                separately); ACR's amnesic omission still applies
 */

#ifndef ACR_CKPT_STORE_HH
#define ACR_CKPT_STORE_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cache/directory.hh"
#include "ckpt/log.hh"
#include "common/stats.hh"
#include "fault/storage_fault.hh"
#include "sim/system.hh"

namespace acr::ckpt
{

/** Which CheckpointStore implementation a run uses. */
enum class Backend
{
    kLog,         ///< undo log in DRAM (seed behavior)
    kReplicated,  ///< ReStore-style k-replica in-memory images
    kNvm,         ///< JASS-style NVM-resident log
};

/** Canonical lowercase name ("log", "replicated", "nvm") — shared by
 *  the wire encoding and the --backend flag. */
const char *backendName(Backend backend);

/** Parse a canonical backend name; returns false on an unknown name
 *  (callers wrap with SerdeError / fatal as appropriate). */
bool parseBackend(const std::string &name, Backend &backend);

/** Every Backend enumerator, in declaration order (test sweeps). */
const std::vector<Backend> &allBackends();

/** Replica count of the kReplicated store (ReStore's default: one
 *  working image plus one recovery replica per checkpoint datum,
 *  modeled as k independent in-memory copies). */
inline constexpr unsigned kReplicaCount = 2;

/** The failure modes @p backend's medium can suffer (DESIGN.md §16):
 *  flips and torn establishments everywhere, replica loss only where
 *  replicas exist, uncorrectable reads only on NVM cells. */
const std::vector<fault::StorageFaultKind> &
storageFaultKinds(Backend backend);

/** Result of an integrity-checked read from the checkpoint medium. */
struct MediumRead
{
    /** Completion cycle of the read (charged even when corrupt —
     *  detecting rot costs the same traffic as serving it). */
    Cycle done = 0;
    /** The stored bytes failed their checksum, the replica was lost,
     *  or the medium reported an uncorrectable error: the served
     *  value must not be used. */
    bool corrupt = false;
};

/** One established checkpoint. */
struct Checkpoint
{
    /** Checkpoint number (the interval it terminates). */
    std::uint64_t index = 0;

    /** Cycle at which establishment completed (max over groups). */
    Cycle establishedAt = 0;

    /** Program progress (retired instructions) at establishment. */
    std::uint64_t progressAt = 0;

    /** Architectural state of every core. */
    std::vector<cpu::ArchState> arch;

    /** Undo log of the interval that ended at this checkpoint. */
    IntervalLog log;

    /** Interaction adjacency of that interval (local-mode closure). */
    std::vector<cache::SharerMask> interactions;

    /** Cores for which this checkpoint is still a valid rollback
     *  target (group rollbacks invalidate newer checkpoints for the
     *  rolled-back cores only). */
    cache::SharerMask validFor = ~cache::SharerMask{0};
};

/** Per-interval size bookkeeping, kept for the whole run (Fig. 9/10,
 *  Table II). */
struct IntervalSizes
{
    std::uint64_t interval = 0;
    std::uint64_t records = 0;
    std::uint64_t amnesicRecords = 0;
    std::uint64_t loggedBytes = 0;
    std::uint64_t omittedBytes = 0;
    std::uint64_t flushedLines = 0;
    std::uint64_t archBytes = 0;

    /** Stored checkpoint footprint (log + architectural state). */
    std::uint64_t
    storedBytes() const
    {
        return loggedBytes + archBytes;
    }
};

/**
 * The storage API carved out of the CheckpointManager. A store is a
 * cost/footprint model plus retention hooks; it never mutates the
 * functional machine state (memory writes and register restores stay
 * in the manager, so every backend recovers through the identical
 * protocol and the RecoveryOracle validates them all the same way).
 *
 * Contract (DESIGN.md §14):
 *  - establishGroup() charges the medium's establishment traffic for
 *    one coordination group and returns the completion cycle; the
 *    manager stalls the group to it.
 *  - accountFootprint() fills the interval's stored-bytes fields for
 *    this medium (what Fig. 9/10-style metrics read).
 *  - restoreWord()/writeRecomputed()/readArchState() charge rollback
 *    traffic; the returned cycles feed the recovery's resume time.
 *  - onCheckpointRetired()/onCheckpointInvalidated() observe the
 *    manager's retention decisions (reclamation hooks; the base class
 *    prunes its integrity state there).
 *  - supportsAmnesic() gates ACR's amnesic omission: a store that
 *    serves recovery from stored bytes alone (kReplicated) must see
 *    every old value, so the manager logs records non-amnesically.
 *
 * Integrity layer (DESIGN.md §16): when a StorageFaultInjector is
 * armed, onEstablished() checksums every stored datum (FNV-1a over
 * old value + addr + interval for records; a digest of the saved
 * ArchState per core) and applies the faults due at that ordinal; the
 * *Checked() read wrappers then verify the served bytes against the
 * stored sums, so a corrupt read is reported (`ckpt.corruptReads`,
 * against `ckpt.integrityChecks`) instead of silently served. Amnesic
 * records never land on the medium, so they are immune — ReCkpt's
 * fault cross-section is smaller than Ckpt's by exactly the omitted
 * bytes. Without an injector the layer is entirely inert (no sums, no
 * stats, byte-identical behavior to the reliable-medium model).
 */
class CheckpointStore
{
  public:
    CheckpointStore(sim::MulticoreSystem &system, StatSet &stats,
                    std::uint64_t arch_bytes_per_core)
        : system_(system), stats_(stats),
          archBytesPerCore_(arch_bytes_per_core)
    {
    }

    virtual ~CheckpointStore() = default;

    virtual Backend backend() const = 0;

    const char *name() const { return backendName(backend()); }

    /** May the manager omit recomputable records from this store? */
    virtual bool supportsAmnesic() const = 0;

    /**
     * Charge establishment traffic for @p group's slice of the open
     * interval @p log (stored records + the group cores' architectural
     * state), issued at @p start. @p flush_done is when the group's
     * dirty-line flush completed. Returns the cycle the last write
     * lands (>= flush_done).
     */
    virtual Cycle establishGroup(const IntervalLog &log,
                                 cache::SharerMask group, Cycle start,
                                 Cycle flush_done) = 0;

    /** Fill @p sizes' loggedBytes/omittedBytes/archBytes for an
     *  interval of @p log stored on this medium by @p num_cores. */
    virtual void accountFootprint(const IntervalLog &log,
                                  unsigned num_cores,
                                  IntervalSizes &sizes) const = 0;

    /** Charge reading @p record's old value from copy @p replica of
     *  the store and writing it back to working memory; returns the
     *  completion cycle. Single-copy media ignore @p replica. */
    virtual Cycle restoreWord(const LogRecord &record, Cycle issue_at,
                              unsigned replica) = 0;

    /** Charge writing a recomputed (amnesic) word to working memory —
     *  the value was never stored; returns the completion cycle. */
    virtual Cycle writeRecomputed(const LogRecord &record,
                                  Cycle issue_at) = 0;

    /** Charge reading core @p core's checkpointed architectural state
     *  from copy @p replica of the store; returns the completion
     *  cycle. Single-copy media ignore @p replica. */
    virtual Cycle readArchState(CoreId core, Cycle issue_at,
                                unsigned replica) = 0;

    /** The manager dropped @p ckpt from retention (oldest-first);
     *  overriders must call the base, which prunes integrity state. */
    virtual void onCheckpointRetired(const Checkpoint &ckpt);

    /** A rollback invalidated @p ckpt as a target for @p cores. */
    virtual void
    onCheckpointInvalidated(const Checkpoint &ckpt,
                            cache::SharerMask cores)
    {
        (void)ckpt;
        (void)cores;
    }

    // --- Integrity layer (base-class; inert without an injector) ---

    /** Arm the storage-fault integrity layer; null disarms it (the
     *  reliable-medium model, the default). */
    void setFaultInjector(fault::StorageFaultInjector *faults);

    /** Is a storage-fault injector armed? */
    bool faultsArmed() const { return faults_ != nullptr; }

    /** The manager finished establishing @p ckpt: checksum its stored
     *  data and apply the storage-fault events due at its ordinal. */
    void onEstablished(const Checkpoint &ckpt);

    /** Verify @p ckpt's establishment digest before trusting it as a
     *  rollback target: false when the group write tore. Charges an
     *  integrity check when the layer is armed. */
    bool establishmentIntact(const Checkpoint &ckpt);

    /** Was @p ckpt_index's establishment torn? Pure query (oracle
     *  cross-checks); charges nothing. */
    bool
    tornEstablishment(std::uint64_t ckpt_index) const
    {
        return armedTorn_.count(ckpt_index) != 0;
    }

    /** Integrity-checked restoreWord: charges the medium read from
     *  copy @p replica and verifies the served record of interval
     *  @p interval against its establishment checksum. */
    MediumRead restoreWordChecked(const LogRecord &record,
                                  std::uint64_t interval, Cycle issue_at,
                                  unsigned replica);

    /** Integrity-checked readArchState against @p ckpt's digest. */
    MediumRead readArchStateChecked(const Checkpoint &ckpt, CoreId core,
                                    Cycle issue_at, unsigned replica);

    /** Independent copies a corrupt read can be retried from. */
    unsigned
    replicaCount() const
    {
        return backend() == Backend::kReplicated ? kReplicaCount : 1;
    }

  protected:
    sim::MulticoreSystem &system_;
    StatSet &stats_;
    std::uint64_t archBytesPerCore_;

  private:
    void applyFault(const Checkpoint &ckpt,
                    const fault::StorageFaultPlan::Event &event);

    fault::StorageFaultInjector *faults_ = nullptr;

    /** Establishment checksums: (interval, addr) -> FNV-1a sum. */
    std::map<std::pair<std::uint64_t, Addr>, std::uint64_t> recordSums_;
    /** Arch digests: (checkpoint index, core) -> FNV-1a sum. */
    std::map<std::pair<std::uint64_t, CoreId>, std::uint64_t> archSums_;

    // Armed corruptions (what the medium will actually serve).
    std::map<std::pair<std::uint64_t, Addr>,
             std::array<Word, kReplicaCount>>
        armedRecordFlips_;
    std::map<std::pair<std::uint64_t, CoreId>,
             std::array<Word, kReplicaCount>>
        armedArchFlips_;
    std::set<std::pair<std::uint64_t, Addr>> armedUncorrectable_;
    std::array<std::set<std::uint64_t>, kReplicaCount>
        armedLostReplicas_;
    std::set<std::uint64_t> armedTorn_;
};

/** Construct the @p backend store. */
std::unique_ptr<CheckpointStore>
makeCheckpointStore(Backend backend, sim::MulticoreSystem &system,
                    StatSet &stats, std::uint64_t arch_bytes_per_core);

} // namespace acr::ckpt

#endif // ACR_CKPT_STORE_HH
