/**
 * @file
 * Audit hook between the CheckpointManager and a recovery validator.
 *
 * Recovery used to verify amnesic recomputation with a process-aborting
 * assert. With an auditor installed the manager instead *reports* a
 * mismatch (with the originating record, so the validator can attribute
 * it to an address, writer, and slice) and heals the word from the
 * record's shadow value so the campaign can continue and surface every
 * divergence, not just the first.
 */

#ifndef ACR_CKPT_AUDITOR_HH
#define ACR_CKPT_AUDITOR_HH

#include <cstdint>

#include "ckpt/log.hh"

namespace acr::ckpt
{

/** Observer of recovery-correctness events inside the manager. */
class RecoveryAuditor
{
  public:
    virtual ~RecoveryAuditor() = default;

    /**
     * A Slice replay produced @p replayed for @p record (whose
     * `oldValue` shadow holds the expected word) while undoing the log
     * of checkpoint interval @p interval. The manager heals the word
     * from the shadow after reporting.
     */
    virtual void onRecomputeMismatch(const LogRecord &record,
                                     Word replayed,
                                     std::uint64_t interval) = 0;
};

} // namespace acr::ckpt

#endif // ACR_CKPT_AUDITOR_HH
