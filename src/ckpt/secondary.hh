/**
 * @file
 * SecondaryTier: the second level of a hierarchical checkpointing
 * framework. Sec. II-A of the paper notes that in-memory checkpointing
 * "may correspond to a stand-alone checkpointing scheme or represent
 * the first level in a hierarchical checkpointing framework"; this
 * component implements that second level — periodic promotion of a full
 * consistent snapshot to a slow storage tier, surviving failures that
 * invalidate the in-memory logs entirely (e.g., loss of the node's
 * DRAM).
 *
 * Promotion is posted (it does not stall the cores) but occupies the
 * storage channel, and its traffic/energy is accounted. Restoration is
 * a catastrophic-recovery path: it reloads the entire promoted image.
 */

#ifndef ACR_CKPT_SECONDARY_HH
#define ACR_CKPT_SECONDARY_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "sim/system.hh"

namespace acr::ckpt
{

/** Storage-tier parameters (flash/remote-node class). */
struct SecondaryConfig
{
    /** Promote every Nth established checkpoint (0 disables). */
    unsigned promotionPeriod = 4;

    /** Sustained storage bandwidth, bytes per core cycle
     *  (~1 GB/s at 1.09 GHz). */
    double bytesPerCycle = 0.9;

    /** Fixed per-promotion latency in cycles (~50 us). */
    Cycle latency = 54500;
};

/** A promoted, self-contained snapshot. */
struct SecondarySnapshot
{
    std::uint64_t checkpointIndex = 0;
    std::uint64_t progressAt = 0;
    Cycle promotedAt = 0;
    std::map<Addr, Word> image;
    std::vector<cpu::ArchState> arch;

    /** Bytes this snapshot occupies on the storage tier. */
    std::uint64_t
    bytes() const
    {
        return image.size() * 2 * kWordBytes +
               arch.size() * (isa::kNumRegs + 3) * kWordBytes;
    }
};

/** The storage tier itself. */
class SecondaryTier
{
  public:
    SecondaryTier(const SecondaryConfig &config, StatSet &stats);

    /** Should checkpoint @p index be promoted? */
    bool duePromotion(std::uint64_t index) const;

    /**
     * Promote the machine's current (just-checkpointed) state. Called
     * immediately after establishment, when caches are clean and
     * MainMemory holds the checkpointed image. Posted: returns the
     * cycle the storage write completes without stalling cores.
     */
    Cycle promote(const sim::MulticoreSystem &system,
                  std::uint64_t checkpoint_index, Cycle now);

    /** The most recent promoted snapshot, if any. */
    const SecondarySnapshot *latest() const;

    /**
     * Catastrophic recovery: restore memory and every core's
     * architectural state from the latest snapshot.
     * @return the cycle at which the machine resumes, or nullopt when
     *         nothing was ever promoted.
     */
    std::optional<Cycle> restore(sim::MulticoreSystem &system,
                                 Cycle now) const;

    std::uint64_t promotions() const { return promotions_; }
    const SecondaryConfig &config() const { return config_; }

  private:
    SecondaryConfig config_;
    StatSet &stats_;
    std::optional<SecondarySnapshot> latest_;
    /** Earliest cycle the storage channel is free. */
    double channelFree_ = 0.0;
    std::uint64_t promotions_ = 0;
};

} // namespace acr::ckpt

#endif // ACR_CKPT_SECONDARY_HH
