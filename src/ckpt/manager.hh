/**
 * @file
 * CheckpointManager: the BER substrate of the reproduction — log-based
 * incremental in-memory checkpointing with global or local coordination
 * (Sec. II-A, V-E), two-checkpoint retention (Sec. II-A / Fig. 2), and
 * rollback/recovery with optional recomputation of amnesic records
 * through a RecomputeProvider (Sec. III-B / Fig. 4b). Storage-medium
 * costs and footprint are delegated to a pluggable CheckpointStore
 * backend (ckpt/store.hh, DESIGN.md §14).
 */

#ifndef ACR_CKPT_MANAGER_HH
#define ACR_CKPT_MANAGER_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cache/directory.hh"
#include "ckpt/auditor.hh"
#include "ckpt/log.hh"
#include "ckpt/provider.hh"
#include "ckpt/store.hh"
#include "common/stats.hh"
#include "sim/system.hh"

namespace acr::ckpt
{

/** Coordination discipline of checkpoint establishment. */
enum class Coordination
{
    /** All cores cooperate at every checkpoint (Sec. II-A). */
    kGlobal,
    /** Only communicating cores coordinate (Sec. V-E). */
    kLocal,
};

/** Outcome of a recovery, for the driver (slicer resets, scheduling). */
struct RecoveryOutcome
{
    /** Cores rolled back. */
    cache::SharerMask affected = 0;
    /** Index of the checkpoint restored. */
    std::uint64_t targetIndex = 0;
    /** Cycle at which the affected cores resume. */
    Cycle resumeCycle = 0;
    /** Program progress of the restored checkpoint. */
    std::uint64_t progressAt = 0;
    /** Cycle the restored checkpoint was established at — corruptions
     *  that landed after this on an affected core were erased by the
     *  rollback (the injector re-posts them). */
    Cycle targetEstablishedAt = 0;

    // --- Escalation ladder bookkeeping (DESIGN.md §16) ---

    /** Corrupt reads healed by switching to an alternate replica
     *  (kReplicated's first escalation rung). */
    unsigned replicaSwitches = 0;
    /** Rollback attempts abandoned for corrupt per-checkpoint data
     *  (arch state) and restarted against the older retained
     *  checkpoint (second rung; wider recompute window). */
    unsigned retargets = 0;
    /** Every rung failed: the machine cannot be restored to any safe
     *  checkpoint. The run must surface a structured failure (exit 5)
     *  — none of the other fields below affected/failureDetail are
     *  meaningful. */
    bool unrecoverable = false;
    /** Which datum was unserveable, when unrecoverable. */
    std::string failureDetail;
};

/** The checkpointing and recovery substrate. */
class CheckpointManager
{
  public:
    struct Config
    {
        Coordination mode = Coordination::kGlobal;
        /** Storage backend the checkpoints live on (DESIGN.md §14). */
        Backend backend = Backend::kLog;
        /** Register file + pc + bookkeeping per core. */
        std::uint64_t archBytesPerCore =
            isa::kNumRegs * kWordBytes + 3 * kWordBytes;
    };

    /**
     * @param provider  recomputation engine, or null for the plain
     *                  baseline (every record carries its old value)
     * @param stats     shared statistics sink
     */
    CheckpointManager(const Config &config, sim::MulticoreSystem &system,
                      RecomputeProvider *provider, StatSet &stats);

    /**
     * Record checkpoint 0: the initial machine state at cycle 0. Must be
     * called once before execution starts.
     */
    void initialCheckpoint();

    /**
     * Store interception (driver calls this for every retired store):
     * log the old value on the first update to @p addr this interval,
     * consulting the provider for amnesic omission.
     */
    void onStore(CoreId writer, Addr addr, Word old_value);

    /** Establish a checkpoint now (the driver owns the schedule). */
    void establish();

    /**
     * Recover from an error that occurred on @p failing at cycle
     * @p error_time and was detected at @p detection_time: pick the
     * most recent safe checkpoint, roll back memory + architectural
     * state (global: all cores; local: the failing core's communication
     * group closure), recompute amnesic records, and account costs.
     *
     * Under an armed storage-fault injector, detected corruption
     * escalates (DESIGN.md §16) instead of serving rotten bytes:
     * corrupt record/arch reads retry the alternate replica
     * (kReplicated); corrupt per-checkpoint data (arch state, torn
     * establishment) re-targets the older retained checkpoint and
     * restarts the rollback (the wider window's reads and replays are
     * charged again — honestly); when no rung is left the outcome
     * comes back unrecoverable and the machine state is undefined.
     */
    RecoveryOutcome recover(CoreId failing, Cycle error_time,
                            Cycle detection_time);

    /** Arm storage-fault injection on the checkpoint medium (null =
     *  reliable medium). Forwards to the store's integrity layer. */
    void
    setStorageFaults(fault::StorageFaultInjector *faults)
    {
        store_->setFaultInjector(faults);
    }

    /**
     * Install a recovery auditor. With an auditor present, a
     * recomputation mismatch during rollback is reported (and the word
     * healed from the record's shadow value) instead of aborting the
     * process; without one, the historical ACR_ASSERT stands.
     */
    void setAuditor(RecoveryAuditor *auditor) { auditor_ = auditor; }

    /** Number of checkpoints established (excluding checkpoint 0). */
    std::uint64_t checkpointsEstablished() const { return established_; }

    /** Index of the currently open interval. */
    std::uint64_t openInterval() const { return openLog_.interval(); }

    /** Per-interval size history across the whole run. */
    const std::vector<IntervalSizes> &history() const { return history_; }

    /** Currently retained checkpoints (newest last). */
    const std::deque<Checkpoint> &retained() const { return retained_; }

    const IntervalLog &openLog() const { return openLog_; }

    /** The storage backend this manager checkpoints onto. */
    const CheckpointStore &store() const { return *store_; }

    /**
     * Overwrite the retention state wholesale — open log, retained
     * checkpoints, establishment count, and size history — used when a
     * run resumes from a prefix-sharing snapshot (DESIGN.md §13).
     * Requires initialCheckpoint() to have run and a stateless backend
     * (the caller guards on Backend::kLog).
     */
    void restoreRetention(IntervalLog open_log,
                          std::deque<Checkpoint> retained,
                          std::uint64_t established,
                          std::vector<IntervalSizes> history);

  private:
    /** Establishment work for one coordination group. */
    void establishGroup(cache::SharerMask group, IntervalSizes &sizes);

    /** Mutable bookkeeping of one rollback attempt. dramDone and
     *  replayCycles carry over between escalation attempts (work done
     *  before a retarget really happened); restored is per-attempt
     *  (the final attempt's applies supersede earlier ones). */
    struct ApplyState
    {
        Cycle dramDone = 0;
        std::vector<Cycle> replayCycles;
        std::vector<Addr> restored;
        unsigned replicaSwitches = 0;
        /** A stored record was unreadable on every copy — no rollback
         *  target can route around it (undo logs compose by prefix:
         *  every older target applies a superset of records). */
        bool dead = false;
        std::string deadDetail;
    };

    /** Apply one log's records (filtered by @p mask) to memory,
     *  recomputing amnesic ones and integrity-checking stored reads;
     *  collects restored addresses and accumulates timing in
     *  @p state. Returns false when a record was unserveable
     *  (state.dead). */
    bool applyLog(const IntervalLog &log, cache::SharerMask mask,
                  Cycle issue_at, ApplyState &state);

    Config config_;
    sim::MulticoreSystem &system_;
    RecomputeProvider *provider_;
    StatSet &stats_;
    RecoveryAuditor *auditor_ = nullptr;
    std::unique_ptr<CheckpointStore> store_;
    /** provider_ != null && the store accepts amnesic omission —
     *  cached so the hot onStore path skips a virtual call. */
    bool amnesicOk_ = false;

    IntervalLog openLog_{1};
    std::deque<Checkpoint> retained_;
    std::uint64_t established_ = 0;
    std::vector<IntervalSizes> history_;
    bool initialized_ = false;

    /** Recoveries started so far (1-based ordinal of the current one). */
    std::uint64_t recoveryOrdinal_ = 0;

    // Deliberate-bug fixtures for the oracle's own tests, armed by
    // ACR_TEST_* environment variables (1-based recovery ordinal to
    // fire in; 0 / unset = off). Each fires at most once.
    std::uint64_t corruptRecoveryAt_ = 0;  ///< ACR_TEST_CORRUPT_RECOVERY
    std::uint64_t dropRecordAt_ = 0;       ///< ACR_TEST_DROP_LOG_RECORD
    std::uint64_t flipReplayAt_ = 0;       ///< ACR_TEST_FLIP_REPLAY
};

} // namespace acr::ckpt

#endif // ACR_CKPT_MANAGER_HH
