#include "ckpt/manager.hh"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "common/logging.hh"
#include "common/options.hh"

namespace acr::ckpt
{

namespace
{

unsigned
popcount(cache::SharerMask mask)
{
    return static_cast<unsigned>(std::popcount(mask));
}

bool
inMask(cache::SharerMask mask, CoreId core)
{
    return (mask >> core) & 1;
}

/** Recovery ordinal from an ACR_TEST_* variable (0 = unset / off). */
std::uint64_t
testHookOrdinal(const char *name)
{
    const char *text = std::getenv(name);
    if (text == nullptr || *text == '\0')
        return 0;
    unsigned long long value = 0;
    if (!parseStrictUint(text, value))
        fatal("%s='%s' is not an unsigned integer", name, text);
    return value;
}

} // namespace

CheckpointManager::CheckpointManager(const Config &config,
                                     sim::MulticoreSystem &system,
                                     RecomputeProvider *provider,
                                     StatSet &stats)
    : config_(config), system_(system), provider_(provider), stats_(stats),
      store_(makeCheckpointStore(config.backend, system, stats,
                                 config.archBytesPerCore)),
      amnesicOk_(provider != nullptr && store_->supportsAmnesic())
{
    corruptRecoveryAt_ = testHookOrdinal("ACR_TEST_CORRUPT_RECOVERY");
    dropRecordAt_ = testHookOrdinal("ACR_TEST_DROP_LOG_RECORD");
    flipReplayAt_ = testHookOrdinal("ACR_TEST_FLIP_REPLAY");
}

void
CheckpointManager::initialCheckpoint()
{
    ACR_ASSERT(!initialized_, "initialCheckpoint called twice");
    initialized_ = true;

    Checkpoint ckpt;
    ckpt.index = 0;
    ckpt.establishedAt = 0;
    ckpt.progressAt = system_.progress();
    for (CoreId c = 0; c < system_.numCores(); ++c)
        ckpt.arch.push_back(system_.core(c).saveArch());
    ckpt.log = IntervalLog(0);
    ckpt.interactions.assign(system_.numCores(), 0);
    ckpt.validFor = ~cache::SharerMask{0};
    retained_.push_back(std::move(ckpt));
}

void
CheckpointManager::onStore(CoreId writer, Addr addr, Word old_value)
{
    if (openLog_.contains(addr))
        return;  // log bit set: only the first update per interval logs

    LogRecord record;
    record.addr = addr;
    record.oldValue = old_value;
    record.writer = writer;
    // A store that serves recovery from stored bytes alone must see
    // every old value, so amnesic omission is gated on the backend.
    if (amnesicOk_)
        record.amnesic = provider_->currentValueSlice(addr);
    openLog_.append(std::move(record));
}

void
CheckpointManager::establishGroup(cache::SharerMask group,
                                  IntervalSizes &sizes)
{
    auto &caches = system_.caches();

    // Coordinate the group, then flush its dirty lines.
    Cycle start = system_.syncCores(group);
    cache::FlushResult flush = caches.flushCores(group, start);
    sizes.flushedLines += flush.lines;

    // The store charges the medium's establishment traffic (stored
    // records + the group cores' architectural state).
    Cycle done =
        store_->establishGroup(openLog_, group, start, flush.done);

    // The whole group stalls until establishment completes.
    for (CoreId c = 0; c < system_.numCores(); ++c) {
        if (inMask(group, c))
            system_.core(c).setCycle(done);
    }
    stats_.add("ckpt.establishStallCycles",
               static_cast<double>((done - start) * popcount(group)));
}

void
CheckpointManager::establish()
{
    ACR_ASSERT(initialized_, "establish before initialCheckpoint");
    ++established_;

    IntervalSizes sizes;
    sizes.interval = openLog_.interval();
    sizes.records = openLog_.totalRecords();
    sizes.amnesicRecords = openLog_.amnesicRecords();
    store_->accountFootprint(openLog_, system_.numCores(), sizes);

    auto &directory = system_.caches().directory();
    std::vector<cache::SharerMask> adjacency =
        directory.interactionMatrix();

    std::vector<cache::SharerMask> groups;
    if (config_.mode == Coordination::kGlobal)
        groups.push_back(system_.allCoresMask());
    else
        groups = cache::Directory::groupsOf(adjacency);
    stats_.add("ckpt.coordinationGroups",
               static_cast<double>(groups.size()));

    for (cache::SharerMask group : groups)
        establishGroup(group, sizes);

    Checkpoint ckpt;
    ckpt.index = openLog_.interval();
    ckpt.establishedAt = system_.maxCycle();
    ckpt.progressAt = system_.progress();
    for (CoreId c = 0; c < system_.numCores(); ++c)
        ckpt.arch.push_back(system_.core(c).saveArch());
    ckpt.interactions = std::move(adjacency);
    ckpt.validFor = ~cache::SharerMask{0};
    std::uint64_t next_interval = openLog_.interval() + 1;
    ckpt.log = std::move(openLog_);
    // The medium now holds this checkpoint's bytes: checksum them and
    // land any storage faults due at this ordinal (inert when no
    // injector is armed).
    store_->onEstablished(ckpt);
    retained_.push_back(std::move(ckpt));

    // Two-checkpoint retention (Sec. II-A): dropping an old checkpoint
    // releases its log and thereby unpins its slice instances; the
    // store gets to reclaim whatever it held for it. The retired log's
    // stamp pages and record buffer become the next open interval's —
    // steady-state appends then allocate and re-zero nothing.
    IntervalLog recycled;
    bool have_recycled = false;
    while (retained_.size() > 2) {
        store_->onCheckpointRetired(retained_.front());
        recycled = std::move(retained_.front().log);
        have_recycled = true;
        retained_.pop_front();
    }

    if (have_recycled) {
        recycled.recycle(next_interval);
        openLog_ = std::move(recycled);
    } else {
        openLog_ = IntervalLog(next_interval);
    }
    directory.clearInteractions();
    if (provider_)
        provider_->onCheckpointEstablished(next_interval);

    history_.push_back(sizes);
    stats_.add("ckpt.establishments");
    stats_.add("ckpt.flushedLines",
               static_cast<double>(sizes.flushedLines));
    stats_.add("ckpt.records", static_cast<double>(sizes.records));
    stats_.add("ckpt.amnesicRecords",
               static_cast<double>(sizes.amnesicRecords));
    stats_.add("ckpt.loggedBytes", static_cast<double>(sizes.loggedBytes));
    stats_.add("ckpt.omittedBytes",
               static_cast<double>(sizes.omittedBytes));
    stats_.add("ckpt.archBytes", static_cast<double>(sizes.archBytes));
}

bool
CheckpointManager::applyLog(const IntervalLog &log,
                            cache::SharerMask mask, Cycle issue_at,
                            ApplyState &state)
{
    // Affected cores share the recomputation work (Slices execute on
    // the cores before the register files are restored, Sec. II-B).
    std::vector<CoreId> workers;
    for (CoreId c = 0; c < system_.numCores(); ++c) {
        if (inMask(mask, c))
            workers.push_back(c);
    }
    ACR_ASSERT(!workers.empty(), "applyLog with empty core mask");

    for (const LogRecord &record : log.records()) {
        if (!inMask(mask, record.writer))
            continue;

        if (record.isAmnesic()) {
            // Amnesic records were never stored on the medium, so they
            // have no storage-fault cross-section: the replay below
            // runs entirely from working state.
            ACR_ASSERT(provider_,
                       "amnesic record without a recompute provider");
            slice::ReplayCost cost;
            Word value = provider_->replay(*record.amnesic, &cost);
            if (flipReplayAt_ != 0 &&
                flipReplayAt_ == recoveryOrdinal_) {
                // Oracle fixture: pretend the Slice replay miscomputed
                // the first amnesic word of this recovery.
                value ^= 1;
                flipReplayAt_ = 0;
            }
            if (value != record.oldValue) {
                if (auditor_ != nullptr) {
                    auditor_->onRecomputeMismatch(record, value,
                                                  log.interval());
                    value = record.oldValue;  // heal from the shadow
                } else {
                    ACR_ASSERT(value == record.oldValue,
                               "recomputation mismatch at addr %llu",
                               static_cast<unsigned long long>(
                                   record.addr));
                }
            }
            system_.memory().write(record.addr, value);

            // Least-loaded affected core executes this Slice.
            CoreId worker = workers[0];
            for (CoreId c : workers) {
                if (state.replayCycles[c] < state.replayCycles[worker])
                    worker = c;
            }
            state.replayCycles[worker] += cost.aluOps;

            state.dramDone =
                std::max(state.dramDone,
                         store_->writeRecomputed(record, issue_at));
            stats_.add("acr.replayAluOps",
                       static_cast<double>(cost.aluOps));
            stats_.add("acr.operandBufferWords",
                       static_cast<double>(cost.operandReads));
            stats_.add("rec.recomputedWords");
        } else {
            MediumRead read = store_->restoreWordChecked(
                record, log.interval(), issue_at, 0);
            Cycle done = read.done;
            if (read.corrupt) {
                // First escalation rung: retry every alternate copy
                // (only kReplicated has any). Detection traffic is
                // charged per attempt.
                bool healed = false;
                for (unsigned r = 1; r < store_->replicaCount(); ++r) {
                    MediumRead retry = store_->restoreWordChecked(
                        record, log.interval(), issue_at, r);
                    done = std::max(done, retry.done);
                    if (!retry.corrupt) {
                        healed = true;
                        ++state.replicaSwitches;
                        stats_.add("rec.replicaSwitches");
                        break;
                    }
                }
                if (!healed) {
                    // Terminal: undo logs compose by prefix — every
                    // older target applies a superset of records, so
                    // no retarget can route around this one.
                    state.dead = true;
                    state.deadDetail = csprintf(
                        "stored log record for addr %llu (interval "
                        "%llu) unreadable on every copy",
                        static_cast<unsigned long long>(record.addr),
                        static_cast<unsigned long long>(
                            log.interval()));
                    state.dramDone = std::max(state.dramDone, done);
                    return false;
                }
            }
            // The medium's rot never reaches working memory: a record
            // is either served verified (possibly from an alternate
            // replica) or the rollback dies above.
            system_.memory().write(record.addr, record.oldValue);
            state.dramDone = std::max(state.dramDone, done);
            stats_.add("rec.restoredWords");
        }
        state.restored.push_back(record.addr);
    }
    return true;
}

RecoveryOutcome
CheckpointManager::recover(CoreId failing, Cycle error_time,
                           Cycle detection_time)
{
    ACR_ASSERT(initialized_, "recover before initialCheckpoint");
    ACR_ASSERT(!retained_.empty(), "no checkpoints retained");
    ++recoveryOrdinal_;

    // Determine the rollback scope.
    cache::SharerMask affected;
    if (config_.mode == Coordination::kGlobal) {
        affected = system_.allCoresMask();
    } else {
        // Conservative closure: union of the open interval's interaction
        // matrix with those of every retained checkpoint interval.
        std::vector<cache::SharerMask> adjacency =
            system_.caches().directory().interactionMatrix();
        for (const Checkpoint &ckpt : retained_) {
            for (std::size_t c = 0;
                 c < ckpt.interactions.size() && c < adjacency.size();
                 ++c) {
                adjacency[c] |= ckpt.interactions[c];
            }
        }
        affected = 0;
        for (cache::SharerMask group :
             cache::Directory::groupsOf(adjacency)) {
            if (inMask(group, failing)) {
                affected = group;
                break;
            }
        }
        ACR_ASSERT(affected != 0, "failing core not in any group");
    }

    // Coordinate the affected cores for recovery.
    Cycle start = system_.syncCores(affected);
    start = std::max(start, detection_time);

    ApplyState state;
    state.dramDone = start;
    state.replayCycles.assign(system_.numCores(), 0);
    unsigned retargets = 0;

    auto unrecoverable = [&](const std::string &detail) {
        // Every escalation rung failed (DESIGN.md §16). The machine
        // state is undefined; the driver must surface a structured
        // failure — never resume, never serve the half-rolled image.
        stats_.add("rec.unrecoverable");
        RecoveryOutcome outcome;
        outcome.affected = affected;
        outcome.unrecoverable = true;
        outcome.failureDetail = detail;
        outcome.replicaSwitches = state.replicaSwitches;
        outcome.retargets = retargets;
        return outcome;
    };

    if (dropRecordAt_ != 0 && dropRecordAt_ == recoveryOrdinal_) {
        // Oracle fixture: lose one undo record of an affected writer
        // before the rollback applies it, as a buggy log would —
        // preferring one whose restore would actually change memory,
        // so the loss is observable in the recovered image.
        openLog_.dropOneRecord(affected, [this](Addr addr, Word old) {
            return system_.memory().read(addr) != old;
        });
        dropRecordAt_ = 0;
    }

    // Escalation ladder: each attempt picks a target, applies the undo
    // logs, and verifies the target's per-checkpoint data. Corrupt
    // per-checkpoint data (arch state) re-targets the older retained
    // checkpoint and restarts; dramDone/replayCycles carry across
    // attempts (the abandoned attempt's traffic really happened) while
    // restored is per-attempt (the final attempt's newest->oldest
    // superset application lands the correct image and supersedes it).
    const Checkpoint *target = nullptr;
    std::uint64_t below = ~std::uint64_t{0};
    for (;;) {
        // Pick the most recent safe checkpoint: established strictly
        // before the error occurred (Fig. 2: a checkpoint taken between
        // error occurrence and detection may hold corrupted state),
        // still valid for every affected core, not refused by this
        // ladder already, and with an intact establishment digest (a
        // torn group write poisons the whole checkpoint).
        target = nullptr;
        for (auto it = retained_.rbegin(); it != retained_.rend();
             ++it) {
            if (it->index >= below)
                continue;
            if (it->establishedAt < error_time &&
                (it->validFor & affected) == affected &&
                store_->establishmentIntact(*it)) {
                target = &*it;
                break;
            }
        }
        if (target == nullptr && store_->faultsArmed())
            return unrecoverable(
                "no intact rollback target for the affected cores");
        ACR_ASSERT(target != nullptr,
                   "no safe checkpoint: detection latency exceeded the "
                   "checkpoint period");

        // Apply undo logs newest -> oldest; older records overwrite
        // newer ones, landing memory on the target checkpoint's state.
        state.restored.clear();
        bool applied = applyLog(openLog_, affected, start, state);
        if (applied) {
            for (auto it = retained_.rbegin(); it != retained_.rend();
                 ++it) {
                if (it->index <= target->index)
                    break;
                if (!applyLog(it->log, affected, start, state)) {
                    applied = false;
                    break;
                }
            }
        }
        if (!applied)
            return unrecoverable(state.deadDetail);

        // Verify the target's architectural state is serveable before
        // committing to it (the actual register restore below is free
        // of further faults — the reads were just charged + checked).
        bool arch_ok = true;
        for (CoreId c = 0; c < system_.numCores() && arch_ok; ++c) {
            if (!inMask(affected, c))
                continue;
            bool clean = false;
            for (unsigned r = 0; r < store_->replicaCount(); ++r) {
                MediumRead read =
                    store_->readArchStateChecked(*target, c, start, r);
                state.dramDone = std::max(state.dramDone, read.done);
                if (!read.corrupt) {
                    if (r > 0) {
                        ++state.replicaSwitches;
                        stats_.add("rec.replicaSwitches");
                    }
                    clean = true;
                    break;
                }
            }
            arch_ok = clean;
        }
        if (!arch_ok) {
            // Second rung: fall back to the older retained checkpoint
            // (wider recompute window, charged honestly by carrying
            // the accumulated traffic into the next attempt).
            ++retargets;
            stats_.add("rec.retargets");
            below = target->index;
            continue;
        }
        break;
    }

    if (corruptRecoveryAt_ != 0 &&
        corruptRecoveryAt_ == recoveryOrdinal_ &&
        !state.restored.empty()) {
        // Oracle fixture: flip the low bit of the first word this
        // rollback restored, simulating a recovery that rebuilt the
        // wrong memory image.
        Addr addr = state.restored.front();
        system_.memory().write(addr, system_.memory().read(addr) ^ 1);
        corruptRecoveryAt_ = 0;
    }

    Cycle replay_done = start;
    for (CoreId c = 0; c < system_.numCores(); ++c)
        replay_done =
            std::max(replay_done, start + state.replayCycles[c]);
    Cycle resume = std::max(state.dramDone, replay_done);

    for (CoreId c = 0; c < system_.numCores(); ++c) {
        if (!inMask(affected, c))
            continue;
        system_.core(c).restoreArch(target->arch[c]);
        system_.core(c).setCycle(resume);
    }
    system_.caches().invalidateCores(affected);

    // Updates undone for the affected cores disappear from every log
    // newer than the target; newer checkpoints are no longer valid
    // rollback targets for them (Fig. 2: the suspect checkpoint is
    // skipped and effectively discarded for this group).
    openLog_.removeWriters(affected);
    for (Checkpoint &ckpt : retained_) {
        if (ckpt.index > target->index) {
            ckpt.log.removeWriters(affected);
            ckpt.validFor &= ~affected;
            store_->onCheckpointInvalidated(ckpt, affected);
        }
    }

    if (provider_)
        provider_->onRollback(state.restored);

    stats_.add("rec.recoveries");
    stats_.add("rec.wasteCycles",
               static_cast<double>(detection_time -
                                   std::min(detection_time,
                                            target->establishedAt)));
    stats_.add("rec.rollbackCycles", static_cast<double>(resume - start));

    RecoveryOutcome outcome;
    outcome.affected = affected;
    outcome.targetIndex = target->index;
    outcome.resumeCycle = resume;
    outcome.progressAt = target->progressAt;
    outcome.targetEstablishedAt = target->establishedAt;
    outcome.replicaSwitches = state.replicaSwitches;
    outcome.retargets = retargets;
    return outcome;
}

void
CheckpointManager::restoreRetention(IntervalLog open_log,
                                    std::deque<Checkpoint> retained,
                                    std::uint64_t established,
                                    std::vector<IntervalSizes> history)
{
    ACR_ASSERT(initialized_, "restoreRetention before initialCheckpoint");
    openLog_ = std::move(open_log);
    retained_ = std::move(retained);
    established_ = established;
    history_ = std::move(history);
}

} // namespace acr::ckpt
