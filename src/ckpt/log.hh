/**
 * @file
 * Undo-log structures for log-based incremental in-memory checkpointing
 * (Sec. II-A, after Rebound/ReVive/SafetyNet): upon the first update to a
 * word within a checkpoint interval, a record of the old value enters the
 * log. The per-word "log bit" of the paper is realized literally as a
 * paged stamp bitmap (DESIGN.md §13): contains() is two array indexes and
 * one compare, and clearing every bit (group rollback) is one epoch
 * bump instead of a hash-map rebuild. Page ids past the direct window —
 * reachable only through corrupted addresses — fall back to an ordered
 * overflow map.
 *
 * Under ACR a record may be *amnesic*: the old value is omitted from the
 * stored checkpoint because a Slice can recompute it; the record then
 * pins the SliceInstance (and its captured operands) for as long as the
 * log is retained. The old value field is still kept in the simulator as
 * a shadow copy so recovery can assert bit-exact recomputation — it is
 * never charged to checkpoint storage or traffic.
 */

#ifndef ACR_CKPT_LOG_HH
#define ACR_CKPT_LOG_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "slice/instance.hh"

namespace acr::ckpt
{

/** Bytes charged per stored log record (word address + old value). */
inline constexpr std::uint64_t kLogRecordBytes = 2 * kWordBytes;

/** One undo record. */
struct LogRecord
{
    Addr addr = 0;
    /** Old value; for amnesic records this is a verification shadow. */
    Word oldValue = 0;
    /** Core whose store triggered the record (local-mode rollback). */
    CoreId writer = 0;
    /** Non-null: record omitted from the checkpoint, recompute instead. */
    std::shared_ptr<slice::SliceInstance> amnesic;

    bool isAmnesic() const { return amnesic != nullptr; }
};

/** Undo log of one checkpoint interval. */
class IntervalLog
{
  public:
    /** Word addresses per log-bit page (power of two). */
    static constexpr std::size_t kPageWords = 4096;

    /** Page ids below this use the flat directory; larger ids (only
     *  producible by corrupted pointers) go to the overflow map. */
    static constexpr Addr kDirectPages = 1 << 14;

    explicit IntervalLog(std::uint64_t interval = 0)
        : interval_(interval)
    {
    }

    /** Index of the interval this log covers. */
    std::uint64_t interval() const { return interval_; }

    /** The "log bit": has @p addr been logged this interval? */
    bool
    contains(Addr addr) const
    {
        const Addr page_id = addr / kPageWords;
        if (page_id < direct_.size()) {
            const std::uint32_t *page = direct_[page_id].get();
            return page && page[addr % kPageWords] == epoch_;
        }
        return slowContains(page_id, addr);
    }

    /** Append a record; the address must not be logged yet. */
    void append(LogRecord record);

    /**
     * Reset this log to cover @p next_interval while keeping its
     * allocated stamp pages and record-buffer capacity (append-path
     * batching, DESIGN.md §13). The epoch bump clears every bit in
     * O(1), so a recycled log appends without re-zeroing pages or
     * regrowing the record vector the previous intervals already
     * paid for. Overflow pages (reachable only through corrupted
     * addresses) are dropped to bound memory.
     */
    void
    recycle(std::uint64_t next_interval)
    {
        interval_ = next_interval;
        records_.clear();
        amnesicRecords_ = 0;
        clearAllBits();
        overflow_.clear();
    }

    const std::vector<LogRecord> &records() const { return records_; }

    /**
     * Remove (and forget the log bits of) every record written by the
     * cores in @p writers — used after a group-local rollback undid
     * those updates. Compacts the log.
     */
    void removeWriters(std::uint64_t writer_mask);

    /**
     * Fault-injection fixture for the recovery oracle tests: silently
     * drop the first record written by a core in @p writer_mask,
     * including its log bit, as a buggy implementation might. When an
     * @p observable predicate is given, a record it accepts (addr,
     * shadow value) is preferred, so the loss provably changes the
     * recovered image. Returns whether a record was dropped.
     */
    bool dropOneRecord(
        std::uint64_t writer_mask,
        const std::function<bool(Addr, Word)> &observable = {});

    /**
     * Self-check of the log-bit index: the set-bit population must match
     * the record count, every record's address must have its bit set and
     * appear exactly once, and the amnesic counter must match. Returns
     * "" when consistent, otherwise a one-line description of the first
     * inconsistency.
     */
    std::string auditIndex() const;

    std::uint64_t totalRecords() const { return records_.size(); }
    std::uint64_t amnesicRecords() const { return amnesicRecords_; }

    std::uint64_t
    normalRecords() const
    {
        return totalRecords() - amnesicRecords_;
    }

    /** Bytes the checkpoint actually stores (amnesic records omitted). */
    std::uint64_t
    loggedBytes() const
    {
        return normalRecords() * kLogRecordBytes;
    }

    /** Bytes ACR avoided storing. */
    std::uint64_t
    omittedBytes() const
    {
        return amnesicRecords_ * kLogRecordBytes;
    }

  private:
    /** One log-bit page: a stamp per word; the bit is set iff the stamp
     *  equals the log's current epoch. */
    using BitPage = std::unique_ptr<std::uint32_t[]>;

    bool slowContains(Addr page_id, Addr addr) const;

    /** Set the log bit of @p addr (allocating its page on demand). */
    void setBit(Addr addr);

    /** Clear the log bit of @p addr (page must exist). */
    void clearBit(Addr addr);

    /** Clear every log bit (epoch bump; O(1)). */
    void clearAllBits();

    std::uint64_t interval_;
    std::vector<LogRecord> records_;
    std::uint64_t amnesicRecords_ = 0;

    // --- Log-bit bitmap ---
    std::vector<BitPage> direct_;
    std::map<Addr, BitPage> overflow_;
    /** Stamp value meaning "bit set"; bumped to clear all bits. Pages
     *  are zero-initialized, so epoch 0 would make every bit read as
     *  set — epochs therefore start at 1 and only increase. */
    std::uint32_t epoch_ = 1;
    /** Number of currently set bits (audit bookkeeping). */
    std::uint64_t bitCount_ = 0;
};

} // namespace acr::ckpt

#endif // ACR_CKPT_LOG_HH
