#include "ckpt/secondary.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acr::ckpt
{

SecondaryTier::SecondaryTier(const SecondaryConfig &config, StatSet &stats)
    : config_(config), stats_(stats)
{
    ACR_ASSERT(config_.bytesPerCycle > 0,
               "storage tier bandwidth must be positive");
}

bool
SecondaryTier::duePromotion(std::uint64_t index) const
{
    return config_.promotionPeriod != 0 && index != 0 &&
           index % config_.promotionPeriod == 0;
}

Cycle
SecondaryTier::promote(const sim::MulticoreSystem &system,
                       std::uint64_t checkpoint_index, Cycle now)
{
    SecondarySnapshot snapshot;
    snapshot.checkpointIndex = checkpoint_index;
    snapshot.progressAt = system.progress();
    snapshot.promotedAt = now;
    snapshot.image = system.memory().image();
    for (CoreId c = 0; c < system.numCores(); ++c)
        snapshot.arch.push_back(system.core(c).saveArch());

    const double bytes = static_cast<double>(snapshot.bytes());
    double start = std::max(static_cast<double>(now), channelFree_);
    double occupancy = bytes / config_.bytesPerCycle;
    channelFree_ = start + occupancy;

    ++promotions_;
    stats_.add("secondary.promotions");
    stats_.add("secondary.bytesWritten", bytes);
    stats_.add("secondary.writeCycles", occupancy);

    latest_ = std::move(snapshot);
    return now + static_cast<Cycle>(start - now + occupancy + 0.5) +
           config_.latency;
}

const SecondarySnapshot *
SecondaryTier::latest() const
{
    return latest_ ? &*latest_ : nullptr;
}

std::optional<Cycle>
SecondaryTier::restore(sim::MulticoreSystem &system, Cycle now) const
{
    if (!latest_)
        return std::nullopt;
    const SecondarySnapshot &snapshot = *latest_;
    ACR_ASSERT(snapshot.arch.size() == system.numCores(),
               "snapshot core count mismatch");

    // Wipe and reload the functional state.
    system.memory().clear();
    for (const auto &[addr, value] : snapshot.image)
        system.memory().write(addr, value);

    const double bytes = static_cast<double>(snapshot.bytes());
    Cycle done = now + config_.latency +
                 static_cast<Cycle>(bytes / config_.bytesPerCycle + 0.5);

    for (CoreId c = 0; c < system.numCores(); ++c) {
        system.core(c).restoreArch(snapshot.arch[c]);
        system.core(c).setCycle(
            std::max(system.core(c).cycle(), done));
    }
    system.caches().invalidateCores(system.allCoresMask());

    stats_.add("secondary.restores");
    stats_.add("secondary.bytesRead", bytes);
    return done;
}

} // namespace acr::ckpt
