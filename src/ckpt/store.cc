#include "ckpt/store.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acr::ckpt
{

namespace
{

bool
inMask(cache::SharerMask mask, CoreId core)
{
    return (mask >> core) & 1;
}

/** Synthetic line ids for checkpoint-region traffic (arch state). */
LineId
archRegionLine(CoreId core, std::uint64_t index)
{
    return (LineId{1} << 40) + core * 1024 + index;
}

/** Synthetic word address of replica @p replica's copy of @p addr:
 *  each replica occupies its own high region so replica traffic lands
 *  on its own controller queue slots deterministically. */
Addr
replicaAddr(unsigned replica, Addr addr)
{
    return addr + (Addr{1} << 41) * (replica + 1);
}

/** Synthetic line ids of replica @p replica's arch-state region. */
LineId
replicaArchLine(unsigned replica, CoreId core, std::uint64_t index)
{
    return (LineId{1} << 40) + (LineId{1} << 30) * (replica + 1) +
           core * 1024 + index;
}

/**
 * The seed's undo-log-in-DRAM backend. Every charge below reproduces
 * the exact DramModel call sequence the pre-extraction manager issued,
 * so a kLog run is bit-identical to the seed (perf_equiv_test and
 * golden_stdout lock this).
 */
class LogStore final : public CheckpointStore
{
  public:
    using CheckpointStore::CheckpointStore;

    Backend backend() const override { return Backend::kLog; }

    bool supportsAmnesic() const override { return true; }

    Cycle
    establishGroup(const IntervalLog &log, cache::SharerMask group,
                   Cycle start, Cycle flush_done) override
    {
        auto &dram = system_.caches().dram();
        Cycle done = flush_done;

        // Log traffic: each stored (non-amnesic) record reads the old
        // value from memory and appends it to the log region; amnesic
        // records cost nothing here (their AddrMap writes were charged
        // at ASSOC-ADDR).
        for (const LogRecord &record : log.records()) {
            if (!inMask(group, record.writer))
                continue;
            if (record.isAmnesic())
                continue;
            Cycle t1 = dram.wordRead(record.addr, start);
            Cycle t2 = dram.wordWrite(record.addr, start);
            done = std::max({done, t1, t2});
        }

        // Architectural state of every group core goes to the
        // checkpoint region in memory.
        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        for (CoreId c = 0; c < system_.numCores(); ++c) {
            if (!inMask(group, c))
                continue;
            for (std::uint64_t i = 0; i < arch_lines; ++i) {
                Cycle t = dram.lineWrite(archRegionLine(c, i), start);
                done = std::max(done, t);
            }
        }
        return done;
    }

    void
    accountFootprint(const IntervalLog &log, unsigned num_cores,
                     IntervalSizes &sizes) const override
    {
        sizes.loggedBytes = log.loggedBytes();
        sizes.omittedBytes = log.omittedBytes();
        sizes.archBytes = archBytesPerCore_ * num_cores;
    }

    Cycle
    restoreWord(const LogRecord &record, Cycle issue_at,
                unsigned replica) override
    {
        (void)replica;  // single copy
        auto &dram = system_.caches().dram();
        Cycle t1 = dram.wordRead(record.addr, issue_at);
        Cycle t2 = dram.wordWrite(record.addr, issue_at);
        return std::max(t1, t2);
    }

    Cycle
    writeRecomputed(const LogRecord &record, Cycle issue_at) override
    {
        return system_.caches().dram().wordWrite(record.addr, issue_at);
    }

    Cycle
    readArchState(CoreId core, Cycle issue_at,
                  unsigned replica) override
    {
        (void)replica;  // single copy
        auto &dram = system_.caches().dram();
        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        Cycle done = issue_at;
        for (std::uint64_t i = 0; i < arch_lines; ++i) {
            Cycle t = dram.lineRead(archRegionLine(core, i), issue_at);
            done = std::max(done, t);
        }
        return done;
    }
};

/**
 * ReStore-style replicated in-memory store: every checkpoint datum is
 * written to kReplicaCount independent in-memory images, and recovery
 * reads replica 0 instead of recomputing. Amnesic omission is off — a
 * replica must hold every old value to serve a rollback by itself —
 * so this is the storage-heavy / recovery-cheap baseline ACR beats on
 * footprint but loses to on recovery traffic.
 */
class ReplicatedStore final : public CheckpointStore
{
  public:
    using CheckpointStore::CheckpointStore;

    Backend backend() const override { return Backend::kReplicated; }

    bool supportsAmnesic() const override { return false; }

    Cycle
    establishGroup(const IntervalLog &log, cache::SharerMask group,
                   Cycle start, Cycle flush_done) override
    {
        auto &dram = system_.caches().dram();
        Cycle done = flush_done;
        std::uint64_t replica_bytes = 0;

        // Each record reads the old value once and fans it out to
        // every replica image (per-replica write traffic is charged —
        // that is the point of this baseline).
        for (const LogRecord &record : log.records()) {
            if (!inMask(group, record.writer))
                continue;
            Cycle t = dram.wordRead(record.addr, start);
            done = std::max(done, t);
            for (unsigned r = 0; r < kReplicaCount; ++r) {
                t = dram.wordWrite(replicaAddr(r, record.addr), start);
                done = std::max(done, t);
            }
            replica_bytes += kReplicaCount * kLogRecordBytes;
        }

        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        for (CoreId c = 0; c < system_.numCores(); ++c) {
            if (!inMask(group, c))
                continue;
            for (unsigned r = 0; r < kReplicaCount; ++r) {
                for (std::uint64_t i = 0; i < arch_lines; ++i) {
                    Cycle t =
                        dram.lineWrite(replicaArchLine(r, c, i), start);
                    done = std::max(done, t);
                }
            }
            replica_bytes += kReplicaCount * arch_lines * kLineBytes;
        }

        stats_.add("ckpt.replicaBytes",
                   static_cast<double>(replica_bytes));
        return done;
    }

    void
    accountFootprint(const IntervalLog &log, unsigned num_cores,
                     IntervalSizes &sizes) const override
    {
        // Every record is stored (never omitted), k times over.
        sizes.loggedBytes =
            kReplicaCount * log.totalRecords() * kLogRecordBytes;
        sizes.omittedBytes = 0;
        sizes.archBytes =
            kReplicaCount * archBytesPerCore_ * num_cores;
    }

    Cycle
    restoreWord(const LogRecord &record, Cycle issue_at,
                unsigned replica) override
    {
        auto &dram = system_.caches().dram();
        Cycle t1 =
            dram.wordRead(replicaAddr(replica, record.addr), issue_at);
        Cycle t2 = dram.wordWrite(record.addr, issue_at);
        return std::max(t1, t2);
    }

    Cycle
    writeRecomputed(const LogRecord &record, Cycle issue_at) override
    {
        // Unreachable under the manager (amnesic omission is disabled
        // for this store), but well-defined: the recomputed value only
        // needs the working-memory write.
        return system_.caches().dram().wordWrite(record.addr, issue_at);
    }

    Cycle
    readArchState(CoreId core, Cycle issue_at,
                  unsigned replica) override
    {
        auto &dram = system_.caches().dram();
        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        Cycle done = issue_at;
        for (std::uint64_t i = 0; i < arch_lines; ++i) {
            Cycle t = dram.lineRead(replicaArchLine(replica, core, i),
                                    issue_at);
            done = std::max(done, t);
        }
        return done;
    }
};

/**
 * JASS-style NVM-resident log: checkpoint bytes live on a
 * byte-addressable non-volatile tier with its own bandwidth queue and
 * asymmetric read/write latencies, plus a persist fence per group
 * establishment. Old values are still *read* from DRAM (that is where
 * the working data lives); only checkpoint storage moves to NVM.
 * Amnesic omission stays on — fewer NVM writes is exactly where the
 * hybrid wins, NVM writes being the expensive operation.
 */
class NvmStore final : public CheckpointStore
{
  public:
    /** PCM-class operating point relative to the Table I DRAM model
     *  (131-cycle latency, 6.97 B/cycle): ~2x read latency, ~5x write
     *  latency, ~1/3 bandwidth, and a DRAM-latency-class persist
     *  fence. DESIGN.md §14 documents the derivation. */
    static constexpr Cycle kReadLatency = 262;
    static constexpr Cycle kWriteLatency = 655;
    static constexpr Cycle kPersistLatency = 131;
    static constexpr double kBytesPerCycle = 2.3;

    using CheckpointStore::CheckpointStore;

    Backend backend() const override { return Backend::kNvm; }

    bool supportsAmnesic() const override { return true; }

    Cycle
    establishGroup(const IntervalLog &log, cache::SharerMask group,
                   Cycle start, Cycle flush_done) override
    {
        auto &dram = system_.caches().dram();
        Cycle done = flush_done;

        for (const LogRecord &record : log.records()) {
            if (!inMask(group, record.writer))
                continue;
            if (record.isAmnesic())
                continue;
            Cycle t1 = dram.wordRead(record.addr, start);
            Cycle t2 = nvmWrite(kLogRecordBytes, start);
            done = std::max({done, t1, t2});
        }

        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        for (CoreId c = 0; c < system_.numCores(); ++c) {
            if (!inMask(group, c))
                continue;
            for (std::uint64_t i = 0; i < arch_lines; ++i) {
                Cycle t = nvmWrite(kLineBytes, start);
                done = std::max(done, t);
            }
        }

        // One persist fence makes the group's checkpoint durable.
        stats_.add("nvm.persists");
        return done + kPersistLatency;
    }

    void
    accountFootprint(const IntervalLog &log, unsigned num_cores,
                     IntervalSizes &sizes) const override
    {
        sizes.loggedBytes = log.loggedBytes();
        sizes.omittedBytes = log.omittedBytes();
        sizes.archBytes = archBytesPerCore_ * num_cores;
    }

    Cycle
    restoreWord(const LogRecord &record, Cycle issue_at,
                unsigned replica) override
    {
        (void)replica;  // single copy
        Cycle t1 = nvmRead(kLogRecordBytes, issue_at);
        Cycle t2 =
            system_.caches().dram().wordWrite(record.addr, issue_at);
        return std::max(t1, t2);
    }

    Cycle
    writeRecomputed(const LogRecord &record, Cycle issue_at) override
    {
        // Recomputed values never touched the NVM tier.
        return system_.caches().dram().wordWrite(record.addr, issue_at);
    }

    Cycle
    readArchState(CoreId core, Cycle issue_at,
                  unsigned replica) override
    {
        (void)core;
        (void)replica;  // single copy
        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        Cycle done = issue_at;
        for (std::uint64_t i = 0; i < arch_lines; ++i) {
            Cycle t = nvmRead(kLineBytes, issue_at);
            done = std::max(done, t);
        }
        return done;
    }

  private:
    /** Single-channel bandwidth/latency queue, same shape as
     *  DramModel::access so the two media compose deterministically. */
    Cycle
    access(Cycle now, std::uint64_t bytes, bool write)
    {
        double start =
            std::max(static_cast<double>(now), channelFree_);
        double occupancy =
            static_cast<double>(bytes) / kBytesPerCycle;
        channelFree_ = start + occupancy;
        double queue_delay = start - static_cast<double>(now);

        if (write) {
            stats_.add("nvm.writes");
            stats_.add("nvm.bytesWritten", static_cast<double>(bytes));
        } else {
            stats_.add("nvm.reads");
            stats_.add("nvm.bytesRead", static_cast<double>(bytes));
        }
        stats_.add("nvm.queueDelayCycles", queue_delay);

        return now + static_cast<Cycle>(queue_delay + occupancy + 0.5)
               + (write ? kWriteLatency : kReadLatency);
    }

    Cycle
    nvmRead(std::uint64_t bytes, Cycle now)
    {
        return access(now, bytes, false);
    }

    Cycle
    nvmWrite(std::uint64_t bytes, Cycle now)
    {
        return access(now, bytes, true);
    }

    /** Earliest cycle the NVM channel is free. */
    double channelFree_ = 0.0;
};

/** FNV-1a over the 8 bytes of @p value, folded into @p sum. */
std::uint64_t
fnv1aWord(std::uint64_t sum, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        sum ^= (value >> (8 * i)) & 0xff;
        sum *= 0x100000001b3ULL;
    }
    return sum;
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

/** Per-record checksum: FNV-1a over old value + addr + interval
 *  (DESIGN.md §16 — the checksum format the issue pins). */
std::uint64_t
recordChecksum(Word value, Addr addr, std::uint64_t interval)
{
    std::uint64_t sum = fnv1aWord(kFnvBasis, value);
    sum = fnv1aWord(sum, addr);
    return fnv1aWord(sum, interval);
}

/** Per-core arch digest: FNV-1a over the saved register file, pc, and
 *  rollback bookkeeping. @p flip perturbs reg 0 — the served bytes of
 *  a flipped copy. */
std::uint64_t
archChecksum(const cpu::ArchState &arch, Word flip = 0)
{
    std::uint64_t sum = kFnvBasis;
    bool first = true;
    for (Word reg : arch.regs) {
        sum = fnv1aWord(sum, first ? (reg ^ flip) : reg);
        first = false;
    }
    sum = fnv1aWord(sum, arch.pc);
    sum = fnv1aWord(sum, arch.instrsRetired);
    return fnv1aWord(sum, arch.barrierEpoch);
}

} // namespace

void
CheckpointStore::setFaultInjector(fault::StorageFaultInjector *faults)
{
    faults_ = faults;
}

void
CheckpointStore::onEstablished(const Checkpoint &ckpt)
{
    if (faults_ == nullptr)
        return;

    // Checksum what the medium now holds: every stored record (amnesic
    // records never land on the medium — immune by construction) and
    // every core's architectural state.
    for (const LogRecord &record : ckpt.log.records()) {
        if (record.isAmnesic())
            continue;
        recordSums_[{ckpt.index, record.addr}] =
            recordChecksum(record.oldValue, record.addr, ckpt.index);
    }
    for (CoreId c = 0; c < static_cast<CoreId>(ckpt.arch.size()); ++c)
        archSums_[{ckpt.index, c}] = archChecksum(ckpt.arch[c]);

    for (const fault::StorageFaultPlan::Event &event :
         faults_->takeDue(ckpt.index))
        applyFault(ckpt, event);
}

void
CheckpointStore::applyFault(const Checkpoint &ckpt,
                            const fault::StorageFaultPlan::Event &event)
{
    // The victim replica: high pick bits, so the same event picks the
    // same datum whether or not the medium replicates.
    const unsigned replica =
        static_cast<unsigned>((event.pick >> 48) % replicaCount());

    // Record-granular kinds pick among this checkpoint's stored
    // (non-amnesic) records, in log order.
    auto pickStoredAddr = [&](Addr &addr) {
        std::uint64_t stored = 0;
        for (const LogRecord &record : ckpt.log.records())
            if (!record.isAmnesic())
                ++stored;
        if (stored == 0)
            return false;
        std::uint64_t index = event.pick % stored;
        for (const LogRecord &record : ckpt.log.records()) {
            if (record.isAmnesic())
                continue;
            if (index-- == 0) {
                addr = record.addr;
                return true;
            }
        }
        return false;
    };

    switch (event.kind) {
      case fault::StorageFaultKind::kRecordFlip: {
          Addr addr = 0;
          if (!pickStoredAddr(addr)) {
              faults_->noteDropped();
              return;
          }
          armedRecordFlips_[{ckpt.index, addr}][replica] ^=
              event.xorMask;
          break;
      }
      case fault::StorageFaultKind::kArchFlip: {
          const CoreId core = static_cast<CoreId>(
              event.pick % ckpt.arch.size());
          armedArchFlips_[{ckpt.index, core}][replica] ^= event.xorMask;
          break;
      }
      case fault::StorageFaultKind::kTornGroup:
        armedTorn_.insert(ckpt.index);
        break;
      case fault::StorageFaultKind::kReplicaLoss:
        if (replicaCount() < 2) {
            faults_->noteDropped();
            return;
        }
        armedLostReplicas_[replica].insert(ckpt.index);
        break;
      case fault::StorageFaultKind::kUncorrectableRead: {
          Addr addr = 0;
          if (!pickStoredAddr(addr)) {
              faults_->noteDropped();
              return;
          }
          armedUncorrectable_.insert({ckpt.index, addr});
          break;
      }
    }
    faults_->noteInjected();
}

bool
CheckpointStore::establishmentIntact(const Checkpoint &ckpt)
{
    if (faults_ == nullptr)
        return true;
    stats_.add("ckpt.integrityChecks");
    if (armedTorn_.count(ckpt.index) != 0) {
        stats_.add("ckpt.tornRefusals");
        return false;
    }
    return true;
}

MediumRead
CheckpointStore::restoreWordChecked(const LogRecord &record,
                                    std::uint64_t interval,
                                    Cycle issue_at, unsigned replica)
{
    MediumRead read;
    read.done = restoreWord(record, issue_at, replica);
    if (faults_ == nullptr)
        return read;

    const auto key = std::make_pair(interval, record.addr);
    const auto sum = recordSums_.find(key);
    if (sum == recordSums_.end())
        return read;  // open interval: volatile working state, never
                      // stored on the medium, nothing to verify

    stats_.add("ckpt.integrityChecks");
    if (armedUncorrectable_.count(key) != 0 ||
        armedLostReplicas_[replica].count(interval) != 0) {
        read.corrupt = true;
    } else {
        Word served = record.oldValue;
        const auto flip = armedRecordFlips_.find(key);
        if (flip != armedRecordFlips_.end())
            served ^= flip->second[replica];
        read.corrupt = recordChecksum(served, record.addr, interval) !=
                       sum->second;
    }
    if (read.corrupt)
        stats_.add("ckpt.corruptReads");
    return read;
}

MediumRead
CheckpointStore::readArchStateChecked(const Checkpoint &ckpt,
                                      CoreId core, Cycle issue_at,
                                      unsigned replica)
{
    MediumRead read;
    read.done = readArchState(core, issue_at, replica);
    if (faults_ == nullptr)
        return read;

    const auto key = std::make_pair(ckpt.index, core);
    const auto sum = archSums_.find(key);
    if (sum == archSums_.end())
        return read;  // checkpoint 0: recorded before the fault clock
                      // started, unconditionally intact

    stats_.add("ckpt.integrityChecks");
    if (armedLostReplicas_[replica].count(ckpt.index) != 0) {
        read.corrupt = true;
    } else {
        Word flip = 0;
        const auto it = armedArchFlips_.find(key);
        if (it != armedArchFlips_.end())
            flip = it->second[replica];
        read.corrupt =
            archChecksum(ckpt.arch[core], flip) != sum->second;
    }
    if (read.corrupt)
        stats_.add("ckpt.corruptReads");
    return read;
}

void
CheckpointStore::onCheckpointRetired(const Checkpoint &ckpt)
{
    if (faults_ == nullptr)
        return;
    // Retired data can never be read again: prune its sums and any
    // armed corruption that targeted it.
    const auto record_lo = recordSums_.lower_bound({ckpt.index, 0});
    const auto record_hi = recordSums_.lower_bound({ckpt.index + 1, 0});
    recordSums_.erase(record_lo, record_hi);
    archSums_.erase(archSums_.lower_bound({ckpt.index, 0}),
                    archSums_.lower_bound({ckpt.index + 1, 0}));
    armedRecordFlips_.erase(
        armedRecordFlips_.lower_bound({ckpt.index, 0}),
        armedRecordFlips_.lower_bound({ckpt.index + 1, 0}));
    armedArchFlips_.erase(
        armedArchFlips_.lower_bound({ckpt.index, 0}),
        armedArchFlips_.lower_bound({ckpt.index + 1, 0}));
    armedUncorrectable_.erase(
        armedUncorrectable_.lower_bound({ckpt.index, 0}),
        armedUncorrectable_.lower_bound({ckpt.index + 1, 0}));
    for (auto &lost : armedLostReplicas_)
        lost.erase(ckpt.index);
    armedTorn_.erase(ckpt.index);
}

const std::vector<fault::StorageFaultKind> &
storageFaultKinds(Backend backend)
{
    using K = fault::StorageFaultKind;
    static const std::vector<K> log_kinds = {
        K::kRecordFlip, K::kArchFlip, K::kTornGroup};
    static const std::vector<K> replicated_kinds = {
        K::kRecordFlip, K::kArchFlip, K::kTornGroup, K::kReplicaLoss};
    static const std::vector<K> nvm_kinds = {
        K::kRecordFlip, K::kArchFlip, K::kTornGroup,
        K::kUncorrectableRead};
    switch (backend) {
      case Backend::kLog: return log_kinds;
      case Backend::kReplicated: return replicated_kinds;
      case Backend::kNvm: return nvm_kinds;
    }
    panic("unknown checkpoint store backend %d",
          static_cast<int>(backend));
}

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::kLog: return "log";
      case Backend::kReplicated: return "replicated";
      case Backend::kNvm: return "nvm";
    }
    return "?";
}

bool
parseBackend(const std::string &name, Backend &backend)
{
    if (name == "log") {
        backend = Backend::kLog;
        return true;
    }
    if (name == "replicated") {
        backend = Backend::kReplicated;
        return true;
    }
    if (name == "nvm") {
        backend = Backend::kNvm;
        return true;
    }
    return false;
}

const std::vector<Backend> &
allBackends()
{
    static const std::vector<Backend> all = {
        Backend::kLog, Backend::kReplicated, Backend::kNvm};
    return all;
}

std::unique_ptr<CheckpointStore>
makeCheckpointStore(Backend backend, sim::MulticoreSystem &system,
                    StatSet &stats, std::uint64_t arch_bytes_per_core)
{
    switch (backend) {
      case Backend::kLog:
        return std::make_unique<LogStore>(system, stats,
                                          arch_bytes_per_core);
      case Backend::kReplicated:
        return std::make_unique<ReplicatedStore>(system, stats,
                                                 arch_bytes_per_core);
      case Backend::kNvm:
        return std::make_unique<NvmStore>(system, stats,
                                          arch_bytes_per_core);
    }
    panic("unknown checkpoint store backend %d",
          static_cast<int>(backend));
}

} // namespace acr::ckpt
