#include "ckpt/store.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acr::ckpt
{

namespace
{

bool
inMask(cache::SharerMask mask, CoreId core)
{
    return (mask >> core) & 1;
}

/** Synthetic line ids for checkpoint-region traffic (arch state). */
LineId
archRegionLine(CoreId core, std::uint64_t index)
{
    return (LineId{1} << 40) + core * 1024 + index;
}

/** Synthetic word address of replica @p replica's copy of @p addr:
 *  each replica occupies its own high region so replica traffic lands
 *  on its own controller queue slots deterministically. */
Addr
replicaAddr(unsigned replica, Addr addr)
{
    return addr + (Addr{1} << 41) * (replica + 1);
}

/** Synthetic line ids of replica @p replica's arch-state region. */
LineId
replicaArchLine(unsigned replica, CoreId core, std::uint64_t index)
{
    return (LineId{1} << 40) + (LineId{1} << 30) * (replica + 1) +
           core * 1024 + index;
}

/**
 * The seed's undo-log-in-DRAM backend. Every charge below reproduces
 * the exact DramModel call sequence the pre-extraction manager issued,
 * so a kLog run is bit-identical to the seed (perf_equiv_test and
 * golden_stdout lock this).
 */
class LogStore final : public CheckpointStore
{
  public:
    using CheckpointStore::CheckpointStore;

    Backend backend() const override { return Backend::kLog; }

    bool supportsAmnesic() const override { return true; }

    Cycle
    establishGroup(const IntervalLog &log, cache::SharerMask group,
                   Cycle start, Cycle flush_done) override
    {
        auto &dram = system_.caches().dram();
        Cycle done = flush_done;

        // Log traffic: each stored (non-amnesic) record reads the old
        // value from memory and appends it to the log region; amnesic
        // records cost nothing here (their AddrMap writes were charged
        // at ASSOC-ADDR).
        for (const LogRecord &record : log.records()) {
            if (!inMask(group, record.writer))
                continue;
            if (record.isAmnesic())
                continue;
            Cycle t1 = dram.wordRead(record.addr, start);
            Cycle t2 = dram.wordWrite(record.addr, start);
            done = std::max({done, t1, t2});
        }

        // Architectural state of every group core goes to the
        // checkpoint region in memory.
        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        for (CoreId c = 0; c < system_.numCores(); ++c) {
            if (!inMask(group, c))
                continue;
            for (std::uint64_t i = 0; i < arch_lines; ++i) {
                Cycle t = dram.lineWrite(archRegionLine(c, i), start);
                done = std::max(done, t);
            }
        }
        return done;
    }

    void
    accountFootprint(const IntervalLog &log, unsigned num_cores,
                     IntervalSizes &sizes) const override
    {
        sizes.loggedBytes = log.loggedBytes();
        sizes.omittedBytes = log.omittedBytes();
        sizes.archBytes = archBytesPerCore_ * num_cores;
    }

    Cycle
    restoreWord(const LogRecord &record, Cycle issue_at) override
    {
        auto &dram = system_.caches().dram();
        Cycle t1 = dram.wordRead(record.addr, issue_at);
        Cycle t2 = dram.wordWrite(record.addr, issue_at);
        return std::max(t1, t2);
    }

    Cycle
    writeRecomputed(const LogRecord &record, Cycle issue_at) override
    {
        return system_.caches().dram().wordWrite(record.addr, issue_at);
    }

    Cycle
    readArchState(CoreId core, Cycle issue_at) override
    {
        auto &dram = system_.caches().dram();
        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        Cycle done = issue_at;
        for (std::uint64_t i = 0; i < arch_lines; ++i) {
            Cycle t = dram.lineRead(archRegionLine(core, i), issue_at);
            done = std::max(done, t);
        }
        return done;
    }
};

/**
 * ReStore-style replicated in-memory store: every checkpoint datum is
 * written to kReplicaCount independent in-memory images, and recovery
 * reads replica 0 instead of recomputing. Amnesic omission is off — a
 * replica must hold every old value to serve a rollback by itself —
 * so this is the storage-heavy / recovery-cheap baseline ACR beats on
 * footprint but loses to on recovery traffic.
 */
class ReplicatedStore final : public CheckpointStore
{
  public:
    using CheckpointStore::CheckpointStore;

    Backend backend() const override { return Backend::kReplicated; }

    bool supportsAmnesic() const override { return false; }

    Cycle
    establishGroup(const IntervalLog &log, cache::SharerMask group,
                   Cycle start, Cycle flush_done) override
    {
        auto &dram = system_.caches().dram();
        Cycle done = flush_done;
        std::uint64_t replica_bytes = 0;

        // Each record reads the old value once and fans it out to
        // every replica image (per-replica write traffic is charged —
        // that is the point of this baseline).
        for (const LogRecord &record : log.records()) {
            if (!inMask(group, record.writer))
                continue;
            Cycle t = dram.wordRead(record.addr, start);
            done = std::max(done, t);
            for (unsigned r = 0; r < kReplicaCount; ++r) {
                t = dram.wordWrite(replicaAddr(r, record.addr), start);
                done = std::max(done, t);
            }
            replica_bytes += kReplicaCount * kLogRecordBytes;
        }

        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        for (CoreId c = 0; c < system_.numCores(); ++c) {
            if (!inMask(group, c))
                continue;
            for (unsigned r = 0; r < kReplicaCount; ++r) {
                for (std::uint64_t i = 0; i < arch_lines; ++i) {
                    Cycle t =
                        dram.lineWrite(replicaArchLine(r, c, i), start);
                    done = std::max(done, t);
                }
            }
            replica_bytes += kReplicaCount * arch_lines * kLineBytes;
        }

        stats_.add("ckpt.replicaBytes",
                   static_cast<double>(replica_bytes));
        return done;
    }

    void
    accountFootprint(const IntervalLog &log, unsigned num_cores,
                     IntervalSizes &sizes) const override
    {
        // Every record is stored (never omitted), k times over.
        sizes.loggedBytes =
            kReplicaCount * log.totalRecords() * kLogRecordBytes;
        sizes.omittedBytes = 0;
        sizes.archBytes =
            kReplicaCount * archBytesPerCore_ * num_cores;
    }

    Cycle
    restoreWord(const LogRecord &record, Cycle issue_at) override
    {
        auto &dram = system_.caches().dram();
        Cycle t1 = dram.wordRead(replicaAddr(0, record.addr), issue_at);
        Cycle t2 = dram.wordWrite(record.addr, issue_at);
        return std::max(t1, t2);
    }

    Cycle
    writeRecomputed(const LogRecord &record, Cycle issue_at) override
    {
        // Unreachable under the manager (amnesic omission is disabled
        // for this store), but well-defined: the recomputed value only
        // needs the working-memory write.
        return system_.caches().dram().wordWrite(record.addr, issue_at);
    }

    Cycle
    readArchState(CoreId core, Cycle issue_at) override
    {
        auto &dram = system_.caches().dram();
        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        Cycle done = issue_at;
        for (std::uint64_t i = 0; i < arch_lines; ++i) {
            Cycle t =
                dram.lineRead(replicaArchLine(0, core, i), issue_at);
            done = std::max(done, t);
        }
        return done;
    }
};

/**
 * JASS-style NVM-resident log: checkpoint bytes live on a
 * byte-addressable non-volatile tier with its own bandwidth queue and
 * asymmetric read/write latencies, plus a persist fence per group
 * establishment. Old values are still *read* from DRAM (that is where
 * the working data lives); only checkpoint storage moves to NVM.
 * Amnesic omission stays on — fewer NVM writes is exactly where the
 * hybrid wins, NVM writes being the expensive operation.
 */
class NvmStore final : public CheckpointStore
{
  public:
    /** PCM-class operating point relative to the Table I DRAM model
     *  (131-cycle latency, 6.97 B/cycle): ~2x read latency, ~5x write
     *  latency, ~1/3 bandwidth, and a DRAM-latency-class persist
     *  fence. DESIGN.md §14 documents the derivation. */
    static constexpr Cycle kReadLatency = 262;
    static constexpr Cycle kWriteLatency = 655;
    static constexpr Cycle kPersistLatency = 131;
    static constexpr double kBytesPerCycle = 2.3;

    using CheckpointStore::CheckpointStore;

    Backend backend() const override { return Backend::kNvm; }

    bool supportsAmnesic() const override { return true; }

    Cycle
    establishGroup(const IntervalLog &log, cache::SharerMask group,
                   Cycle start, Cycle flush_done) override
    {
        auto &dram = system_.caches().dram();
        Cycle done = flush_done;

        for (const LogRecord &record : log.records()) {
            if (!inMask(group, record.writer))
                continue;
            if (record.isAmnesic())
                continue;
            Cycle t1 = dram.wordRead(record.addr, start);
            Cycle t2 = nvmWrite(kLogRecordBytes, start);
            done = std::max({done, t1, t2});
        }

        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        for (CoreId c = 0; c < system_.numCores(); ++c) {
            if (!inMask(group, c))
                continue;
            for (std::uint64_t i = 0; i < arch_lines; ++i) {
                Cycle t = nvmWrite(kLineBytes, start);
                done = std::max(done, t);
            }
        }

        // One persist fence makes the group's checkpoint durable.
        stats_.add("nvm.persists");
        return done + kPersistLatency;
    }

    void
    accountFootprint(const IntervalLog &log, unsigned num_cores,
                     IntervalSizes &sizes) const override
    {
        sizes.loggedBytes = log.loggedBytes();
        sizes.omittedBytes = log.omittedBytes();
        sizes.archBytes = archBytesPerCore_ * num_cores;
    }

    Cycle
    restoreWord(const LogRecord &record, Cycle issue_at) override
    {
        Cycle t1 = nvmRead(kLogRecordBytes, issue_at);
        Cycle t2 =
            system_.caches().dram().wordWrite(record.addr, issue_at);
        return std::max(t1, t2);
    }

    Cycle
    writeRecomputed(const LogRecord &record, Cycle issue_at) override
    {
        // Recomputed values never touched the NVM tier.
        return system_.caches().dram().wordWrite(record.addr, issue_at);
    }

    Cycle
    readArchState(CoreId core, Cycle issue_at) override
    {
        (void)core;
        const std::uint64_t arch_lines =
            (archBytesPerCore_ + kLineBytes - 1) / kLineBytes;
        Cycle done = issue_at;
        for (std::uint64_t i = 0; i < arch_lines; ++i) {
            Cycle t = nvmRead(kLineBytes, issue_at);
            done = std::max(done, t);
        }
        return done;
    }

  private:
    /** Single-channel bandwidth/latency queue, same shape as
     *  DramModel::access so the two media compose deterministically. */
    Cycle
    access(Cycle now, std::uint64_t bytes, bool write)
    {
        double start =
            std::max(static_cast<double>(now), channelFree_);
        double occupancy =
            static_cast<double>(bytes) / kBytesPerCycle;
        channelFree_ = start + occupancy;
        double queue_delay = start - static_cast<double>(now);

        if (write) {
            stats_.add("nvm.writes");
            stats_.add("nvm.bytesWritten", static_cast<double>(bytes));
        } else {
            stats_.add("nvm.reads");
            stats_.add("nvm.bytesRead", static_cast<double>(bytes));
        }
        stats_.add("nvm.queueDelayCycles", queue_delay);

        return now + static_cast<Cycle>(queue_delay + occupancy + 0.5)
               + (write ? kWriteLatency : kReadLatency);
    }

    Cycle
    nvmRead(std::uint64_t bytes, Cycle now)
    {
        return access(now, bytes, false);
    }

    Cycle
    nvmWrite(std::uint64_t bytes, Cycle now)
    {
        return access(now, bytes, true);
    }

    /** Earliest cycle the NVM channel is free. */
    double channelFree_ = 0.0;
};

} // namespace

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::kLog: return "log";
      case Backend::kReplicated: return "replicated";
      case Backend::kNvm: return "nvm";
    }
    return "?";
}

bool
parseBackend(const std::string &name, Backend &backend)
{
    if (name == "log") {
        backend = Backend::kLog;
        return true;
    }
    if (name == "replicated") {
        backend = Backend::kReplicated;
        return true;
    }
    if (name == "nvm") {
        backend = Backend::kNvm;
        return true;
    }
    return false;
}

const std::vector<Backend> &
allBackends()
{
    static const std::vector<Backend> all = {
        Backend::kLog, Backend::kReplicated, Backend::kNvm};
    return all;
}

std::unique_ptr<CheckpointStore>
makeCheckpointStore(Backend backend, sim::MulticoreSystem &system,
                    StatSet &stats, std::uint64_t arch_bytes_per_core)
{
    switch (backend) {
      case Backend::kLog:
        return std::make_unique<LogStore>(system, stats,
                                          arch_bytes_per_core);
      case Backend::kReplicated:
        return std::make_unique<ReplicatedStore>(system, stats,
                                                 arch_bytes_per_core);
      case Backend::kNvm:
        return std::make_unique<NvmStore>(system, stats,
                                          arch_bytes_per_core);
    }
    panic("unknown checkpoint store backend %d",
          static_cast<int>(backend));
}

} // namespace acr::ckpt
