/**
 * @file
 * Interface between the BER substrate and the recomputation engine. The
 * checkpoint manager is oblivious to how Slices are produced; ACR's
 * checkpoint handler (acr::AcrEngine) implements this interface, and a
 * null provider yields the plain (non-amnesic) baseline.
 */

#ifndef ACR_CKPT_PROVIDER_HH
#define ACR_CKPT_PROVIDER_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "slice/instance.hh"

namespace acr::ckpt
{

/** Recomputation services consumed by the checkpoint manager. */
class RecomputeProvider
{
  public:
    virtual ~RecomputeProvider() = default;

    /**
     * Slice instance able to regenerate the *current* value stored at
     * @p addr (i.e., the old value about to be logged), or null when the
     * value is not recomputable (Sec. III-C: the memory controller asks
     * whether "the current value v of the respective memory line ... is
     * recomputable").
     */
    virtual std::shared_ptr<slice::SliceInstance>
    currentValueSlice(Addr addr) = 0;

    /** Replay an instance, accounting the cost. */
    virtual Word replay(const slice::SliceInstance &instance,
                        slice::ReplayCost *cost) = 0;

    /** A new checkpoint interval @p interval just opened. */
    virtual void onCheckpointEstablished(std::uint64_t interval) = 0;

    /**
     * Rollback restored the given addresses; any producer bookkeeping
     * for them is now stale.
     */
    virtual void onRollback(const std::vector<Addr> &restored) = 0;
};

} // namespace acr::ckpt

#endif // ACR_CKPT_PROVIDER_HH
