#include "ckpt/log.hh"

#include <unordered_set>

#include "common/logging.hh"

namespace acr::ckpt
{

bool
IntervalLog::slowContains(Addr page_id, Addr addr) const
{
    auto it = overflow_.find(page_id);
    if (it == overflow_.end())
        return false;
    return it->second[addr % kPageWords] == epoch_;
}

void
IntervalLog::setBit(Addr addr)
{
    const Addr page_id = addr / kPageWords;
    std::uint32_t *page;
    if (page_id < kDirectPages) {
        if (page_id >= direct_.size())
            direct_.resize(page_id + 1);
        if (!direct_[page_id]) {
            direct_[page_id] =
                std::make_unique<std::uint32_t[]>(kPageWords);
        }
        page = direct_[page_id].get();
    } else {
        auto it = overflow_.find(page_id);
        if (it == overflow_.end()) {
            it = overflow_
                     .emplace(page_id, std::make_unique<std::uint32_t[]>(
                                           kPageWords))
                     .first;
        }
        page = it->second.get();
    }
    page[addr % kPageWords] = epoch_;
    ++bitCount_;
}

void
IntervalLog::clearBit(Addr addr)
{
    const Addr page_id = addr / kPageWords;
    std::uint32_t *page = nullptr;
    if (page_id < direct_.size()) {
        page = direct_[page_id].get();
    } else {
        auto it = overflow_.find(page_id);
        if (it != overflow_.end())
            page = it->second.get();
    }
    ACR_ASSERT(page != nullptr && page[addr % kPageWords] == epoch_,
               "clearing a log bit that is not set");
    page[addr % kPageWords] = 0;
    --bitCount_;
}

void
IntervalLog::clearAllBits()
{
    // Epoch bump: every stamp written under the old epoch now compares
    // unequal, i.e. every bit reads as clear, without touching pages.
    ++epoch_;
    ACR_ASSERT(epoch_ != 0, "log-bit epoch overflow");
    bitCount_ = 0;
}

void
IntervalLog::append(LogRecord record)
{
    ACR_ASSERT(!contains(record.addr),
               "address already logged this interval");
    if (record.isAmnesic())
        ++amnesicRecords_;
    setBit(record.addr);
    records_.push_back(std::move(record));
}

void
IntervalLog::removeWriters(std::uint64_t writer_mask)
{
    std::vector<LogRecord> kept;
    kept.reserve(records_.size());
    for (auto &record : records_) {
        if (writer_mask & (std::uint64_t{1} << record.writer))
            continue;
        kept.push_back(std::move(record));
    }
    records_ = std::move(kept);
    clearAllBits();
    amnesicRecords_ = 0;
    for (const LogRecord &record : records_) {
        setBit(record.addr);
        if (record.isAmnesic())
            ++amnesicRecords_;
    }
}

bool
IntervalLog::dropOneRecord(
    std::uint64_t writer_mask,
    const std::function<bool(Addr, Word)> &observable)
{
    // Prefer a record whose loss is observable (its restore would
    // actually change memory); settle for any affected-writer record
    // so the fixture still exercises the bookkeeping either way.
    std::size_t pick = records_.size();
    for (std::size_t i = 0; i < records_.size(); ++i) {
        if (!(writer_mask & (std::uint64_t{1} << records_[i].writer)))
            continue;
        if (pick == records_.size())
            pick = i;
        if (!observable ||
            observable(records_[i].addr, records_[i].oldValue)) {
            pick = i;
            break;
        }
    }
    if (pick == records_.size())
        return false;
    if (records_[pick].isAmnesic())
        --amnesicRecords_;
    clearBit(records_[pick].addr);
    records_.erase(records_.begin() +
                   static_cast<std::ptrdiff_t>(pick));
    return true;
}

std::string
IntervalLog::auditIndex() const
{
    if (bitCount_ != records_.size())
        return "log bits (" + std::to_string(bitCount_) +
               ") != records (" + std::to_string(records_.size()) +
               ") in interval " + std::to_string(interval_);
    std::unordered_set<Addr> seen;
    seen.reserve(records_.size());
    for (const LogRecord &record : records_) {
        if (!contains(record.addr))
            return "record addr " + std::to_string(record.addr) +
                   " has no log bit in interval " +
                   std::to_string(interval_);
        if (!seen.insert(record.addr).second)
            return "record addr " + std::to_string(record.addr) +
                   " logged twice in interval " +
                   std::to_string(interval_);
    }
    std::uint64_t amnesic = 0;
    for (const LogRecord &record : records_) {
        if (record.isAmnesic())
            ++amnesic;
    }
    if (amnesic != amnesicRecords_)
        return "amnesic counter " + std::to_string(amnesicRecords_) +
               " != actual " + std::to_string(amnesic) + " in interval " +
               std::to_string(interval_);
    return "";
}

} // namespace acr::ckpt
