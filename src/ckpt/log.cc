#include "ckpt/log.hh"

#include "common/logging.hh"

namespace acr::ckpt
{

void
IntervalLog::append(LogRecord record)
{
    ACR_ASSERT(!contains(record.addr),
               "address already logged this interval");
    if (record.isAmnesic())
        ++amnesicRecords_;
    index_[record.addr] = records_.size();
    records_.push_back(std::move(record));
}

void
IntervalLog::removeWriters(std::uint64_t writer_mask)
{
    std::vector<LogRecord> kept;
    kept.reserve(records_.size());
    for (auto &record : records_) {
        if (writer_mask & (std::uint64_t{1} << record.writer))
            continue;
        kept.push_back(std::move(record));
    }
    records_ = std::move(kept);
    index_.clear();
    amnesicRecords_ = 0;
    for (std::size_t i = 0; i < records_.size(); ++i) {
        index_[records_[i].addr] = i;
        if (records_[i].isAmnesic())
            ++amnesicRecords_;
    }
}

} // namespace acr::ckpt
