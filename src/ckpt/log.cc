#include "ckpt/log.hh"

#include "common/logging.hh"

namespace acr::ckpt
{

void
IntervalLog::append(LogRecord record)
{
    ACR_ASSERT(!contains(record.addr),
               "address already logged this interval");
    if (record.isAmnesic())
        ++amnesicRecords_;
    index_[record.addr] = records_.size();
    records_.push_back(std::move(record));
}

void
IntervalLog::removeWriters(std::uint64_t writer_mask)
{
    std::vector<LogRecord> kept;
    kept.reserve(records_.size());
    for (auto &record : records_) {
        if (writer_mask & (std::uint64_t{1} << record.writer))
            continue;
        kept.push_back(std::move(record));
    }
    records_ = std::move(kept);
    index_.clear();
    amnesicRecords_ = 0;
    for (std::size_t i = 0; i < records_.size(); ++i) {
        index_[records_[i].addr] = i;
        if (records_[i].isAmnesic())
            ++amnesicRecords_;
    }
}

bool
IntervalLog::dropOneRecord(
    std::uint64_t writer_mask,
    const std::function<bool(Addr, Word)> &observable)
{
    // Prefer a record whose loss is observable (its restore would
    // actually change memory); settle for any affected-writer record
    // so the fixture still exercises the bookkeeping either way.
    std::size_t pick = records_.size();
    for (std::size_t i = 0; i < records_.size(); ++i) {
        if (!(writer_mask & (std::uint64_t{1} << records_[i].writer)))
            continue;
        if (pick == records_.size())
            pick = i;
        if (!observable ||
            observable(records_[i].addr, records_[i].oldValue)) {
            pick = i;
            break;
        }
    }
    if (pick == records_.size())
        return false;
    if (records_[pick].isAmnesic())
        --amnesicRecords_;
    index_.erase(records_[pick].addr);
    records_.erase(records_.begin() +
                   static_cast<std::ptrdiff_t>(pick));
    for (auto &entry : index_) {
        if (entry.second > pick)
            --entry.second;
    }
    return true;
}

std::string
IntervalLog::auditIndex() const
{
    if (index_.size() != records_.size())
        return "log bits (" + std::to_string(index_.size()) +
               ") != records (" + std::to_string(records_.size()) +
               ") in interval " + std::to_string(interval_);
    for (std::size_t i = 0; i < records_.size(); ++i) {
        auto it = index_.find(records_[i].addr);
        if (it == index_.end())
            return "record addr " + std::to_string(records_[i].addr) +
                   " has no log bit in interval " +
                   std::to_string(interval_);
        if (it->second != i)
            return "log bit of addr " + std::to_string(records_[i].addr) +
                   " points at position " + std::to_string(it->second) +
                   " (record at " + std::to_string(i) + ") in interval " +
                   std::to_string(interval_);
    }
    std::uint64_t amnesic = 0;
    for (const LogRecord &record : records_) {
        if (record.isAmnesic())
            ++amnesic;
    }
    if (amnesic != amnesicRecords_)
        return "amnesic counter " + std::to_string(amnesicRecords_) +
               " != actual " + std::to_string(amnesic) + " in interval " +
               std::to_string(interval_);
    return "";
}

} // namespace acr::ckpt
