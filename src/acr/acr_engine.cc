#include "acr/acr_engine.hh"

#include "common/logging.hh"

namespace acr::amnesic
{

AcrEngine::AcrEngine(const AcrConfig &config, slice::SliceEngine &slicer,
                     StatSet &stats)
    : config_(config), slicer_(slicer), stats_(stats),
      operandBuf_(config.operandBufferWords),
      addrMap_(config.addrMapCapacity)
{
}

void
AcrEngine::onStoreRetired(const cpu::InstrEvent &event)
{
    ACR_ASSERT(isa::isStore(event.inst->op),
               "onStoreRetired with a non-store");
    const Addr addr = event.addr;

    if (!event.inst->sliceHint) {
        // No embedded Slice for this store: the value it just wrote is
        // not recomputable, so any previous association is stale.
        addrMap_.erase(addr);
        return;
    }

    const slice::BuiltSlice *built =
        slicer_.buildForStore(event, config_.policy);
    if (!built) {
        // The dynamic producer chain for this instance was inadmissible
        // (too long under this control flow, too many inputs).
        addrMap_.erase(addr);
        ++hot_.captureFailures;
        return;
    }

    slice::SliceId id = repo_.intern(built->slice);
    auto instance = slice::SliceInstance::create(
        id, built->inputs, operandBuf_);
    if (!instance) {
        // Operand buffer full: fall back to normal logging.
        addrMap_.erase(addr);
        ++hot_.operandBufferRejections;
        return;
    }

    // Capture cost: operand words written into the buffer plus the
    // ASSOC-ADDR's AddrMap write.
    hot_.operandBufferWords += instance->inputs().size();
    ++hot_.addrMapAccesses;

    if (!addrMap_.insert(addr, std::move(instance), currentInterval_)) {
        ++hot_.addrMapOverflows;
        addrMap_.erase(addr);
        return;
    }
    ++hot_.captures;
}

std::shared_ptr<slice::SliceInstance>
AcrEngine::currentValueSlice(Addr addr)
{
    // The checkpoint handler's AddrMap lookup (Fig. 4a).
    ++hot_.addrMapAccesses;
    return addrMap_.lookup(addr);
}

Word
AcrEngine::replay(const slice::SliceInstance &instance,
                  slice::ReplayCost *cost)
{
    return instance.replay(repo_, cost);
}

void
AcrEngine::onCheckpointEstablished(std::uint64_t interval)
{
    currentInterval_ = interval;
    // Optional age-based expiry (see AcrConfig::retentionIntervals);
    // instances pinned by retained logs live on through shared
    // ownership regardless.
    if (config_.retentionIntervals > 0 &&
        interval >= config_.retentionIntervals) {
        addrMap_.expireOlderThan(interval - config_.retentionIntervals);
    }
}

void
AcrEngine::onRollback(const std::vector<Addr> &restored)
{
    for (Addr addr : restored)
        addrMap_.erase(addr);
}

void
AcrEngine::exportStats()
{
    if (hot_.captures)
        stats_.add("acr.captures", static_cast<double>(hot_.captures));
    if (hot_.captureFailures)
        stats_.add("acr.captureFailures",
                   static_cast<double>(hot_.captureFailures));
    if (hot_.operandBufferRejections)
        stats_.add("acr.operandBufferRejections",
                   static_cast<double>(hot_.operandBufferRejections));
    if (hot_.operandBufferWords)
        stats_.add("acr.operandBufferWords",
                   static_cast<double>(hot_.operandBufferWords));
    if (hot_.addrMapAccesses)
        stats_.add("acr.addrMapAccesses",
                   static_cast<double>(hot_.addrMapAccesses));
    if (hot_.addrMapOverflows)
        stats_.add("acr.addrMapOverflows",
                   static_cast<double>(hot_.addrMapOverflows));
    hot_ = HotCounters{};

    stats_.set("acr.addrMapPeakEntries",
               static_cast<double>(addrMap_.peakSize()));
    stats_.set("acr.addrMapOverflowsTotal",
               static_cast<double>(addrMap_.overflows()));
    stats_.set("acr.operandBufferPeakWords",
               static_cast<double>(operandBuf_.peakWords()));
    stats_.set("acr.uniqueSlices",
               static_cast<double>(repo_.uniqueSlices()));
    stats_.set("acr.sliceInstrs",
               static_cast<double>(repo_.totalInstrs()));
}

AcrEngine::Snap
AcrEngine::save(
    const std::function<
        std::uint32_t(const std::shared_ptr<slice::SliceInstance> &)>
        &index_of) const
{
    Snap snap;
    snap.repo = repo_;
    snap.addrMap.reserve(addrMap_.size());
    addrMap_.forEach(
        [&](Addr addr,
            const std::shared_ptr<slice::SliceInstance> &instance,
            std::uint64_t interval) {
            snap.addrMap.push_back(
                Snap::MapEntry{addr, index_of(instance), interval});
        });
    snap.addrMapOverflows = addrMap_.overflows();
    snap.addrMapPeak = addrMap_.peakSize();
    snap.operandPeak = operandBuf_.peakWords();
    snap.operandRejections = operandBuf_.rejections();
    snap.currentInterval = currentInterval_;
    snap.hot = hot_;
    return snap;
}

std::vector<std::shared_ptr<slice::SliceInstance>>
AcrEngine::restore(const Snap &snap,
                   const std::vector<Snap::InstanceEntry> &entries)
{
    ACR_ASSERT(operandBuf_.liveWords() == 0 && addrMap_.size() == 0,
               "restore() requires a freshly constructed engine");
    repo_ = snap.repo;
    currentInterval_ = snap.currentInterval;
    hot_ = snap.hot;

    // Materialize each instance exactly once against *this* engine's
    // operand buffer; the donor run held them all live simultaneously,
    // so re-reserving the same words cannot overflow.
    std::vector<std::shared_ptr<slice::SliceInstance>> instances;
    instances.reserve(entries.size());
    for (const Snap::InstanceEntry &entry : entries) {
        auto instance = slice::SliceInstance::create(
            entry.slice, entry.inputs, operandBuf_);
        ACR_ASSERT(instance != nullptr,
                   "snapshot instance exceeds operand buffer");
        instances.push_back(std::move(instance));
    }
    operandBuf_.restoreCounters(snap.operandPeak, snap.operandRejections);

    for (const Snap::MapEntry &entry : snap.addrMap) {
        bool ok = addrMap_.insert(entry.addr, instances[entry.instance],
                                  entry.interval);
        ACR_ASSERT(ok, "snapshot AddrMap entry did not fit");
    }
    addrMap_.restoreCounters(snap.addrMapOverflows, snap.addrMapPeak);
    return instances;
}

} // namespace acr::amnesic
