/**
 * @file
 * SlicePass: ACR's compiler pass (Sec. III-A / IV). Implemented — like
 * the paper's — as dynamic binary instrumentation: the program runs once
 * under the slicer, every store's backward slice is extracted, and
 * stores with at least one admissible Slice get the ASSOC-ADDR fusion
 * hint embedded in the binary. Unique slice shapes are interned to
 * measure the static code-size overhead of embedding (paper: < 2%).
 *
 * The profiling run is an error-free, checkpoint-free execution, so its
 * timing doubles as the NoCkpt baseline of the evaluation.
 */

#ifndef ACR_ACR_SLICE_PASS_HH
#define ACR_ACR_SLICE_PASS_HH

#include <map>

#include "common/stats.hh"
#include "isa/program.hh"
#include "sim/machine_config.hh"
#include "slice/policy.hh"

namespace acr::amnesic
{

/** Everything the pass learns about a program. */
struct SlicePassResult
{
    /** The program with sliceHint set on recomputable stores. */
    isa::Program program;

    std::size_t staticStores = 0;
    std::size_t hintedStores = 0;
    std::size_t uniqueSlices = 0;
    std::size_t sliceInstrs = 0;

    /** Embedded-slice instructions relative to program size, percent. */
    double binaryGrowthPct = 0.0;

    /** Dynamic stores observed / found sliceable (coverage). */
    std::uint64_t dynamicStores = 0;
    std::uint64_t sliceableStores = 0;

    // --- NoCkpt profile of the same run ---
    std::uint64_t totalProgress = 0;  ///< retired instructions
    Cycle cycles = 0;                 ///< completion time
    /** Final memory image (golden reference for recovery tests). */
    std::map<Addr, Word> finalImage;
    /**
     * The system's exported counters at completion. Because the pass
     * observer never perturbs timing, these are exactly the stats an
     * error-free NoCkpt run of the same program would export, and the
     * BER runtime reuses them to answer NoCkpt experiments without
     * re-simulating (DESIGN.md Sec. 13).
     */
    StatSet stats;
};

/** The pass itself. */
class SlicePass
{
  public:
    /**
     * Profile @p program on @p machine, extracting Slices under
     * @p policy.
     */
    static SlicePassResult run(const isa::Program &program,
                               const sim::MachineConfig &machine,
                               const slice::SlicePolicyConfig &policy);
};

} // namespace acr::amnesic

#endif // ACR_ACR_SLICE_PASS_HH
