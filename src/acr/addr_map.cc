#include "acr/addr_map.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acr::amnesic
{

AddrMap::AddrMap(std::size_t capacity)
    : capacity_(capacity)
{
    ACR_ASSERT(capacity >= 1, "AddrMap needs capacity >= 1");
}

bool
AddrMap::insert(Addr addr, std::shared_ptr<slice::SliceInstance> instance,
                std::uint64_t interval)
{
    ACR_ASSERT(instance != nullptr, "inserting null slice instance");
    auto it = map_.find(addr);
    if (it != map_.end()) {
        it->second = Entry{std::move(instance), interval};
        return true;
    }
    if (map_.size() >= capacity_) {
        ++overflows_;
        return false;
    }
    map_.emplace(addr, Entry{std::move(instance), interval});
    peak_ = std::max(peak_, map_.size());
    return true;
}

std::shared_ptr<slice::SliceInstance>
AddrMap::lookup(Addr addr) const
{
    auto it = map_.find(addr);
    return it == map_.end() ? nullptr : it->second.instance;
}

void
AddrMap::erase(Addr addr)
{
    map_.erase(addr);
}

void
AddrMap::expireOlderThan(std::uint64_t min_interval)
{
    for (auto it = map_.begin(); it != map_.end();) {
        if (it->second.interval < min_interval)
            it = map_.erase(it);
        else
            ++it;
    }
}

} // namespace acr::amnesic
