#include "acr/addr_map.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/logging.hh"

namespace acr::amnesic
{

AddrMap::AddrMap(std::size_t capacity)
    : capacity_(capacity)
{
    ACR_ASSERT(capacity >= 1, "AddrMap needs capacity >= 1");
    // Power-of-two table, at most half full at capacity: probes stay
    // short and there is always an empty slot to stop a scan.
    std::size_t table = std::bit_ceil(std::max<std::size_t>(
        16, capacity * 2));
    slots_.assign(table, Slot{});
    mask_ = table - 1;
    shift_ = static_cast<unsigned>(
        64 - std::countr_zero(table));
}

std::size_t
AddrMap::findSlot(Addr addr) const
{
    std::size_t i = homeOf(addr);
    while (slots_[i].used) {
        if (slots_[i].addr == addr)
            return i;
        i = (i + 1) & mask_;
    }
    return kNoSlot;
}

void
AddrMap::removeSlot(std::size_t hole)
{
    // Backward-shift deletion: pull every displaced follower of the
    // probe run into the hole so lookups never need tombstones.
    slots_[hole] = Slot{};
    std::size_t j = hole;
    while (true) {
        j = (j + 1) & mask_;
        if (!slots_[j].used)
            break;
        std::size_t home = homeOf(slots_[j].addr);
        // Distance from home to j (mod table size); the entry may move
        // back into the hole only if its home is not after the hole.
        if (((j - home) & mask_) >= ((j - hole) & mask_)) {
            slots_[hole] = std::move(slots_[j]);
            slots_[j] = Slot{};
            hole = j;
        }
    }
    --size_;
}

bool
AddrMap::insert(Addr addr, std::shared_ptr<slice::SliceInstance> instance,
                std::uint64_t interval)
{
    ACR_ASSERT(instance != nullptr, "inserting null slice instance");
    std::size_t i = homeOf(addr);
    while (slots_[i].used) {
        if (slots_[i].addr == addr) {
            slots_[i].instance = std::move(instance);
            // Keep the max: a re-posted rollback-erased corruption can
            // replay an ASSOC-ADDR from an older interval, and adopting
            // the older tag would expire a still-live slice early.
            slots_[i].interval = std::max(slots_[i].interval, interval);
            return true;
        }
        i = (i + 1) & mask_;
    }
    if (size_ >= capacity_) {
        ++overflows_;
        return false;
    }
    slots_[i].addr = addr;
    slots_[i].instance = std::move(instance);
    slots_[i].interval = interval;
    slots_[i].used = true;
    ++size_;
    peak_ = std::max(peak_, size_);
    return true;
}

std::shared_ptr<slice::SliceInstance>
AddrMap::lookup(Addr addr) const
{
    std::size_t i = findSlot(addr);
    return i == kNoSlot ? nullptr : slots_[i].instance;
}

void
AddrMap::erase(Addr addr)
{
    std::size_t i = findSlot(addr);
    if (i != kNoSlot)
        removeSlot(i);
}

void
AddrMap::expireOlderThan(std::uint64_t min_interval)
{
    std::size_t doomed = 0;
    for (const Slot &slot : slots_) {
        if (slot.used && slot.interval < min_interval)
            ++doomed;
    }
    if (doomed == 0)
        return;
    // Single compaction pass: lift the survivors out, clear the table,
    // and re-place each at its home probe run — O(table) total, where
    // per-address backward-shift erase re-walked a probe run for every
    // doomed entry (quadratic-ish when a whole interval expires).
    std::vector<Slot> survivors;
    survivors.reserve(size_ - doomed);
    for (Slot &slot : slots_) {
        if (!slot.used)
            continue;
        if (slot.interval < min_interval)
            slot = Slot{};
        else
            survivors.push_back(std::exchange(slot, Slot{}));
    }
    size_ -= doomed;
    for (Slot &slot : survivors) {
        std::size_t i = homeOf(slot.addr);
        while (slots_[i].used)
            i = (i + 1) & mask_;
        slots_[i] = std::move(slot);
    }
}

} // namespace acr::amnesic
