/**
 * @file
 * AcrEngine: the paper's ACR handler pair.
 *
 * Checkpoint-handler side (Fig. 4a): every retired store carrying the
 * compiler's slice hint executes a fused ASSOC-ADDR — the engine builds
 * the dynamic Slice instance for the stored value, captures its input
 * operands into the bounded operand buffer, and records the
 * <address, Slice> association in AddrMap. When the checkpoint substrate
 * is about to log an old value, it asks (through ckpt::RecomputeProvider)
 * whether that value's producer left an association; if so the record
 * becomes amnesic and is omitted from the stored checkpoint.
 *
 * Recovery-handler side (Fig. 4b): replays pinned Slice instances to
 * regenerate omitted values during rollback, and drops stale
 * associations for rolled-back addresses.
 */

#ifndef ACR_ACR_ACR_ENGINE_HH
#define ACR_ACR_ACR_ENGINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "acr/addr_map.hh"
#include "ckpt/provider.hh"
#include "common/stats.hh"
#include "cpu/exec_observer.hh"
#include "slice/engine.hh"
#include "slice/policy.hh"
#include "slice/repository.hh"

namespace acr::amnesic
{

/** Configuration of the ACR microarchitectural support (Fig. 5). */
struct AcrConfig
{
    slice::SlicePolicyConfig policy{};

    /** AddrMap entries (on-chip, Sec. III-C). */
    std::size_t addrMapCapacity = 8192;

    /** Input-operand buffer capacity in words (Sec. II-B). */
    std::size_t operandBufferWords = 65536;

    /**
     * Age-based expiry of AddrMap associations, in checkpoint
     * intervals. 0 (default): an association lives until the address
     * is overwritten by a non-recomputable store, evicted by capacity,
     * or rolled back — the mapping describes the *current* memory
     * value, which stays recomputable however old it is. N > 0 models
     * the stricter reading of Sec. III-A's "two most recent
     * checkpoints" (N = 2): associations older than N intervals are
     * dropped even if still valid. Instances referenced by retained
     * undo logs survive either way (shared ownership).
     */
    unsigned retentionIntervals = 0;
};

/** The ACR checkpoint + recovery handlers. */
class AcrEngine : public ckpt::RecomputeProvider
{
  public:
    /** Per-store event tallies deferred until exportStats(). */
    struct HotCounters
    {
        std::uint64_t captures = 0;
        std::uint64_t captureFailures = 0;
        std::uint64_t operandBufferRejections = 0;
        std::uint64_t operandBufferWords = 0;
        std::uint64_t addrMapAccesses = 0;
        std::uint64_t addrMapOverflows = 0;
    };

    /**
     * Engine state captured by the prefix-sharing snapshot
     * (DESIGN.md §13). Live slice instances are serialized out-of-line
     * (as Snap::InstanceEntry values) because instances hold a
     * reference to *this engine's* operand buffer: a resumed run must
     * re-create them against its own accounting object, never adopt
     * the originals. AddrMap entries refer to instances by index into
     * that shared table (undo-log records use the same indices).
     */
    struct Snap
    {
        struct MapEntry
        {
            Addr addr = 0;
            std::uint32_t instance = 0;
            std::uint64_t interval = 0;
        };

        /** One live instance: static slice id + captured operands. */
        struct InstanceEntry
        {
            slice::SliceId slice = 0;
            std::vector<Word> inputs;
        };

        slice::SliceRepository repo;
        std::vector<MapEntry> addrMap;
        std::uint64_t addrMapOverflows = 0;
        std::size_t addrMapPeak = 0;
        std::size_t operandPeak = 0;
        std::uint64_t operandRejections = 0;
        std::uint64_t currentInterval = 1;
        HotCounters hot;
    };


    AcrEngine(const AcrConfig &config, slice::SliceEngine &slicer,
              StatSet &stats);

    /**
     * ASSOC-ADDR execution, fused with a retired store (driver calls
     * this for every store, after the checkpoint substrate logged it).
     * Non-hinted or non-sliceable stores kill any stale association for
     * the address, keeping AddrMap sound.
     */
    void onStoreRetired(const cpu::InstrEvent &event);

    // --- ckpt::RecomputeProvider ---
    std::shared_ptr<slice::SliceInstance>
    currentValueSlice(Addr addr) override;

    Word replay(const slice::SliceInstance &instance,
                slice::ReplayCost *cost) override;

    void onCheckpointEstablished(std::uint64_t interval) override;

    void onRollback(const std::vector<Addr> &restored) override;

    const AcrConfig &config() const { return config_; }
    const AddrMap &addrMap() const { return addrMap_; }
    slice::SliceRepository &repository() { return repo_; }
    const slice::OperandBufferAccounting &operandBuffer() const
    {
        return operandBuf_;
    }

    /**
     * Publish structure-occupancy statistics and flush the per-store
     * event counters into the StatSet. The hot path (one to three
     * events per retired store) bumps plain integers; the string-keyed
     * StatSet sees one add() per counter here instead of millions.
     * Flushing zeroes the counters, so calling this twice is safe.
     * The final StatSet values are bit-identical to per-event add()
     * calls: every increment is integral and the totals stay far below
     * 2^53, so double addition is exact in any order.
     */
    void exportStats();

    /**
     * Capture this engine's state. @p index_of maps each live instance
     * to its slot in the caller's deduplicated instance table (the
     * caller serializes instances once across AddrMap and undo logs).
     */
    Snap
    save(const std::function<
         std::uint32_t(const std::shared_ptr<slice::SliceInstance> &)>
             &index_of) const;

    /**
     * Overwrite this (freshly constructed) engine with @p snap,
     * materializing @p entries against this engine's own operand
     * buffer. @return the new instances, aligned with the table's
     * indices, so the caller can re-link undo-log records.
     */
    std::vector<std::shared_ptr<slice::SliceInstance>>
    restore(const Snap &snap,
            const std::vector<Snap::InstanceEntry> &entries);

  private:
    AcrConfig config_;
    slice::SliceEngine &slicer_;
    StatSet &stats_;
    slice::SliceRepository repo_;
    slice::OperandBufferAccounting operandBuf_;
    AddrMap addrMap_;
    std::uint64_t currentInterval_ = 1;
    HotCounters hot_;
};

} // namespace acr::amnesic

#endif // ACR_ACR_ACR_ENGINE_HH
