#include "acr/slice_pass.hh"

#include <unordered_set>

#include "common/logging.hh"
#include "slice/engine.hh"
#include "slice/repository.hh"
#include "sim/system.hh"

namespace acr::amnesic
{

namespace
{

/** Pin-tool-style instrumentation callback. */
class PassObserver : public cpu::ExecObserver
{
  public:
    PassObserver(slice::SliceEngine &slicer,
                 const slice::SlicePolicyConfig &policy)
        : slicer_(slicer), policy_(policy)
    {
    }

    void
    onInstr(const cpu::InstrEvent &event) override
    {
        if (isa::isStore(event.inst->op)) {
            ++dynamicStores_;
            auto built = slicer_.buildForStore(event, policy_);
            if (built) {
                ++sliceableStores_;
                hintedPcs_.insert(event.pc);
                repo_.intern(std::move(built->slice));
            }
            return;
        }
        slicer_.observe(event);
    }

    const std::unordered_set<std::size_t> &hintedPcs() const
    {
        return hintedPcs_;
    }
    const slice::SliceRepository &repo() const { return repo_; }
    std::uint64_t dynamicStores() const { return dynamicStores_; }
    std::uint64_t sliceableStores() const { return sliceableStores_; }

  private:
    slice::SliceEngine &slicer_;
    slice::SlicePolicyConfig policy_;
    std::unordered_set<std::size_t> hintedPcs_;
    slice::SliceRepository repo_;
    std::uint64_t dynamicStores_ = 0;
    std::uint64_t sliceableStores_ = 0;
};

} // namespace

SlicePassResult
SlicePass::run(const isa::Program &program,
               const sim::MachineConfig &machine,
               const slice::SlicePolicyConfig &policy)
{
    sim::MulticoreSystem system(machine, program);
    slice::SliceEngine slicer(machine.numCores);
    PassObserver observer(slicer, policy);
    system.setObserver(&observer);
    system.runToCompletion();

    SlicePassResult result;
    result.program = program;
    for (auto &inst : result.program.code()) {
        if (isa::isStore(inst.op)) {
            ++result.staticStores;
            if (observer.hintedPcs().count(
                    static_cast<std::size_t>(&inst -
                                             result.program.code().data())))
            {
                inst.sliceHint = true;
                ++result.hintedStores;
            }
        }
    }

    result.uniqueSlices = observer.repo().uniqueSlices();
    result.sliceInstrs = observer.repo().totalInstrs();
    result.binaryGrowthPct =
        100.0 * static_cast<double>(result.sliceInstrs) /
        static_cast<double>(program.size());
    result.dynamicStores = observer.dynamicStores();
    result.sliceableStores = observer.sliceableStores();
    result.totalProgress = system.progress();
    result.cycles = system.maxCycle();
    result.finalImage = system.memory().image();
    return result;
}

} // namespace acr::amnesic
