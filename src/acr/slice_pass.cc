#include "acr/slice_pass.hh"

#include "common/logging.hh"
#include "slice/engine.hh"
#include "slice/repository.hh"
#include "sim/system.hh"

namespace acr::amnesic
{

namespace
{

/** Pin-tool-style instrumentation callback. */
class PassObserver final : public cpu::ExecObserver
{
  public:
    PassObserver(slice::SliceEngine &slicer,
                 const slice::SlicePolicyConfig &policy,
                 std::size_t program_size)
        : slicer_(slicer), policy_(policy), hintedPcs_(program_size, 0)
    {
    }

    void
    onInstr(const cpu::InstrEvent &event) override
    {
        if (isa::isStore(event.inst->op)) {
            ++dynamicStores_;
            const slice::BuiltSlice *built =
                slicer_.buildForStore(event, policy_);
            if (built) {
                ++sliceableStores_;
                hintedPcs_[event.pc] = 1;
                repo_.intern(built->slice);
            }
            return;
        }
        slicer_.observe(event);
    }

    bool
    hinted(std::size_t pc) const
    {
        return hintedPcs_[pc] != 0;
    }
    const slice::SliceRepository &repo() const { return repo_; }
    std::uint64_t dynamicStores() const { return dynamicStores_; }
    std::uint64_t sliceableStores() const { return sliceableStores_; }

  private:
    slice::SliceEngine &slicer_;
    slice::SlicePolicyConfig policy_;
    /** Per-pc hint flags, indexed by static pc (dense, hot). */
    std::vector<std::uint8_t> hintedPcs_;
    slice::SliceRepository repo_;
    std::uint64_t dynamicStores_ = 0;
    std::uint64_t sliceableStores_ = 0;
};

} // namespace

SlicePassResult
SlicePass::run(const isa::Program &program,
               const sim::MachineConfig &machine,
               const slice::SlicePolicyConfig &policy)
{
    sim::MulticoreSystem system(machine, program);
    slice::SliceEngine slicer(machine.numCores);
    PassObserver observer(slicer, policy, program.size());
    system.runToCompletionWith(&observer);

    SlicePassResult result;
    result.program = program;
    for (auto &inst : result.program.code()) {
        if (isa::isStore(inst.op)) {
            ++result.staticStores;
            if (observer.hinted(static_cast<std::size_t>(
                    &inst - result.program.code().data())))
            {
                inst.sliceHint = true;
                ++result.hintedStores;
            }
        }
    }

    result.uniqueSlices = observer.repo().uniqueSlices();
    result.sliceInstrs = observer.repo().totalInstrs();
    result.binaryGrowthPct =
        100.0 * static_cast<double>(result.sliceInstrs) /
        static_cast<double>(program.size());
    result.dynamicStores = observer.dynamicStores();
    result.sliceableStores = observer.sliceableStores();
    result.totalProgress = system.progress();
    result.cycles = system.maxCycle();
    result.finalImage = system.memory().image();
    system.exportStats(result.stats);
    return result;
}

} // namespace acr::amnesic
