/**
 * @file
 * AddrMap (Sec. III-A): the bounded on-chip buffer recording
 * <memory address, Slice> associations written by ASSOC-ADDR
 * instructions. An entry says "the current value at this address was
 * produced by this Slice instance and can therefore be recomputed".
 * Entries are tagged with the interval that created them and expire once
 * they fall outside the two-most-recent-checkpoints retention window;
 * entries referenced by retained undo logs survive through shared
 * ownership of the SliceInstance.
 *
 * Storage is a flat open-addressing table (DESIGN.md §13): linear
 * probing over a power-of-two slot array kept at most half full, with
 * backward-shift deletion instead of tombstones. Every ASSOC-ADDR and
 * every store-overwrite touches this structure, so the lookup is one
 * multiply-hash plus a short contiguous probe.
 */

#ifndef ACR_ACR_ADDR_MAP_HH
#define ACR_ACR_ADDR_MAP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "slice/instance.hh"

namespace acr::amnesic
{

/** Bounded map: word address -> producing slice instance. */
class AddrMap
{
  public:
    explicit AddrMap(std::size_t capacity);

    /**
     * Record that @p addr's current value is producible by @p instance
     * (tagged with @p interval). Replaces any existing entry for the
     * address; fails (returns false) when the map is full and the
     * address is new.
     */
    bool insert(Addr addr, std::shared_ptr<slice::SliceInstance> instance,
                std::uint64_t interval);

    /** Instance producing the current value at @p addr, or null. */
    std::shared_ptr<slice::SliceInstance> lookup(Addr addr) const;

    /** Drop the entry for @p addr (a non-recomputable store overwrote
     *  the value). */
    void erase(Addr addr);

    /** Drop every entry created before @p min_interval (retention). */
    void expireOlderThan(std::uint64_t min_interval);

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    std::uint64_t overflows() const { return overflows_; }
    std::size_t peakSize() const { return peak_; }

    /** Visit every live entry as (addr, instance, interval) — used by
     *  the prefix-sharing snapshot to serialize the table. */
    template <class Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &slot : slots_) {
            if (slot.used)
                fn(slot.addr, slot.instance, slot.interval);
        }
    }

    /** Restore the counters a rebuilt table cannot re-derive. */
    void
    restoreCounters(std::uint64_t overflows, std::size_t peak)
    {
        overflows_ = overflows;
        peak_ = peak;
    }

  private:
    struct Slot
    {
        Addr addr = 0;
        std::shared_ptr<slice::SliceInstance> instance;
        std::uint64_t interval = 0;
        bool used = false;
    };

    static constexpr std::size_t kNoSlot = ~std::size_t{0};

    /** Fibonacci multiply-hash into the table's index range. */
    std::size_t
    homeOf(Addr addr) const
    {
        return static_cast<std::size_t>(
                   (addr * 0x9E3779B97F4A7C15ull) >> shift_) &
               mask_;
    }

    /** Slot holding @p addr, or kNoSlot. */
    std::size_t findSlot(Addr addr) const;

    /** Backward-shift removal of slot @p hole. */
    void removeSlot(std::size_t hole);

    std::size_t capacity_;
    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    unsigned shift_ = 0;
    std::size_t size_ = 0;
    std::uint64_t overflows_ = 0;
    std::size_t peak_ = 0;
};

} // namespace acr::amnesic

#endif // ACR_ACR_ADDR_MAP_HH
