/**
 * @file
 * Function: the statement layer of the kernel frontend. Sequences
 * stores, variable updates, counted loops and barriers, compiling
 * expression trees to the ISA with a simple temp-register allocator and
 * register-immediate folding. build() returns a validated Program.
 *
 * Example:
 *
 *   Function f("poly");
 *   Var base = f.var(Expr(1 << 20) + (f.tid() << 12));
 *   f.forRange(0, 64, [&](Expr i) {
 *       f.store(base.read() + i, i * 3 + f.tid());
 *   });
 *   f.barrier();
 *   isa::Program p = f.build();
 */

#ifndef ACR_FRONTEND_FUNCTION_HH
#define ACR_FRONTEND_FUNCTION_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "frontend/expr.hh"
#include "isa/builder.hh"

namespace acr::frontend
{

/** A named mutable variable pinned to a register for its lifetime. */
struct VarImpl
{
    isa::Reg reg = 0;
    bool live = true;
};

class Var
{
  public:
    explicit Var(VarImpl *impl) : impl_(impl) {}

    /** Read the current value as an expression. */
    Expr
    read() const
    {
        auto node = std::make_shared<ExprNode>();
        node->kind = ExprNode::Kind::kReadVar;
        node->var = impl_;
        return Expr(std::move(node));
    }

    VarImpl *impl() const { return impl_; }

  private:
    VarImpl *impl_;
};

/** Kernel function under construction. */
class Function
{
  public:
    explicit Function(std::string name);

    // --- Expressions ---
    Expr tid();
    Expr constant(SWord value) { return Expr(value); }
    Expr load(const Expr &addr);

    // --- Statements ---
    /** Declare a variable initialized to @p init. */
    Var var(const Expr &init);

    /** Assign @p value to @p target. */
    void assign(const Var &target, const Expr &value);

    /** M[addr] = value. */
    void store(const Expr &addr, const Expr &value);

    /** for (i = begin; i < end; ++i) body(i)   — unsigned compare. */
    void forRange(SWord begin, SWord end,
                  const std::function<void(Expr)> &body);

    /** Execute body only when cond != 0. */
    void ifNonZero(const Expr &cond, const std::function<void()> &body);

    /** Rendezvous of all threads. */
    void barrier();

    /** Initialize M[addr] = value before execution. */
    void data(Addr addr, Word value);

    /** Finish with halt, validate, and return the program. */
    isa::Program build();

    /** Registers currently available for temporaries/vars. */
    unsigned freeRegs() const;

  private:
    /** A compiled expression: the register holding it, and whether the
     *  compiler owns (and must free) that register. */
    struct Operand
    {
        isa::Reg reg = 0;
        bool owned = false;
    };

    isa::Reg allocReg();
    void freeReg(isa::Reg reg);
    void release(const Operand &operand);

    /** Compile @p expr into a register. */
    Operand eval(const ExprNode &expr);

    /** Compile @p expr into the specific register @p target. */
    void evalInto(const ExprNode &expr, isa::Reg target);

    /** Immediate-folding: register-register opcode -> imm form. */
    static bool immFormOf(isa::Opcode op, isa::Opcode &out);

    isa::ProgramBuilder builder_;
    std::string name_;
    std::deque<VarImpl> vars_;
    std::vector<bool> regUsed_;
    unsigned labelCounter_ = 0;
    bool built_ = false;
};

} // namespace acr::frontend

#endif // ACR_FRONTEND_FUNCTION_HH
