#include "frontend/function.hh"

#include "common/logging.hh"

namespace acr::frontend
{

using isa::Opcode;

Function::Function(std::string name)
    : builder_(name), name_(std::move(name))
{
    // r0 is hardwired zero and never allocatable.
    regUsed_.assign(isa::kNumRegs, false);
    regUsed_[0] = true;
}

isa::Reg
Function::allocReg()
{
    for (unsigned r = 1; r < isa::kNumRegs; ++r) {
        if (!regUsed_[r]) {
            regUsed_[r] = true;
            return static_cast<isa::Reg>(r);
        }
    }
    fatal("frontend: out of registers in function '%s' (expression too "
          "deep or too many live variables)",
          name_.c_str());
}

void
Function::freeReg(isa::Reg reg)
{
    ACR_ASSERT(reg != 0 && regUsed_[reg], "double free of r%u", reg);
    regUsed_[reg] = false;
}

void
Function::release(const Operand &operand)
{
    if (operand.owned)
        freeReg(operand.reg);
}

unsigned
Function::freeRegs() const
{
    unsigned n = 0;
    for (unsigned r = 1; r < isa::kNumRegs; ++r)
        n += regUsed_[r] ? 0 : 1;
    return n;
}

bool
Function::immFormOf(Opcode op, Opcode &out)
{
    switch (op) {
      case Opcode::kAdd: out = Opcode::kAddi; return true;
      case Opcode::kMul: out = Opcode::kMuli; return true;
      case Opcode::kAnd: out = Opcode::kAndi; return true;
      case Opcode::kOr: out = Opcode::kOri; return true;
      case Opcode::kXor: out = Opcode::kXori; return true;
      case Opcode::kShl: out = Opcode::kShli; return true;
      case Opcode::kShr: out = Opcode::kShri; return true;
      default: return false;
    }
}

void
Function::evalInto(const ExprNode &expr, isa::Reg target)
{
    switch (expr.kind) {
      case ExprNode::Kind::kConst:
        builder_.movi(target, expr.imm);
        return;
      case ExprNode::Kind::kTid:
        builder_.tid(target);
        return;
      case ExprNode::Kind::kReadVar:
        ACR_ASSERT(expr.var && expr.var->live,
                   "read of a dead or null variable");
        builder_.mov(target, expr.var->reg);
        return;
      case ExprNode::Kind::kLoad: {
        Operand addr = eval(*expr.lhs);
        builder_.load(target, addr.reg);
        release(addr);
        return;
      }
      case ExprNode::Kind::kBinary: {
        // Fold a constant rhs into the immediate form when one exists.
        Opcode imm_op;
        if (expr.rhs->kind == ExprNode::Kind::kConst &&
            immFormOf(expr.op, imm_op)) {
            Operand lhs = eval(*expr.lhs);
            switch (imm_op) {
              case Opcode::kAddi:
                builder_.addi(target, lhs.reg, expr.rhs->imm);
                break;
              case Opcode::kMuli:
                builder_.muli(target, lhs.reg, expr.rhs->imm);
                break;
              case Opcode::kAndi:
                builder_.andi(target, lhs.reg, expr.rhs->imm);
                break;
              case Opcode::kOri:
                builder_.ori(target, lhs.reg, expr.rhs->imm);
                break;
              case Opcode::kXori:
                builder_.xori(target, lhs.reg, expr.rhs->imm);
                break;
              case Opcode::kShli:
                builder_.shli(target, lhs.reg, expr.rhs->imm);
                break;
              case Opcode::kShri:
                builder_.shri(target, lhs.reg, expr.rhs->imm);
                break;
              default:
                panic("unexpected immediate opcode");
            }
            release(lhs);
            return;
        }
        Operand lhs = eval(*expr.lhs);
        Operand rhs = eval(*expr.rhs);
        switch (expr.op) {
          case Opcode::kAdd: builder_.add(target, lhs.reg, rhs.reg); break;
          case Opcode::kSub: builder_.sub(target, lhs.reg, rhs.reg); break;
          case Opcode::kMul: builder_.mul(target, lhs.reg, rhs.reg); break;
          case Opcode::kDivu:
            builder_.divu(target, lhs.reg, rhs.reg);
            break;
          case Opcode::kRemu:
            builder_.remu(target, lhs.reg, rhs.reg);
            break;
          case Opcode::kAnd:
            builder_.and_(target, lhs.reg, rhs.reg);
            break;
          case Opcode::kOr: builder_.or_(target, lhs.reg, rhs.reg); break;
          case Opcode::kXor:
            builder_.xor_(target, lhs.reg, rhs.reg);
            break;
          case Opcode::kShl: builder_.shl(target, lhs.reg, rhs.reg); break;
          case Opcode::kShr: builder_.shr(target, lhs.reg, rhs.reg); break;
          case Opcode::kSra: builder_.sra(target, lhs.reg, rhs.reg); break;
          case Opcode::kMin: builder_.min(target, lhs.reg, rhs.reg); break;
          case Opcode::kMax: builder_.max(target, lhs.reg, rhs.reg); break;
          case Opcode::kCmpEq:
            builder_.cmpeq(target, lhs.reg, rhs.reg);
            break;
          case Opcode::kCmpLtu:
            builder_.cmpltu(target, lhs.reg, rhs.reg);
            break;
          case Opcode::kCmpLts:
            builder_.cmplts(target, lhs.reg, rhs.reg);
            break;
          default:
            panic("frontend: unsupported binary opcode");
        }
        release(lhs);
        release(rhs);
        return;
      }
    }
    panic("frontend: unhandled expression kind");
}

Function::Operand
Function::eval(const ExprNode &expr)
{
    // Variable reads alias the variable's register (no copy, not owned).
    if (expr.kind == ExprNode::Kind::kReadVar) {
        ACR_ASSERT(expr.var && expr.var->live,
                   "read of a dead or null variable");
        return {expr.var->reg, false};
    }
    isa::Reg reg = allocReg();
    evalInto(expr, reg);
    return {reg, true};
}

Expr
Function::tid()
{
    auto node = std::make_shared<ExprNode>();
    node->kind = ExprNode::Kind::kTid;
    return Expr(std::move(node));
}

Expr
Function::load(const Expr &addr)
{
    auto node = std::make_shared<ExprNode>();
    node->kind = ExprNode::Kind::kLoad;
    node->lhs = addr.node();
    return Expr(std::move(node));
}

Var
Function::var(const Expr &init)
{
    isa::Reg reg = allocReg();
    evalInto(*init.node(), reg);
    vars_.push_back(VarImpl{reg, true});
    return Var(&vars_.back());
}

void
Function::assign(const Var &target, const Expr &value)
{
    ACR_ASSERT(target.impl()->live, "assignment to a dead variable");
    evalInto(*value.node(), target.impl()->reg);
}

void
Function::store(const Expr &addr, const Expr &value)
{
    Operand a = eval(*addr.node());
    Operand v = eval(*value.node());
    builder_.store(a.reg, v.reg);
    release(a);
    release(v);
}

void
Function::forRange(SWord begin, SWord end,
                   const std::function<void(Expr)> &body)
{
    ACR_ASSERT(begin <= end, "forRange with begin > end");
    Var i = var(Expr(begin));
    Var limit = var(Expr(end));
    std::string label = csprintf("for_%u", labelCounter_++);
    std::string skip = label + "_end";
    builder_.label(label);
    builder_.bgeu(i.impl()->reg, limit.impl()->reg, skip);
    body(i.read());
    builder_.addi(i.impl()->reg, i.impl()->reg, 1);
    builder_.jmp(label);
    builder_.label(skip);
    // Scope ends: both registers return to the pool.
    i.impl()->live = false;
    limit.impl()->live = false;
    freeReg(i.impl()->reg);
    freeReg(limit.impl()->reg);
}

void
Function::ifNonZero(const Expr &cond, const std::function<void()> &body)
{
    Operand c = eval(*cond.node());
    std::string skip = csprintf("if_%u_end", labelCounter_++);
    builder_.beq(c.reg, 0, skip);
    release(c);
    body();
    builder_.label(skip);
}

void
Function::barrier()
{
    builder_.barrier();
}

void
Function::data(Addr addr, Word value)
{
    builder_.data(addr, value);
}

isa::Program
Function::build()
{
    ACR_ASSERT(!built_, "Function::build called twice");
    built_ = true;
    builder_.halt();
    return builder_.build();
}

} // namespace acr::frontend
