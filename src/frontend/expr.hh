/**
 * @file
 * Expression trees for the kernel frontend: a small, typed layer above
 * the raw ISA. Expressions are side-effect-free values (constants, the
 * thread id, variable reads, loads, arithmetic); Function (function.hh)
 * sequences statements and compiles expressions to registers.
 */

#ifndef ACR_FRONTEND_EXPR_HH
#define ACR_FRONTEND_EXPR_HH

#include <memory>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace acr::frontend
{

class Function;
struct VarImpl;

/** Internal expression node. */
struct ExprNode
{
    enum class Kind
    {
        kConst,
        kTid,
        kReadVar,
        kLoad,
        kBinary,
    };

    Kind kind = Kind::kConst;
    SWord imm = 0;                      ///< kConst
    const VarImpl *var = nullptr;       ///< kReadVar
    isa::Opcode op = isa::Opcode::kAdd; ///< kBinary (register-register)
    std::shared_ptr<ExprNode> lhs;      ///< kBinary / kLoad address
    std::shared_ptr<ExprNode> rhs;      ///< kBinary
};

/** A value expression (cheap to copy; immutable). */
class Expr
{
  public:
    Expr() : node_(std::make_shared<ExprNode>()) {}

    explicit Expr(std::shared_ptr<ExprNode> node)
        : node_(std::move(node))
    {
    }

    /** Implicit constant conversion: Expr e = x + 3. */
    Expr(SWord value) : Expr()
    {
        node_->kind = ExprNode::Kind::kConst;
        node_->imm = value;
    }

    const std::shared_ptr<ExprNode> &node() const { return node_; }

    static Expr
    binary(isa::Opcode op, const Expr &lhs, const Expr &rhs)
    {
        auto node = std::make_shared<ExprNode>();
        node->kind = ExprNode::Kind::kBinary;
        node->op = op;
        node->lhs = lhs.node();
        node->rhs = rhs.node();
        return Expr(std::move(node));
    }

  private:
    std::shared_ptr<ExprNode> node_;
};

inline Expr
operator+(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kAdd, a, b);
}

inline Expr
operator-(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kSub, a, b);
}

inline Expr
operator*(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kMul, a, b);
}

inline Expr
operator/(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kDivu, a, b);
}

inline Expr
operator%(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kRemu, a, b);
}

inline Expr
operator&(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kAnd, a, b);
}

inline Expr
operator|(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kOr, a, b);
}

inline Expr
operator^(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kXor, a, b);
}

inline Expr
operator<<(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kShl, a, b);
}

inline Expr
operator>>(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kShr, a, b);
}

/** Unsigned minimum / maximum / comparisons. */
inline Expr
min(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kMin, a, b);
}

inline Expr
max(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kMax, a, b);
}

inline Expr
eq(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kCmpEq, a, b);
}

inline Expr
ltu(const Expr &a, const Expr &b)
{
    return Expr::binary(isa::Opcode::kCmpLtu, a, b);
}

} // namespace acr::frontend

#endif // ACR_FRONTEND_EXPR_HH
