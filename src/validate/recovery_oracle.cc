#include "validate/recovery_oracle.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acr::validate
{

namespace
{

bool
inMask(std::uint64_t mask, CoreId core)
{
    return (mask >> core) & 1;
}

/**
 * Compare two sparse images with absent-means-zero semantics (an
 * allocated-but-zero page and an absent page are the same memory).
 * @return false and the first difference when they disagree.
 */
bool
imagesEqual(const std::map<Addr, Word> &expected,
            const std::map<Addr, Word> &actual, Addr *addr,
            Word *expected_word, Word *actual_word)
{
    auto e = expected.begin();
    auto a = actual.begin();
    while (e != expected.end() || a != actual.end()) {
        Addr next;
        if (e == expected.end())
            next = a->first;
        else if (a == actual.end())
            next = e->first;
        else
            next = std::min(e->first, a->first);

        Word want = (e != expected.end() && e->first == next) ? e->second
                                                              : 0;
        Word have = (a != actual.end() && a->first == next) ? a->second
                                                            : 0;
        if (want != have) {
            *addr = next;
            *expected_word = want;
            *actual_word = have;
            return false;
        }
        if (e != expected.end() && e->first == next)
            ++e;
        if (a != actual.end() && a->first == next)
            ++a;
    }
    return true;
}

/** First field of two ArchStates that differs, for diagnostics. */
std::string
archDifference(const cpu::ArchState &expected, const cpu::ArchState &actual)
{
    if (expected.pc != actual.pc)
        return csprintf("pc %zu != %zu", expected.pc, actual.pc);
    if (expected.instrsRetired != actual.instrsRetired)
        return csprintf("instrsRetired %llu != %llu",
                        static_cast<unsigned long long>(
                            expected.instrsRetired),
                        static_cast<unsigned long long>(
                            actual.instrsRetired));
    if (expected.barrierEpoch != actual.barrierEpoch)
        return csprintf("barrierEpoch %llu != %llu",
                        static_cast<unsigned long long>(
                            expected.barrierEpoch),
                        static_cast<unsigned long long>(
                            actual.barrierEpoch));
    if (expected.state != actual.state)
        return csprintf("state %d != %d", static_cast<int>(expected.state),
                        static_cast<int>(actual.state));
    for (unsigned r = 0; r < isa::kNumRegs; ++r) {
        if (expected.regs[r] != actual.regs[r])
            return csprintf("r%u %llu != %llu", r,
                            static_cast<unsigned long long>(
                                expected.regs[r]),
                            static_cast<unsigned long long>(
                                actual.regs[r]));
    }
    return "identical";
}

bool
isRetained(const ckpt::CheckpointManager &manager, std::uint64_t index)
{
    for (const ckpt::Checkpoint &ckpt : manager.retained()) {
        if (ckpt.index == index)
            return true;
    }
    return false;
}

} // namespace

const char *
divergenceKindName(DivergenceKind kind)
{
    switch (kind) {
    case DivergenceKind::kRecompute: return "recompute";
    case DivergenceKind::kMemoryWord: return "memory-word";
    case DivergenceKind::kArchState: return "arch-state";
    case DivergenceKind::kLogIndex: return "log-index";
    case DivergenceKind::kRetention: return "retention";
    case DivergenceKind::kValidFor: return "valid-for";
    case DivergenceKind::kPinning: return "pinning";
    case DivergenceKind::kGoldenState: return "golden-state";
    case DivergenceKind::kFinalImage: return "final-image";
    case DivergenceKind::kEscalation: return "escalation";
    }
    return "unknown";
}

std::string
Divergence::describe() const
{
    std::string out = csprintf("[oracle] %s", divergenceKindName(kind));
    if (recovery != 0)
        out += csprintf(" recovery=%llu",
                        static_cast<unsigned long long>(recovery));
    out += csprintf(" ckpt=%llu",
                    static_cast<unsigned long long>(ckptIndex));
    if (interval != 0)
        out += csprintf(" interval=%llu",
                        static_cast<unsigned long long>(interval));
    if (addr != kInvalidAddr)
        out += csprintf(" addr=%llu expected=%llu actual=%llu",
                        static_cast<unsigned long long>(addr),
                        static_cast<unsigned long long>(expected),
                        static_cast<unsigned long long>(actual));
    if (core != kInvalidCore)
        out += csprintf(" core=%u", core);
    if (writer != kInvalidCore)
        out += csprintf(" writer=%u", writer);
    if (sliceId != slice::kInvalidSlice)
        out += csprintf(" slice=%u", sliceId);
    if (!detail.empty())
        out += ": " + detail;
    return out;
}

RecoveryOracle::RecoveryOracle(sim::MulticoreSystem &system,
                               const sim::MachineConfig &machine,
                               ckpt::Coordination coordination,
                               StatSet &stats)
    : system_(system), machine_(machine), program_(system.program()),
      coordination_(coordination), stats_(stats)
{
}

void
RecoveryOracle::addDivergence(Divergence divergence)
{
    stats_.add("oracle.divergences");
    if (divergences_.size() < kMaxDivergences)
        divergences_.push_back(std::move(divergence));
}

RecoveryOracle::Snapshot
RecoveryOracle::captureSnapshot(const ckpt::Checkpoint &ckpt) const
{
    Snapshot snap;
    snap.index = ckpt.index;
    snap.progressAt = ckpt.progressAt;
    snap.establishedAt = ckpt.establishedAt;
    // Architectural state is captured from the cores themselves, not
    // from the manager's checkpoint — the comparison after a rollback
    // is then independent of what the manager stored.
    for (CoreId c = 0; c < system_.numCores(); ++c)
        snap.arch.push_back(system_.core(c).saveArch());
    snap.image = system_.memory().image();
    for (const ckpt::LogRecord &record : ckpt.log.records()) {
        if (!record.isAmnesic())
            continue;
        Pin pin;
        pin.addr = record.addr;
        pin.writer = record.writer;
        pin.sliceId = record.amnesic->slice();
        pin.instance = record.amnesic;
        snap.pins.push_back(std::move(pin));
    }
    return snap;
}

void
RecoveryOracle::auditLogs(const ckpt::CheckpointManager &manager)
{
    auto check = [&](const ckpt::IntervalLog &log,
                     std::uint64_t ckpt_index) {
        std::string why = log.auditIndex();
        if (why.empty())
            return;
        Divergence d;
        d.kind = DivergenceKind::kLogIndex;
        d.recovery = recoveriesChecked_;
        d.ckptIndex = ckpt_index;
        d.interval = log.interval();
        d.detail = why;
        addDivergence(std::move(d));
    };
    check(manager.openLog(), manager.retained().empty()
                                 ? 0
                                 : manager.retained().back().index);
    for (const ckpt::Checkpoint &ckpt : manager.retained())
        check(ckpt.log, ckpt.index);
}

bool
RecoveryOracle::goldenMatchesSystem(std::string *why) const
{
    for (CoreId c = 0; c < system_.numCores(); ++c) {
        cpu::ArchState want = golden_->core(c).saveArch();
        cpu::ArchState have = system_.core(c).saveArch();
        if (!(want == have)) {
            *why = csprintf("core %u: %s", c,
                            archDifference(want, have).c_str());
            return false;
        }
    }
    Addr addr;
    Word want, have;
    if (!imagesEqual(golden_->memory().image(), system_.memory().image(),
                     &addr, &want, &have)) {
        *why = csprintf("memory addr %llu: golden %llu != actual %llu",
                        static_cast<unsigned long long>(addr),
                        static_cast<unsigned long long>(want),
                        static_cast<unsigned long long>(have));
        return false;
    }
    return true;
}

bool
RecoveryOracle::compareAgainstGolden(std::uint64_t target)
{
    // Progress rewinds on rollback; the golden replay only steps
    // forward, so a rewound target means replaying from scratch.
    if (!golden_ || golden_->progress() > target)
        golden_ = std::make_unique<sim::MulticoreSystem>(machine_,
                                                         program_);

    auto fail = [&](const std::string &why) {
        Divergence d;
        d.kind = DivergenceKind::kGoldenState;
        d.recovery = recoveriesChecked_;
        d.detail = why;
        addDivergence(std::move(d));
        return false;
    };

    while (golden_->progress() < target) {
        sim::SystemState state = golden_->step();
        if (state != sim::SystemState::kRunning &&
            golden_->progress() < target) {
            return fail(csprintf(
                "golden replay stopped at progress %llu before "
                "reaching %llu",
                static_cast<unsigned long long>(golden_->progress()),
                static_cast<unsigned long long>(target)));
        }
    }
    if (golden_->progress() > target) {
        return fail(csprintf(
            "golden replay overshot to progress %llu (target %llu): "
            "step boundaries diverged",
            static_cast<unsigned long long>(golden_->progress()),
            static_cast<unsigned long long>(target)));
    }

    // A barrier release retires no instructions, so several successive
    // step boundaries can share one progress value; walk the golden
    // replay through them before declaring a mismatch.
    std::string why;
    unsigned extra = 0;
    while (!goldenMatchesSystem(&why)) {
        if (golden_->allHalted() || extra++ > system_.numCores() + 2)
            return fail(why);
        golden_->step();
        if (golden_->progress() != target)
            return fail(why);
        why.clear();
    }
    stats_.add("oracle.goldenCompares");
    return true;
}

void
RecoveryOracle::onInitialCheckpoint(const ckpt::CheckpointManager &manager)
{
    ACR_ASSERT(!manager.retained().empty(),
               "oracle attached before initialCheckpoint");
    Snapshot snap = captureSnapshot(manager.retained().front());
    snap.onGoldenPath = true;
    snapshots_[snap.index] = std::move(snap);
}

void
RecoveryOracle::onEstablish(const ckpt::CheckpointManager &manager,
                            unsigned latent_errors)
{
    ACR_ASSERT(!manager.retained().empty(), "establish retained nothing");
    stats_.add("oracle.establishmentsChecked");

    const ckpt::Checkpoint &ckpt = manager.retained().back();
    Snapshot snap = captureSnapshot(ckpt);

    // Fig. 2's hazard: a checkpoint established while a corruption is
    // latent holds corrupted state — it is off the fault-free path, as
    // is everything downstream of restoring an off-path checkpoint.
    snap.onGoldenPath = lastRestoredOnPath_ && latent_errors == 0;
    if (snap.onGoldenPath &&
        !compareAgainstGolden(ckpt.progressAt))
        snap.onGoldenPath = false;

    if (manager.retained().size() > 2) {
        Divergence d;
        d.kind = DivergenceKind::kRetention;
        d.ckptIndex = ckpt.index;
        d.detail = csprintf("%zu checkpoints retained (limit 2)",
                            manager.retained().size());
        addDivergence(std::move(d));
    }
    auditLogs(manager);

    snapshots_[snap.index] = std::move(snap);
    for (auto it = snapshots_.begin(); it != snapshots_.end();) {
        if (isRetained(manager, it->first))
            ++it;
        else
            it = snapshots_.erase(it);
    }
}

void
RecoveryOracle::beforeRecovery(const ckpt::CheckpointManager &manager)
{
    capturedLogs_.clear();
    auto capture = [&](const ckpt::IntervalLog &log) {
        CapturedLog captured;
        captured.interval = log.interval();
        for (const ckpt::LogRecord &record : log.records()) {
            CapturedRecord r;
            r.addr = record.addr;
            r.oldValue = record.oldValue;
            r.writer = record.writer;
            r.amnesic = record.isAmnesic();
            if (record.isAmnesic())
                r.sliceId = record.amnesic->slice();
            captured.records.push_back(r);
        }
        capturedLogs_.push_back(std::move(captured));
    };
    // Same order recovery applies them: open log, then retained
    // newest -> oldest.
    capture(manager.openLog());
    for (auto it = manager.retained().rbegin();
         it != manager.retained().rend(); ++it)
        capture(it->log);
    preImage_ = system_.memory().image();
    captureValid_ = true;
}

void
RecoveryOracle::afterRecovery(const ckpt::CheckpointManager &manager,
                              const ckpt::RecoveryOutcome &outcome)
{
    ++recoveriesChecked_;
    stats_.add("oracle.recoveriesChecked");
    const cache::SharerMask affected = outcome.affected;

    if (outcome.unrecoverable) {
        // The ladder was exhausted: there is no restored state to
        // validate, but the verdict itself must be consistent — a
        // recovery may only be declared unrecoverable after the
        // integrity layer actually detected damage (a corrupt stored
        // read, or a torn establishment refused at target selection).
        stats_.add("oracle.unrecoverableChecked");
        if (stats_.get("ckpt.corruptReads") == 0 &&
            stats_.get("ckpt.tornRefusals") == 0) {
            Divergence d;
            d.kind = DivergenceKind::kEscalation;
            d.recovery = recoveriesChecked_;
            d.detail = "unrecoverable outcome without any detected "
                       "corrupt read or torn establishment";
            addDivergence(std::move(d));
        }
        captureValid_ = false;
        lastRestoredOnPath_ = false;
        return;
    }

    if (outcome.replicaSwitches > 0 || outcome.retargets > 0) {
        // An escalated recovery gets the full differential validation
        // below (the log-derived memory expectation and arch snapshots
        // are target-relative, so the bit-exactness check holds for
        // whichever rung finally served) plus rung-consistency checks.
        stats_.add("oracle.escalatedChecked");
        if (manager.store().tornEstablishment(outcome.targetIndex)) {
            Divergence d;
            d.kind = DivergenceKind::kEscalation;
            d.recovery = recoveriesChecked_;
            d.ckptIndex = outcome.targetIndex;
            d.detail = "rollback committed to a checkpoint whose "
                       "establishment tore";
            addDivergence(std::move(d));
        }
        if (outcome.replicaSwitches > 0 &&
            manager.store().backend() != ckpt::Backend::kReplicated) {
            Divergence d;
            d.kind = DivergenceKind::kEscalation;
            d.recovery = recoveriesChecked_;
            d.ckptIndex = outcome.targetIndex;
            d.detail = csprintf(
                "%u replica switch(es) on single-copy backend %s",
                outcome.replicaSwitches, manager.store().name());
            addDivergence(std::move(d));
        }
    }

    const Snapshot *snap = nullptr;
    auto found = snapshots_.find(outcome.targetIndex);
    if (found != snapshots_.end()) {
        snap = &found->second;
    } else {
        Divergence d;
        d.kind = DivergenceKind::kRetention;
        d.recovery = recoveriesChecked_;
        d.ckptIndex = outcome.targetIndex;
        d.detail = "rolled back to a checkpoint the oracle never saw "
                   "retained";
        addDivergence(std::move(d));
    }
    if (!isRetained(manager, outcome.targetIndex)) {
        Divergence d;
        d.kind = DivergenceKind::kRetention;
        d.recovery = recoveriesChecked_;
        d.ckptIndex = outcome.targetIndex;
        d.detail = "rollback target no longer retained";
        addDivergence(std::move(d));
    }

    // --- Memory: every word either keeps its pre-recovery value or is
    // restored to the oldest applied undo record's old value. ---
    if (captureValid_) {
        std::map<Addr, Word> expected = preImage_;
        struct Origin
        {
            std::uint64_t interval;
            CapturedRecord record;
        };
        std::map<Addr, Origin> origin;
        for (const CapturedLog &log : capturedLogs_) {
            if (log.interval <= outcome.targetIndex)
                continue;
            for (const CapturedRecord &record : log.records) {
                if (!inMask(affected, record.writer))
                    continue;
                // Later captures are older intervals; the last
                // assignment wins, matching recovery's apply order.
                expected[record.addr] = record.oldValue;
                origin[record.addr] = Origin{log.interval, record};
            }
        }

        std::map<Addr, Word> actual = system_.memory().image();
        unsigned reported = 0;
        std::map<Addr, Word> scan = expected;
        for (const auto &[addr, value] : actual) {
            if (scan.find(addr) == scan.end())
                scan[addr] = 0;  // present only in actual
        }
        for (const auto &[addr, unused] : scan) {
            Word want = 0, have = 0;
            auto e = expected.find(addr);
            if (e != expected.end())
                want = e->second;
            auto a = actual.find(addr);
            if (a != actual.end())
                have = a->second;
            if (want == have)
                continue;
            if (reported++ >= 4)
                break;
            Divergence d;
            d.kind = DivergenceKind::kMemoryWord;
            d.recovery = recoveriesChecked_;
            d.ckptIndex = outcome.targetIndex;
            d.addr = addr;
            d.expected = want;
            d.actual = have;
            auto o = origin.find(addr);
            if (o != origin.end()) {
                d.interval = o->second.interval;
                d.writer = o->second.record.writer;
                d.sliceId = o->second.record.sliceId;
                d.detail = o->second.record.amnesic
                               ? "restored by amnesic record"
                               : "restored by stored record";
            } else {
                d.detail = "word outside the rollback's undo set "
                           "changed";
            }
            addDivergence(std::move(d));
        }
    }
    captureValid_ = false;

    // --- Architectural state of every rolled-back core. ---
    if (snap != nullptr) {
        for (CoreId c = 0; c < system_.numCores(); ++c) {
            if (!inMask(affected, c))
                continue;
            cpu::ArchState want = snap->arch[c];
            cpu::ArchState have = system_.core(c).saveArch();
            if (want == have)
                continue;
            Divergence d;
            d.kind = DivergenceKind::kArchState;
            d.recovery = recoveriesChecked_;
            d.ckptIndex = outcome.targetIndex;
            d.core = c;
            d.expected = want.pc;
            d.actual = have.pc;
            d.detail = archDifference(want, have);
            addDivergence(std::move(d));
        }
    }

    // --- validFor masks and writer purging on newer checkpoints. ---
    for (const ckpt::Checkpoint &ckpt : manager.retained()) {
        if (ckpt.index <= outcome.targetIndex)
            continue;
        if ((ckpt.validFor & affected) != 0) {
            Divergence d;
            d.kind = DivergenceKind::kValidFor;
            d.recovery = recoveriesChecked_;
            d.ckptIndex = ckpt.index;
            d.detail = csprintf(
                "checkpoint newer than the rollback target still "
                "valid for mask %llx of rolled-back cores",
                static_cast<unsigned long long>(ckpt.validFor &
                                                affected));
            addDivergence(std::move(d));
        }
        for (const ckpt::LogRecord &record : ckpt.log.records()) {
            if (!inMask(affected, record.writer))
                continue;
            Divergence d;
            d.kind = DivergenceKind::kLogIndex;
            d.recovery = recoveriesChecked_;
            d.ckptIndex = ckpt.index;
            d.interval = ckpt.log.interval();
            d.addr = record.addr;
            d.writer = record.writer;
            d.detail = "undone writer's record survived in a newer "
                       "checkpoint log";
            addDivergence(std::move(d));
            break;
        }
    }
    for (const ckpt::LogRecord &record : manager.openLog().records()) {
        if (!inMask(affected, record.writer))
            continue;
        Divergence d;
        d.kind = DivergenceKind::kLogIndex;
        d.recovery = recoveriesChecked_;
        d.interval = manager.openLog().interval();
        d.addr = record.addr;
        d.writer = record.writer;
        d.detail = "undone writer's record survived in the open log";
        addDivergence(std::move(d));
        break;
    }

    auditLogs(manager);

    // --- Pinning: slice instances of still-live records must be
    // alive; records removed for rolled-back writers are exempt. ---
    for (auto &[index, s] : snapshots_) {
        if (index > outcome.targetIndex)
            s.removedWriters |= affected;
    }
    for (const auto &[index, s] : snapshots_) {
        if (!isRetained(manager, index))
            continue;
        for (const Pin &pin : s.pins) {
            if (inMask(s.removedWriters, pin.writer))
                continue;
            if (!pin.instance.expired())
                continue;
            Divergence d;
            d.kind = DivergenceKind::kPinning;
            d.recovery = recoveriesChecked_;
            d.ckptIndex = index;
            d.addr = pin.addr;
            d.writer = pin.writer;
            d.sliceId = pin.sliceId;
            d.detail = "pinned slice instance died while its "
                       "checkpoint log is retained";
            addDivergence(std::move(d));
        }
    }

    // A partial (group-local) rollback leaves the survivors ahead of
    // the restored cores; the machine is then permanently off any
    // single golden-replay point.
    lastRestoredOnPath_ = snap != nullptr && snap->onGoldenPath &&
                          affected == system_.allCoresMask();
}

void
RecoveryOracle::onFinalImage(const std::map<Addr, Word> &expected)
{
    Addr addr;
    Word want, have;
    if (imagesEqual(expected, system_.memory().image(), &addr, &want,
                    &have))
        return;
    Divergence d;
    d.kind = DivergenceKind::kFinalImage;
    d.addr = addr;
    d.expected = want;
    d.actual = have;
    d.detail = "final memory image diverged from the error-free "
               "reference";
    addDivergence(std::move(d));
}

void
RecoveryOracle::onRecomputeMismatch(const ckpt::LogRecord &record,
                                    Word replayed, std::uint64_t interval)
{
    Divergence d;
    d.kind = DivergenceKind::kRecompute;
    // Called from inside recover(): the recovery being validated is
    // the next one afterRecovery will count.
    d.recovery = recoveriesChecked_ + 1;
    d.interval = interval;
    d.addr = record.addr;
    d.expected = record.oldValue;
    d.actual = replayed;
    d.writer = record.writer;
    if (record.isAmnesic())
        d.sliceId = record.amnesic->slice();
    d.detail = "slice replay disagreed with the record's shadow value";
    addDivergence(std::move(d));
}

std::string
RecoveryOracle::report(std::size_t limit) const
{
    std::string out;
    std::size_t shown = 0;
    for (const Divergence &d : divergences_) {
        if (shown++ >= limit)
            break;
        if (!out.empty())
            out += '\n';
        out += d.describe();
    }
    std::uint64_t total =
        static_cast<std::uint64_t>(stats_.get("oracle.divergences"));
    if (total > shown)
        out += csprintf("\n[oracle] ... and %llu more divergence(s)",
                        static_cast<unsigned long long>(total - shown));
    return out;
}

} // namespace acr::validate
