/**
 * @file
 * RecoveryOracle: differential validation of rollback/recovery, after
 * ReStore's discipline of checking recovered state against a fault-free
 * reference. The oracle shadows the CheckpointManager: at every
 * establishment it snapshots what a correct checkpoint must restore
 * (per-core ArchState, the memory image, the slice instances the log
 * pins) and — when the execution is known to be on the fault-free path —
 * compares the machine against a deterministic golden replay of the same
 * program. After every recovery it re-derives the full expected machine
 * state from the undo logs it captured *before* the rollback mutated
 * them and checks memory, architectural state, the log-bit index,
 * two-checkpoint retention, `validFor` masks, and slice-instance
 * pinning. Violations are reported as structured Divergence records
 * (address, expected/actual word, originating record, slice id) instead
 * of aborting, so a torture campaign can surface every failure and
 * shrink the fault plan that caused it.
 *
 * Taint tracking makes the golden comparison sound under multi-error
 * campaigns: a checkpoint established while a corruption is latent (the
 * Fig. 2 hazard) is off the golden path, as is everything after a
 * partial (group-local) rollback, whose survivors keep post-rollback
 * progress the golden replay never visits. Off-path state still gets
 * the full set of internal-consistency checks — only the golden
 * image/arch comparison is gated.
 */

#ifndef ACR_VALIDATE_RECOVERY_ORACLE_HH
#define ACR_VALIDATE_RECOVERY_ORACLE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/auditor.hh"
#include "ckpt/manager.hh"
#include "common/stats.hh"
#include "sim/system.hh"

namespace acr::validate
{

/** Which recovery invariant a divergence violated. */
enum class DivergenceKind
{
    kRecompute,    ///< slice replay != the record's shadow value
    kMemoryWord,   ///< recovered memory word != log-derived expectation
    kArchState,    ///< restored ArchState != checkpoint snapshot
    kLogIndex,     ///< log-bit index inconsistent / stale writer records
    kRetention,    ///< two-checkpoint retention / missing target
    kValidFor,     ///< newer checkpoint still valid for a rolled-back core
    kPinning,      ///< pinned SliceInstance died while its log lives
    kGoldenState,  ///< on-path establishment != golden fault-free replay
    kFinalImage,   ///< final memory image != error-free reference
    kEscalation,   ///< escalation-ladder outcome inconsistent with the
                   ///< medium's state (DESIGN.md §16): an unrecoverable
                   ///< verdict without a detected corrupt read, a torn
                   ///< checkpoint accepted as a target, or replica
                   ///< switches on a single-copy backend
};

const char *divergenceKindName(DivergenceKind kind);

/** One structured divergence diagnostic. */
struct Divergence
{
    DivergenceKind kind = DivergenceKind::kMemoryWord;
    /** 1-based ordinal of the recovery being validated (0: none). */
    std::uint64_t recovery = 0;
    /** Checkpoint index involved (target, or the one established). */
    std::uint64_t ckptIndex = 0;
    /** Interval of the originating log record (when attributable). */
    std::uint64_t interval = 0;
    Addr addr = kInvalidAddr;
    Word expected = 0;
    Word actual = 0;
    CoreId core = kInvalidCore;
    /** Writer of the originating record (kInvalidCore: none). */
    CoreId writer = kInvalidCore;
    /** Slice of the originating amnesic record (slice::kInvalidSlice: none). */
    slice::SliceId sliceId = slice::kInvalidSlice;
    /** Free-form context (which field differed, audit message, ...). */
    std::string detail;

    /** One-line human-readable rendering. */
    std::string describe() const;
};

/** Differential recovery validator; install with
 *  CheckpointManager::setAuditor and call the hooks from the driver. */
class RecoveryOracle : public ckpt::RecoveryAuditor
{
  public:
    RecoveryOracle(sim::MulticoreSystem &system,
                   const sim::MachineConfig &machine,
                   ckpt::Coordination coordination, StatSet &stats);

    /** Snapshot checkpoint 0 (call right after initialCheckpoint()). */
    void onInitialCheckpoint(const ckpt::CheckpointManager &manager);

    /**
     * Validate and snapshot the checkpoint just established.
     * @p latent_errors  applied-but-undetected corruptions outstanding
     * — a nonzero count taints the checkpoint (its content is not on
     * the fault-free path, Fig. 2).
     */
    void onEstablish(const ckpt::CheckpointManager &manager,
                     unsigned latent_errors);

    /** Capture the undo logs (and memory image) a recovery is about to
     *  consume, before the rollback compacts them. */
    void beforeRecovery(const ckpt::CheckpointManager &manager);

    /** Validate the full machine + manager state after a recovery. */
    void afterRecovery(const ckpt::CheckpointManager &manager,
                       const ckpt::RecoveryOutcome &outcome);

    /** End-of-run check against the error-free final image. */
    void onFinalImage(const std::map<Addr, Word> &expected);

    /** RecoveryAuditor: amnesic replay disagreed with its shadow. */
    void onRecomputeMismatch(const ckpt::LogRecord &record, Word replayed,
                             std::uint64_t interval) override;

    const std::vector<Divergence> &divergences() const
    {
        return divergences_;
    }

    /** Multi-line report of up to @p limit divergences ("" if clean). */
    std::string report(std::size_t limit = 16) const;

  private:
    /** A slice instance a checkpoint log pins. */
    struct Pin
    {
        Addr addr = 0;
        CoreId writer = 0;
        slice::SliceId sliceId = slice::kInvalidSlice;
        std::weak_ptr<slice::SliceInstance> instance;
    };

    /** What a correct rollback to this checkpoint must reproduce. */
    struct Snapshot
    {
        std::uint64_t index = 0;
        std::uint64_t progressAt = 0;
        Cycle establishedAt = 0;
        std::vector<cpu::ArchState> arch;
        std::map<Addr, Word> image;
        std::vector<Pin> pins;
        /** Writers whose records group rollbacks legitimately removed
         *  from this checkpoint's log since establishment. */
        std::uint64_t removedWriters = 0;
        /** Established from fault-free state: golden-comparable. */
        bool onGoldenPath = true;
    };

    /** Copy of one undo record, taken before recovery mutates logs. */
    struct CapturedRecord
    {
        Addr addr = 0;
        Word oldValue = 0;
        CoreId writer = 0;
        bool amnesic = false;
        slice::SliceId sliceId = slice::kInvalidSlice;
    };

    struct CapturedLog
    {
        std::uint64_t interval = 0;
        std::vector<CapturedRecord> records;
    };

    void addDivergence(Divergence divergence);
    Snapshot captureSnapshot(const ckpt::Checkpoint &ckpt) const;
    void auditLogs(const ckpt::CheckpointManager &manager);

    /** Advance the golden replay to progress @p target (rebuilding it
     *  from scratch if the rollback rewound progress) and compare the
     *  live machine against it. False: divergence reported. */
    bool compareAgainstGolden(std::uint64_t target);
    bool goldenMatchesSystem(std::string *why) const;

    sim::MulticoreSystem &system_;
    sim::MachineConfig machine_;
    isa::Program program_;
    ckpt::Coordination coordination_;
    StatSet &stats_;

    std::unique_ptr<sim::MulticoreSystem> golden_;

    /** Snapshots of currently retained checkpoints, keyed by index. */
    std::map<std::uint64_t, Snapshot> snapshots_;

    /** Captured by beforeRecovery: open log first, then retained logs
     *  newest -> oldest (the order recovery applies them). */
    std::vector<CapturedLog> capturedLogs_;
    std::map<Addr, Word> preImage_;
    bool captureValid_ = false;

    /** The last restore target was on the golden path (start: true). */
    bool lastRestoredOnPath_ = true;

    std::uint64_t recoveriesChecked_ = 0;
    std::vector<Divergence> divergences_;

    /** Hard cap so a badly broken run cannot accumulate unbounded
     *  diagnostics. */
    static constexpr std::size_t kMaxDivergences = 64;
};

} // namespace acr::validate

#endif // ACR_VALIDATE_RECOVERY_ORACLE_HH
