/**
 * @file
 * Quickstart: the 60-second tour of the ACR library.
 *
 * Builds the `is` kernel for an 8-core Table-I machine, measures the
 * error-free baseline, then compares plain incremental checkpointing
 * (Ckpt) against amnesic checkpointing and recovery (ReCkpt) with and
 * without an injected error — the four core configurations of the
 * paper's evaluation (Sec. IV).
 *
 *   ./build/examples/quickstart [--workload=is] [--threads=8]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "harness/runner.hh"

using namespace acr;

int
main(int argc, char **argv)
{
    OptionParser options("quickstart");
    options.addString("workload", "is", "kernel to run (bt cg dc ft is lu mg sp)");
    options.addInt("threads", 8, "cores / SPMD threads");
    options.addInt("checkpoints", 25, "checkpoints over the run");
    options.parse(argc, argv);

    const std::string workload = options.getString("workload");
    harness::Runner runner(
        static_cast<unsigned>(options.getInt("threads")));

    // NoCkpt: the error-free, checkpoint-free reference.
    const auto &base = runner.noCkpt(workload);
    std::cout << "workload '" << workload << "': "
              << base.stats.get("cores.instrs") << " instructions, "
              << base.cycles << " cycles, " << base.energyPj / 1e6
              << " uJ baseline\n";

    const auto &pass = runner.profile(workload);
    std::cout << "compiler pass: " << pass.hintedStores << "/"
              << pass.staticStores << " stores got Slices ("
              << pass.uniqueSlices << " unique, binary +"
              << pass.binaryGrowthPct << "%)\n\n";

    Table table({"config", "cycles", "time ovh %", "energy ovh %",
                 "ckpts", "recoveries", "ckpt KB", "omitted KB"});

    auto report = [&](const char *label, harness::ExperimentConfig cfg) {
        cfg.numCheckpoints =
            static_cast<unsigned>(options.getInt("checkpoints"));
        auto r = runner.run(workload, cfg);
        table.row()
            .cell(label)
            .cell(static_cast<long long>(r.cycles))
            .cell(r.timeOverheadPct(base.cycles))
            .cell(r.energyOverheadPct(base.energyPj))
            .cell(static_cast<long long>(r.checkpointsEstablished))
            .cell(static_cast<long long>(r.recoveries))
            .cell(static_cast<double>(r.ckptBytesStored) / 1024.0)
            .cell(static_cast<double>(r.ckptBytesOmitted) / 1024.0);
        return r;
    };

    harness::ExperimentConfig cfg;
    cfg.mode = harness::BerMode::kCkpt;
    report("Ckpt_NE", cfg);

    cfg.mode = harness::BerMode::kReCkpt;
    report("ReCkpt_NE", cfg);

    cfg.mode = harness::BerMode::kCkpt;
    cfg.numErrors = 1;
    report("Ckpt_E", cfg);

    cfg.mode = harness::BerMode::kReCkpt;
    report("ReCkpt_E", cfg);

    table.print(std::cout);
    std::cout << "\nFinal memory state matched the error-free reference "
                 "in every configuration (verified).\n";
    return 0;
}
