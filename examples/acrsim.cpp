/**
 * @file
 * acrsim: the full command-line front end to the ACR library — pick a
 * kernel (or sweep all), a BER mode, coordination, checkpoint cadence,
 * error count, slice threshold/policy and thread count; get overheads,
 * checkpoint-size accounting, per-interval history, raw statistics, or
 * CSV for plotting.
 *
 *   ./build/examples/acrsim --workload=ft --mode=reckpt --errors=2
 *   ./build/examples/acrsim --workload=all --csv
 *   ./build/examples/acrsim --workload=is --dump-stats --history
 */

#include <iostream>

#include "common/logging.hh"
#include "common/options.hh"
#include "common/table.hh"
#include "harness/runner.hh"

using namespace acr;

namespace
{

harness::BerMode
parseMode(const std::string &mode)
{
    if (mode == "nockpt")
        return harness::BerMode::kNoCkpt;
    if (mode == "ckpt")
        return harness::BerMode::kCkpt;
    if (mode == "reckpt")
        return harness::BerMode::kReCkpt;
    fatal("unknown --mode '%s' (nockpt|ckpt|reckpt)", mode.c_str());
}

void
runOne(harness::Runner &runner, const std::string &workload,
       const harness::ExperimentConfig &config, const OptionParser &opts,
       Table &table)
{
    const auto &base = runner.noCkpt(workload);
    auto result = config.mode == harness::BerMode::kNoCkpt
                      ? runner.noCkpt(workload)
                      : runner.run(workload, config);

    table.row()
        .cell(workload)
        .cell(config.label())
        .cell(static_cast<long long>(result.cycles))
        .cell(result.timeOverheadPct(base.cycles))
        .cell(result.energyOverheadPct(base.energyPj))
        .cell(static_cast<long long>(result.checkpointsEstablished))
        .cell(static_cast<long long>(result.recoveries))
        .cell(static_cast<double>(result.ckptBytesStored) / 1024.0)
        .cell(static_cast<double>(result.ckptBytesOmitted) / 1024.0);

    if (opts.getFlag("history")) {
        std::cout << "\nper-interval history for '" << workload
                  << "' (" << config.label() << "):\n";
        Table history({"interval", "records", "amnesic", "stored KB",
                       "omitted KB", "flushed lines"});
        for (const auto &interval : result.history) {
            history.row()
                .cell(static_cast<long long>(interval.interval))
                .cell(static_cast<long long>(interval.records))
                .cell(static_cast<long long>(interval.amnesicRecords))
                .cell(static_cast<double>(interval.storedBytes()) /
                      1024.0)
                .cell(static_cast<double>(interval.omittedBytes) /
                      1024.0)
                .cell(static_cast<long long>(interval.flushedLines));
        }
        history.print(std::cout);
        std::cout << "\n";
    }

    if (opts.getFlag("dump-stats")) {
        std::cout << "\nraw statistics for '" << workload << "' ("
                  << config.label() << "):\n";
        result.stats.dump(std::cout);
        std::cout << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts("acrsim");
    opts.addString("workload", "is",
                   "bt|cg|dc|ft|is|lu|mg|sp, or 'all'");
    opts.addString("mode", "reckpt", "nockpt|ckpt|reckpt");
    opts.addString("coordination", "global", "global|local");
    opts.addInt("threads", 8, "cores / SPMD threads (1..64)");
    opts.addInt("scale", 1, "problem size multiplier");
    opts.addInt("checkpoints", 25, "checkpoints over the run");
    opts.addInt("errors", 0, "fail-stop errors, uniformly placed");
    opts.addInt("threshold", 0,
                "slice length threshold (0 = paper default per kernel)");
    opts.addString("policy", "greedy", "greedy|cost slice selection");
    opts.addString("placement", "uniform",
                   "uniform|aware checkpoint placement");
    opts.addInt("seed", 0xacce55, "error placement seed");
    opts.addFlag("csv", "emit the summary as CSV");
    opts.addFlag("history", "print per-interval checkpoint sizes");
    opts.addFlag("dump-stats", "print the raw statistic set");
    opts.addFlag("disassemble", "print the (hinted) program and exit");
    opts.parse(argc, argv);

    harness::Runner runner(
        static_cast<unsigned>(opts.getInt("threads")),
        static_cast<unsigned>(opts.getInt("scale")));

    harness::ExperimentConfig config;
    config.mode = parseMode(opts.getString("mode"));
    config.coordination = opts.getString("coordination") == "local"
                              ? ckpt::Coordination::kLocal
                              : ckpt::Coordination::kGlobal;
    config.numCheckpoints =
        static_cast<unsigned>(opts.getInt("checkpoints"));
    config.numErrors = static_cast<unsigned>(opts.getInt("errors"));
    config.sliceThreshold =
        static_cast<unsigned>(opts.getInt("threshold"));
    config.policy = opts.getString("policy") == "cost"
                        ? slice::SelectionPolicy::kCostModel
                        : slice::SelectionPolicy::kGreedyThreshold;
    config.placement = opts.getString("placement") == "aware"
                           ? harness::PlacementPolicy::kRecomputeAware
                           : harness::PlacementPolicy::kUniform;
    config.seed = static_cast<std::uint64_t>(opts.getInt("seed"));

    std::vector<std::string> names;
    if (opts.getString("workload") == "all")
        names = workloads::allWorkloadNames();
    else
        names.push_back(opts.getString("workload"));

    if (opts.getFlag("disassemble")) {
        for (const auto &name : names) {
            unsigned threshold = config.sliceThreshold
                                     ? config.sliceThreshold
                                     : harness::Runner::defaultThreshold(
                                           name);
            runner.profileAt(name, threshold, config.policy)
                .program.disassemble(std::cout);
        }
        return 0;
    }

    Table table({"workload", "config", "cycles", "time ovh %",
                 "energy ovh %", "ckpts", "recoveries", "stored KB",
                 "omitted KB"});
    for (const auto &name : names)
        runOne(runner, name, config, opts, table);

    if (opts.getFlag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
