/**
 * @file
 * Coordinated local vs global checkpointing (Sec. V-E): runs a
 * pair-communicating kernel under both coordination disciplines, shows
 * the communication groups the directory discovered, and the resulting
 * coordination savings — then injects an error and shows that only the
 * failing core's group rolls back under local coordination.
 *
 *   ./build/examples/local_checkpointing [--workload=dc]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "harness/runner.hh"

using namespace acr;

int
main(int argc, char **argv)
{
    OptionParser options("local_checkpointing");
    options.addString("workload", "dc",
                      "kernel (dc/is pair up; mg quads; bt all-to-all)");
    options.addInt("threads", 8, "cores");
    options.parse(argc, argv);

    const std::string workload = options.getString("workload");
    harness::Runner runner(
        static_cast<unsigned>(options.getInt("threads")));
    const auto &base = runner.noCkpt(workload);

    Table table({"config", "cycles", "time ovh %", "avg groups/ckpt",
                 "recoveries"});

    for (bool with_error : {false, true}) {
        for (auto coordination : {ckpt::Coordination::kGlobal,
                                  ckpt::Coordination::kLocal}) {
            harness::ExperimentConfig config;
            config.mode = harness::BerMode::kReCkpt;
            config.coordination = coordination;
            config.numErrors = with_error ? 1 : 0;
            auto result = runner.run(workload, config);

            double groups =
                result.stats.get("ckpt.coordinationGroups") /
                std::max(1.0, result.stats.get("ckpt.establishments"));
            table.row()
                .cell(config.label())
                .cell(static_cast<long long>(result.cycles))
                .cell(result.timeOverheadPct(base.cycles))
                .cell(groups)
                .cell(static_cast<long long>(result.recoveries));
        }
    }

    std::cout << "workload '" << workload
              << "': local coordination confines checkpoint "
                 "synchronization (and rollback) to communicating "
                 "groups discovered by the directory.\n\n";
    table.print(std::cout);
    std::cout << "\nUnder local coordination a recovery rolls back only "
                 "the failing core's communication-group closure; the "
                 "final state still matched the error-free reference "
                 "(verified in-run).\n";
    return 0;
}
