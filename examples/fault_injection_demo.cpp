/**
 * @file
 * Fault-injection walkthrough: runs a kernel under ACR while injecting
 * several fail-stop errors, and prints the per-recovery decomposition
 * of Equation 3 — waste, roll-back, and recomputation — plus proof that
 * the final state matched the error-free reference.
 *
 *   ./build/examples/fault_injection_demo [--workload=ft] [--errors=3]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "harness/runner.hh"

using namespace acr;

int
main(int argc, char **argv)
{
    OptionParser options("fault_injection_demo");
    options.addString("workload", "ft", "kernel to run");
    options.addInt("errors", 3, "errors injected (uniform placement)");
    options.addInt("threads", 8, "cores");
    options.addFlag("local", "use coordinated local checkpointing");
    options.parse(argc, argv);

    const std::string workload = options.getString("workload");
    const unsigned errors =
        static_cast<unsigned>(options.getInt("errors"));

    harness::Runner runner(
        static_cast<unsigned>(options.getInt("threads")));
    const auto &base = runner.noCkpt(workload);

    harness::ExperimentConfig config;
    config.mode = harness::BerMode::kReCkpt;
    config.numErrors = errors;
    config.coordination = options.getFlag("local")
                              ? ckpt::Coordination::kLocal
                              : ckpt::Coordination::kGlobal;

    std::cout << "Injecting " << errors << " error(s) into '" << workload
              << "' under " << config.label() << "...\n\n";
    auto result = runner.run(workload, config);

    Table table({"metric", "value"});
    table.row().cell("error-free cycles").cell(
        static_cast<long long>(base.cycles));
    table.row().cell("cycles with errors + ACR").cell(
        static_cast<long long>(result.cycles));
    table.row().cell("time overhead %").cell(
        result.timeOverheadPct(base.cycles));
    table.row().cell("recoveries").cell(
        static_cast<long long>(result.recoveries));
    table.row().cell("o_waste (cycles, Eq. 2)").cell(
        static_cast<long long>(result.stats.get("rec.wasteCycles")));
    table.row().cell("o_roll-back (cycles)").cell(
        static_cast<long long>(
            result.stats.get("rec.rollbackCycles")));
    table.row().cell("values restored from the log").cell(
        static_cast<long long>(result.stats.get("rec.restoredWords")));
    table.row().cell("values recomputed via Slices").cell(
        static_cast<long long>(
            result.stats.get("rec.recomputedWords")));
    table.row().cell("replayed ALU ops (o_rcmp)").cell(
        static_cast<long long>(result.stats.get("acr.replayAluOps")));
    table.row().cell("checkpoint bytes omitted").cell(
        static_cast<long long>(result.ckptBytesOmitted));
    table.print(std::cout);

    std::cout << "\nEvery recomputed value was asserted bit-identical "
                 "to its shadow copy, and the final memory image "
                 "matched the error-free reference.\n";
    return 0;
}
