/**
 * @file
 * Using the public API on your own code: build a small program with
 * ProgramBuilder, run the compiler pass to see which stores receive
 * Slices (and why the others don't), then execute under ACR and report
 * the checkpoint-size reduction.
 *
 *   ./build/examples/custom_workload
 */

#include <iostream>

#include "acr/slice_pass.hh"
#include "harness/ber_runtime.hh"
#include "isa/builder.hh"

using namespace acr;

/** A toy SPMD kernel: each thread fills a table with polynomial values
 *  (recomputable), then builds a prefix sum over it (not recomputable —
 *  every store depends on a load chain). */
static isa::Program
makeProgram()
{
    isa::ProgramBuilder b("custom");
    constexpr isa::Reg tid = 1, base = 2, i = 3, lim = 4, val = 5,
                       addr = 6, acc = 7, t = 8, tlim = 9;

    b.tid(tid);
    b.shli(base, tid, 12);
    b.addi(base, base, 1 << 20);
    b.movi(t, 0);
    b.movi(tlim, 8);
    b.label("outer");

    // Phase 1: val = ((t*31 + i-ish constant) ...) — pure arithmetic,
    // a 4-instruction Slice behind every store.
    b.movi(i, 0);
    b.movi(lim, 64);
    b.label("fill");
    b.muli(val, t, 31);
    b.addi(val, val, 7);
    b.muli(val, val, 5);
    b.xori(val, val, 0x5a5a);
    b.add(addr, base, i);
    b.store(addr, val);
    b.addi(i, i, 1);
    b.bltu(i, lim, "fill");

    // Phase 2: prefix sum — every stored value hangs off loads.
    b.movi(acc, 0);
    b.movi(i, 0);
    b.label("prefix");
    b.add(addr, base, i);
    b.load(val, addr);
    b.add(acc, acc, val);
    b.store(addr, acc, 64);
    b.addi(i, i, 1);
    b.bltu(i, lim, "prefix");

    b.barrier();
    b.addi(t, t, 1);
    b.bltu(t, tlim, "outer");
    b.halt();
    return b.build();
}

int
main()
{
    auto machine = sim::MachineConfig::tableI(4);
    isa::Program program = makeProgram();

    // The compiler pass: dynamic slicing over one profiling run.
    slice::SlicePolicyConfig policy;  // greedy, threshold 10
    auto pass = amnesic::SlicePass::run(program, machine, policy);

    std::cout << "compiler pass on '" << program.name() << "':\n"
              << "  static stores:   " << pass.staticStores << "\n"
              << "  hinted (Slices): " << pass.hintedStores
              << "   <- the polynomial fill\n"
              << "  unique slices:   " << pass.uniqueSlices << "\n"
              << "  binary growth:   " << pass.binaryGrowthPct << "%\n"
              << "  dynamic stores sliceable: " << pass.sliceableStores
              << "/" << pass.dynamicStores << "\n\n";

    std::cout << "hinted program disassembly (stores with ';"
                 " assoc-addr' carry embedded Slices):\n";
    pass.program.disassemble(std::cout);

    harness::ExperimentConfig config;
    config.mode = harness::BerMode::kReCkpt;
    config.numCheckpoints = 10;
    config.numErrors = 1;
    auto acr_run =
        harness::BerRuntime::run(pass.program, machine, config, pass);

    harness::ExperimentConfig baseline = config;
    baseline.mode = harness::BerMode::kCkpt;
    auto ckpt_run =
        harness::BerRuntime::run(program, machine, baseline, pass);

    std::cout << "\nCkpt stored " << ckpt_run.ckptBytesStored / 1024
              << " KB of checkpoints; ACR stored "
              << acr_run.ckptBytesStored / 1024 << " KB and omitted "
              << acr_run.ckptBytesOmitted / 1024
              << " KB as recomputable (one error injected and "
                 "recovered in both runs).\n";
    return 0;
}
