/**
 * @file
 * Writing a kernel with the expression DSL (frontend) instead of raw
 * assembly, then running it through the full ACR pipeline: compiler
 * pass, amnesic checkpointing, an injected error, verified recovery.
 *
 *   ./build/examples/dsl_kernel
 */

#include <iostream>

#include "acr/slice_pass.hh"
#include "frontend/function.hh"
#include "harness/ber_runtime.hh"

using namespace acr;
using frontend::Expr;
using frontend::Function;
using frontend::Var;

/** A little stencil kernel demonstrating the store classes ACR
 *  distinguishes. Phase 1 (polynomial fill) hangs off the register-
 *  resident loop counters, so its backward slice *grows with the
 *  iteration count* — only early iterations fit under the threshold,
 *  the paper's footnote-1 observation that loop unrolling depth bounds
 *  Slices. Phase 2 (smoothing) roots in loads, whose values are
 *  captured operands: a constant 2-op Slice every iteration. Phase 3
 *  (compaction) is a pure copy — its backward slice is just a load, so
 *  it is never recomputable. */
static isa::Program
makeKernel()
{
    Function f("dsl-stencil");
    Var base = f.var(Expr(1 << 20) + (f.tid() << 14));

    f.forRange(0, 12, [&](Expr t) {
        // Phase 1: polynomial fill — arithmetic only.
        f.forRange(0, 96, [&](Expr i) {
            f.store(base.read() + i,
                    (i * 2654435761ll + t * 40503ll) ^ 0x5a5all);
        });
        // Phase 2: neighbour smoothing — a 2-op Slice whose inputs are
        // the two loaded neighbours.
        f.forRange(1, 95, [&](Expr i) {
            Expr left = f.load(base.read() + i - 1);
            Expr right = f.load(base.read() + i + 1);
            f.store(base.read() + 128 + i, (left + right) >> 1);
        });
        // Phase 3: compaction — a pure copy, never recomputable.
        f.forRange(0, 48, [&](Expr i) {
            f.store(base.read() + 256 + i,
                    f.load(base.read() + 128 + i * 2));
        });
        f.barrier();
    });
    return f.build();
}

int
main()
{
    auto machine = sim::MachineConfig::tableI(4);
    isa::Program program = makeKernel();
    std::cout << "DSL compiled '" << program.name() << "' to "
              << program.size() << " instructions\n";

    auto pass = amnesic::SlicePass::run(program, machine,
                                        slice::SlicePolicyConfig{});
    std::cout << "compiler pass: " << pass.hintedStores << "/"
              << pass.staticStores
              << " static stores carry Slices (the copy never does); "
              << pass.sliceableStores << "/" << pass.dynamicStores
              << " dynamic stores recomputable — the smoothing phase "
                 "every time, the fill only while its induction chain "
                 "is short (footnote 1's unrolling limit)\n";

    harness::ExperimentConfig config;
    config.mode = harness::BerMode::kReCkpt;
    config.numCheckpoints = 10;
    config.numErrors = 1;
    auto result =
        harness::BerRuntime::run(pass.program, machine, config, pass);

    std::cout << "ReCkpt_E: " << result.cycles << " cycles, "
              << result.checkpointsEstablished << " checkpoints, "
              << result.recoveries << " recovery, "
              << result.ckptBytesOmitted / 1024
              << " KB omitted from checkpoints ("
              << result.ckptBytesStored / 1024
              << " KB stored); final state verified against the "
                 "error-free reference.\n";
    return 0;
}
