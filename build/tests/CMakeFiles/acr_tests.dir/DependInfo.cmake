
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/acr_test.cpp" "tests/CMakeFiles/acr_tests.dir/acr_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/acr_test.cpp.o.d"
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/acr_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/assembler_test.cpp" "tests/CMakeFiles/acr_tests.dir/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/assembler_test.cpp.o.d"
  "/root/repo/tests/cache_test.cpp" "tests/CMakeFiles/acr_tests.dir/cache_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/cache_test.cpp.o.d"
  "/root/repo/tests/ckpt_test.cpp" "tests/CMakeFiles/acr_tests.dir/ckpt_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/ckpt_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/acr_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/cpu_test.cpp" "tests/CMakeFiles/acr_tests.dir/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/cpu_test.cpp.o.d"
  "/root/repo/tests/edge_test.cpp" "tests/CMakeFiles/acr_tests.dir/edge_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/edge_test.cpp.o.d"
  "/root/repo/tests/energy_test.cpp" "tests/CMakeFiles/acr_tests.dir/energy_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/energy_test.cpp.o.d"
  "/root/repo/tests/fault_test.cpp" "tests/CMakeFiles/acr_tests.dir/fault_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/fault_test.cpp.o.d"
  "/root/repo/tests/frontend_test.cpp" "tests/CMakeFiles/acr_tests.dir/frontend_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/frontend_test.cpp.o.d"
  "/root/repo/tests/hierarchy_test.cpp" "tests/CMakeFiles/acr_tests.dir/hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/hierarchy_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/acr_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/isa_test.cpp" "tests/CMakeFiles/acr_tests.dir/isa_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/isa_test.cpp.o.d"
  "/root/repo/tests/mem_test.cpp" "tests/CMakeFiles/acr_tests.dir/mem_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/mem_test.cpp.o.d"
  "/root/repo/tests/misc_test.cpp" "tests/CMakeFiles/acr_tests.dir/misc_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/misc_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/acr_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/secondary_test.cpp" "tests/CMakeFiles/acr_tests.dir/secondary_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/secondary_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/acr_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/slice_test.cpp" "tests/CMakeFiles/acr_tests.dir/slice_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/slice_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/acr_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/acr_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/acr_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/acr_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/acr_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/acr/CMakeFiles/acr_acr.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/acr_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/slice/CMakeFiles/acr_slice.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/acr_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/acr_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/acr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/acr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/acr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/acr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/acr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
