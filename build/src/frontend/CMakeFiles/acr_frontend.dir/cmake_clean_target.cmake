file(REMOVE_RECURSE
  "libacr_frontend.a"
)
