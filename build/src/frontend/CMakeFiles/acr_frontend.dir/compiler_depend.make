# Empty compiler generated dependencies file for acr_frontend.
# This may be replaced when dependencies are built.
