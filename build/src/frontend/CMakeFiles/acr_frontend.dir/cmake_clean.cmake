file(REMOVE_RECURSE
  "CMakeFiles/acr_frontend.dir/function.cc.o"
  "CMakeFiles/acr_frontend.dir/function.cc.o.d"
  "libacr_frontend.a"
  "libacr_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
