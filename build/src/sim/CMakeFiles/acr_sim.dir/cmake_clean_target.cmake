file(REMOVE_RECURSE
  "libacr_sim.a"
)
