# Empty compiler generated dependencies file for acr_sim.
# This may be replaced when dependencies are built.
