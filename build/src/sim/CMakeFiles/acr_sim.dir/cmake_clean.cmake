file(REMOVE_RECURSE
  "CMakeFiles/acr_sim.dir/system.cc.o"
  "CMakeFiles/acr_sim.dir/system.cc.o.d"
  "libacr_sim.a"
  "libacr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
