
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acr/acr_engine.cc" "src/acr/CMakeFiles/acr_acr.dir/acr_engine.cc.o" "gcc" "src/acr/CMakeFiles/acr_acr.dir/acr_engine.cc.o.d"
  "/root/repo/src/acr/addr_map.cc" "src/acr/CMakeFiles/acr_acr.dir/addr_map.cc.o" "gcc" "src/acr/CMakeFiles/acr_acr.dir/addr_map.cc.o.d"
  "/root/repo/src/acr/slice_pass.cc" "src/acr/CMakeFiles/acr_acr.dir/slice_pass.cc.o" "gcc" "src/acr/CMakeFiles/acr_acr.dir/slice_pass.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ckpt/CMakeFiles/acr_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/slice/CMakeFiles/acr_slice.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/acr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/acr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/acr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/acr_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
