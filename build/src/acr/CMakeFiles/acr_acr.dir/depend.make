# Empty dependencies file for acr_acr.
# This may be replaced when dependencies are built.
