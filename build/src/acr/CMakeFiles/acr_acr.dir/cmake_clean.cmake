file(REMOVE_RECURSE
  "CMakeFiles/acr_acr.dir/acr_engine.cc.o"
  "CMakeFiles/acr_acr.dir/acr_engine.cc.o.d"
  "CMakeFiles/acr_acr.dir/addr_map.cc.o"
  "CMakeFiles/acr_acr.dir/addr_map.cc.o.d"
  "CMakeFiles/acr_acr.dir/slice_pass.cc.o"
  "CMakeFiles/acr_acr.dir/slice_pass.cc.o.d"
  "libacr_acr.a"
  "libacr_acr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_acr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
