file(REMOVE_RECURSE
  "libacr_acr.a"
)
