file(REMOVE_RECURSE
  "libacr_isa.a"
)
