# Empty compiler generated dependencies file for acr_isa.
# This may be replaced when dependencies are built.
