file(REMOVE_RECURSE
  "CMakeFiles/acr_isa.dir/assembler.cc.o"
  "CMakeFiles/acr_isa.dir/assembler.cc.o.d"
  "CMakeFiles/acr_isa.dir/builder.cc.o"
  "CMakeFiles/acr_isa.dir/builder.cc.o.d"
  "CMakeFiles/acr_isa.dir/instruction.cc.o"
  "CMakeFiles/acr_isa.dir/instruction.cc.o.d"
  "CMakeFiles/acr_isa.dir/program.cc.o"
  "CMakeFiles/acr_isa.dir/program.cc.o.d"
  "libacr_isa.a"
  "libacr_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
