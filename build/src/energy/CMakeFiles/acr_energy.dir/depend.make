# Empty dependencies file for acr_energy.
# This may be replaced when dependencies are built.
