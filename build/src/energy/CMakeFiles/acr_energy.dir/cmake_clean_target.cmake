file(REMOVE_RECURSE
  "libacr_energy.a"
)
