file(REMOVE_RECURSE
  "CMakeFiles/acr_energy.dir/energy_model.cc.o"
  "CMakeFiles/acr_energy.dir/energy_model.cc.o.d"
  "libacr_energy.a"
  "libacr_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
