file(REMOVE_RECURSE
  "CMakeFiles/acr_slice.dir/engine.cc.o"
  "CMakeFiles/acr_slice.dir/engine.cc.o.d"
  "CMakeFiles/acr_slice.dir/instance.cc.o"
  "CMakeFiles/acr_slice.dir/instance.cc.o.d"
  "CMakeFiles/acr_slice.dir/repository.cc.o"
  "CMakeFiles/acr_slice.dir/repository.cc.o.d"
  "libacr_slice.a"
  "libacr_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
