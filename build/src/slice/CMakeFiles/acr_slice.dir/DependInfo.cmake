
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slice/engine.cc" "src/slice/CMakeFiles/acr_slice.dir/engine.cc.o" "gcc" "src/slice/CMakeFiles/acr_slice.dir/engine.cc.o.d"
  "/root/repo/src/slice/instance.cc" "src/slice/CMakeFiles/acr_slice.dir/instance.cc.o" "gcc" "src/slice/CMakeFiles/acr_slice.dir/instance.cc.o.d"
  "/root/repo/src/slice/repository.cc" "src/slice/CMakeFiles/acr_slice.dir/repository.cc.o" "gcc" "src/slice/CMakeFiles/acr_slice.dir/repository.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/acr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/acr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/acr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/acr_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
