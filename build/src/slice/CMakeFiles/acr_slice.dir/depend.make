# Empty dependencies file for acr_slice.
# This may be replaced when dependencies are built.
