file(REMOVE_RECURSE
  "libacr_slice.a"
)
