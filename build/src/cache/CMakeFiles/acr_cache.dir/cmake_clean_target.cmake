file(REMOVE_RECURSE
  "libacr_cache.a"
)
