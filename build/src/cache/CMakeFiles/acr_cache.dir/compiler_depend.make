# Empty compiler generated dependencies file for acr_cache.
# This may be replaced when dependencies are built.
