file(REMOVE_RECURSE
  "CMakeFiles/acr_cache.dir/cache.cc.o"
  "CMakeFiles/acr_cache.dir/cache.cc.o.d"
  "CMakeFiles/acr_cache.dir/directory.cc.o"
  "CMakeFiles/acr_cache.dir/directory.cc.o.d"
  "CMakeFiles/acr_cache.dir/hierarchy.cc.o"
  "CMakeFiles/acr_cache.dir/hierarchy.cc.o.d"
  "libacr_cache.a"
  "libacr_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
