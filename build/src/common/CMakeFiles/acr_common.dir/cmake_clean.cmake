file(REMOVE_RECURSE
  "CMakeFiles/acr_common.dir/logging.cc.o"
  "CMakeFiles/acr_common.dir/logging.cc.o.d"
  "CMakeFiles/acr_common.dir/options.cc.o"
  "CMakeFiles/acr_common.dir/options.cc.o.d"
  "CMakeFiles/acr_common.dir/stats.cc.o"
  "CMakeFiles/acr_common.dir/stats.cc.o.d"
  "CMakeFiles/acr_common.dir/table.cc.o"
  "CMakeFiles/acr_common.dir/table.cc.o.d"
  "CMakeFiles/acr_common.dir/trace.cc.o"
  "CMakeFiles/acr_common.dir/trace.cc.o.d"
  "libacr_common.a"
  "libacr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
