file(REMOVE_RECURSE
  "libacr_common.a"
)
