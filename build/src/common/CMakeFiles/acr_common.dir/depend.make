# Empty dependencies file for acr_common.
# This may be replaced when dependencies are built.
