file(REMOVE_RECURSE
  "CMakeFiles/acr_ckpt.dir/log.cc.o"
  "CMakeFiles/acr_ckpt.dir/log.cc.o.d"
  "CMakeFiles/acr_ckpt.dir/manager.cc.o"
  "CMakeFiles/acr_ckpt.dir/manager.cc.o.d"
  "CMakeFiles/acr_ckpt.dir/secondary.cc.o"
  "CMakeFiles/acr_ckpt.dir/secondary.cc.o.d"
  "libacr_ckpt.a"
  "libacr_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
