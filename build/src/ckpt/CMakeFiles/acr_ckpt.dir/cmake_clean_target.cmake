file(REMOVE_RECURSE
  "libacr_ckpt.a"
)
