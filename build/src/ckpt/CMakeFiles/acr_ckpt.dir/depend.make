# Empty dependencies file for acr_ckpt.
# This may be replaced when dependencies are built.
