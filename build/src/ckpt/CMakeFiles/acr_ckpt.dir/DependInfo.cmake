
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/log.cc" "src/ckpt/CMakeFiles/acr_ckpt.dir/log.cc.o" "gcc" "src/ckpt/CMakeFiles/acr_ckpt.dir/log.cc.o.d"
  "/root/repo/src/ckpt/manager.cc" "src/ckpt/CMakeFiles/acr_ckpt.dir/manager.cc.o" "gcc" "src/ckpt/CMakeFiles/acr_ckpt.dir/manager.cc.o.d"
  "/root/repo/src/ckpt/secondary.cc" "src/ckpt/CMakeFiles/acr_ckpt.dir/secondary.cc.o" "gcc" "src/ckpt/CMakeFiles/acr_ckpt.dir/secondary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/acr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/slice/CMakeFiles/acr_slice.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/acr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/acr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/acr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/acr_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
