file(REMOVE_RECURSE
  "CMakeFiles/acr_cpu.dir/core.cc.o"
  "CMakeFiles/acr_cpu.dir/core.cc.o.d"
  "libacr_cpu.a"
  "libacr_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
