file(REMOVE_RECURSE
  "libacr_cpu.a"
)
