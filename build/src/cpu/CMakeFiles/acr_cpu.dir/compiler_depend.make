# Empty compiler generated dependencies file for acr_cpu.
# This may be replaced when dependencies are built.
