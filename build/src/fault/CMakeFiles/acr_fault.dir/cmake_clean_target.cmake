file(REMOVE_RECURSE
  "libacr_fault.a"
)
