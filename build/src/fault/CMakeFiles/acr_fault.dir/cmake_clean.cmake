file(REMOVE_RECURSE
  "CMakeFiles/acr_fault.dir/injector.cc.o"
  "CMakeFiles/acr_fault.dir/injector.cc.o.d"
  "libacr_fault.a"
  "libacr_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
