# Empty compiler generated dependencies file for acr_fault.
# This may be replaced when dependencies are built.
