file(REMOVE_RECURSE
  "libacr_harness.a"
)
