file(REMOVE_RECURSE
  "CMakeFiles/acr_harness.dir/ber_runtime.cc.o"
  "CMakeFiles/acr_harness.dir/ber_runtime.cc.o.d"
  "CMakeFiles/acr_harness.dir/runner.cc.o"
  "CMakeFiles/acr_harness.dir/runner.cc.o.d"
  "libacr_harness.a"
  "libacr_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
