# Empty dependencies file for acr_harness.
# This may be replaced when dependencies are built.
