# Empty compiler generated dependencies file for acr_workloads.
# This may be replaced when dependencies are built.
