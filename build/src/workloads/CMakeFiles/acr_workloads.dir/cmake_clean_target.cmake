file(REMOVE_RECURSE
  "libacr_workloads.a"
)
