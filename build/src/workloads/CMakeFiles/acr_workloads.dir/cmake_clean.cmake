file(REMOVE_RECURSE
  "CMakeFiles/acr_workloads.dir/kernel_builder.cc.o"
  "CMakeFiles/acr_workloads.dir/kernel_builder.cc.o.d"
  "CMakeFiles/acr_workloads.dir/kernels.cc.o"
  "CMakeFiles/acr_workloads.dir/kernels.cc.o.d"
  "libacr_workloads.a"
  "libacr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
