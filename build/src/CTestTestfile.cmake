# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("frontend")
subdirs("mem")
subdirs("cache")
subdirs("cpu")
subdirs("energy")
subdirs("sim")
subdirs("slice")
subdirs("ckpt")
subdirs("acr")
subdirs("fault")
subdirs("workloads")
subdirs("harness")
