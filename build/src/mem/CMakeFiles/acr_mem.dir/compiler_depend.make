# Empty compiler generated dependencies file for acr_mem.
# This may be replaced when dependencies are built.
