file(REMOVE_RECURSE
  "libacr_mem.a"
)
