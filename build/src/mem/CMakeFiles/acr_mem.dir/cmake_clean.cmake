file(REMOVE_RECURSE
  "CMakeFiles/acr_mem.dir/dram.cc.o"
  "CMakeFiles/acr_mem.dir/dram.cc.o.d"
  "CMakeFiles/acr_mem.dir/main_memory.cc.o"
  "CMakeFiles/acr_mem.dir/main_memory.cc.o.d"
  "libacr_mem.a"
  "libacr_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acr_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
