# Empty dependencies file for fig12_ckpt_freq.
# This may be replaced when dependencies are built.
