file(REMOVE_RECURSE
  "../bench/fig12_ckpt_freq"
  "../bench/fig12_ckpt_freq.pdb"
  "CMakeFiles/fig12_ckpt_freq.dir/fig12_ckpt_freq.cpp.o"
  "CMakeFiles/fig12_ckpt_freq.dir/fig12_ckpt_freq.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ckpt_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
