# Empty dependencies file for fig06_time_overhead.
# This may be replaced when dependencies are built.
