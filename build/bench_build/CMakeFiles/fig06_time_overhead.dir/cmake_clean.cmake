file(REMOVE_RECURSE
  "../bench/fig06_time_overhead"
  "../bench/fig06_time_overhead.pdb"
  "CMakeFiles/fig06_time_overhead.dir/fig06_time_overhead.cpp.o"
  "CMakeFiles/fig06_time_overhead.dir/fig06_time_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_time_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
