file(REMOVE_RECURSE
  "../bench/fig01_error_rate"
  "../bench/fig01_error_rate.pdb"
  "CMakeFiles/fig01_error_rate.dir/fig01_error_rate.cpp.o"
  "CMakeFiles/fig01_error_rate.dir/fig01_error_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_error_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
