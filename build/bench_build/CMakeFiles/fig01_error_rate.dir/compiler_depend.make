# Empty compiler generated dependencies file for fig01_error_rate.
# This may be replaced when dependencies are built.
