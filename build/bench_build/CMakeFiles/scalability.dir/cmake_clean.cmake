file(REMOVE_RECURSE
  "../bench/scalability"
  "../bench/scalability.pdb"
  "CMakeFiles/scalability.dir/scalability.cpp.o"
  "CMakeFiles/scalability.dir/scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
