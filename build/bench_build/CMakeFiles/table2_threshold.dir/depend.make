# Empty dependencies file for table2_threshold.
# This may be replaced when dependencies are built.
