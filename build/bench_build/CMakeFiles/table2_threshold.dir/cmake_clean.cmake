file(REMOVE_RECURSE
  "../bench/table2_threshold"
  "../bench/table2_threshold.pdb"
  "CMakeFiles/table2_threshold.dir/table2_threshold.cpp.o"
  "CMakeFiles/table2_threshold.dir/table2_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
