file(REMOVE_RECURSE
  "../bench/fig09_ckpt_size"
  "../bench/fig09_ckpt_size.pdb"
  "CMakeFiles/fig09_ckpt_size.dir/fig09_ckpt_size.cpp.o"
  "CMakeFiles/fig09_ckpt_size.dir/fig09_ckpt_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ckpt_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
