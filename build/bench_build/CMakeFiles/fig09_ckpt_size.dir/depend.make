# Empty dependencies file for fig09_ckpt_size.
# This may be replaced when dependencies are built.
