# Empty compiler generated dependencies file for fig13_local.
# This may be replaced when dependencies are built.
