file(REMOVE_RECURSE
  "../bench/fig13_local"
  "../bench/fig13_local.pdb"
  "CMakeFiles/fig13_local.dir/fig13_local.cpp.o"
  "CMakeFiles/fig13_local.dir/fig13_local.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
