# Empty dependencies file for fig07_energy_overhead.
# This may be replaced when dependencies are built.
