file(REMOVE_RECURSE
  "../bench/fig07_energy_overhead"
  "../bench/fig07_energy_overhead.pdb"
  "CMakeFiles/fig07_energy_overhead.dir/fig07_energy_overhead.cpp.o"
  "CMakeFiles/fig07_energy_overhead.dir/fig07_energy_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_energy_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
