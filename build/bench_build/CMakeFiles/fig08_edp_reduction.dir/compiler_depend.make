# Empty compiler generated dependencies file for fig08_edp_reduction.
# This may be replaced when dependencies are built.
