# Empty compiler generated dependencies file for fig10_temporal.
# This may be replaced when dependencies are built.
