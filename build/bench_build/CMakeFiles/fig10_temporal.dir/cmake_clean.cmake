file(REMOVE_RECURSE
  "../bench/fig10_temporal"
  "../bench/fig10_temporal.pdb"
  "CMakeFiles/fig10_temporal.dir/fig10_temporal.cpp.o"
  "CMakeFiles/fig10_temporal.dir/fig10_temporal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
