file(REMOVE_RECURSE
  "CMakeFiles/dsl_kernel.dir/dsl_kernel.cpp.o"
  "CMakeFiles/dsl_kernel.dir/dsl_kernel.cpp.o.d"
  "dsl_kernel"
  "dsl_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
