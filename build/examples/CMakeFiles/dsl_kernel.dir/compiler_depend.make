# Empty compiler generated dependencies file for dsl_kernel.
# This may be replaced when dependencies are built.
