file(REMOVE_RECURSE
  "CMakeFiles/local_checkpointing.dir/local_checkpointing.cpp.o"
  "CMakeFiles/local_checkpointing.dir/local_checkpointing.cpp.o.d"
  "local_checkpointing"
  "local_checkpointing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
