# Empty dependencies file for local_checkpointing.
# This may be replaced when dependencies are built.
