file(REMOVE_RECURSE
  "CMakeFiles/acrsim.dir/acrsim.cpp.o"
  "CMakeFiles/acrsim.dir/acrsim.cpp.o.d"
  "acrsim"
  "acrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
