# Empty compiler generated dependencies file for acrsim.
# This may be replaced when dependencies are built.
