
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/acrsim.cpp" "examples/CMakeFiles/acrsim.dir/acrsim.cpp.o" "gcc" "examples/CMakeFiles/acrsim.dir/acrsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/acr_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/acr_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/acr/CMakeFiles/acr_acr.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/acr_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/slice/CMakeFiles/acr_slice.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/acr_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/acr_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/acr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/acr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/acr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/acr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/acr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
