# End-to-end check of the content-addressed result cache (DESIGN.md
# §11), run as a ctest and mirrored by the CI cache-fanout job. Against
# a bench binary (-DBENCH=...), a second bench enumerating the same
# grid (-DBENCH2=...), and a workload subset (-DWORKLOADS=...), it
# verifies the --cache contract:
#
#   * a cold run populates the cache and renders byte-identically to a
#     cache-less --jobs=1 reference;
#   * a warm run serves 100% of the grid from the cache — hit count
#     equals the point count, zero misses, zero simulations — with
#     byte-identical stdout, in --jobs, --forks, and --shard modes
#     (forked: cached points are never dealt to workers);
#   * a different bench enumerating the same experiments gets full
#     cross-bench hits from the shared file;
#   * every corruption mode degrades to recompute, never to a crash or
#     a wrong table: a flipped byte in one entry misses only that
#     entry, a torn final line is dropped, and a header carrying a
#     stale wire version makes the whole file cold.
#
# Invoke with
#   cmake -DBENCH=<path> -DBENCH2=<path> -DWORKLOADS=<a,b>
#         -DOUT=<scratch dir> -P cache_smoke.cmake

foreach(var BENCH BENCH2 WORKLOADS OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "cache_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(REMOVE_RECURSE "${OUT}")
file(MAKE_DIRECTORY "${OUT}")
set(CACHE_FILE "${OUT}/results.cache")

# Run a bench with a required exit status; extra args pass through.
function(run_case bench output errfile expect_status)
    execute_process(
        COMMAND "${bench}" "--workloads=${WORKLOADS}" ${ARGN}
        OUTPUT_FILE "${output}"
        ERROR_FILE "${errfile}"
        RESULT_VARIABLE status)
    if(NOT status EQUAL ${expect_status})
        file(READ "${errfile}" stderr)
        message(FATAL_ERROR
                "${bench} ${ARGN} exited ${status} "
                "(expected ${expect_status}):\n${stderr}")
    endif()
endfunction()

function(expect_identical reference candidate what)
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${reference}" "${candidate}"
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR
                "${what} output differs from the cache-less reference "
                "(${reference} vs ${candidate})")
    endif()
endfunction()

function(expect_match file pattern what)
    file(READ "${file}" content)
    if(NOT content MATCHES "${pattern}")
        message(FATAL_ERROR
                "${what}: '${file}' does not match '${pattern}':\n"
                "${content}")
    endif()
endfunction()

# Parse "[sweep] N points" and "cache: H hit(s), M miss(es), I
# insert(s)" out of a stderr file into <prefix>_{points,hits,misses,
# inserts} in the caller's scope.
function(read_stats errfile prefix)
    file(READ "${errfile}" content)
    if(NOT content MATCHES "\\[sweep\\] ([0-9]+) points")
        message(FATAL_ERROR "no point count in '${errfile}':\n${content}")
    endif()
    set(${prefix}_points "${CMAKE_MATCH_1}" PARENT_SCOPE)
    if(NOT content MATCHES
       "cache: ([0-9]+) hit\\(s\\), ([0-9]+) miss\\(es\\), ([0-9]+) insert\\(s\\)")
        message(FATAL_ERROR "no cache stats in '${errfile}':\n${content}")
    endif()
    set(${prefix}_hits "${CMAKE_MATCH_1}" PARENT_SCOPE)
    set(${prefix}_misses "${CMAKE_MATCH_2}" PARENT_SCOPE)
    set(${prefix}_inserts "${CMAKE_MATCH_3}" PARENT_SCOPE)
endfunction()

function(expect_stat actual expected what)
    if(NOT actual STREQUAL expected)
        message(FATAL_ERROR "${what}: got ${actual}, want ${expected}")
    endif()
endfunction()

run_case("${BENCH}" "${OUT}/reference.txt" "${OUT}/reference.err" 0
         --jobs=1)

# --- Cold run: everything misses, everything is inserted ---
run_case("${BENCH}" "${OUT}/cold.txt" "${OUT}/cold.err" 0
         --jobs=2 "--cache=${CACHE_FILE}")
expect_identical("${OUT}/reference.txt" "${OUT}/cold.txt" "cold run")
read_stats("${OUT}/cold.err" cold)
expect_stat("${cold_hits}" 0 "cold-run hits")
expect_stat("${cold_misses}" "${cold_points}" "cold-run misses")
expect_stat("${cold_inserts}" "${cold_points}" "cold-run inserts")

# --- Warm run: 100% hits, zero simulations, byte-identical ---
run_case("${BENCH}" "${OUT}/warm.txt" "${OUT}/warm.err" 0
         --jobs=2 "--cache=${CACHE_FILE}")
expect_identical("${OUT}/reference.txt" "${OUT}/warm.txt" "warm run")
read_stats("${OUT}/warm.err" warm)
expect_stat("${warm_hits}" "${cold_points}" "warm-run hits")
expect_stat("${warm_misses}" 0 "warm-run misses")
expect_stat("${warm_inserts}" 0 "warm-run inserts")

# --- Warm forked run: cached points are never dealt to workers ---
run_case("${BENCH}" "${OUT}/warm_forks.txt" "${OUT}/warm_forks.err" 0
         --forks=2 "--cache=${CACHE_FILE}")
expect_identical("${OUT}/reference.txt" "${OUT}/warm_forks.txt"
                 "warm forked run")
read_stats("${OUT}/warm_forks.err" forks)
expect_stat("${forks_hits}" "${cold_points}" "warm forked-run hits")
expect_stat("${forks_misses}" 0 "warm forked-run misses")

# --- Warm shard: the coordinator serves its owned points too ---
run_case("${BENCH}" "${OUT}/warm_shard.ndjson" "${OUT}/warm_shard.err" 0
         --shard=0/2 "--cache=${CACHE_FILE}")
read_stats("${OUT}/warm_shard.err" shard)
expect_stat("${shard_misses}" 0 "warm shard-run misses")

# --- Cross-bench: a different bench, same experiments, full hits ---
run_case("${BENCH2}" "${OUT}/reference2.txt" "${OUT}/reference2.err" 0
         --jobs=1)
run_case("${BENCH2}" "${OUT}/cross.txt" "${OUT}/cross.err" 0
         --jobs=2 "--cache=${CACHE_FILE}")
expect_identical("${OUT}/reference2.txt" "${OUT}/cross.txt"
                 "cross-bench run")
read_stats("${OUT}/cross.err" cross)
expect_stat("${cross_hits}" "${cross_points}" "cross-bench hits")
expect_stat("${cross_misses}" 0 "cross-bench misses")

# --- Flipped byte in one entry: that entry alone is recomputed ---
file(READ "${CACHE_FILE}" content)
string(FIND "${content}" "\"type\":\"entry\"" flip_at)
if(flip_at EQUAL -1)
    message(FATAL_ERROR "no entry record in '${CACHE_FILE}'")
endif()
string(SUBSTRING "${content}" 0 ${flip_at} before)
math(EXPR rest_at "${flip_at} + 14")
string(SUBSTRING "${content}" ${rest_at} -1 after)
file(WRITE "${CACHE_FILE}" "${before}\"type\":\"entrX\"${after}")
run_case("${BENCH}" "${OUT}/flip.txt" "${OUT}/flip.err" 0
         --jobs=2 "--cache=${CACHE_FILE}")
expect_identical("${OUT}/reference.txt" "${OUT}/flip.txt"
                 "flipped-byte run")
expect_match("${OUT}/flip.err" "skipping unreadable entry"
             "flipped-byte skip warning")
read_stats("${OUT}/flip.err" flip)
expect_stat("${flip_misses}" 1 "flipped-byte misses")
expect_stat("${flip_inserts}" 1 "flipped-byte re-inserts")

# --- Torn final line: dropped, that entry recomputed ---
file(READ "${CACHE_FILE}" content)
string(LENGTH "${content}" content_len)
math(EXPR keep "${content_len} - 40")
string(SUBSTRING "${content}" 0 ${keep} torn)
file(WRITE "${CACHE_FILE}" "${torn}")
run_case("${BENCH}" "${OUT}/torn.txt" "${OUT}/torn.err" 0
         --jobs=2 "--cache=${CACHE_FILE}")
expect_identical("${OUT}/reference.txt" "${OUT}/torn.txt" "torn-tail run")
expect_match("${OUT}/torn.err" "torn" "torn-tail warning")
read_stats("${OUT}/torn.err" torn)
expect_stat("${torn_misses}" 1 "torn-tail misses")

# --- Stale wire version in the header: the whole file is cold ---
file(READ "${CACHE_FILE}" content)
string(REGEX REPLACE "\"wirev\":[0-9]+" "\"wirev\":999" stale
       "${content}")
file(WRITE "${CACHE_FILE}" "${stale}")
run_case("${BENCH}" "${OUT}/stale.txt" "${OUT}/stale.err" 0
         --jobs=2 "--cache=${CACHE_FILE}")
expect_identical("${OUT}/reference.txt" "${OUT}/stale.txt"
                 "stale-wire-version run")
expect_match("${OUT}/stale.err" "starting cold" "cold-start warning")
read_stats("${OUT}/stale.err" stale)
expect_stat("${stale_hits}" 0 "stale-wire-version hits")
expect_stat("${stale_misses}" "${cold_points}" "stale-wire-version misses")

message(STATUS
        "cache smoke: warm replay, cross-bench hits, and every "
        "corruption mode render byte-identically")
