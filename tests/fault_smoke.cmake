# End-to-end fault-tolerance check for the sweep supervisor, run as a
# ctest (and mirrored by the CI fault-tolerance-smoke job). Against a
# bench binary (-DBENCH=...) and workload subset (-DWORKLOADS=...), it
# injects worker crashes, wedges, and coordinator kills through the
# ACR_TEST_* hooks and verifies the BenchMain fault-tolerance contract:
#
#   * a worker crash mid-sweep is retried on a respawned worker and the
#     rendered stdout stays byte-identical to --jobs=1;
#   * a wedged worker is SIGKILLed by the --point-timeout watchdog and
#     its point retried, same byte-identical contract;
#   * a point failing every attempt is quarantined: the table renders a
#     FAILED cell and the process exits 3 instead of aborting;
#   * a sweep killed mid-run resumes from its --journal without
#     re-simulating completed points (run counts checked via the
#     "journal: served X of Y" stderr stat), including after the
#     journal's final line is torn.
#
# Invoke with
#   cmake -DBENCH=<path> -DWORKLOADS=<a,b> -DOUT=<scratch dir>
#         -P fault_smoke.cmake

foreach(var BENCH WORKLOADS OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "fault_smoke.cmake needs -D${var}=...")
    endif()
endforeach()

file(REMOVE_RECURSE "${OUT}")
file(MAKE_DIRECTORY "${OUT}")

# Run the bench with extra environment (a cmake list of VAR=VALUE, may
# be empty) and require a specific exit status.
function(run_case output errfile expect_status envs)
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E env ${envs}
                "${BENCH}" "--workloads=${WORKLOADS}" ${ARGN}
        OUTPUT_FILE "${output}"
        ERROR_FILE "${errfile}"
        RESULT_VARIABLE status)
    if(NOT status EQUAL ${expect_status})
        file(READ "${errfile}" stderr)
        message(FATAL_ERROR
                "${BENCH} ${ARGN} [env: ${envs}] exited ${status} "
                "(expected ${expect_status}):\n${stderr}")
    endif()
endfunction()

function(expect_identical reference candidate what)
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${reference}" "${candidate}"
        RESULT_VARIABLE status)
    if(NOT status EQUAL 0)
        message(FATAL_ERROR
                "${what} output differs from the --jobs=1 reference "
                "(${reference} vs ${candidate})")
    endif()
endfunction()

function(expect_match file pattern what)
    file(READ "${file}" content)
    if(NOT content MATCHES "${pattern}")
        message(FATAL_ERROR
                "${what}: '${file}' does not match '${pattern}':\n"
                "${content}")
    endif()
endfunction()

run_case("${OUT}/reference.txt" "${OUT}/reference.err" 0 "" --jobs=1)

# --- Worker crash: retried on a respawned worker, output identical ---
run_case("${OUT}/crash.txt" "${OUT}/crash.err" 0
         "ACR_TEST_CRASH_AT=2" --forks=2)
expect_identical("${OUT}/reference.txt" "${OUT}/crash.txt"
                 "crash-injected forked sweep")
expect_match("${OUT}/crash.err" "retry" "crash retry report")
expect_match("${OUT}/crash.err" "respawn" "crash respawn stat")

# --- Wedged worker: watchdog SIGKILL + retry, output identical ---
run_case("${OUT}/wedge.txt" "${OUT}/wedge.err" 0
         "ACR_TEST_WEDGE_AT=1" --forks=2 --point-timeout=5)
expect_identical("${OUT}/reference.txt" "${OUT}/wedge.txt"
                 "watchdog-killed forked sweep")
expect_match("${OUT}/wedge.err" "point-timeout" "watchdog kill report")

# --- Exhausted retries: quarantine, FAILED cell, exit code 3 ---
run_case("${OUT}/quarantine.txt" "${OUT}/quarantine.err" 3
         "ACR_TEST_CRASH_INDEX=1" --forks=2 --retries=1)
expect_match("${OUT}/quarantine.txt" "FAILED" "quarantined table cell")
expect_match("${OUT}/quarantine.err" "quarantin" "quarantine report")

# --- Journaled resume: coordinator dies after 2 completions, the
#     rerun serves those 2 from the journal and finishes the rest ---
run_case("${OUT}/half.txt" "${OUT}/half.err" 7
         "ACR_TEST_COORD_EXIT_AFTER=2" --forks=2
         "--journal=${OUT}/sweep.journal")
run_case("${OUT}/resumed.txt" "${OUT}/resumed.err" 0 ""
         --forks=2 "--journal=${OUT}/sweep.journal" --resume)
expect_identical("${OUT}/reference.txt" "${OUT}/resumed.txt"
                 "journal-resumed forked sweep")
expect_match("${OUT}/resumed.err" "journal: served 2 of"
             "resume must serve exactly the journaled completions")

# --- Full cache: a completed journal serves every owned point ---
run_case("${OUT}/cached.txt" "${OUT}/cached.err" 0 ""
         --jobs=2 "--journal=${OUT}/sweep.journal" --resume)
expect_identical("${OUT}/reference.txt" "${OUT}/cached.txt"
                 "fully-cached rerun")
file(READ "${OUT}/cached.err" cached_err)
string(REGEX MATCH "journal: served ([0-9]+) of ([0-9]+)" _
       "${cached_err}")
if(NOT CMAKE_MATCH_1 OR NOT CMAKE_MATCH_1 STREQUAL CMAKE_MATCH_2)
    message(FATAL_ERROR
            "fully-cached rerun re-simulated points (served "
            "${CMAKE_MATCH_1} of ${CMAKE_MATCH_2}):\n${cached_err}")
endif()

# --- Torn tail: chop the journal mid-record; the torn line is
#     dropped, that point reruns, output still identical ---
file(READ "${OUT}/sweep.journal" journal)
string(LENGTH "${journal}" journal_len)
math(EXPR keep "${journal_len} - 40")
string(SUBSTRING "${journal}" 0 ${keep} torn)
file(WRITE "${OUT}/sweep.journal" "${torn}")
run_case("${OUT}/torn.txt" "${OUT}/torn.err" 0 ""
         --forks=2 "--journal=${OUT}/sweep.journal" --resume)
expect_identical("${OUT}/reference.txt" "${OUT}/torn.txt"
                 "torn-tail resumed sweep")
expect_match("${OUT}/torn.err" "torn" "torn-tail warning")

# --- Merging shards that contain failed records: the merged render
#     shows FAILED cells and exits 3, same as a live quarantine ---
run_case("${OUT}/fshard0.ndjson" "${OUT}/fshard0.err" 3
         "ACR_TEST_CRASH_INDEX=0" --shard=0/2 --forks=2 --retries=0)
run_case("${OUT}/fshard1.ndjson" "${OUT}/fshard1.err" 0 "" --shard=1/2)
run_case("${OUT}/fmerged.txt" "${OUT}/fmerged.err" 3 ""
         "--merge=${OUT}/fshard0.ndjson,${OUT}/fshard1.ndjson")
expect_match("${OUT}/fmerged.txt" "FAILED"
             "merged FAILED table cell")
expect_match("${OUT}/fmerged.err" "quarantin"
             "merged quarantine report")

# --- In-process journal writes (threaded Journal::record path) ---
run_case("${OUT}/inproc.txt" "${OUT}/inproc.err" 0 ""
         --jobs=2 "--journal=${OUT}/inproc.journal")
run_case("${OUT}/inproc_resumed.txt" "${OUT}/inproc_resumed.err" 0 ""
         --jobs=1 "--journal=${OUT}/inproc.journal" --resume)
expect_identical("${OUT}/reference.txt" "${OUT}/inproc_resumed.txt"
                 "in-process journaled rerun")

# --- Oracle-in-workers parity (needs -DTORTURE=<torture binary>): a
#     fixture divergence (ACR_TEST_CORRUPT_RECOVERY) must surface
#     identically — same rendered bytes, same exit-4 verdict — whether
#     the point runs on in-process threads (--jobs), forked wire-
#     protocol workers (--forks), or split across shards whose records
#     carry the divergence to a later --merge. In shard mode the legs
#     themselves exit 0: the verdict travels in the result records
#     (oracleDivergences/oracleReport) and is applied at render time.
if(DEFINED TORTURE)
    set(oracle_campaign --workloads=is --modes=reckpt --coords=global
        --lats=0.5 --errors=8 --checkpoints=5 --seeds=1 --oracle=on)
    function(run_oracle output errfile expect_status)
        execute_process(
            COMMAND "${CMAKE_COMMAND}" -E env ACR_TEST_CORRUPT_RECOVERY=1
                    "${TORTURE}" ${oracle_campaign} ${ARGN}
            OUTPUT_FILE "${output}"
            ERROR_FILE "${errfile}"
            RESULT_VARIABLE status)
        if(NOT status EQUAL ${expect_status})
            file(READ "${errfile}" stderr)
            message(FATAL_ERROR
                    "${TORTURE} ${ARGN}: expected exit "
                    "${expect_status}, got ${status}:\n${stderr}")
        endif()
    endfunction()

    run_oracle("${OUT}/oracle_jobs.txt" "${OUT}/oracle_jobs.err" 4
               --jobs=1)
    run_oracle("${OUT}/oracle_forks.txt" "${OUT}/oracle_forks.err" 4
               --forks=2)
    expect_identical("${OUT}/oracle_jobs.txt" "${OUT}/oracle_forks.txt"
                     "oracle divergence under --forks")
    expect_match("${OUT}/oracle_forks.err" "\\[oracle\\]"
                 "forked oracle diagnostic")

    run_oracle("${OUT}/oracle_s0.ndjson" "${OUT}/oracle_s0.err" 0
               --shard=0/2 --forks=2)
    run_oracle("${OUT}/oracle_s1.ndjson" "${OUT}/oracle_s1.err" 0
               --shard=1/2)
    # The divergence must travel inside the wire records themselves.
    file(READ "${OUT}/oracle_s0.ndjson" s0)
    file(READ "${OUT}/oracle_s1.ndjson" s1)
    if(NOT "${s0}${s1}" MATCHES "\"oracleDivergences\":[1-9]")
        message(FATAL_ERROR
                "no shard record carries a nonzero oracleDivergences "
                "count — divergences are not crossing the wire")
    endif()
    run_oracle("${OUT}/oracle_merged.txt" "${OUT}/oracle_merged.err" 4
               "--merge=${OUT}/oracle_s0.ndjson,${OUT}/oracle_s1.ndjson")
    expect_identical("${OUT}/oracle_jobs.txt" "${OUT}/oracle_merged.txt"
                     "oracle divergence across shard+merge")

    message(STATUS
            "fault smoke: oracle divergence surfaced identically in "
            "--jobs, --forks, and --shard+merge")
endif()

message(STATUS
        "fault smoke: crash, watchdog, quarantine, and resume all "
        "render byte-identically")
