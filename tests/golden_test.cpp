/**
 * @file
 * Golden regression lock on the reproduction's headline numbers at the
 * paper's default evaluation point (8 threads, 25 checkpoints,
 * per-workload default slice thresholds — the grid of Figs. 6/7/9):
 * the overall checkpoint-size reduction, the execution-time overhead
 * reduction, and the energy overhead reduction of ReCkpt_NE vs
 * Ckpt_NE, per workload and on average, all per bench_util.hh's
 * arithmetic. The simulator is fully deterministic, so these match to
 * floating-point exactness; the ±0.01 tolerance only absorbs honest
 * refactors of summation order. Any real change to the modeled
 * machinery must update these numbers CONSCIOUSLY, in this file, with
 * the diff explained in the commit.
 */

#include <gtest/gtest.h>

#include "bench_util.hh"

namespace acr::bench
{
namespace
{

using harness::BerMode;

constexpr double kTolerance = 0.01;

struct GoldenRow
{
    const char *workload;
    double sizeReductionPct;    ///< overall ckpt-size red., ReCkpt vs Ckpt
    double timeReductionPct;    ///< time-overhead red., ReCkpt vs Ckpt
    double energyReductionPct;  ///< energy-overhead red., ReCkpt vs Ckpt
};

// Pinned from the current reproduction (see EXPERIMENTS.md; regenerate
// by running this test and copying the reported actuals).
constexpr GoldenRow kGolden[] = {
    {"bt", 30.752642, 19.243233, 18.929279},
    {"cg", 7.070822, 5.585331, 4.562969},
    {"dc", 61.164657, 35.655396, 36.347058},
    {"ft", 20.045723, 13.239789, 12.642953},
    {"is", 60.826544, 35.855340, 34.455618},
    {"lu", 37.136395, 22.476707, 22.467135},
    {"mg", 11.001495, 7.031273, 6.657590},
    {"sp", 33.678119, 20.779221, 20.592067},
};

// Same reductions under local coordination (Sec. V-E): only
// communicating cores cooperate at each checkpoint, so the interval
// structure — and with it every reduction — shifts. Pinned from the
// same seed engine as kGolden; the hot-path rewrite must reproduce
// both coordination modes exactly.
constexpr GoldenRow kGoldenLocal[] = {
    {"bt", 30.752642, 19.464181, 19.060649},
    {"cg", 7.070822, 5.585331, 4.562969},
    {"dc", 61.164657, 38.138619, 37.770761},
    {"ft", 20.045723, 20.269369, 15.763205},
    {"is", 60.826544, 34.432046, 33.278069},
    {"lu", 37.136395, 23.159238, 22.750200},
    {"mg", 11.001495, 7.664674, 6.693785},
    {"sp", 33.678119, 20.779221, 20.592067},
};

TEST(Golden, HeadlineReductionsAtDefaultPoint)
{
    harness::Runner runner(kDefaultThreads);
    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt),
        makeConfig(BerMode::kCkpt),
        makeConfig(BerMode::kReCkpt),
    };
    harness::Sweep sweep(runner);
    const auto results = sweep.run(crossWorkloads(configs));

    const auto &names = workloads::allWorkloadNames();
    ASSERT_EQ(names.size(), std::size(kGolden));

    for (std::size_t w = 0; w < names.size(); ++w) {
        const GoldenRow &golden = kGolden[w];
        ASSERT_EQ(names[w], golden.workload);
        const auto *row = &results[w * configs.size()];
        const auto &base = row[0];
        const auto &ckpt = row[1];
        const auto &reckpt = row[2];

        SCOPED_TRACE(names[w]);
        EXPECT_NEAR(overallSizeReductionPct(ckpt, reckpt),
                    golden.sizeReductionPct, kTolerance);
        EXPECT_NEAR(reductionPct(ckpt.timeOverheadPct(base.cycles),
                                 reckpt.timeOverheadPct(base.cycles)),
                    golden.timeReductionPct, kTolerance);
        EXPECT_NEAR(
            reductionPct(ckpt.energyOverheadPct(base.energyPj),
                         reckpt.energyOverheadPct(base.energyPj)),
            golden.energyReductionPct, kTolerance);
    }
}

TEST(Golden, HeadlineReductionsUnderLocalCoordination)
{
    harness::Runner runner(kDefaultThreads);
    const std::vector<harness::ExperimentConfig> configs = {
        makeConfig(BerMode::kNoCkpt),
        makeConfig(BerMode::kCkpt, 0, ckpt::Coordination::kLocal),
        makeConfig(BerMode::kReCkpt, 0, ckpt::Coordination::kLocal),
    };
    harness::Sweep sweep(runner);
    const auto results = sweep.run(crossWorkloads(configs));

    const auto &names = workloads::allWorkloadNames();
    ASSERT_EQ(names.size(), std::size(kGoldenLocal));

    for (std::size_t w = 0; w < names.size(); ++w) {
        const GoldenRow &golden = kGoldenLocal[w];
        ASSERT_EQ(names[w], golden.workload);
        const auto *row = &results[w * configs.size()];
        const auto &base = row[0];
        const auto &ckpt = row[1];
        const auto &reckpt = row[2];

        SCOPED_TRACE(names[w]);
        EXPECT_NEAR(overallSizeReductionPct(ckpt, reckpt),
                    golden.sizeReductionPct, kTolerance);
        EXPECT_NEAR(reductionPct(ckpt.timeOverheadPct(base.cycles),
                                 reckpt.timeOverheadPct(base.cycles)),
                    golden.timeReductionPct, kTolerance);
        EXPECT_NEAR(
            reductionPct(ckpt.energyOverheadPct(base.energyPj),
                         reckpt.energyOverheadPct(base.energyPj)),
            golden.energyReductionPct, kTolerance);
    }
}

} // namespace
} // namespace acr::bench
